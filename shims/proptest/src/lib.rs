//! Offline stand-in for `proptest`.
//!
//! Implements the subset of the API this workspace uses: the [`Strategy`]
//! trait with `prop_map`/`prop_flat_map`, `Just`, ranges as strategies,
//! tuples of strategies, `collection::{vec, btree_map}`, `prop_oneof!`,
//! and the `proptest!` / `prop_assert*` / `prop_assume!` macros.
//!
//! Differences from upstream: no shrinking (a failing case panics with its
//! case number and a fixed per-test seed, so reruns reproduce it exactly),
//! and `prop_assume!` skips the case instead of drawing a replacement.

pub mod test_runner {
    /// Deterministic xorshift-style generator (SplitMix64 core).
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// Builds a generator from a test-identity seed and case index.
        pub fn deterministic(seed: u64, case: u64) -> Self {
            // Decorrelate (seed, case) pairs before the SplitMix64 stream.
            TestRng {
                state: seed ^ case.wrapping_mul(0x9E37_79B9_7F4A_7C15),
            }
        }

        /// Next raw 64-bit value (SplitMix64).
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// Uniform value in `[0, bound)`; `bound` must be nonzero.
        pub fn below(&mut self, bound: u64) -> u64 {
            debug_assert!(bound > 0);
            // Rejection sampling for exact uniformity.
            let zone = u64::MAX - (u64::MAX % bound);
            loop {
                let v = self.next_u64();
                if v < zone {
                    return v % bound;
                }
            }
        }
    }

    /// Runner configuration (only `cases` is honored by the shim).
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of random cases per property.
        pub cases: u32,
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 256 }
        }
    }

    impl ProptestConfig {
        /// Config running `cases` random cases.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }
}

pub mod strategy {
    use crate::test_runner::TestRng;

    /// A generator of values of type `Self::Value`.
    ///
    /// Object-safe so `prop_oneof!` can box heterogeneous strategies with a
    /// common value type.
    pub trait Strategy {
        /// The type of generated values.
        type Value;

        /// Draws one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<T, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> T,
        {
            Map { inner: self, f }
        }

        /// Feeds generated values into `f` to pick a dependent strategy.
        fn prop_flat_map<S2, F>(self, f: F) -> FlatMap<Self, F>
        where
            Self: Sized,
            S2: Strategy,
            F: Fn(Self::Value) -> S2,
        {
            FlatMap { inner: self, f }
        }
    }

    impl<S: Strategy + ?Sized> Strategy for &S {
        type Value = S::Value;
        fn generate(&self, rng: &mut TestRng) -> S::Value {
            (**self).generate(rng)
        }
    }

    impl<S: Strategy + ?Sized> Strategy for Box<S> {
        type Value = S::Value;
        fn generate(&self, rng: &mut TestRng) -> S::Value {
            (**self).generate(rng)
        }
    }

    /// Strategy producing one fixed value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// See [`Strategy::prop_map`].
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S, T, F> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> T,
    {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// See [`Strategy::prop_flat_map`].
    pub struct FlatMap<S, F> {
        inner: S,
        f: F,
    }

    impl<S, S2, F> Strategy for FlatMap<S, F>
    where
        S: Strategy,
        S2: Strategy,
        F: Fn(S::Value) -> S2,
    {
        type Value = S2::Value;
        fn generate(&self, rng: &mut TestRng) -> S2::Value {
            (self.f)(self.inner.generate(rng)).generate(rng)
        }
    }

    /// Uniform choice among boxed strategies (`prop_oneof!`).
    pub struct Union<T> {
        options: Vec<Box<dyn Strategy<Value = T>>>,
    }

    impl<T> Union<T> {
        /// Builds a union; `options` must be non-empty.
        pub fn new(options: Vec<Box<dyn Strategy<Value = T>>>) -> Self {
            assert!(!options.is_empty(), "prop_oneof! needs at least one arm");
            Union { options }
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            let i = rng.below(self.options.len() as u64) as usize;
            self.options[i].generate(rng)
        }
    }

    macro_rules! impl_int_range {
        ($($t:ty),*) => {$(
            impl Strategy for std::ops::Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as i128 - self.start as i128) as u64;
                    (self.start as i128 + rng.below(span) as i128) as $t
                }
            }

            impl Strategy for std::ops::RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty range strategy");
                    let span = (hi as i128 - lo as i128) as u64;
                    if span == u64::MAX {
                        return rng.next_u64() as $t;
                    }
                    (lo as i128 + rng.below(span + 1) as i128) as $t
                }
            }
        )*};
    }

    impl_int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    macro_rules! impl_tuple_strategy {
        ($(($($s:ident $idx:tt),+))*) => {$(
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.generate(rng),)+)
                }
            }
        )*};
    }

    impl_tuple_strategy! {
        (S0 0)
        (S0 0, S1 1)
        (S0 0, S1 1, S2 2)
        (S0 0, S1 1, S2 2, S3 3)
        (S0 0, S1 1, S2 2, S3 3, S4 4)
    }
}

pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::collections::BTreeMap;

    /// Size specification for collection strategies.
    pub trait SizeRange {
        /// Draws a size.
        fn pick(&self, rng: &mut TestRng) -> usize;
    }

    impl SizeRange for std::ops::Range<usize> {
        fn pick(&self, rng: &mut TestRng) -> usize {
            assert!(self.start < self.end, "empty size range");
            self.start + rng.below((self.end - self.start) as u64) as usize
        }
    }

    impl SizeRange for std::ops::RangeInclusive<usize> {
        fn pick(&self, rng: &mut TestRng) -> usize {
            let (lo, hi) = (*self.start(), *self.end());
            assert!(lo <= hi, "empty size range");
            lo + rng.below((hi - lo + 1) as u64) as usize
        }
    }

    impl SizeRange for usize {
        fn pick(&self, _rng: &mut TestRng) -> usize {
            *self
        }
    }

    /// Strategy for `Vec`s whose length is drawn from `size`.
    pub struct VecStrategy<S, R> {
        elem: S,
        size: R,
    }

    impl<S: Strategy, R: SizeRange> Strategy for VecStrategy<S, R> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = self.size.pick(rng);
            (0..n).map(|_| self.elem.generate(rng)).collect()
        }
    }

    /// `Vec` strategy: `len` drawn from `size`, elements from `elem`.
    pub fn vec<S: Strategy, R: SizeRange>(elem: S, size: R) -> VecStrategy<S, R> {
        VecStrategy { elem, size }
    }

    /// Strategy for `BTreeMap`s (duplicate keys collapse, as upstream).
    pub struct BTreeMapStrategy<K, V, R> {
        key: K,
        val: V,
        size: R,
    }

    impl<K, V, R> Strategy for BTreeMapStrategy<K, V, R>
    where
        K: Strategy,
        K::Value: Ord,
        V: Strategy,
        R: SizeRange,
    {
        type Value = BTreeMap<K::Value, V::Value>;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let n = self.size.pick(rng);
            (0..n)
                .map(|_| (self.key.generate(rng), self.val.generate(rng)))
                .collect()
        }
    }

    /// `BTreeMap` strategy with the entry count drawn from `size`.
    pub fn btree_map<K, V, R>(key: K, val: V, size: R) -> BTreeMapStrategy<K, V, R>
    where
        K: Strategy,
        K::Value: Ord,
        V: Strategy,
        R: SizeRange,
    {
        BTreeMapStrategy { key, val, size }
    }
}

/// FNV-1a hash of a test's module path + name; the per-test seed.
pub fn seed_from_name(name: &str) -> u64 {
    let mut h: u64 = 0xCBF2_9CE4_8422_2325;
    for b in name.as_bytes() {
        h ^= *b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

/// Defines deterministic property tests.
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(64))]
///     #[test]
///     fn prop(x in 0u64..10, v in proptest::collection::vec(0u32..5, 0..4)) {
///         prop_assert!(x < 10);
///     }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::proptest!(@with ($config) $($rest)*);
    };
    (@with ($config:expr) $(
        $(#[$meta:meta])*
        fn $name:ident($($arg:pat in $strat:expr),+ $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let __config: $crate::test_runner::ProptestConfig = $config;
            let __seed = $crate::seed_from_name(concat!(module_path!(), "::", stringify!($name)));
            for __case in 0..__config.cases {
                let mut __rng =
                    $crate::test_runner::TestRng::deterministic(__seed, __case as u64);
                $(let $arg = $crate::strategy::Strategy::generate(&($strat), &mut __rng);)+
                let __outcome: ::std::result::Result<(), ::std::string::String> =
                    (|| -> ::std::result::Result<(), ::std::string::String> {
                        $body
                        Ok(())
                    })();
                if let Err(__msg) = __outcome {
                    panic!(
                        "proptest {} failed at case {}/{} (seed {:#x}): {}",
                        stringify!($name), __case, __config.cases, __seed, __msg
                    );
                }
            }
        }
    )*};
    ($($rest:tt)*) => {
        $crate::proptest!(@with ($crate::test_runner::ProptestConfig::default()) $($rest)*);
    };
}

/// Asserts a condition inside `proptest!`, failing the current case.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if !$cond {
            return ::std::result::Result::Err(
                format!("assertion failed: {}", stringify!($cond)),
            );
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err(
                format!("assertion failed: {} ({})", stringify!($cond), format!($($fmt)+)),
            );
        }
    };
}

/// Asserts equality inside `proptest!`, failing the current case.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {
        match (&$left, &$right) {
            (__l, __r) => {
                if !(*__l == *__r) {
                    return ::std::result::Result::Err(format!(
                        "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
                        stringify!($left), stringify!($right), __l, __r,
                    ));
                }
            }
        }
    };
    ($left:expr, $right:expr, $($fmt:tt)+) => {
        match (&$left, &$right) {
            (__l, __r) => {
                if !(*__l == *__r) {
                    return ::std::result::Result::Err(format!(
                        "assertion failed: `{} == {}` ({})\n  left: {:?}\n right: {:?}",
                        stringify!($left), stringify!($right), format!($($fmt)+), __l, __r,
                    ));
                }
            }
        }
    };
}

/// Skips the current case when the precondition fails (no replacement draw).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !$cond {
            return ::std::result::Result::Ok(());
        }
    };
}

/// Uniform choice among same-typed strategies.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {{
        // A single annotated element type lets the compiler unify the value
        // types of all arms (e.g. untyped integer literals) before boxing.
        let __options: ::std::vec::Vec<
            ::std::boxed::Box<dyn $crate::strategy::Strategy<Value = _>>,
        > = ::std::vec![$(::std::boxed::Box::new($strat)),+];
        $crate::strategy::Union::new(__options)
    }};
}

pub mod prelude {
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assume, prop_oneof, proptest};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;
    use crate::test_runner::TestRng;

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = TestRng::deterministic(1, 0);
        for _ in 0..1000 {
            let v = Strategy::generate(&(3u64..17), &mut rng);
            assert!((3..17).contains(&v));
            let w = Strategy::generate(&(5usize..=5), &mut rng);
            assert_eq!(w, 5);
            let x = Strategy::generate(&(-4i64..4), &mut rng);
            assert!((-4..4).contains(&x));
        }
    }

    #[test]
    fn determinism_per_seed() {
        let draw = |case| {
            let mut rng = TestRng::deterministic(42, case);
            Strategy::generate(&crate::collection::vec(0u32..100, 0..8), &mut rng)
        };
        assert_eq!(draw(7), draw(7));
        assert_ne!(draw(1), draw(2)); // overwhelmingly likely
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn macro_pipeline_works(
            d in prop_oneof![Just(2u64), Just(4), Just(8)],
            v in crate::collection::vec(0u32..10, 1..5),
            (a, b) in (0u64..10, 0u64..10),
        ) {
            prop_assert!(d == 2 || d == 4 || d == 8);
            prop_assert!(!v.is_empty() && v.len() < 5);
            prop_assume!(a != b || a == b); // always true; exercises the macro
            prop_assert_eq!(a + b, b + a);
        }

        #[test]
        fn flat_map_dependent_sizes(v in (1usize..4).prop_flat_map(|n| crate::collection::vec(0u32..10, n..=n))) {
            prop_assert!((1..4).contains(&v.len()));
        }
    }
}
