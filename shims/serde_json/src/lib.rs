//! Offline stand-in for `serde_json`, backed by the `serde` shim's [`Value`]
//! data model. Output is real JSON; maps appear as arrays of `[key, value]`
//! pairs (see the serde shim docs), which round-trips through this parser.

pub use serde::Value;
use serde::{Deserialize, Serialize};
use std::fmt;

/// JSON error (serialization or parse).
#[derive(Debug, Clone)]
pub struct Error {
    msg: String,
}

impl Error {
    fn new(msg: impl Into<String>) -> Self {
        Error { msg: msg.into() }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.msg)
    }
}

impl std::error::Error for Error {}

impl From<serde::Error> for Error {
    fn from(e: serde::Error) -> Self {
        Error::new(e.to_string())
    }
}

/// Serializes to a compact JSON string.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&value.to_value(), &mut out, None, 0);
    Ok(out)
}

/// Serializes to a pretty-printed JSON string.
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&value.to_value(), &mut out, Some(2), 0);
    Ok(out)
}

/// Serializes to a compact JSON byte vector.
pub fn to_vec<T: Serialize + ?Sized>(value: &T) -> Result<Vec<u8>, Error> {
    to_string(value).map(String::into_bytes)
}

/// Serializes into a caller-owned buffer, clearing it first. Reuses `out`'s
/// allocation so hot encode loops don't allocate per call.
pub fn to_vec_into<T: Serialize + ?Sized>(value: &T, out: &mut Vec<u8>) -> Result<(), Error> {
    // Round-trip the Vec through a String to reuse the allocation; the
    // buffer was valid UTF-8 when we produced it, and we clear it anyway.
    let mut s = match String::from_utf8(std::mem::take(out)) {
        Ok(s) => s,
        Err(e) => String::with_capacity(e.into_bytes().capacity()),
    };
    s.clear();
    write_value(&value.to_value(), &mut s, None, 0);
    *out = s.into_bytes();
    Ok(())
}

/// Serializes to a pretty-printed JSON byte vector.
pub fn to_vec_pretty<T: Serialize + ?Sized>(value: &T) -> Result<Vec<u8>, Error> {
    to_string_pretty(value).map(String::into_bytes)
}

/// Deserializes from a JSON string.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T, Error> {
    let v = parse(s)?;
    T::from_value(&v).map_err(Error::from)
}

/// Deserializes from JSON bytes.
pub fn from_slice<T: Deserialize>(bytes: &[u8]) -> Result<T, Error> {
    let s = std::str::from_utf8(bytes).map_err(|e| Error::new(format!("invalid UTF-8: {e}")))?;
    from_str(s)
}

// ---------------------------------------------------------------------------
// Writer
// ---------------------------------------------------------------------------

fn write_value(v: &Value, out: &mut String, indent: Option<usize>, level: usize) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::U64(x) => out.push_str(&x.to_string()),
        Value::I64(x) => out.push_str(&x.to_string()),
        Value::F64(x) => {
            if x.is_finite() {
                // Keep integral floats distinguishable from integers so they
                // parse back as F64.
                if x.fract() == 0.0 && x.abs() < 1e15 {
                    out.push_str(&format!("{x:.1}"));
                } else {
                    out.push_str(&format!("{x}"));
                }
            } else {
                out.push_str("null");
            }
        }
        Value::Str(s) => write_string(s, out),
        Value::Array(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, level + 1);
                write_value(item, out, indent, level + 1);
            }
            if !items.is_empty() {
                newline_indent(out, indent, level);
            }
            out.push(']');
        }
        Value::Object(pairs) => {
            out.push('{');
            for (i, (k, item)) in pairs.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, level + 1);
                write_string(k, out);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(item, out, indent, level + 1);
            }
            if !pairs.is_empty() {
                newline_indent(out, indent, level);
            }
            out.push('}');
        }
    }
}

fn newline_indent(out: &mut String, indent: Option<usize>, level: usize) {
    if let Some(w) = indent {
        out.push('\n');
        out.push_str(&" ".repeat(w * level));
    }
}

fn write_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

// ---------------------------------------------------------------------------
// Parser
// ---------------------------------------------------------------------------

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

/// Parses a complete JSON document.
pub fn parse(s: &str) -> Result<Value, Error> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error::new(format!("trailing data at byte {}", p.pos)));
    }
    Ok(v)
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::new(format!(
                "expected `{}` at byte {}",
                b as char, self.pos
            )))
        }
    }

    fn value(&mut self) -> Result<Value, Error> {
        match self.peek() {
            Some(b'n') => self.literal("null", Value::Null),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'"') => self.string().map(Value::Str),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b) if b == b'-' || b.is_ascii_digit() => self.number(),
            other => Err(Error::new(format!(
                "unexpected {:?} at byte {}",
                other.map(|b| b as char),
                self.pos
            ))),
        }
    }

    fn literal(&mut self, word: &str, v: Value) -> Result<Value, Error> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(Error::new(format!("invalid literal at byte {}", self.pos)))
        }
    }

    fn string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let Some(b) = self.peek() else {
                return Err(Error::new("unterminated string"));
            };
            self.pos += 1;
            match b {
                b'"' => return Ok(out),
                b'\\' => {
                    let Some(esc) = self.peek() else {
                        return Err(Error::new("unterminated escape"));
                    };
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .ok_or_else(|| Error::new("truncated \\u escape"))?;
                            self.pos += 4;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex)
                                    .map_err(|_| Error::new("bad \\u escape"))?,
                                16,
                            )
                            .map_err(|_| Error::new("bad \\u escape"))?;
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| Error::new("bad \\u code point"))?,
                            );
                        }
                        other => {
                            return Err(Error::new(format!("bad escape \\{}", other as char)))
                        }
                    }
                }
                _ => {
                    // Re-sync to char boundary for multi-byte UTF-8.
                    let start = self.pos - 1;
                    let width = utf8_width(b);
                    self.pos = start + width;
                    let chunk = self
                        .bytes
                        .get(start..start + width)
                        .ok_or_else(|| Error::new("truncated UTF-8"))?;
                    out.push_str(
                        std::str::from_utf8(chunk).map_err(|_| Error::new("invalid UTF-8"))?,
                    );
                }
            }
        }
    }

    fn number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        if float {
            text.parse::<f64>()
                .map(Value::F64)
                .map_err(|e| Error::new(format!("bad number `{text}`: {e}")))
        } else if text.starts_with('-') {
            text.parse::<i64>()
                .map(Value::I64)
                .map_err(|e| Error::new(format!("bad number `{text}`: {e}")))
        } else {
            text.parse::<u64>()
                .map(Value::U64)
                .map_err(|e| Error::new(format!("bad number `{text}`: {e}")))
        }
    }

    fn array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(Error::new(format!("expected , or ] at byte {}", self.pos))),
            }
        }
    }

    fn object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let val = self.value()?;
            pairs.push((key, val));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(pairs));
                }
                _ => return Err(Error::new(format!("expected , or }} at byte {}", self.pos))),
            }
        }
    }
}

fn utf8_width(b: u8) -> usize {
    match b {
        0x00..=0x7f => 1,
        0xc0..=0xdf => 2,
        0xe0..=0xef => 3,
        _ => 4,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_scalars() {
        for v in [
            Value::Null,
            Value::Bool(true),
            Value::U64(1 << 40),
            Value::I64(-7),
            Value::F64(1.5),
            Value::Str("hé\"\\\n".into()),
        ] {
            let s = to_string(&v).unwrap();
            assert_eq!(parse(&s).unwrap(), v, "{s}");
        }
    }

    #[test]
    fn roundtrip_nested() {
        let v = Value::Object(vec![
            ("a".into(), Value::Array(vec![Value::U64(1), Value::Null])),
            ("b".into(), Value::Object(vec![])),
        ]);
        let compact = to_string(&v).unwrap();
        let pretty = to_string_pretty(&v).unwrap();
        assert_eq!(parse(&compact).unwrap(), v);
        assert_eq!(parse(&pretty).unwrap(), v);
    }
}
