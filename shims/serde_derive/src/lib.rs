//! Offline stand-in for `serde_derive`.
//!
//! Implements `#[derive(Serialize)]` and `#[derive(Deserialize)]` by parsing
//! the item's token stream directly (no `syn`/`quote` available offline) and
//! emitting impls of the shim `Serialize`/`Deserialize` traits, which funnel
//! through the shim's `Value` tree. Generated code fully qualifies `Result`,
//! `Ok`, `Err`, `Option` and `Default` so crate-local aliases (e.g. a
//! one-parameter `Result<T>`) can't capture the emitted names.
//!
//! Supported shapes: unit/tuple/named structs and enums whose variants are
//! unit, tuple or struct-like. Generic parameters are not supported (nothing
//! in the workspace derives on a generic type). Recognized field attributes:
//! `#[serde(skip)]` and `#[serde(default = "path")]`.

use proc_macro::{Delimiter, TokenStream, TokenTree};

#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    let code = gen_serialize(&item);
    code.parse().expect("generated Serialize impl parses")
}

#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    let code = gen_deserialize(&item);
    code.parse().expect("generated Deserialize impl parses")
}

// ---------------------------------------------------------------------------
// Parsing
// ---------------------------------------------------------------------------

struct Field {
    name: String, // field name, or the index for tuple fields
    skip: bool,
    default_fn: Option<String>,
}

enum Shape {
    Unit,
    Tuple(Vec<Field>),
    Named(Vec<Field>),
}

struct Variant {
    name: String,
    shape: Shape,
}

enum Item {
    Struct { name: String, shape: Shape },
    Enum { name: String, variants: Vec<Variant> },
}

/// Serde-relevant info gathered from `#[serde(...)]` attribute groups.
#[derive(Default)]
struct AttrInfo {
    skip: bool,
    default_fn: Option<String>,
}

/// Consumes leading `#[...]` attribute groups from `toks[*pos..]`, extracting
/// serde options.
fn take_attrs(toks: &[TokenTree], pos: &mut usize) -> AttrInfo {
    let mut info = AttrInfo::default();
    while *pos + 1 < toks.len() {
        let TokenTree::Punct(p) = &toks[*pos] else { break };
        if p.as_char() != '#' {
            break;
        }
        let TokenTree::Group(g) = &toks[*pos + 1] else { break };
        if g.delimiter() != Delimiter::Bracket {
            break;
        }
        parse_serde_attr(&g.stream(), &mut info);
        *pos += 2;
    }
    info
}

/// Parses the inside of one `#[...]`; records options if it is `serde(...)`.
fn parse_serde_attr(stream: &TokenStream, info: &mut AttrInfo) {
    let toks: Vec<TokenTree> = stream.clone().into_iter().collect();
    let [TokenTree::Ident(id), TokenTree::Group(args)] = toks.as_slice() else {
        return;
    };
    if id.to_string() != "serde" {
        return;
    }
    let args: Vec<TokenTree> = args.stream().into_iter().collect();
    let mut i = 0;
    while i < args.len() {
        match &args[i] {
            TokenTree::Ident(opt) if opt.to_string() == "skip" => {
                info.skip = true;
                i += 1;
            }
            TokenTree::Ident(opt) if opt.to_string() == "default" => {
                // `default = "path"` or bare `default`.
                if i + 2 < args.len() {
                    if let (TokenTree::Punct(eq), TokenTree::Literal(lit)) =
                        (&args[i + 1], &args[i + 2])
                    {
                        if eq.as_char() == '=' {
                            let s = lit.to_string();
                            info.default_fn = Some(s.trim_matches('"').to_string());
                            i += 3;
                            continue;
                        }
                    }
                }
                info.default_fn = Some(String::from("Default::default"));
                i += 1;
            }
            _ => i += 1,
        }
    }
    // Skip past any separator commas is handled by the outer loop shape.
}

/// Splits `toks` at top-level commas, tracking `<...>` nesting so commas
/// inside generic arguments don't split fields. `->` is recognized so its
/// `>` doesn't unbalance the depth.
fn split_top_level(toks: &[TokenTree]) -> Vec<Vec<TokenTree>> {
    let mut out = Vec::new();
    let mut cur = Vec::new();
    let mut depth = 0i32;
    let mut prev_dash = false;
    for t in toks {
        if let TokenTree::Punct(p) = t {
            match p.as_char() {
                '<' => depth += 1,
                '>' if prev_dash => {} // the `>` of `->`
                '>' if depth > 0 => depth -= 1,
                ',' if depth == 0 => {
                    out.push(std::mem::take(&mut cur));
                    prev_dash = false;
                    continue;
                }
                _ => {}
            }
            prev_dash = p.as_char() == '-';
        } else {
            prev_dash = false;
        }
        cur.push(t.clone());
    }
    if !cur.is_empty() {
        out.push(cur);
    }
    out
}

/// Parses one named field chunk: `[attrs] [pub[(..)]] name : Type`.
fn parse_named_field(chunk: &[TokenTree]) -> Field {
    let mut pos = 0;
    let info = take_attrs(chunk, &mut pos);
    skip_vis(chunk, &mut pos);
    let TokenTree::Ident(name) = &chunk[pos] else {
        panic!("serde_derive shim: expected field name in {chunk:?}");
    };
    Field {
        name: name.to_string(),
        skip: info.skip,
        default_fn: info.default_fn,
    }
}

/// Parses one tuple field chunk (index assigned by caller).
fn parse_tuple_field(chunk: &[TokenTree], index: usize) -> Field {
    let mut pos = 0;
    let info = take_attrs(chunk, &mut pos);
    Field {
        name: index.to_string(),
        skip: info.skip,
        default_fn: info.default_fn,
    }
}

fn skip_vis(toks: &[TokenTree], pos: &mut usize) {
    if let Some(TokenTree::Ident(id)) = toks.get(*pos) {
        if id.to_string() == "pub" {
            *pos += 1;
            if let Some(TokenTree::Group(g)) = toks.get(*pos) {
                if g.delimiter() == Delimiter::Parenthesis {
                    *pos += 1;
                }
            }
        }
    }
}

fn parse_named_fields(stream: TokenStream) -> Vec<Field> {
    let toks: Vec<TokenTree> = stream.into_iter().collect();
    split_top_level(&toks)
        .iter()
        .filter(|c| !c.is_empty())
        .map(|c| parse_named_field(c))
        .collect()
}

fn parse_tuple_fields(stream: TokenStream) -> Vec<Field> {
    let toks: Vec<TokenTree> = stream.into_iter().collect();
    split_top_level(&toks)
        .iter()
        .filter(|c| !c.is_empty())
        .enumerate()
        .map(|(i, c)| parse_tuple_field(c, i))
        .collect()
}

fn parse_item(input: TokenStream) -> Item {
    let toks: Vec<TokenTree> = input.into_iter().collect();
    let mut pos = 0;
    // Skip outer attributes and visibility.
    loop {
        let before = pos;
        take_attrs(&toks, &mut pos);
        skip_vis(&toks, &mut pos);
        if pos == before {
            break;
        }
    }
    let TokenTree::Ident(kw) = &toks[pos] else {
        panic!("serde_derive shim: expected struct/enum keyword");
    };
    let kind = kw.to_string();
    pos += 1;
    let TokenTree::Ident(name) = &toks[pos] else {
        panic!("serde_derive shim: expected type name");
    };
    let name = name.to_string();
    pos += 1;
    if let Some(TokenTree::Punct(p)) = toks.get(pos) {
        if p.as_char() == '<' {
            panic!("serde_derive shim: generic types are not supported ({name})");
        }
    }
    match kind.as_str() {
        "struct" => {
            let shape = match toks.get(pos) {
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                    Shape::Named(parse_named_fields(g.stream()))
                }
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                    Shape::Tuple(parse_tuple_fields(g.stream()))
                }
                _ => Shape::Unit,
            };
            Item::Struct { name, shape }
        }
        "enum" => {
            let Some(TokenTree::Group(g)) = toks.get(pos) else {
                panic!("serde_derive shim: expected enum body");
            };
            let body: Vec<TokenTree> = g.stream().into_iter().collect();
            let variants = split_top_level(&body)
                .iter()
                .filter(|c| !c.is_empty())
                .map(|chunk| {
                    let mut p = 0;
                    take_attrs(chunk, &mut p);
                    let TokenTree::Ident(vname) = &chunk[p] else {
                        panic!("serde_derive shim: expected variant name");
                    };
                    let shape = match chunk.get(p + 1) {
                        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                            Shape::Named(parse_named_fields(g.stream()))
                        }
                        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                            Shape::Tuple(parse_tuple_fields(g.stream()))
                        }
                        Some(other) => panic!(
                            "serde_derive shim: unsupported variant syntax after {vname}: {other}"
                        ),
                        None => Shape::Unit,
                    };
                    Variant {
                        name: vname.to_string(),
                        shape,
                    }
                })
                .collect();
            Item::Enum { name, variants }
        }
        other => panic!("serde_derive shim: cannot derive on `{other}` items"),
    }
}

// ---------------------------------------------------------------------------
// Codegen
// ---------------------------------------------------------------------------

fn gen_serialize(item: &Item) -> String {
    match item {
        Item::Struct { name, shape } => {
            let body = match shape {
                Shape::Unit => "::serde::Value::Null".to_string(),
                Shape::Tuple(fields) => ser_tuple_body(fields, |f| format!("&self.{}", f.name)),
                Shape::Named(fields) => ser_named_body(fields, |f| format!("&self.{}", f.name)),
            };
            let emit_body = match shape {
                Shape::Unit => "__out.null();".to_string(),
                Shape::Tuple(fields) => {
                    emit_tuple_body(fields, |f| format!("&self.{}", f.name))
                }
                Shape::Named(fields) => {
                    emit_named_body(fields, |f| format!("&self.{}", f.name))
                }
            };
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                     fn to_value(&self) -> ::serde::Value {{ {body} }}\n\
                     fn emit(&self, __out: &mut dyn ::serde::Emit) {{ {emit_body} }}\n\
                 }}"
            )
        }
        Item::Enum { name, variants } => {
            let mut arms = String::new();
            let mut emit_arms = String::new();
            for v in variants {
                let vn = &v.name;
                match &v.shape {
                    Shape::Unit => {
                        arms.push_str(&format!(
                            "{name}::{vn} => ::serde::Value::Str(\"{vn}\".to_string()),\n"
                        ));
                        emit_arms.push_str(&format!(
                            "{name}::{vn} => {{ __out.str(\"{vn}\"); }}\n"
                        ));
                    }
                    Shape::Tuple(fields) => {
                        let binders: Vec<String> =
                            (0..fields.len()).map(|i| format!("__f{i}")).collect();
                        let payload = if fields.len() == 1 {
                            "::serde::Serialize::to_value(__f0)".to_string()
                        } else {
                            let items: Vec<String> = binders
                                .iter()
                                .map(|b| format!("::serde::Serialize::to_value({b})"))
                                .collect();
                            format!("::serde::Value::Array(vec![{}])", items.join(", "))
                        };
                        arms.push_str(&format!(
                            "{name}::{vn}({}) => ::serde::Value::Object(vec![(\"{vn}\".to_string(), {payload})]),\n",
                            binders.join(", ")
                        ));
                        let emit_payload = if fields.len() == 1 {
                            "::serde::Serialize::emit(__f0, __out);".to_string()
                        } else {
                            let calls: Vec<String> = binders
                                .iter()
                                .map(|b| format!("::serde::Serialize::emit({b}, __out);"))
                                .collect();
                            format!("__out.seq({}); {}", binders.len(), calls.join(" "))
                        };
                        emit_arms.push_str(&format!(
                            "{name}::{vn}({}) => {{ __out.map(1); __out.key(\"{vn}\"); {emit_payload} }}\n",
                            binders.join(", ")
                        ));
                    }
                    Shape::Named(fields) => {
                        let binders: Vec<String> =
                            fields.iter().map(|f| f.name.clone()).collect();
                        let live: Vec<&Field> = fields.iter().filter(|f| !f.skip).collect();
                        let items: Vec<String> = live
                            .iter()
                            .map(|f| {
                                format!(
                                    "(\"{0}\".to_string(), ::serde::Serialize::to_value({0}))",
                                    f.name
                                )
                            })
                            .collect();
                        arms.push_str(&format!(
                            "{name}::{vn} {{ {} }} => ::serde::Value::Object(vec![(\"{vn}\".to_string(), ::serde::Value::Object(vec![{}]))]),\n",
                            binders.join(", "),
                            items.join(", ")
                        ));
                        let calls: Vec<String> = live
                            .iter()
                            .map(|f| {
                                format!(
                                    "__out.key(\"{0}\"); ::serde::Serialize::emit({0}, __out);",
                                    f.name
                                )
                            })
                            .collect();
                        emit_arms.push_str(&format!(
                            "{name}::{vn} {{ {} }} => {{ __out.map(1); __out.key(\"{vn}\"); __out.map({}); {} }}\n",
                            binders.join(", "),
                            live.len(),
                            calls.join(" ")
                        ));
                    }
                }
            }
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                     fn to_value(&self) -> ::serde::Value {{ match self {{ {arms} }} }}\n\
                     fn emit(&self, __out: &mut dyn ::serde::Emit) {{ match self {{ {emit_arms} }} }}\n\
                 }}"
            )
        }
    }
}

fn ser_named_body(fields: &[Field], access: impl Fn(&Field) -> String) -> String {
    let items: Vec<String> = fields
        .iter()
        .filter(|f| !f.skip)
        .map(|f| {
            format!(
                "(\"{}\".to_string(), ::serde::Serialize::to_value({}))",
                f.name,
                access(f)
            )
        })
        .collect();
    format!("::serde::Value::Object(vec![{}])", items.join(", "))
}

fn ser_tuple_body(fields: &[Field], access: impl Fn(&Field) -> String) -> String {
    let live: Vec<&Field> = fields.iter().filter(|f| !f.skip).collect();
    if live.len() == 1 {
        // Newtype: serialize transparently as the inner value.
        format!("::serde::Serialize::to_value({})", access(live[0]))
    } else {
        let items: Vec<String> = live
            .iter()
            .map(|f| format!("::serde::Serialize::to_value({})", access(f)))
            .collect();
        format!("::serde::Value::Array(vec![{}])", items.join(", "))
    }
}

/// `emit` body for a named-field struct: shape-identical to
/// [`ser_named_body`]'s tree (`map` of the non-skipped fields in order).
fn emit_named_body(fields: &[Field], access: impl Fn(&Field) -> String) -> String {
    let live: Vec<&Field> = fields.iter().filter(|f| !f.skip).collect();
    let calls: Vec<String> = live
        .iter()
        .map(|f| {
            format!(
                "__out.key(\"{}\"); ::serde::Serialize::emit({}, __out);",
                f.name,
                access(f)
            )
        })
        .collect();
    format!("__out.map({}); {}", live.len(), calls.join(" "))
}

/// `emit` body for a tuple struct: newtype transparent, otherwise a seq —
/// mirroring [`ser_tuple_body`].
fn emit_tuple_body(fields: &[Field], access: impl Fn(&Field) -> String) -> String {
    let live: Vec<&Field> = fields.iter().filter(|f| !f.skip).collect();
    if live.len() == 1 {
        format!("::serde::Serialize::emit({}, __out);", access(live[0]))
    } else {
        let calls: Vec<String> = live
            .iter()
            .map(|f| format!("::serde::Serialize::emit({}, __out);", access(f)))
            .collect();
        format!("__out.seq({}); {}", live.len(), calls.join(" "))
    }
}

/// Expression reconstructing one named field from object `__obj` (a
/// `&::serde::Value` known to be the enclosing object).
fn de_named_field(f: &Field, ty_name: &str) -> String {
    if f.skip {
        return format!("{}: ::core::default::Default::default()", f.name);
    }
    let missing = match &f.default_fn {
        Some(path) => format!("{path}()"),
        None => format!(
            "return ::core::result::Result::Err(::serde::Error::msg(\"missing field `{}` in {}\"))",
            f.name, ty_name
        ),
    };
    format!(
        "{0}: match __v.get_field(\"{0}\") {{\n\
             ::core::option::Option::Some(__x) => ::serde::Deserialize::from_value(__x)?,\n\
             ::core::option::Option::None => {missing},\n\
         }}",
        f.name
    )
}

fn gen_deserialize(item: &Item) -> String {
    match item {
        Item::Struct { name, shape } => {
            let body = match shape {
                Shape::Unit => format!("::core::result::Result::Ok({name})"),
                Shape::Tuple(fields) => {
                    let live: Vec<&Field> = fields.iter().filter(|f| !f.skip).collect();
                    if fields.iter().any(|f| f.skip) {
                        panic!("serde_derive shim: #[serde(skip)] unsupported on tuple fields");
                    }
                    if live.len() == 1 {
                        format!("::core::result::Result::Ok({name}(::serde::Deserialize::from_value(__v)?))")
                    } else {
                        let items: Vec<String> = (0..live.len())
                            .map(|i| format!("::serde::Deserialize::from_value(&__a[{i}])?"))
                            .collect();
                        format!(
                            "let __a = __v.as_array().ok_or_else(|| ::serde::Error::msg(\"expected array for {name}\"))?;\n\
                             if __a.len() != {n} {{ return ::core::result::Result::Err(::serde::Error::msg(\"wrong arity for {name}\")); }}\n\
                             ::core::result::Result::Ok({name}({items}))",
                            n = live.len(),
                            items = items.join(", ")
                        )
                    }
                }
                Shape::Named(fields) => {
                    let items: Vec<String> =
                        fields.iter().map(|f| de_named_field(f, name)).collect();
                    format!(
                        "if __v.as_object().is_none() {{ return ::core::result::Result::Err(::serde::Error::msg(\"expected object for {name}\")); }}\n\
                         ::core::result::Result::Ok({name} {{ {} }})",
                        items.join(",\n")
                    )
                }
            };
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                     fn from_value(__v: &::serde::Value) -> ::core::result::Result<Self, ::serde::Error> {{ {body} }}\n\
                 }}"
            )
        }
        Item::Enum { name, variants } => {
            let mut unit_arms = String::new();
            let mut data_arms = String::new();
            for v in variants {
                let vn = &v.name;
                match &v.shape {
                    Shape::Unit => {
                        unit_arms.push_str(&format!(
                            "\"{vn}\" => ::core::result::Result::Ok({name}::{vn}),\n"
                        ));
                    }
                    Shape::Tuple(fields) => {
                        let body = if fields.len() == 1 {
                            format!("::core::result::Result::Ok({name}::{vn}(::serde::Deserialize::from_value(__payload)?))")
                        } else {
                            let items: Vec<String> = (0..fields.len())
                                .map(|i| format!("::serde::Deserialize::from_value(&__a[{i}])?"))
                                .collect();
                            format!(
                                "let __a = __payload.as_array().ok_or_else(|| ::serde::Error::msg(\"expected array payload for {name}::{vn}\"))?;\n\
                                 if __a.len() != {n} {{ return ::core::result::Result::Err(::serde::Error::msg(\"wrong arity for {name}::{vn}\")); }}\n\
                                 ::core::result::Result::Ok({name}::{vn}({items}))",
                                n = fields.len(),
                                items = items.join(", ")
                            )
                        };
                        data_arms.push_str(&format!("\"{vn}\" => {{ let __v = __payload; {body} }}\n"));
                    }
                    Shape::Named(fields) => {
                        let items: Vec<String> =
                            fields.iter().map(|f| de_named_field(f, name)).collect();
                        data_arms.push_str(&format!(
                            "\"{vn}\" => {{ let __v = __payload;\n\
                               if __v.as_object().is_none() {{ return ::core::result::Result::Err(::serde::Error::msg(\"expected object payload for {name}::{vn}\")); }}\n\
                               ::core::result::Result::Ok({name}::{vn} {{ {} }}) }}\n",
                            items.join(",\n")
                        ));
                    }
                }
            }
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                     fn from_value(__v: &::serde::Value) -> ::core::result::Result<Self, ::serde::Error> {{\n\
                         match __v {{\n\
                             ::serde::Value::Str(__s) => match __s.as_str() {{\n\
                                 {unit_arms}\n\
                                 __other => ::core::result::Result::Err(::serde::Error::msg(format!(\"unknown variant `{{__other}}` of {name}\"))),\n\
                             }},\n\
                             ::serde::Value::Object(__pairs) if __pairs.len() == 1 => {{\n\
                                 let (__tag, __payload) = (&__pairs[0].0, &__pairs[0].1);\n\
                                 match __tag.as_str() {{\n\
                                     {data_arms}\n\
                                     __other => ::core::result::Result::Err(::serde::Error::msg(format!(\"unknown variant `{{__other}}` of {name}\"))),\n\
                                 }}\n\
                             }}\n\
                             __other => ::core::result::Result::Err(::serde::Error::msg(format!(\"expected enum {name}, found {{__other:?}}\"))),\n\
                         }}\n\
                     }}\n\
                 }}"
            )
        }
    }
}
