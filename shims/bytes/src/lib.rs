//! Offline stand-in for the `bytes` crate: cheaply-cloneable immutable byte
//! buffers with big-endian cursor reads, plus a growable writer. Only the API
//! surface the workspace uses is provided.

use std::sync::Arc;

/// Immutable shared byte buffer with a read cursor.
#[derive(Debug, Clone)]
pub struct Bytes {
    data: Arc<[u8]>,
    start: usize,
    end: usize,
}

impl Bytes {
    /// Length of the remaining view.
    pub fn len(&self) -> usize {
        self.end - self.start
    }

    /// Whether the view is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// A sub-view of the current view (indices relative to it).
    pub fn slice(&self, range: std::ops::Range<usize>) -> Bytes {
        assert!(range.start <= range.end && range.end <= self.len());
        Bytes {
            data: self.data.clone(),
            start: self.start + range.start,
            end: self.start + range.end,
        }
    }

    fn take(&mut self, n: usize) -> &[u8] {
        let s = self.start;
        self.start += n;
        &self.data[s..s + n]
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        &self.data[self.start..self.end]
    }
}

impl std::ops::Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        self.as_ref()
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        let len = v.len();
        Bytes {
            data: v.into(),
            start: 0,
            end: len,
        }
    }
}

impl From<&[u8]> for Bytes {
    fn from(v: &[u8]) -> Self {
        v.to_vec().into()
    }
}

/// Cursor-style reads (big-endian, matching the real crate's `get_*`).
pub trait Buf {
    /// Bytes left to read.
    fn remaining(&self) -> usize;
    /// Reads a big-endian `u32`, advancing the cursor.
    fn get_u32(&mut self) -> u32;
    /// Reads a big-endian `u64`, advancing the cursor.
    fn get_u64(&mut self) -> u64;
    /// Reads one byte, advancing the cursor.
    fn get_u8(&mut self) -> u8;
}

impl Buf for Bytes {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn get_u32(&mut self) -> u32 {
        u32::from_be_bytes(self.take(4).try_into().unwrap())
    }

    fn get_u64(&mut self) -> u64 {
        u64::from_be_bytes(self.take(8).try_into().unwrap())
    }

    fn get_u8(&mut self) -> u8 {
        self.take(1)[0]
    }
}

/// Growable byte buffer with big-endian writes.
#[derive(Debug, Clone, Default)]
pub struct BytesMut {
    data: Vec<u8>,
}

impl BytesMut {
    /// Creates an empty buffer with reserved capacity.
    pub fn with_capacity(cap: usize) -> Self {
        BytesMut {
            data: Vec::with_capacity(cap),
        }
    }

    /// Creates an empty buffer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Current length.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Freezes into an immutable [`Bytes`].
    pub fn freeze(self) -> Bytes {
        self.data.into()
    }
}

/// Append-style writes (big-endian, matching the real crate's `put_*`).
pub trait BufMut {
    /// Appends a big-endian `u32`.
    fn put_u32(&mut self, v: u32);
    /// Appends a big-endian `u64`.
    fn put_u64(&mut self, v: u64);
    /// Appends one byte.
    fn put_u8(&mut self, v: u8);
    /// Appends a byte slice.
    fn put_slice(&mut self, v: &[u8]);
}

impl BufMut for BytesMut {
    fn put_u32(&mut self, v: u32) {
        self.data.extend_from_slice(&v.to_be_bytes());
    }

    fn put_u64(&mut self, v: u64) {
        self.data.extend_from_slice(&v.to_be_bytes());
    }

    fn put_u8(&mut self, v: u8) {
        self.data.push(v);
    }

    fn put_slice(&mut self, v: &[u8]) {
        self.data.extend_from_slice(v);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn write_read_roundtrip() {
        let mut b = BytesMut::with_capacity(16);
        b.put_u32(0xDEADBEEF);
        b.put_u64(1 << 40);
        b.put_u8(7);
        let mut r = b.freeze();
        assert_eq!(r.remaining(), 13);
        assert_eq!(r.get_u32(), 0xDEADBEEF);
        assert_eq!(r.get_u64(), 1 << 40);
        assert_eq!(r.get_u8(), 7);
        assert_eq!(r.remaining(), 0);
    }

    #[test]
    fn slicing_is_relative() {
        let b: Bytes = vec![0, 1, 2, 3, 4].into();
        let s = b.slice(1..4);
        assert_eq!(s.as_ref(), &[1, 2, 3]);
        let s2 = s.slice(0..2);
        assert_eq!(s2.as_ref(), &[1, 2]);
    }
}
