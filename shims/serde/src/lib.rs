//! Offline stand-in for the `serde` crate.
//!
//! The build environment for this workspace has no access to crates.io, so
//! this shim provides the subset of serde the workspace actually uses: the
//! `Serialize`/`Deserialize` derive macros plus impls for the std types that
//! appear in serialized structs. Instead of serde's visitor-based data model,
//! everything funnels through a concrete JSON-like [`Value`] tree; the
//! companion `serde_json` shim renders and parses that tree.
//!
//! Wire-format notes (self-consistent, not byte-compatible with real serde):
//! maps serialize as arrays of `[key, value]` pairs so non-string keys (e.g.
//! newtype ids used as `BTreeMap` keys) round-trip without a string codec.

pub use serde_derive::{Deserialize, Serialize};

use std::collections::{BTreeMap, BTreeSet, HashMap, HashSet};
use std::fmt;
use std::hash::Hash;

/// A JSON-like value tree: the single data model of the shim.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// JSON boolean.
    Bool(bool),
    /// Unsigned integer (preferred for non-negative numbers).
    U64(u64),
    /// Signed integer (used for negatives).
    I64(i64),
    /// Floating point number.
    F64(f64),
    /// String.
    Str(String),
    /// Array.
    Array(Vec<Value>),
    /// Object as ordered key/value pairs (insertion order preserved).
    Object(Vec<(String, Value)>),
}

impl Value {
    /// Borrows the object pairs, if this is an object.
    pub fn as_object(&self) -> Option<&Vec<(String, Value)>> {
        match self {
            Value::Object(o) => Some(o),
            _ => None,
        }
    }

    /// Borrows the array elements, if this is an array.
    pub fn as_array(&self) -> Option<&Vec<Value>> {
        match self {
            Value::Array(a) => Some(a),
            _ => None,
        }
    }

    /// Looks up a field of an object by name.
    pub fn get_field(&self, name: &str) -> Option<&Value> {
        self.as_object()
            .and_then(|o| o.iter().find(|(k, _)| k == name).map(|(_, v)| v))
    }
}

/// Serialization/deserialization error.
#[derive(Debug, Clone)]
pub struct Error {
    msg: String,
}

impl Error {
    /// Creates an error with the given message.
    pub fn msg(m: impl Into<String>) -> Self {
        Error { msg: m.into() }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.msg)
    }
}

impl std::error::Error for Error {}

/// Streaming serialization sink: one call per data-model node.
///
/// [`Serialize::emit`] walks a value and fires these events in depth-first
/// order, letting binary codecs encode *without* materializing a [`Value`]
/// tree — the tree costs one allocation per string key and per container,
/// which is exactly what a hot encode path cannot afford. The event stream
/// mirrors the tree shape one-to-one: whatever `emit` produces, decoding it
/// back into a `Value` must equal `to_value()`'s output (the derive macro
/// and the impls below maintain this invariant; codecs and their tests rely
/// on it).
pub trait Emit {
    /// A `Value::Null`.
    fn null(&mut self);
    /// A `Value::Bool`.
    fn bool(&mut self, b: bool);
    /// A `Value::U64`.
    fn u64(&mut self, x: u64);
    /// A `Value::I64` (negative numbers only, mirroring `to_value`).
    fn i64(&mut self, x: i64);
    /// A `Value::F64`.
    fn f64(&mut self, x: f64);
    /// A `Value::Str`.
    fn str(&mut self, s: &str);
    /// Opens a `Value::Array` of exactly `len` elements, whose events
    /// follow immediately.
    fn seq(&mut self, len: usize);
    /// Opens a `Value::Object` of exactly `len` pairs; each pair is one
    /// [`Emit::key`] call followed by the value's events.
    fn map(&mut self, len: usize);
    /// An object key (only ever between `map` and its values).
    fn key(&mut self, key: &str);
}

/// Streams a [`Value`] tree into an [`Emit`] sink — the bridge that lets
/// hand-written `Serialize` impls (which only provide `to_value`) work with
/// streaming codecs via the default [`Serialize::emit`].
pub fn emit_value(v: &Value, out: &mut dyn Emit) {
    match v {
        Value::Null => out.null(),
        Value::Bool(b) => out.bool(*b),
        Value::U64(x) => out.u64(*x),
        Value::I64(x) => out.i64(*x),
        Value::F64(x) => out.f64(*x),
        Value::Str(s) => out.str(s),
        Value::Array(items) => {
            out.seq(items.len());
            for item in items {
                emit_value(item, out);
            }
        }
        Value::Object(pairs) => {
            out.map(pairs.len());
            for (k, item) in pairs {
                out.key(k);
                emit_value(item, out);
            }
        }
    }
}

/// Serializes `self` into a [`Value`] tree.
pub trait Serialize {
    /// Converts to the shim's data model.
    fn to_value(&self) -> Value;

    /// Streams `self` into `out` without building a tree. The default
    /// routes through [`Serialize::to_value`]; the derive macro and the
    /// std impls below override it with direct walks. The event stream is
    /// always shape-identical to the `to_value()` tree.
    fn emit(&self, out: &mut dyn Emit) {
        emit_value(&self.to_value(), out)
    }
}

/// Reconstructs `Self` from a [`Value`] tree.
pub trait Deserialize: Sized {
    /// Converts from the shim's data model.
    fn from_value(v: &Value) -> Result<Self, Error>;
}

/// Owned-deserialization alias kept for API compatibility.
pub trait DeserializeOwned: Deserialize {}
impl<T: Deserialize> DeserializeOwned for T {}

macro_rules! impl_uint {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::U64(*self as u64)
            }
            fn emit(&self, out: &mut dyn Emit) {
                out.u64(*self as u64)
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                match v {
                    Value::U64(x) => <$t>::try_from(*x)
                        .map_err(|_| Error::msg(format!("{x} out of range for {}", stringify!($t)))),
                    Value::I64(x) => <$t>::try_from(*x)
                        .map_err(|_| Error::msg(format!("{x} out of range for {}", stringify!($t)))),
                    Value::F64(x) if x.fract() == 0.0 && *x >= 0.0 => Ok(*x as $t),
                    other => Err(Error::msg(format!(
                        "expected {}, found {other:?}",
                        stringify!($t)
                    ))),
                }
            }
        }
    )*};
}

impl_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                let x = *self as i64;
                if x >= 0 {
                    Value::U64(x as u64)
                } else {
                    Value::I64(x)
                }
            }
            fn emit(&self, out: &mut dyn Emit) {
                let x = *self as i64;
                if x >= 0 {
                    out.u64(x as u64)
                } else {
                    out.i64(x)
                }
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                match v {
                    Value::U64(x) => <$t>::try_from(*x)
                        .map_err(|_| Error::msg(format!("{x} out of range for {}", stringify!($t)))),
                    Value::I64(x) => <$t>::try_from(*x)
                        .map_err(|_| Error::msg(format!("{x} out of range for {}", stringify!($t)))),
                    other => Err(Error::msg(format!(
                        "expected {}, found {other:?}",
                        stringify!($t)
                    ))),
                }
            }
        }
    )*};
}

impl_int!(i8, i16, i32, i64, isize);

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::F64(*self)
    }
    fn emit(&self, out: &mut dyn Emit) {
        out.f64(*self)
    }
}

impl Deserialize for f64 {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::F64(x) => Ok(*x),
            Value::U64(x) => Ok(*x as f64),
            Value::I64(x) => Ok(*x as f64),
            other => Err(Error::msg(format!("expected f64, found {other:?}"))),
        }
    }
}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::F64(*self as f64)
    }
    fn emit(&self, out: &mut dyn Emit) {
        out.f64(*self as f64)
    }
}

impl Deserialize for f32 {
    fn from_value(v: &Value) -> Result<Self, Error> {
        f64::from_value(v).map(|x| x as f32)
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
    fn emit(&self, out: &mut dyn Emit) {
        out.bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Bool(b) => Ok(*b),
            other => Err(Error::msg(format!("expected bool, found {other:?}"))),
        }
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
    fn emit(&self, out: &mut dyn Emit) {
        out.str(self)
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Str(s) => Ok(s.clone()),
            other => Err(Error::msg(format!("expected string, found {other:?}"))),
        }
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
    fn emit(&self, out: &mut dyn Emit) {
        out.str(self)
    }
}

impl Serialize for char {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
    fn emit(&self, out: &mut dyn Emit) {
        let mut buf = [0u8; 4];
        out.str(self.encode_utf8(&mut buf))
    }
}

impl Deserialize for char {
    fn from_value(v: &Value) -> Result<Self, Error> {
        let s = String::from_value(v)?;
        let mut it = s.chars();
        match (it.next(), it.next()) {
            (Some(c), None) => Ok(c),
            _ => Err(Error::msg("expected single-char string")),
        }
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            None => Value::Null,
            Some(x) => x.to_value(),
        }
    }
    fn emit(&self, out: &mut dyn Emit) {
        match self {
            None => out.null(),
            Some(x) => x.emit(out),
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
    fn emit(&self, out: &mut dyn Emit) {
        out.seq(self.len());
        for x in self {
            x.emit(out);
        }
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_array()
            .ok_or_else(|| Error::msg(format!("expected array, found {v:?}")))?
            .iter()
            .map(T::from_value)
            .collect()
    }
}

impl<T: Serialize> Serialize for std::collections::VecDeque<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
    fn emit(&self, out: &mut dyn Emit) {
        out.seq(self.len());
        for x in self {
            x.emit(out);
        }
    }
}

impl<T: Deserialize> Deserialize for std::collections::VecDeque<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_array()
            .ok_or_else(|| Error::msg(format!("expected array, found {v:?}")))?
            .iter()
            .map(T::from_value)
            .collect()
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
    fn emit(&self, out: &mut dyn Emit) {
        out.seq(self.len());
        for x in self {
            x.emit(out);
        }
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
    fn emit(&self, out: &mut dyn Emit) {
        out.seq(N);
        for x in self {
            x.emit(out);
        }
    }
}

impl<T: Serialize> Serialize for Box<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
    fn emit(&self, out: &mut dyn Emit) {
        (**self).emit(out)
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        T::from_value(v).map(Box::new)
    }
}

macro_rules! impl_tuple {
    ($(($($t:ident . $i:tt),+))*) => {$(
        impl<$($t: Serialize),+> Serialize for ($($t,)+) {
            fn to_value(&self) -> Value {
                Value::Array(vec![$(self.$i.to_value()),+])
            }
            fn emit(&self, out: &mut dyn Emit) {
                out.seq([$($i),+].len());
                $(self.$i.emit(out);)+
            }
        }
        impl<$($t: Deserialize),+> Deserialize for ($($t,)+) {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let a = v.as_array().ok_or_else(|| Error::msg("expected tuple array"))?;
                let expect = [$($i),+].len();
                if a.len() != expect {
                    return Err(Error::msg(format!("expected {expect}-tuple, found {} items", a.len())));
                }
                Ok(($($t::from_value(&a[$i])?,)+))
            }
        }
    )*};
}

impl_tuple! {
    (A.0)
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
}

/// Maps serialize as arrays of `[key, value]` pairs (see module docs).
impl<K: Serialize, V: Serialize> Serialize for BTreeMap<K, V> {
    fn to_value(&self) -> Value {
        Value::Array(
            self.iter()
                .map(|(k, v)| Value::Array(vec![k.to_value(), v.to_value()]))
                .collect(),
        )
    }
    fn emit(&self, out: &mut dyn Emit) {
        out.seq(self.len());
        for (k, v) in self {
            out.seq(2);
            k.emit(out);
            v.emit(out);
        }
    }
}

impl<K: Deserialize + Ord, V: Deserialize> Deserialize for BTreeMap<K, V> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        let a = v
            .as_array()
            .ok_or_else(|| Error::msg("expected map as pair array"))?;
        let mut out = BTreeMap::new();
        for pair in a {
            let p = pair
                .as_array()
                .filter(|p| p.len() == 2)
                .ok_or_else(|| Error::msg("expected [key, value] pair"))?;
            out.insert(K::from_value(&p[0])?, V::from_value(&p[1])?);
        }
        Ok(out)
    }
}

impl<K: Serialize, V: Serialize> Serialize for HashMap<K, V> {
    fn to_value(&self) -> Value {
        Value::Array(
            self.iter()
                .map(|(k, v)| Value::Array(vec![k.to_value(), v.to_value()]))
                .collect(),
        )
    }
    fn emit(&self, out: &mut dyn Emit) {
        out.seq(self.len());
        for (k, v) in self {
            out.seq(2);
            k.emit(out);
            v.emit(out);
        }
    }
}

impl<K: Deserialize + Eq + Hash, V: Deserialize> Deserialize for HashMap<K, V> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        let a = v
            .as_array()
            .ok_or_else(|| Error::msg("expected map as pair array"))?;
        let mut out = HashMap::new();
        for pair in a {
            let p = pair
                .as_array()
                .filter(|p| p.len() == 2)
                .ok_or_else(|| Error::msg("expected [key, value] pair"))?;
            out.insert(K::from_value(&p[0])?, V::from_value(&p[1])?);
        }
        Ok(out)
    }
}

impl<T: Serialize> Serialize for BTreeSet<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
    fn emit(&self, out: &mut dyn Emit) {
        out.seq(self.len());
        for x in self {
            x.emit(out);
        }
    }
}

impl<T: Deserialize + Ord> Deserialize for BTreeSet<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_array()
            .ok_or_else(|| Error::msg("expected set array"))?
            .iter()
            .map(T::from_value)
            .collect()
    }
}

impl<T: Serialize> Serialize for HashSet<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
    fn emit(&self, out: &mut dyn Emit) {
        out.seq(self.len());
        for x in self {
            x.emit(out);
        }
    }
}

impl<T: Deserialize + Eq + Hash> Deserialize for HashSet<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_array()
            .ok_or_else(|| Error::msg("expected set array"))?
            .iter()
            .map(T::from_value)
            .collect()
    }
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
    fn emit(&self, out: &mut dyn Emit) {
        emit_value(self, out)
    }
}

impl Deserialize for Value {
    fn from_value(v: &Value) -> Result<Self, Error> {
        Ok(v.clone())
    }
}
