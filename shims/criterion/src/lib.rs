//! Offline stand-in for `criterion`.
//!
//! Provides the API surface the bench crate uses — `Criterion`,
//! `benchmark_group`, `bench_function` / `bench_with_input`, `BenchmarkId`,
//! `Throughput`, `black_box`, and the `criterion_group!`/`criterion_main!`
//! macros — backed by a simple wall-clock loop that prints mean ns/iter
//! (plus derived throughput) to stdout. No statistics, plots, or baselines.

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Top-level harness handle.
#[derive(Debug, Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _criterion: self,
            name: name.into(),
            throughput: None,
            sample_size: 20,
        }
    }
}

/// Identifier `function_name/parameter` for a parameterized benchmark.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// Builds `name/parameter`.
    pub fn new(name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            id: format!("{}/{}", name.into(), parameter),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { id: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId { id: s }
    }
}

/// Units processed per iteration, for derived rates.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements per iteration.
    Elements(u64),
    /// Bytes per iteration.
    Bytes(u64),
}

/// A group of benchmarks sharing a name prefix and throughput setting.
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Sets the per-iteration throughput used for derived rates.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Sets the number of timed samples (shim: scales the measuring budget).
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Runs a benchmark with no external input.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher::new(self.sample_size);
        f(&mut b);
        self.report(&id.into(), &b);
        self
    }

    /// Runs a benchmark parameterized by `input`.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let mut b = Bencher::new(self.sample_size);
        f(&mut b, input);
        self.report(&id.into(), &b);
        self
    }

    /// Finishes the group (upstream writes reports here; the shim prints
    /// per-benchmark lines eagerly, so this is a no-op).
    pub fn finish(self) {}

    fn report(&self, id: &BenchmarkId, b: &Bencher) {
        let Some(mean_ns) = b.mean_ns() else {
            println!("{}/{}: no measurement (iter never called)", self.name, id.id);
            return;
        };
        let rate = match self.throughput {
            Some(Throughput::Elements(n)) if mean_ns > 0.0 => {
                format!("  {:.0} elem/s", n as f64 * 1e9 / mean_ns)
            }
            Some(Throughput::Bytes(n)) if mean_ns > 0.0 => {
                format!("  {:.0} B/s", n as f64 * 1e9 / mean_ns)
            }
            _ => String::new(),
        };
        println!(
            "{}/{}: {:.1} ns/iter ({} iters){}",
            self.name, id.id, mean_ns, b.iters, rate
        );
    }
}

/// Timing loop handle passed to benchmark closures.
pub struct Bencher {
    sample_size: usize,
    total: Duration,
    iters: u64,
}

impl Bencher {
    fn new(sample_size: usize) -> Self {
        Bencher {
            sample_size,
            total: Duration::ZERO,
            iters: 0,
        }
    }

    /// Times repeated calls of `f` and records the mean.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // Warm up and estimate a single-iteration cost.
        let warmup = Instant::now();
        black_box(f());
        let once = warmup.elapsed().max(Duration::from_nanos(1));

        // Budget ~5ms per sample_size unit, capped; enough for a smoke
        // signal without making `cargo bench` crawl under the shim.
        let budget = Duration::from_millis((5 * self.sample_size as u64).min(500));
        let iters = (budget.as_nanos() / once.as_nanos()).clamp(1, 100_000) as u64;

        let start = Instant::now();
        for _ in 0..iters {
            black_box(f());
        }
        self.total = start.elapsed();
        self.iters = iters;
    }

    fn mean_ns(&self) -> Option<f64> {
        if self.iters == 0 {
            return None;
        }
        Some(self.total.as_nanos() as f64 / self.iters as f64)
    }
}

/// Collects benchmark functions into a single runner function.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Generates `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_runs_and_reports() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("smoke");
        group.throughput(Throughput::Elements(10));
        group.sample_size(1);
        let input = vec![1u64, 2, 3];
        group.bench_with_input(BenchmarkId::new("sum", 3), &input, |b, v| {
            b.iter(|| v.iter().sum::<u64>())
        });
        group.bench_function("noop", |b| b.iter(|| black_box(1 + 1)));
        group.finish();
    }
}
