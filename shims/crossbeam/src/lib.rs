//! Offline stand-in for the `crossbeam` facade crate.
//!
//! Provides the subset used by `rrs-analysis`: [`scope`] (scoped threads over
//! `std::thread::scope`), [`deque`] (an injector/worker/stealer work-stealing
//! deque; lock-based but API-compatible), and [`channel`] (MPMC-ish channels
//! over `std::sync::mpsc`).
//!
//! Semantic difference from upstream: a panic in a scoped thread propagates
//! out of [`scope`] directly instead of surfacing as an `Err`, so the
//! idiomatic `crossbeam::scope(..).expect(..)` still aborts loudly.

use std::thread;

/// Scoped-thread handle wrapper passed to spawn closures.
pub struct Scope<'scope, 'env: 'scope> {
    inner: &'scope thread::Scope<'scope, 'env>,
}

impl<'scope, 'env> Scope<'scope, 'env> {
    /// Spawns a thread bound to the scope. The closure receives the scope so
    /// it can spawn further threads, mirroring crossbeam's signature.
    pub fn spawn<F, T>(&self, f: F) -> thread::ScopedJoinHandle<'scope, T>
    where
        F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
        T: Send + 'scope,
    {
        let inner = self.inner;
        inner.spawn(move || {
            let scope = Scope { inner };
            f(&scope)
        })
    }
}

/// Creates a scope in which threads may borrow non-`'static` data.
pub fn scope<'env, F, R>(f: F) -> thread::Result<R>
where
    F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
{
    Ok(thread::scope(|s| {
        let wrapper = Scope { inner: s };
        f(&wrapper)
    }))
}

/// Work-stealing deques (injector + per-worker queues).
pub mod deque {
    use std::collections::VecDeque;
    use std::sync::{Arc, Mutex};

    /// Outcome of a steal attempt.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum Steal<T> {
        /// Queue was empty.
        Empty,
        /// One task was stolen.
        Success(T),
        /// Transient contention; retry.
        Retry,
    }

    impl<T> Steal<T> {
        /// Converts to `Option`, mapping both `Empty` and `Retry` to `None`.
        pub fn success(self) -> Option<T> {
            match self {
                Steal::Success(t) => Some(t),
                _ => None,
            }
        }

        /// Whether this is `Empty`.
        pub fn is_empty(&self) -> bool {
            matches!(self, Steal::Empty)
        }
    }

    /// Global FIFO injector queue.
    #[derive(Debug, Default)]
    pub struct Injector<T> {
        q: Mutex<VecDeque<T>>,
    }

    impl<T> Injector<T> {
        /// Creates an empty injector.
        pub fn new() -> Self {
            Injector {
                q: Mutex::new(VecDeque::new()),
            }
        }

        /// Pushes a task onto the global queue.
        pub fn push(&self, task: T) {
            self.q.lock().expect("injector poisoned").push_back(task);
        }

        /// Steals one task.
        pub fn steal(&self) -> Steal<T> {
            match self.q.lock().expect("injector poisoned").pop_front() {
                Some(t) => Steal::Success(t),
                None => Steal::Empty,
            }
        }

        /// Steals a batch into `worker`'s local queue and pops one task.
        pub fn steal_batch_and_pop(&self, worker: &Worker<T>) -> Steal<T> {
            let mut q = self.q.lock().expect("injector poisoned");
            let n = q.len();
            if n == 0 {
                return Steal::Empty;
            }
            // Take roughly half, capped like crossbeam's batch limit.
            let take = ((n + 1) / 2).min(32);
            let mut local = worker.q.lock().expect("worker poisoned");
            for _ in 0..take {
                if let Some(t) = q.pop_front() {
                    local.push_back(t);
                }
            }
            match local.pop_front() {
                Some(t) => Steal::Success(t),
                None => Steal::Empty,
            }
        }

        /// Whether the queue is currently empty.
        pub fn is_empty(&self) -> bool {
            self.q.lock().expect("injector poisoned").is_empty()
        }

        /// Number of queued tasks.
        pub fn len(&self) -> usize {
            self.q.lock().expect("injector poisoned").len()
        }
    }

    /// A worker's local queue.
    #[derive(Debug)]
    pub struct Worker<T> {
        q: Arc<Mutex<VecDeque<T>>>,
    }

    impl<T> Worker<T> {
        /// Creates a FIFO worker queue.
        pub fn new_fifo() -> Self {
            Worker {
                q: Arc::new(Mutex::new(VecDeque::new())),
            }
        }

        /// Creates a LIFO worker queue (shim: same backing as FIFO; `pop`
        /// takes from the front either way, which only affects task order,
        /// never correctness).
        pub fn new_lifo() -> Self {
            Self::new_fifo()
        }

        /// Pushes a task onto the local queue.
        pub fn push(&self, task: T) {
            self.q.lock().expect("worker poisoned").push_back(task);
        }

        /// Pops the next local task.
        pub fn pop(&self) -> Option<T> {
            self.q.lock().expect("worker poisoned").pop_front()
        }

        /// Whether the local queue is empty.
        pub fn is_empty(&self) -> bool {
            self.q.lock().expect("worker poisoned").is_empty()
        }

        /// Creates a stealer handle for other workers.
        pub fn stealer(&self) -> Stealer<T> {
            Stealer { q: self.q.clone() }
        }
    }

    /// Handle for stealing from another worker's queue.
    #[derive(Debug, Clone)]
    pub struct Stealer<T> {
        q: Arc<Mutex<VecDeque<T>>>,
    }

    impl<T> Stealer<T> {
        /// Steals one task from the victim's queue.
        pub fn steal(&self) -> Steal<T> {
            match self.q.lock().expect("worker poisoned").pop_back() {
                Some(t) => Steal::Success(t),
                None => Steal::Empty,
            }
        }
    }
}

/// Channels (over `std::sync::mpsc`).
pub mod channel {
    use std::sync::mpsc;

    /// Sending half (cloneable).
    pub struct Sender<T> {
        inner: mpsc::Sender<T>,
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            Sender {
                inner: self.inner.clone(),
            }
        }
    }

    impl<T> Sender<T> {
        /// Sends a value; errors if the receiver is gone.
        pub fn send(&self, t: T) -> Result<(), mpsc::SendError<T>> {
            self.inner.send(t)
        }
    }

    /// Receiving half.
    pub struct Receiver<T> {
        inner: mpsc::Receiver<T>,
    }

    impl<T> Receiver<T> {
        /// Blocks for the next value; errors when all senders are gone.
        pub fn recv(&self) -> Result<T, mpsc::RecvError> {
            self.inner.recv()
        }

        /// Non-blocking receive.
        pub fn try_recv(&self) -> Result<T, mpsc::TryRecvError> {
            self.inner.try_recv()
        }

        /// Iterates until all senders disconnect.
        pub fn iter(&self) -> mpsc::Iter<'_, T> {
            self.inner.iter()
        }
    }

    impl<T> IntoIterator for Receiver<T> {
        type Item = T;
        type IntoIter = mpsc::IntoIter<T>;
        fn into_iter(self) -> Self::IntoIter {
            self.inner.into_iter()
        }
    }

    /// Creates an unbounded channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let (tx, rx) = mpsc::channel();
        (Sender { inner: tx }, Receiver { inner: rx })
    }
}

#[cfg(test)]
mod tests {
    use super::deque::{Injector, Steal, Worker};

    #[test]
    fn scope_joins_and_returns() {
        let data = vec![1, 2, 3];
        let sum = super::scope(|s| {
            let h = s.spawn(|_| data.iter().sum::<i32>());
            h.join().unwrap()
        })
        .unwrap();
        assert_eq!(sum, 6);
    }

    #[test]
    fn injector_steal_batch() {
        let inj: Injector<u32> = Injector::new();
        for i in 0..10 {
            inj.push(i);
        }
        let w = Worker::new_fifo();
        let Steal::Success(first) = inj.steal_batch_and_pop(&w) else {
            panic!("expected a task");
        };
        assert_eq!(first, 0);
        let stealer = w.stealer();
        let mut seen = vec![first];
        while let Some(t) = w.pop() {
            seen.push(t);
        }
        while let Steal::Success(t) = inj.steal() {
            seen.push(t);
        }
        assert!(stealer.steal().is_empty());
        seen.sort_unstable();
        assert_eq!(seen, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn channel_roundtrip() {
        let (tx, rx) = super::channel::unbounded();
        let tx2 = tx.clone();
        tx.send(1).unwrap();
        tx2.send(2).unwrap();
        drop((tx, tx2));
        let got: Vec<i32> = rx.into_iter().collect();
        assert_eq!(got, vec![1, 2]);
    }
}
