//! Offline stand-in for `parking_lot`: `Mutex`/`RwLock` with the
//! non-poisoning guard-returning API, implemented over `std::sync`.
//! A poisoned std lock (a writer panicked) propagates the panic, which is
//! the same observable behavior parking_lot users get via lock-free panics.

use std::sync;

/// Mutual-exclusion lock whose `lock()` returns the guard directly.
#[derive(Debug, Default)]
pub struct Mutex<T> {
    inner: sync::Mutex<T>,
}

/// Guard for [`Mutex`].
pub type MutexGuard<'a, T> = sync::MutexGuard<'a, T>;

impl<T> Mutex<T> {
    /// Creates a new mutex.
    pub const fn new(value: T) -> Self {
        Mutex {
            inner: sync::Mutex::new(value),
        }
    }

    /// Acquires the lock.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.inner.lock().expect("mutex poisoned")
    }

    /// Tries to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        self.inner.try_lock().ok()
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().expect("mutex poisoned")
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().expect("mutex poisoned")
    }
}

/// Reader-writer lock whose `read()`/`write()` return guards directly.
#[derive(Debug, Default)]
pub struct RwLock<T> {
    inner: sync::RwLock<T>,
}

/// Shared guard for [`RwLock`].
pub type RwLockReadGuard<'a, T> = sync::RwLockReadGuard<'a, T>;
/// Exclusive guard for [`RwLock`].
pub type RwLockWriteGuard<'a, T> = sync::RwLockWriteGuard<'a, T>;

impl<T> RwLock<T> {
    /// Creates a new lock.
    pub const fn new(value: T) -> Self {
        RwLock {
            inner: sync::RwLock::new(value),
        }
    }

    /// Acquires a shared read guard.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.inner.read().expect("rwlock poisoned")
    }

    /// Acquires an exclusive write guard.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.inner.write().expect("rwlock poisoned")
    }

    /// Consumes the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().expect("rwlock poisoned")
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().expect("rwlock poisoned")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_and_rwlock_basics() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.into_inner(), 2);

        let rw = RwLock::new(vec![1, 2]);
        assert_eq!(rw.read().len(), 2);
        rw.write().push(3);
        assert_eq!(rw.into_inner(), vec![1, 2, 3]);
    }
}
