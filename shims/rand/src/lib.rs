//! Offline stand-in for the `rand` crate (0.8 API subset).
//!
//! Backed by xoshiro256** seeded through SplitMix64. The streams differ from
//! upstream `rand`'s `StdRng` (ChaCha12), but every consumer in this
//! workspace only relies on determinism for a fixed seed, not on specific
//! stream values.

use std::ops::{Range, RangeInclusive};

/// Low-level source of random 64-bit words.
pub trait RngCore {
    /// Next raw 64-bit word.
    fn next_u64(&mut self) -> u64;

    /// Next raw 32-bit word.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Seedable RNG constructors.
pub trait SeedableRng: Sized {
    /// Builds an RNG from a 64-bit seed (deterministic).
    fn seed_from_u64(seed: u64) -> Self;

    /// Builds an RNG from ambient entropy; here: the wall clock, so
    /// independent calls differ without an OS entropy source in the sandbox.
    fn from_entropy() -> Self {
        let nanos = std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .map(|d| d.as_nanos() as u64)
            .unwrap_or(0x5DEE_CE66_D1CE_5EED);
        Self::seed_from_u64(0x9E37_79B9_7F4A_7C15 ^ nanos)
    }
}

/// High-level sampling API (blanket-implemented for every [`RngCore`]).
pub trait Rng: RngCore {
    /// Samples a value of `T` from its standard distribution
    /// (`f64`/`f32`: uniform in `[0, 1)`; integers: full range; bool: fair).
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// Samples uniformly from a range (half-open or inclusive).
    ///
    /// # Panics
    /// Panics on an empty range.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
    {
        range.sample_from(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p = {p} out of range");
        f64::sample(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Standard-distribution sampling for [`Rng::gen`].
pub trait Standard {
    /// Draws one sample.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 random mantissa bits -> uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! std_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}

std_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Ranges usable with [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws one sample from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end as u128).wrapping_sub(self.start as u128) as u64;
                self.start + (reject_sample(rng, span) as $t)
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range: empty range");
                let span = (hi as u128).wrapping_sub(lo as u128) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                lo + (reject_sample(rng, span + 1) as $t)
            }
        }
    )*};
}

range_int!(u8, u16, u32, u64, usize);

macro_rules! range_signed {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + reject_sample(rng, span) as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range: empty range");
                let span = (hi as i128 - lo as i128) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                (lo as i128 + reject_sample(rng, span + 1) as i128) as $t
            }
        }
    )*};
}

range_signed!(i8, i16, i32, i64, isize);

impl SampleRange<f64> for Range<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "gen_range: empty range");
        let u = f64::sample(rng);
        self.start + u * (self.end - self.start)
    }
}

impl SampleRange<f64> for RangeInclusive<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "gen_range: empty range");
        lo + f64::sample(rng) * (hi - lo)
    }
}

/// Unbiased `[0, span)` sampling by rejection (span > 0).
fn reject_sample<R: RngCore + ?Sized>(rng: &mut R, span: u64) -> u64 {
    debug_assert!(span > 0);
    if span.is_power_of_two() {
        return rng.next_u64() & (span - 1);
    }
    let zone = u64::MAX - (u64::MAX % span);
    loop {
        let x = rng.next_u64();
        if x < zone {
            return x % span;
        }
    }
}

/// Named RNG implementations.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic xoshiro256** generator (the shim's `StdRng`).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expansion, per the xoshiro reference implementation.
            let mut sm = seed;
            let mut next = || {
                sm = sm.wrapping_add(0x9E3779B97F4A7C15);
                let mut z = sm;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
                z ^ (z >> 31)
            };
            StdRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

/// A process-global convenience RNG (deterministic in this shim).
pub fn thread_rng() -> rngs::StdRng {
    SeedableRng::seed_from_u64(0x005E_ED0F_7472_656E)
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let a: Vec<u64> = {
            let mut r = StdRng::seed_from_u64(7);
            (0..8).map(|_| r.next_u64()).collect()
        };
        let b: Vec<u64> = {
            let mut r = StdRng::seed_from_u64(7);
            (0..8).map(|_| r.next_u64()).collect()
        };
        assert_eq!(a, b);
        let c: Vec<u64> = {
            let mut r = StdRng::seed_from_u64(8);
            (0..8).map(|_| r.next_u64()).collect()
        };
        assert_ne!(a, c);
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut r = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let x: u64 = r.gen_range(3..17);
            assert!((3..17).contains(&x));
            let y: usize = r.gen_range(1..=4);
            assert!((1..=4).contains(&y));
            let f: f64 = r.gen_range(f64::MIN_POSITIVE..1.0);
            assert!(f > 0.0 && f < 1.0);
            let u: f64 = r.gen();
            assert!((0.0..1.0).contains(&u));
        }
    }

    #[test]
    fn gen_bool_probability_roughly_holds() {
        let mut r = StdRng::seed_from_u64(2);
        let hits = (0..10_000).filter(|_| r.gen_bool(0.3)).count();
        assert!((2700..3300).contains(&hits), "{hits}");
    }
}
