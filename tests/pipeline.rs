//! Cross-crate integration tests: the full VarBatch → Distribute → ΔLRU-EDF
//! pipeline against the engine, checker, and offline oracles — plus the
//! service pipeline parameterized over every [`StorageBackend`], pinning
//! that durability is invisible to scheduling results.

use rrs::offline::{optimal, OptConfig};
use rrs::prelude::*;
use rrs_analysis::runner::{run_kind, PolicyKind};
use rrs_service::{
    DiskBackend, DiskConfig, FaultPlan, IngestMode, MemoryBackend, PolicySpec, StorageBackend,
    Supervisor, SupervisorConfig, TenantSpec,
};
use std::collections::BTreeMap;

fn seeded_general(seed: u64, horizon: u64) -> Trace {
    RandomGeneral {
        delay_bounds: vec![4, 8, 16, 64],
        rates: vec![0.5, 0.4, 0.3, 0.2],
        horizon,
    }
    .generate(seed)
}

#[test]
fn varbatch_conserves_jobs_across_seeds() {
    for seed in 0..5 {
        let trace = seeded_general(seed, 256);
        let run = run_varbatch(&trace, 8, 3).unwrap();
        assert!(run.cost.drop <= trace.total_jobs());
        assert_eq!(
            run.cost.drop, run.distribute.projected_cost.drop,
            "seed {seed}: VarBatch drop accounting is consistent"
        );
    }
}

#[test]
fn distribute_projection_is_monotone_across_seeds() {
    for seed in 0..5 {
        let trace = RandomBatched {
            delay_bounds: vec![4, 8, 16],
            load: 2.0,
            activity: 0.8,
            horizon: 256,
            rate_limited: false,
        }
        .generate(seed);
        let run = run_distribute(&trace, 8, 3).unwrap();
        assert!(
            run.projected_cost.total() <= run.inner.cost.total(),
            "seed {seed}: Lemma 4.2"
        );
    }
}

#[test]
fn every_policy_cost_at_least_opt_on_small_instances() {
    // The exact DP is optimal: no policy (online or offline) may beat it with
    // the same m resources.
    for seed in 0..4 {
        let trace = RandomBatched {
            delay_bounds: vec![2, 4],
            load: 0.8,
            activity: 0.9,
            horizon: 24,
            rate_limited: true,
        }
        .generate(seed);
        let m = 2;
        let delta = 2;
        let opt = optimal(&trace, OptConfig::new(m, delta)).unwrap().cost;
        for kind in [
            PolicyKind::SeqEdf,
            PolicyKind::GreedyPending,
            PolicyKind::StaticPartition,
            PolicyKind::NeverReconfigure,
            PolicyKind::HindsightGreedy,
        ] {
            let s = run_kind(kind, &trace, m, delta).unwrap();
            assert!(
                s.cost.total() >= opt,
                "seed {seed}: {} cost {} < OPT {opt}",
                kind.name(),
                s.cost.total()
            );
        }
    }
}

#[test]
fn augmented_dlru_edf_beats_unaugmented_baselines_on_adversaries() {
    let adv = DlruAdversary {
        n: 8,
        delta: 2,
        j: 7,
        k: 9,
    };
    let trace = adv.generate();
    let combo = run_kind(PolicyKind::DlruEdf, &trace, 8, 2).unwrap();
    let dlru = run_kind(PolicyKind::Dlru, &trace, 8, 2).unwrap();
    assert!(combo.cost.total() * 4 <= dlru.cost.total());
}

#[test]
fn recorded_schedules_validate_for_all_batched_policies() {
    use rrs_core::{CostModel, Engine, EngineOptions};
    let trace = RandomBatched {
        delay_bounds: vec![2, 4, 8],
        load: 0.7,
        activity: 0.8,
        horizon: 64,
        rate_limited: true,
    }
    .generate(11);
    let engine = Engine::with_options(EngineOptions {
        speed: Speed::Uni,
        record_schedule: true,
        track_latency: false,
        track_perf: false,
    });
    let n = 8;
    let delta = 2;
    let mut policies: Vec<Box<dyn rrs_core::Policy>> = vec![
        Box::new(DlruEdf::new(trace.colors(), n, delta).unwrap()),
        Box::new(Dlru::new(trace.colors(), n, delta).unwrap()),
        Box::new(Edf::new(trace.colors(), n, delta).unwrap()),
    ];
    for p in policies.iter_mut() {
        let r = engine
            .run(&trace, p.as_mut(), n, CostModel::new(delta))
            .unwrap();
        let sched = r.schedule.as_ref().unwrap();
        let replayed =
            rrs_core::check_schedule(&trace, sched, CostModel::new(delta)).unwrap();
        assert_eq!(replayed, r.cost, "{}", p.name());
    }
}

#[test]
fn varbatch_on_arbitrary_delay_bounds() {
    // Non power-of-two bounds exercise the §5.3 extension end to end.
    let trace = RandomGeneral {
        delay_bounds: vec![5, 12, 48],
        rates: vec![0.4, 0.3, 0.1],
        horizon: 256,
    }
    .generate(3);
    let run = run_varbatch(&trace, 8, 2).unwrap();
    assert!(run.cost.drop < trace.total_jobs(), "some jobs are served");
}

/// Drives the multi-tenant service over a seeded workload on the given
/// storage backend and returns the final per-tenant results.
fn service_results(backend: Box<dyn StorageBackend>) -> BTreeMap<u64, rrs_core::RunResult> {
    let config = SupervisorConfig {
        shards: 2,
        queue_capacity: 64,
        checkpoint_every: 4,
        ingest: IngestMode::Batched,
        ..SupervisorConfig::default()
    };
    let mut sup = Supervisor::with_storage(config, &FaultPlan::none(), backend).unwrap();
    let policies = [PolicySpec::DlruEdf, PolicySpec::Dlru, PolicySpec::Edf];
    for id in 0u64..3 {
        let spec = TenantSpec::new(
            policies[id as usize],
            ColorTable::from_delay_bounds(&[2, 4, 8]),
            8,
            2,
        );
        sup.add_tenant(id, spec).unwrap();
    }
    // Per-tenant arrivals come from the same seeded generator the engine
    // pipeline tests use, bucketed by round.
    let traces: Vec<Trace> = (0..3)
        .map(|seed| {
            RandomBatched {
                delay_bounds: vec![2, 4, 8],
                load: 1.2,
                activity: 0.8,
                horizon: 24,
                rate_limited: false,
            }
            .generate(seed)
        })
        .collect();
    for round in 0..24u64 {
        for (id, trace) in traces.iter().enumerate() {
            let arrivals: Vec<(ColorId, u64)> = trace
                .iter()
                .filter(|a| a.round == round)
                .map(|a| (a.color, a.count))
                .collect();
            if !arrivals.is_empty() {
                sup.submit(id as u64, arrivals).unwrap();
            }
        }
        sup.tick().unwrap();
    }
    sup.finish().unwrap()
}

#[test]
fn service_pipeline_is_invariant_across_storage_backends() {
    let dir = std::env::temp_dir().join(format!("rrs-pipeline-disk-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let memory = service_results(Box::new(MemoryBackend::new()));
    let disk = service_results(Box::new(DiskBackend::new(DiskConfig::new(&dir))));
    assert_eq!(
        memory, disk,
        "the storage backend must be invisible to scheduling results"
    );
    // Sanity: the workload actually scheduled something on every tenant.
    for (id, result) in &memory {
        assert!(result.executed > 0, "tenant {id} did no work");
    }
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn aggregate_realizes_lemma_41_on_opt_schedules() {
    // Build an exact OPT schedule for a batched instance with oversized
    // batches, then aggregate it into the split instance with 3x resources.
    let trace = TraceBuilder::with_delay_bounds(&[2, 4])
        .jobs(0, 0, 5)
        .jobs(2, 0, 1)
        .jobs(0, 1, 9)
        .jobs(8, 1, 2)
        .build();
    let opt = optimal(&trace, OptConfig::new(2, 2)).unwrap();
    let agg = aggregate(&trace, &opt.schedule, 3, 2).unwrap();
    assert_eq!(
        agg.schedule.executed_jobs(),
        opt.schedule.executed_jobs(),
        "Lemma 4.5: drop cost preserved"
    );
    assert!(
        agg.cost.reconfig <= 10 * opt.cost.max(1),
        "Lemma 4.6 shape: reconfig within a constant factor ({} vs {})",
        agg.cost.reconfig,
        opt.cost
    );
}
