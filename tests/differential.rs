//! Differential tests pinning the online algorithms against the exhaustive
//! offline oracle (`rrs_offline::exhaustive_optimal`) on instances small
//! enough for complete search (≤ 3 colors, horizon ≤ 16, m ≤ 3):
//!
//! * no online policy given the *same* resources ever beats OPT;
//! * ΔLRU-EDF under the paper's 8× augmentation stays within a fixed
//!   constant of exact OPT on rate-limited batched instances (Theorem 1's
//!   regime), with additive slack for startup reconfiguration.

use proptest::prelude::*;
use rrs::prelude::*;
use rrs_analysis::runner::{run_kind, PolicyKind};
use rrs_core::engine::run_policy;
use rrs_offline::exhaustive_optimal;

/// Strategy: a trace tiny enough for exhaustive search. Delay bounds stay in
/// {1, 2, 4, 8} and rounds in 0..8, so `horizon ≤ 15` under the oracle's cap.
fn tiny_trace() -> impl Strategy<Value = Trace> {
    let bounds = proptest::collection::vec(
        prop_oneof![Just(1u64), Just(2), Just(4), Just(8)],
        1..=3usize,
    );
    bounds.prop_flat_map(|bounds| {
        let ncolors = bounds.len() as u32;
        let arrivals = proptest::collection::vec((0u64..8, 0..ncolors, 1u64..=3), 1..=8);
        arrivals.prop_map(move |arr| {
            let mut t = Trace::new(ColorTable::from_delay_bounds(&bounds));
            for (round, c, count) in arr {
                t.add(round, ColorId(c), count).unwrap();
            }
            t
        })
    })
}

/// Strategy: a tiny **rate-limited batched** trace (arrivals snapped to
/// multiples of D_ℓ, at most D_ℓ jobs per batch) — Theorem 1's regime.
fn tiny_rate_limited() -> impl Strategy<Value = Trace> {
    tiny_trace().prop_map(|t| {
        let mut out = Trace::new(t.colors().clone());
        for a in t.iter() {
            let d = t.colors().delay_bound(a.color);
            out.add(a.round - a.round % d, a.color, a.count.min(d)).unwrap();
        }
        out
    })
}

proptest! {
    // Exhaustive search is exponential; keep the case count modest.
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn equal_resource_baselines_never_beat_exhaustive_opt(
        trace in tiny_trace(),
        m in 1usize..=2,
        delta in 1u64..4,
    ) {
        let opt = exhaustive_optimal(&trace, m, delta);
        prop_assume!(opt.is_ok());
        let opt = opt.unwrap();
        let mut greedy = rrs_algorithms::GreedyPending::new();
        let g = run_policy(&trace, &mut greedy, m, delta).unwrap();
        prop_assert!(g.cost.total() >= opt, "greedy {} < OPT {}", g.cost.total(), opt);
        let mut never = rrs_algorithms::NeverReconfigure::new();
        let nv = run_policy(&trace, &mut never, m, delta).unwrap();
        prop_assert!(nv.cost.total() >= opt, "never {} < OPT {}", nv.cost.total(), opt);
        let mut stat = rrs_algorithms::StaticPartition::new(trace.colors(), m);
        let st = run_policy(&trace, &mut stat, m, delta).unwrap();
        prop_assert!(st.cost.total() >= opt, "static {} < OPT {}", st.cost.total(), opt);
        let mut hind = rrs_offline::HindsightGreedy::new(trace.clone(), 8);
        let h = run_policy(&trace, &mut hind, m, delta).unwrap();
        prop_assert!(h.cost.total() >= opt, "hindsight {} < OPT {}", h.cost.total(), opt);
    }

    #[test]
    fn dlru_edf_tracks_exhaustive_opt_under_augmentation(
        trace in tiny_rate_limited(),
        m in 1usize..=2,
        delta in 1u64..3,
    ) {
        prop_assume!(trace.total_jobs() > 0);
        let opt = exhaustive_optimal(&trace, m, delta);
        prop_assume!(opt.is_ok());
        let opt = opt.unwrap();
        // Theorem 1 setting: ΔLRU-EDF gets n = 8m resources against OPT's m.
        let s = run_kind(PolicyKind::DlruEdf, &trace, 8 * m, delta).unwrap();
        // The reproduction's E3 gate allows a worst-case factor of 40 against
        // a *loose* lower bound; against exact OPT the same constant with
        // additive startup slack (≤ 4 recolorings per epoch, ≤ one epoch per
        // color on these tiny traces) is a strictly tighter pin.
        let slack = 4 * delta * trace.colors().len() as u64;
        prop_assert!(
            s.cost.total() <= 40 * opt + slack,
            "ΔLRU-EDF {} vs OPT {} (slack {})",
            s.cost.total(),
            opt,
            slack
        );
    }
}
