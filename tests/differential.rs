//! Differential tests pinning the online algorithms against the exhaustive
//! offline oracle (`rrs_offline::exhaustive_optimal`) on instances small
//! enough for complete search (≤ 3 colors, horizon ≤ 16, m ≤ 3):
//!
//! * no online policy given the *same* resources ever beats OPT;
//! * ΔLRU-EDF under the paper's 8× augmentation stays within a fixed
//!   constant of exact OPT on rate-limited batched instances (Theorem 1's
//!   regime), with additive slack for startup reconfiguration.

use proptest::prelude::*;
use rrs::prelude::*;
use rrs_analysis::runner::{run_kind, PolicyKind};
use rrs_core::engine::run_policy;
use rrs_offline::exhaustive_optimal;
use rrs_service::{
    DiskBackend, DiskConfig, FaultPlan, IngestMode, MemoryBackend, PolicySpec, StorageBackend,
    Supervisor, SupervisorConfig, TenantSpec,
};

/// Strategy: a trace tiny enough for exhaustive search. Delay bounds stay in
/// {1, 2, 4, 8} and rounds in 0..8, so `horizon ≤ 15` under the oracle's cap.
fn tiny_trace() -> impl Strategy<Value = Trace> {
    let bounds = proptest::collection::vec(
        prop_oneof![Just(1u64), Just(2), Just(4), Just(8)],
        1..=3usize,
    );
    bounds.prop_flat_map(|bounds| {
        let ncolors = bounds.len() as u32;
        let arrivals = proptest::collection::vec((0u64..8, 0..ncolors, 1u64..=3), 1..=8);
        arrivals.prop_map(move |arr| {
            let mut t = Trace::new(ColorTable::from_delay_bounds(&bounds));
            for (round, c, count) in arr {
                t.add(round, ColorId(c), count).unwrap();
            }
            t
        })
    })
}

/// Strategy: a tiny **rate-limited batched** trace (arrivals snapped to
/// multiples of D_ℓ, at most D_ℓ jobs per batch) — Theorem 1's regime.
fn tiny_rate_limited() -> impl Strategy<Value = Trace> {
    tiny_trace().prop_map(|t| {
        let mut out = Trace::new(t.colors().clone());
        for a in t.iter() {
            let d = t.colors().delay_bound(a.color);
            out.add(a.round - a.round % d, a.color, a.count.min(d)).unwrap();
        }
        out
    })
}

proptest! {
    // Exhaustive search is exponential; keep the case count modest.
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn equal_resource_baselines_never_beat_exhaustive_opt(
        trace in tiny_trace(),
        m in 1usize..=2,
        delta in 1u64..4,
    ) {
        let opt = exhaustive_optimal(&trace, m, delta);
        prop_assume!(opt.is_ok());
        let opt = opt.unwrap();
        let mut greedy = rrs_algorithms::GreedyPending::new();
        let g = run_policy(&trace, &mut greedy, m, delta).unwrap();
        prop_assert!(g.cost.total() >= opt, "greedy {} < OPT {}", g.cost.total(), opt);
        let mut never = rrs_algorithms::NeverReconfigure::new();
        let nv = run_policy(&trace, &mut never, m, delta).unwrap();
        prop_assert!(nv.cost.total() >= opt, "never {} < OPT {}", nv.cost.total(), opt);
        let mut stat = rrs_algorithms::StaticPartition::new(trace.colors(), m);
        let st = run_policy(&trace, &mut stat, m, delta).unwrap();
        prop_assert!(st.cost.total() >= opt, "static {} < OPT {}", st.cost.total(), opt);
        let mut hind = rrs_offline::HindsightGreedy::new(trace.clone(), 8);
        let h = run_policy(&trace, &mut hind, m, delta).unwrap();
        prop_assert!(h.cost.total() >= opt, "hindsight {} < OPT {}", h.cost.total(), opt);
    }

    #[test]
    fn dlru_edf_tracks_exhaustive_opt_under_augmentation(
        trace in tiny_rate_limited(),
        m in 1usize..=2,
        delta in 1u64..3,
    ) {
        prop_assume!(trace.total_jobs() > 0);
        let opt = exhaustive_optimal(&trace, m, delta);
        prop_assume!(opt.is_ok());
        let opt = opt.unwrap();
        // Theorem 1 setting: ΔLRU-EDF gets n = 8m resources against OPT's m.
        let s = run_kind(PolicyKind::DlruEdf, &trace, 8 * m, delta).unwrap();
        // The reproduction's E3 gate allows a worst-case factor of 40 against
        // a *loose* lower bound; against exact OPT the same constant with
        // additive startup slack (≤ 4 recolorings per epoch, ≤ one epoch per
        // color on these tiny traces) is a strictly tighter pin.
        let slack = 4 * delta * trace.colors().len() as u64;
        prop_assert!(
            s.cost.total() <= 40 * opt + slack,
            "ΔLRU-EDF {} vs OPT {} (slack {})",
            s.cost.total(),
            opt,
            slack
        );
    }
}

/// Random per-round arrival bursts for the service differential: tenant ids
/// in `0..3`, colors in the two-color table, small counts.
fn tiny_service_workload() -> impl Strategy<Value = Vec<Vec<(u64, u32, u64)>>> {
    proptest::collection::vec(
        proptest::collection::vec((0u64..3, 0u32..2, 1u64..4), 0..=4),
        1..=10,
    )
}

/// Runs one workload (outer = rounds, inner = submits) through a supervisor
/// on `backend`, returning every tenant's final result plus each shard's
/// snapshot — the full observable service state.
fn drive_service(
    workload: &[Vec<(u64, u32, u64)>],
    ingest: IngestMode,
    backend: Box<dyn StorageBackend>,
) -> (Vec<(u64, rrs_core::RunResult)>, Vec<rrs_service::ShardSnapshot>) {
    let config = SupervisorConfig {
        shards: 2,
        queue_capacity: 32,
        checkpoint_every: 3,
        ingest,
        ..SupervisorConfig::default()
    };
    let mut sup = Supervisor::with_storage(config, &FaultPlan::none(), backend).unwrap();
    for id in 0u64..3 {
        let spec = TenantSpec::new(
            [PolicySpec::DlruEdf, PolicySpec::Edf, PolicySpec::Dlru][id as usize],
            ColorTable::from_delay_bounds(&[2, 4]),
            4,
            2,
        );
        sup.add_tenant(id, spec).unwrap();
    }
    for round in workload {
        for &(tenant, color, count) in round {
            sup.submit(tenant, vec![(ColorId(color), count)]).unwrap();
        }
        sup.tick().unwrap();
    }
    let snapshots = (0..2).map(|s| sup.snapshot_shard(s).unwrap()).collect();
    (sup.finish().unwrap().into_iter().collect(), snapshots)
}

proptest! {
    // Each case spins real worker threads and disk I/O; keep the count low.
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Storage-backend differential: on any workload, the disk backend's
    /// observable service state (snapshots and final results) is
    /// bit-identical to the in-memory oracle's, for both ingest modes.
    #[test]
    fn service_state_is_identical_across_backends(
        workload in tiny_service_workload(),
        batched in prop_oneof![Just(true), Just(false)],
    ) {
        let ingest = if batched { IngestMode::Batched } else { IngestMode::PerCommand };
        let dir = std::env::temp_dir().join(format!(
            "rrs-diff-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        let memory = drive_service(&workload, ingest, Box::new(MemoryBackend::new()));
        let disk = drive_service(
            &workload,
            ingest,
            Box::new(DiskBackend::new(DiskConfig::new(&dir))),
        );
        prop_assert_eq!(&memory.0, &disk.0, "final results diverge across backends");
        prop_assert_eq!(&memory.1, &disk.1, "shard snapshots diverge across backends");
        let _ = std::fs::remove_dir_all(&dir);
    }
}
