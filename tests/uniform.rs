//! Integration tests spanning the uniform-variant crate and the core engine.

use rrs::prelude::*;
use rrs::uniform::problem::{run_block_policy, GreedyBlocks, StaticBlocks};
use rrs::uniform::{
    block_lower_bound, optimal_uniform, BlockAdapter, UniformOptConfig, UniformWorkload,
    WeightedDlru,
};

fn workloads() -> Vec<rrs::uniform::UniformInstance> {
    (0..6)
        .map(|seed| {
            UniformWorkload {
                d: 8,
                ncolors: 5,
                max_cost: 12,
                blocks: 64,
                activity: 0.7,
                load: 0.8,
            }
            .generate(seed)
        })
        .collect()
}

#[test]
fn block_and_round_models_agree_for_all_policies() {
    for inst in workloads() {
        let n = 3;
        let delta = 5;
        for (name, block_run, policy) in [
            ("static", {
                let mut p = StaticBlocks::spread(inst.ncolors(), n);
                run_block_policy(&inst, &mut p, n, delta).unwrap()
            }, {
                let p: Box<dyn rrs_core::Policy> = Box::new(BlockAdapter::new(
                    StaticBlocks::spread(inst.ncolors(), n),
                    inst.d,
                ));
                p
            }),
            ("greedy", {
                let mut p = GreedyBlocks::new(&inst, n);
                run_block_policy(&inst, &mut p, n, delta).unwrap()
            }, {
                let p: Box<dyn rrs_core::Policy> =
                    Box::new(BlockAdapter::new(GreedyBlocks::new(&inst, n), inst.d));
                p
            }),
            ("wdlru", {
                let mut p = WeightedDlru::new(&inst, n, delta);
                run_block_policy(&inst, &mut p, n, delta).unwrap()
            }, {
                let p: Box<dyn rrs_core::Policy> =
                    Box::new(BlockAdapter::new(WeightedDlru::new(&inst, n, delta), inst.d));
                p
            }),
        ] {
            let trace = inst.to_round_trace();
            let mut policy = policy;
            let round_run = run_policy(&trace, policy.as_mut(), n, delta).unwrap();
            assert_eq!(round_run.cost.reconfig, block_run.reconfig_cost, "{name}");
            assert_eq!(round_run.cost.drop, block_run.drop_cost, "{name}");
        }
    }
}

#[test]
fn uniform_opt_sandwich_holds() {
    for inst in workloads() {
        let m = 1;
        let delta = 6;
        let opt = optimal_uniform(&inst, UniformOptConfig::new(m, delta)).unwrap();
        let lb = block_lower_bound(&inst, m, delta);
        assert!(lb <= opt);
        // Every policy with the same resources is at least OPT.
        let mut g = GreedyBlocks::new(&inst, m);
        assert!(run_block_policy(&inst, &mut g, m, delta).unwrap().total() >= opt);
    }
}

#[test]
fn weighted_dlru_is_resource_competitive_on_the_suite() {
    // With 4x slots, the online cost stays within a small factor of the
    // 1-slot block optimum across the whole suite.
    let mut worst = 0.0f64;
    for inst in workloads() {
        let delta = 6;
        let opt = optimal_uniform(&inst, UniformOptConfig::new(1, delta)).unwrap();
        let mut w = WeightedDlru::new(&inst, 4, delta);
        let online = run_block_policy(&inst, &mut w, 4, delta).unwrap();
        worst = worst.max(online.total() as f64 / opt.max(1) as f64);
    }
    assert!(worst < 6.0, "worst ratio {worst}");
}

#[test]
fn round_trace_checker_agrees_with_block_drop_accounting() {
    // Run the weighted instance through the round engine with a recorded
    // schedule and re-validate with the independent checker.
    use rrs_core::{check_schedule, CostModel, Engine, EngineOptions};
    let inst = workloads().remove(0);
    let trace = inst.to_round_trace();
    let engine = Engine::with_options(EngineOptions {
        speed: Speed::Uni,
        record_schedule: true,
        track_latency: false,
        track_perf: false,
    });
    let mut p = BlockAdapter::new(WeightedDlru::new(&inst, 3, 5), inst.d);
    let r = engine.run(&trace, &mut p, 3, CostModel::new(5)).unwrap();
    let replayed = check_schedule(&trace, r.schedule.as_ref().unwrap(), CostModel::new(5)).unwrap();
    assert_eq!(replayed, r.cost, "weighted drop costs replay exactly");
}

#[test]
fn paging_embedding_runs_through_prelude() {
    use rrs::uniform::paging::PagingLru;
    use rrs::uniform::{lru_paging_faults, PagingInstance};
    let inst = PagingInstance::with_locality(16, 300, 3, 0.8, 42);
    let trace = inst.to_rrs_trace();
    let mut p = PagingLru::new();
    let r = run_policy(&trace, &mut p, 6, 1).unwrap();
    assert_eq!(r.reconfig_events, lru_paging_faults(&inst, 6));
    assert_eq!(r.cost.drop, 0);
}
