//! Property-based tests over the core invariants, using proptest.

use proptest::prelude::*;
use rrs::offline::{optimal, OptConfig};
use rrs::prelude::*;
use rrs_algorithms::par_edf;
use rrs_core::engine::run_policy;
use rrs_core::{check_schedule, CostModel, Engine, EngineOptions};
use rrs_offline::combined_bound;
use rrs_reductions::{aggregate, run_varbatch, split_trace};

/// Strategy: a small trace over power-of-two delay bounds.
fn small_trace(max_colors: usize, max_round: u64, max_count: u64) -> impl Strategy<Value = Trace> {
    let bounds = proptest::collection::vec(prop_oneof![Just(1u64), Just(2), Just(4), Just(8)], 1..=max_colors);
    bounds.prop_flat_map(move |bounds| {
        let ncolors = bounds.len() as u32;
        let arrivals = proptest::collection::vec(
            (0..max_round, 0..ncolors, 1..=max_count),
            0..12,
        );
        arrivals.prop_map(move |arr| {
            let mut t = Trace::new(ColorTable::from_delay_bounds(&bounds));
            for (round, c, count) in arr {
                t.add(round, ColorId(c), count).unwrap();
            }
            t
        })
    })
}

/// Strategy: a batched trace (arrivals snapped to multiples of D_ℓ).
fn batched_trace(max_colors: usize) -> impl Strategy<Value = Trace> {
    small_trace(max_colors, 32, 12).prop_map(|t| {
        let mut out = Trace::new(t.colors().clone());
        for a in t.iter() {
            let d = t.colors().delay_bound(a.color);
            out.add(a.round - a.round % d, a.color, a.count).unwrap();
        }
        out
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn codec_roundtrip(trace in small_trace(4, 64, 1000)) {
        let decoded = Trace::from_bytes(trace.to_bytes()).unwrap();
        prop_assert_eq!(decoded, trace);
    }

    #[test]
    fn engine_conserves_jobs(trace in small_trace(4, 32, 16), n in 1usize..6, delta in 1u64..5) {
        let mut p = rrs_algorithms::GreedyPending::new();
        let r = run_policy(&trace, &mut p, n, delta).unwrap();
        prop_assert_eq!(r.executed + r.cost.drop, trace.total_jobs());
    }

    #[test]
    fn recorded_schedule_replays_exactly(trace in batched_trace(3), delta in 1u64..4) {
        let n = 8;
        let mut p = DlruEdf::new(trace.colors(), n, delta).unwrap();
        let engine = Engine::with_options(EngineOptions { speed: Speed::Uni, record_schedule: true, track_latency: false, track_perf: false });
        let r = engine.run(&trace, &mut p, n, CostModel::new(delta)).unwrap();
        let replayed = check_schedule(&trace, r.schedule.as_ref().unwrap(), CostModel::new(delta)).unwrap();
        prop_assert_eq!(replayed, r.cost);
    }

    #[test]
    fn split_preserves_jobs_and_rate_limits(trace in batched_trace(3)) {
        let (split, map) = split_trace(&trace);
        prop_assert_eq!(split.total_jobs(), trace.total_jobs());
        prop_assert_eq!(split.batch_class(), BatchClass::RateLimited);
        // Every sub-color maps back to its original.
        for (sub, &orig) in map.sub_to_orig.iter().enumerate() {
            prop_assert_eq!(
                split.colors().delay_bound(ColorId(sub as u32)),
                trace.colors().delay_bound(orig)
            );
        }
    }

    #[test]
    fn varbatch_delay_shrinks_windows(trace in small_trace(3, 32, 8)) {
        let b = delay_to_batches(&trace);
        prop_assert_eq!(b.total_jobs(), trace.total_jobs());
        // Each delayed batch stays within the original window.
        let mut orig: Vec<_> = trace.iter().flat_map(|a| std::iter::repeat_n(a, a.count as usize)).collect();
        let mut newa: Vec<_> = b.iter().flat_map(|a| std::iter::repeat_n(a, a.count as usize)).collect();
        orig.sort_by_key(|a| (a.color, a.round));
        newa.sort_by_key(|a| (a.color, a.round));
        for (o, d) in orig.iter().zip(&newa) {
            prop_assert!(d.round >= o.round);
            prop_assert!(d.round + b.colors().delay_bound(d.color) <= o.round + trace.colors().delay_bound(o.color));
        }
    }

    #[test]
    fn varbatch_roundtrip_preserves_cost_under_unit_engine(trace in small_trace(3, 32, 6), delta in 1u64..4) {
        // Round-tripping a general trace through the variable-batch reduction
        // (delay → batched instance → Distribute → project back) must preserve
        // total cost as recomputed by the unit-batch schedule checker on the
        // ORIGINAL trace: same drops, same reconfigurations, and every
        // original job accounted for as executed or dropped.
        let n = 8;
        let run = run_varbatch(&trace, n, delta);
        prop_assume!(run.is_ok());
        let run = run.unwrap();
        prop_assert_eq!(run.cost.drop, run.distribute.projected_cost.drop,
            "reduction changed drop cost");
        prop_assert_eq!(run.cost.reconfig, run.distribute.projected_cost.reconfig,
            "reduction changed reconfig cost");
        prop_assert_eq!(
            run.distribute.schedule.executed_jobs() + run.cost.drop,
            trace.total_jobs(),
            "reduction lost or invented jobs"
        );
    }

    #[test]
    fn aggregate_preserves_drop_cost_of_recorded_schedules(trace in batched_trace(3), delta in 1u64..4) {
        // Feed Aggregate a real recorded schedule (ΔLRU-EDF on the batched
        // trace) and check the Lemma 4.5 contract: the constructed split-
        // instance schedule executes the same number of jobs, so its drop
        // cost matches the input schedule's.
        let n = 8;
        let mut p = DlruEdf::new(trace.colors(), n, delta).unwrap();
        let engine = Engine::with_options(EngineOptions { speed: Speed::Uni, record_schedule: true, track_latency: false, track_perf: false });
        let r = engine.run(&trace, &mut p, n, CostModel::new(delta)).unwrap();
        let sched = r.schedule.as_ref().unwrap();
        let agg = aggregate(&trace, sched, 3, delta);
        // Our first-fit realization may legitimately run out of room at
        // factor 3 (see the module docs); those cases are not the property.
        prop_assume!(agg.is_ok());
        let agg = agg.unwrap();
        prop_assert_eq!(agg.cost.drop, r.cost.drop, "Aggregate changed drop cost");
        prop_assert_eq!(agg.schedule.executed_jobs(), r.executed, "Aggregate changed executions");
        prop_assert_eq!(agg.split_trace.total_jobs(), trace.total_jobs(), "split lost jobs");
    }

    #[test]
    fn par_edf_drop_is_a_lower_bound(trace in small_trace(3, 24, 8), m in 1usize..4) {
        // Lemma 3.7: no m-resource schedule drops fewer jobs than Par-EDF.
        let par = par_edf(&trace, m).dropped;
        let mut p = rrs_algorithms::GreedyPending::new();
        let greedy = run_policy(&trace, &mut p, m, 1).unwrap();
        prop_assert!(par <= greedy.cost.drop, "par {} > greedy {}", par, greedy.cost.drop);
        let mut p = rrs_algorithms::StaticPartition::new(trace.colors(), m);
        let stat = run_policy(&trace, &mut p, m, 1).unwrap();
        prop_assert!(par <= stat.cost.drop);
    }

    #[test]
    fn opt_is_bracketed_and_minimal(trace in batched_trace(2), delta in 1u64..4) {
        let m = 1;
        let opt = optimal(&trace, OptConfig { m, delta, max_states: 400_000 });
        prop_assume!(opt.is_ok());
        let opt = opt.unwrap();
        // Lower bound <= OPT.
        prop_assert!(combined_bound(&trace, m, delta) <= opt.cost);
        // The optimal schedule replays to exactly its claimed cost.
        let replayed = check_schedule(&trace, &opt.schedule, CostModel::new(delta)).unwrap();
        prop_assert_eq!(replayed.total(), opt.cost);
        // No other policy with the same resources beats it.
        let mut p = rrs_algorithms::GreedyPending::new();
        let greedy = run_policy(&trace, &mut p, m, delta).unwrap();
        prop_assert!(greedy.cost.total() >= opt.cost);
        let mut h = rrs::offline::HindsightGreedy::new(trace.clone(), 8);
        let hind = run_policy(&trace, &mut h, m, delta).unwrap();
        prop_assert!(hind.cost.total() >= opt.cost);
    }

    #[test]
    fn lemma_33_34_hold_on_random_batched(trace in batched_trace(3), delta in 1u64..4) {
        let n = 8;
        let mut p = DlruEdf::new(trace.colors(), n, delta).unwrap();
        run_policy(&trace, &mut p, n, delta).unwrap();
        let st = p.state();
        let epochs = st.num_epochs();
        let reconfig_events: u64 = {
            // Rerun to count events precisely (policy state is consumed above).
            let mut p2 = DlruEdf::new(trace.colors(), n, delta).unwrap();
            run_policy(&trace, &mut p2, n, delta).unwrap().reconfig_events
        };
        // Lemma 3.3: reconfig cost (= events × Δ) ≤ 4 · epochs · Δ.
        prop_assert!(reconfig_events <= 4 * epochs, "Lemma 3.3: {} events vs 4×{} epochs", reconfig_events, epochs);
        // Lemma 3.4 scope: exclude never-eligible colors.
        let in_scope: u64 = trace.colors().ids()
            .filter(|&c| st.color(c).became_eligible > 0)
            .map(|c| st.color(c).ineligible_drops)
            .sum();
        prop_assert!(in_scope <= epochs * delta, "Lemma 3.4: {} > {} * {}", in_scope, epochs, delta);
    }
}
