//! Property-based tests for the uniform-variant crate.

use proptest::prelude::*;
use rrs::uniform::filecache::{
    belady_faults, optimal_weighted, run_policy as run_cache, Landlord, LruCache,
    WeightedCachingInstance,
};
use rrs::uniform::problem::{run_block_policy, GreedyBlocks, StaticBlocks};
use rrs::uniform::{
    block_lower_bound, optimal_uniform, BlockAdapter, UniformInstance, UniformOptConfig,
    WeightedDlru,
};
use rrs_core::engine::run_policy;

/// Strategy: a small uniform-variant instance.
fn small_instance() -> impl Strategy<Value = UniformInstance> {
    let d = prop_oneof![Just(2u64), Just(4), Just(8)];
    let costs = proptest::collection::vec(1u64..8, 1..4);
    (d, costs).prop_flat_map(|(d, drop_costs)| {
        let ncolors = drop_costs.len() as u32;
        let blocks = proptest::collection::vec(
            proptest::collection::btree_map(0..ncolors, 1u64..10, 0..3),
            1..6,
        );
        blocks.prop_map(move |blocks| UniformInstance {
            d,
            drop_costs: drop_costs.clone(),
            blocks: blocks
                .into_iter()
                .map(|m| m.into_iter().collect())
                .collect(),
        })
    })
}

/// Strategy: a small unit-cost caching instance.
fn caching_instance() -> impl Strategy<Value = (WeightedCachingInstance, usize)> {
    (2usize..6, 1usize..4).prop_flat_map(|(nfiles, k)| {
        proptest::collection::vec(0..nfiles as u32, 0..30).prop_map(move |reqs| {
            (
                WeightedCachingInstance::unit(nfiles, reqs).unwrap(),
                k,
            )
        })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn block_round_agreement_is_universal(inst in small_instance(), n in 1usize..4, delta in 1u64..6) {
        inst.validate().unwrap();
        // Weighted ΔLRU agrees across the two execution models.
        let block = {
            let mut p = WeightedDlru::new(&inst, n, delta);
            run_block_policy(&inst, &mut p, n, delta).unwrap()
        };
        let trace = inst.to_round_trace();
        let mut adapted = BlockAdapter::new(WeightedDlru::new(&inst, n, delta), inst.d);
        let round = run_policy(&trace, &mut adapted, n, delta).unwrap();
        prop_assert_eq!(round.cost.reconfig, block.reconfig_cost);
        prop_assert_eq!(round.cost.drop, block.drop_cost);
    }

    #[test]
    fn uniform_dp_is_a_true_minimum(inst in small_instance(), delta in 1u64..6) {
        let m = 2;
        let opt = optimal_uniform(&inst, UniformOptConfig::new(m, delta)).unwrap();
        prop_assert!(block_lower_bound(&inst, m, delta) <= opt);
        let mut s = StaticBlocks::spread(inst.ncolors(), m);
        prop_assert!(run_block_policy(&inst, &mut s, m, delta).unwrap().total() >= opt);
        let mut g = GreedyBlocks::new(&inst, m);
        prop_assert!(run_block_policy(&inst, &mut g, m, delta).unwrap().total() >= opt);
        let mut w = WeightedDlru::new(&inst, m, delta);
        prop_assert!(run_block_policy(&inst, &mut w, m, delta).unwrap().total() >= opt);
    }

    #[test]
    fn belady_is_optimal_and_lru_within_k(args in caching_instance()) {
        let (inst, k) = args;
        let opt = belady_faults(&inst, k);
        // Belady equals the weighted DP on unit costs.
        prop_assert_eq!(opt, optimal_weighted(&inst, k).unwrap());
        // LRU never beats Belady and is within the k-competitive bound
        // against the same cache size (h = k → ratio ≤ k).
        let lru = run_cache(&inst, &mut LruCache::new(), k);
        prop_assert!(lru >= opt);
        prop_assert!(lru <= (k as u64) * opt.max(1) + k as u64, "lru {} opt {} k {}", lru, opt, k);
    }

    #[test]
    fn landlord_never_beats_weighted_opt(args in caching_instance()) {
        let (inst, k) = args;
        let opt = optimal_weighted(&inst, k).unwrap();
        let ll = run_cache(&inst, &mut Landlord::new(&inst.costs), k);
        prop_assert!(ll >= opt);
    }

    #[test]
    fn round_trace_conserves_weight(inst in small_instance()) {
        let trace = inst.to_round_trace();
        prop_assert_eq!(trace.total_jobs(), inst.total_jobs());
        // Dropping everything in the round model costs exactly the total weight.
        struct Idle;
        impl rrs_core::Policy for Idle {
            fn name(&self) -> String { "idle".into() }
            fn reconfigure(&mut self, _: rrs_core::Round, _: u32, _: &rrs_core::EngineView) -> rrs_core::CacheTarget {
                rrs_core::CacheTarget::empty()
            }
        }
        let r = run_policy(&trace, &mut Idle, 1, 1).unwrap();
        prop_assert_eq!(r.cost.drop, inst.total_weight());
    }
}
