//! # rrs — Reconfigurable Resource Scheduling
//!
//! A complete Rust implementation of Plaxton, Sun, Tiwari and Vin,
//! *Reconfigurable Resource Scheduling with Variable Delay Bounds* (the
//! variable-delay-bound member of the reconfigurable resource scheduling class
//! introduced at SPAA 2006): the ΔLRU-EDF online algorithm, the ΔLRU and EDF
//! schemes it combines, the Distribute and VarBatch reductions that lift it to
//! general arrivals, offline baselines (exact optimum, lower bounds, hindsight
//! heuristics), seeded workload generators including the paper's Appendix A/B
//! adversaries, and an analysis toolkit for measuring competitive ratios.
//!
//! This crate is a facade: it re-exports the workspace crates under stable paths.
//!
//! ```
//! use rrs::prelude::*;
//!
//! // Two service categories: interactive (D=4) and batch (D=32).
//! let trace = TraceBuilder::with_delay_bounds(&[4, 32])
//!     .batched_jobs(0, 3, 0, 64) // 3 interactive jobs every 4 rounds
//!     .jobs(0, 1, 20)            // a backlog of 20 batch jobs
//!     .build();
//!
//! let mut policy = DlruEdf::new(trace.colors(), 8, 4).unwrap();
//! let result = run_policy(&trace, &mut policy, 8, 4).unwrap();
//! assert_eq!(result.executed + result.cost.drop, trace.total_jobs());
//! ```

#![forbid(unsafe_code)]

pub use rrs_algorithms as algorithms;
pub use rrs_analysis as analysis;
pub use rrs_core as core;
pub use rrs_offline as offline;
pub use rrs_reductions as reductions;
pub use rrs_uniform as uniform;
pub use rrs_workloads as workloads;

/// One-stop imports for applications.
pub mod prelude {
    pub use rrs_algorithms::prelude::*;
    pub use rrs_core::prelude::*;
    pub use rrs_core::engine::run_policy;
    pub use rrs_offline::prelude::*;
    pub use rrs_reductions::prelude::*;
    pub use rrs_workloads::prelude::*;
}
