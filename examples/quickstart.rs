//! Quickstart: build a workload, run ΔLRU-EDF, inspect the cost.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use rrs::prelude::*;

fn main() {
    // Two service categories: interactive jobs must finish within 4 rounds,
    // batch jobs within 64. Interactive traffic arrives steadily; the batch
    // category shows up with a backlog.
    let trace = TraceBuilder::with_delay_bounds(&[4, 64])
        .batched_jobs(0, 3, 0, 256) // 3 interactive jobs every 4 rounds
        .jobs(0, 1, 48) // a backlog of 48 batch jobs at round 0
        .jobs(128, 1, 30) // and another at round 128
        .build();
    println!(
        "trace: {} jobs over {} rounds ({:?} arrivals)",
        trace.total_jobs(),
        trace.horizon(),
        trace.batch_class()
    );

    // ΔLRU-EDF with n = 8 resources and reconfiguration cost Δ = 4.
    let (n, delta) = (8, 4);
    let mut policy = DlruEdf::new(trace.colors(), n, delta).expect("n must be a multiple of 4");
    let result = run_policy(&trace, &mut policy, n, delta).expect("run");

    println!(
        "ΔLRU-EDF: total cost {} (reconfig {}, drops {}), executed {}/{} jobs",
        result.cost.total(),
        result.cost.reconfig,
        result.cost.drop,
        result.executed,
        trace.total_jobs()
    );

    // How good is that? Bracket the optimal offline cost for m = 1 resource.
    let m = 1;
    let lower = combined_bound(&trace, m, delta);
    println!(
        "offline lower bound (m = {m}): {lower}  →  ratio ≤ {:.2}",
        result.cost.total() as f64 / lower.max(1) as f64
    );

    // Compare against the paper's two single-principle schemes.
    for name in ["ΔLRU", "EDF"] {
        let cost = match name {
            "ΔLRU" => {
                let mut p = Dlru::new(trace.colors(), n, delta).unwrap();
                run_policy(&trace, &mut p, n, delta).unwrap().cost
            }
            _ => {
                let mut p = Edf::new(trace.colors(), n, delta).unwrap();
                run_policy(&trace, &mut p, n, delta).unwrap().cost
            }
        };
        println!("{name}: total cost {} (reconfig {}, drops {})", cost.total(), cost.reconfig, cost.drop);
    }
}
