//! Shared data center scenario (paper §1): several services with diurnal
//! load patterns share a pool of processors; allocations must follow the
//! shifting workload composition.
//!
//! ```sh
//! cargo run --example datacenter
//! ```

use rrs::analysis::runner::{run_kind, PolicyKind};
use rrs::analysis::table::Table;
use rrs::prelude::*;

fn main() {
    let scenario = Datacenter {
        interactive_services: 6,
        batch_services: 2,
        interactive_delay: 8,
        batch_delay: 256,
        peak_rate: 1.2,
        period: 512,
        horizon: 4096,
    };
    let trace = scenario.generate(42);
    println!(
        "data center: {} services, {} jobs over {} rounds\n",
        trace.colors().len(),
        trace.total_jobs(),
        trace.horizon()
    );

    let (n, m, delta) = (16, 4, 4);
    let lower = combined_bound(&trace, m, delta);
    let mut table = Table::new(["policy", "total", "reconfig", "drops", "completion %", "ratio≤"]);
    for kind in [
        PolicyKind::VarBatch,
        PolicyKind::Dlru,
        PolicyKind::Edf,
        PolicyKind::GreedyPending,
        PolicyKind::StaticPartition,
        PolicyKind::NeverReconfigure,
        PolicyKind::HindsightGreedy,
    ] {
        let s = run_kind(kind, &trace, n, delta).expect("run");
        let total_jobs = s.executed + s.cost.drop;
        table.row([
            kind.name().to_string(),
            s.cost.total().to_string(),
            s.cost.reconfig.to_string(),
            s.cost.drop.to_string(),
            format!("{:.1}", 100.0 * s.executed as f64 / total_jobs.max(1) as f64),
            format!("{:.2}", s.cost.total() as f64 / lower.max(1) as f64),
        ]);
    }
    print!("{}", table.render());
    println!("\n(ratios are against the m={m}-resource offline lower bound {lower};");
    println!(" the online algorithms run with n={n} resources — resource augmentation)");
}
