//! Measuring a *true* competitive ratio with the exact offline optimum.
//!
//! On small instances the exact DP in `rrs-offline` computes OPT, so the
//! ratio reported here is the real thing — no lower-bound slack.
//!
//! ```sh
//! cargo run --release --example competitive_ratio
//! ```

use rrs::analysis::table::Table;
use rrs::offline::{optimal, OptConfig};
use rrs::prelude::*;

fn main() {
    let (n, m, delta) = (8, 1, 2);
    let mut table = Table::new(["seed", "ΔLRU-EDF", "exact OPT", "true ratio"]);
    let mut worst = 0.0f64;
    for seed in 0..10u64 {
        let gen = RandomBatched {
            delay_bounds: vec![2, 4, 8],
            load: 0.7,
            activity: 0.8,
            horizon: 32,
            rate_limited: true,
        };
        let trace = gen.generate(seed);
        let mut policy = DlruEdf::new(trace.colors(), n, delta).unwrap();
        let online = run_policy(&trace, &mut policy, n, delta).unwrap();
        let opt = optimal(&trace, OptConfig::new(m, delta)).expect("small instance");
        let ratio = online.cost.total() as f64 / opt.cost.max(1) as f64;
        worst = worst.max(ratio);
        table.row([
            seed.to_string(),
            online.cost.total().to_string(),
            opt.cost.to_string(),
            format!("{ratio:.2}"),
        ]);
    }
    print!("{}", table.render());
    println!("\nworst true ratio with n = {n} vs m = {m}: {worst:.2}");
    println!("(Theorem 1 promises a constant; the constant in practice is small)");
}
