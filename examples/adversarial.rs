//! The paper's Appendix A and B lower-bound constructions, live.
//!
//! Runs ΔLRU on its adversary and EDF on its adversary, alongside ΔLRU-EDF on
//! both, showing the two single-principle schemes diverging while the
//! combination stays flat.
//!
//! ```sh
//! cargo run --release --example adversarial
//! ```

use rrs::analysis::runner::{run_kind, PolicyKind};
use rrs::analysis::table::Table;
use rrs::prelude::*;

fn main() {
    println!("Appendix A — the ΔLRU killer (short colors stay 'recent', a long");
    println!("color's backlog starves). Sweep the short delay exponent j:\n");
    let mut table = Table::new(["j", "ΔLRU cost", "ΔLRU-EDF cost", "ΔLRU/combined"]);
    for j in [5, 6, 7, 8, 9] {
        let adv = DlruAdversary {
            n: 8,
            delta: 2,
            j,
            k: j + 2,
        };
        let trace = adv.generate();
        let dlru = run_kind(PolicyKind::Dlru, &trace, 8, 2).unwrap();
        let combo = run_kind(PolicyKind::DlruEdf, &trace, 8, 2).unwrap();
        table.row([
            j.to_string(),
            dlru.cost.total().to_string(),
            combo.cost.total().to_string(),
            format!(
                "{:.1}x",
                dlru.cost.total() as f64 / combo.cost.total().max(1) as f64
            ),
        ]);
    }
    print!("{}", table.render());

    println!("\nAppendix B — the EDF killer (an alternating short color makes EDF");
    println!("thrash long colors in and out of the cache). Sweep k−j:\n");
    let mut table = Table::new(["k-j", "EDF cost", "ΔLRU-EDF cost", "EDF/combined"]);
    for k in [5, 6, 7, 8, 9] {
        let adv = EdfAdversary {
            n: 4,
            delta: 6,
            j: 3,
            k,
        };
        let trace = adv.generate();
        let edf = run_kind(PolicyKind::Edf, &trace, 4, 6).unwrap();
        let combo = run_kind(PolicyKind::DlruEdf, &trace, 4, 6).unwrap();
        table.row([
            (k - 3).to_string(),
            edf.cost.total().to_string(),
            combo.cost.total().to_string(),
            format!(
                "{:.1}x",
                edf.cost.total() as f64 / combo.cost.total().max(1) as f64
            ),
        ]);
    }
    print!("{}", table.render());
    println!("\nBoth gaps grow without bound in the sweep parameter — neither recency");
    println!("nor deadlines alone suffice; the ΔLRU-EDF combination handles both.");
}
