//! The paging special case (Sleator–Tarjan): LRU's k/(k−h+1) bound, the
//! randomized Marking algorithm, and the embedding into the scheduling model.
//!
//! ```sh
//! cargo run --release --example paging
//! ```

use rrs::analysis::table::Table;
use rrs_uniform::filecache::{belady_faults, run_policy as run_cache, MarkingCache};
use rrs_uniform::paging::PagingLru;
use rrs_uniform::{lru_paging_faults, PagingInstance};

fn main() {
    println!("Paging = RRS with unit delay bound, unit Δ, infinite drop cost.\n");

    // 1. Sleator–Tarjan on the cyclic adversary.
    let npages = 9;
    let inst = PagingInstance::cyclic(npages, 900);
    let mut table = Table::new(["k", "h", "LRU(k)", "Marking(k)", "OPT(h)", "LRU ratio", "k/(k-h+1)"]);
    for (k, h) in [(8, 8), (8, 6), (8, 4), (8, 2)] {
        let lru = lru_paging_faults(&inst, k);
        let marking: u64 = (0..5)
            .map(|s| run_cache(&inst.to_caching(), &mut MarkingCache::new(s), k))
            .sum::<u64>()
            / 5;
        let opt = belady_faults(&inst.to_caching(), h);
        table.row([
            k.to_string(),
            h.to_string(),
            lru.to_string(),
            marking.to_string(),
            opt.to_string(),
            format!("{:.2}", lru as f64 / opt.max(1) as f64),
            format!("{:.2}", k as f64 / (k - h + 1) as f64),
        ]);
    }
    print!("{}", table.render());

    // 2. The embedding: run demand-paging LRU inside the scheduling engine.
    let local = PagingInstance::with_locality(32, 2000, 4, 0.85, 7);
    let trace = local.to_rrs_trace();
    let k = 8;
    let mut policy = PagingLru::new();
    let run = rrs_core::engine::run_policy(&trace, &mut policy, k, 1).unwrap();
    println!(
        "\nembedding check (working-set trace, k = {k}): engine reconfigurations = {} \
         == LRU faults = {}; drops = {}",
        run.reconfig_events,
        lru_paging_faults(&local, k),
        run.cost.drop
    );
}
