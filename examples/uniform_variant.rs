//! The SPAA 2006 companion variant: uniform delay bounds, variable drop
//! costs, solved with the cost-weighted ΔLRU (the Landlord/caching reduction).
//!
//! ```sh
//! cargo run --release --example uniform_variant
//! ```

use rrs::analysis::table::Table;
use rrs_uniform::problem::{run_block_policy, GreedyBlocks, StaticBlocks};
use rrs_uniform::{
    block_lower_bound, optimal_uniform, UniformOptConfig, UniformWorkload, WeightedDlru,
};

fn main() {
    let delta = 8;
    let m = 1; // offline slots
    let n = 4; // online slots (4x augmentation)
    let workload = UniformWorkload {
        d: 8,
        ncolors: 6,
        max_cost: 16,
        blocks: 256,
        activity: 0.6,
        load: 0.8,
    };
    println!(
        "uniform variant [Δ | c_ℓ | D | D]: D = {}, Δ = {delta}, {} colors, {} blocks",
        workload.d, workload.ncolors, workload.blocks
    );
    println!("online algorithms get n = {n} slots; OPT gets m = {m}\n");

    let mut table = Table::new([
        "seed",
        "OPT(m)",
        "LB",
        "wΔLRU",
        "ratio",
        "Greedy",
        "Static",
    ]);
    for seed in 0..8u64 {
        let inst = workload.generate(seed);
        let opt = optimal_uniform(&inst, UniformOptConfig::new(m, delta)).expect("block DP");
        let lb = block_lower_bound(&inst, m, delta);
        let mut w = WeightedDlru::new(&inst, n, delta);
        let online = run_block_policy(&inst, &mut w, n, delta).unwrap();
        let mut g = GreedyBlocks::new(&inst, n);
        let greedy = run_block_policy(&inst, &mut g, n, delta).unwrap();
        let mut s = StaticBlocks::spread(inst.ncolors(), n);
        let stat = run_block_policy(&inst, &mut s, n, delta).unwrap();
        table.row([
            seed.to_string(),
            opt.to_string(),
            lb.to_string(),
            online.total().to_string(),
            format!("{:.2}", online.total() as f64 / opt.max(1) as f64),
            greedy.total().to_string(),
            stat.total().to_string(),
        ]);
    }
    print!("{}", table.render());
    println!("\nWith a uniform delay bound all deadlines coincide, so the deadline half");
    println!("of ΔLRU-EDF degenerates and recency (weighted by drop cost) suffices —");
    println!("the structural reason the companion paper could reduce to file caching.");
}
