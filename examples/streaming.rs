//! Embedding the scheduler in a live system: the streaming engine.
//!
//! A deployed multi-service router doesn't replay traces — packets arrive,
//! a round elapses, the scheduler reacts. `StreamingEngine` exposes exactly
//! that loop; here we drive ΔLRU-EDF live against a flash crowd injected
//! mid-run, printing per-round outcomes around the spike.
//!
//! ```sh
//! cargo run --release --example streaming
//! ```

use rrs::core::streaming::StreamingEngine;
use rrs::core::CostModel;
use rrs::prelude::*;
use rrs::workloads::flash_crowd;

fn main() {
    // Base traffic: two steady categories...
    let base = RandomBatched {
        delay_bounds: vec![8, 16],
        load: 0.4,
        activity: 0.9,
        horizon: 512,
        rate_limited: true,
    }
    .generate(7);
    // ...with a 400-job flash crowd injected around round 200.
    let trace = flash_crowd(&base, 200, 400, 4, 1);
    println!(
        "live feed: {} jobs over {} rounds (flash crowd ≈ round 200)\n",
        trace.total_jobs(),
        trace.horizon()
    );

    let (n, delta) = (8, 4);
    let policy = DlruEdf::new(trace.colors(), n, delta).expect("n multiple of 4");
    let mut engine = StreamingEngine::new(
        trace.colors().clone(),
        Box::new(policy),
        n,
        CostModel::new(delta),
    )
    .expect("valid engine");

    // The serving loop: one step per round, arrivals pushed as they happen.
    for round in 0..=trace.last_arrival_round().unwrap_or(0) {
        let arrivals = trace.arrivals_at(round);
        let out = engine.step(&arrivals).expect("step");
        // Report the rounds around the spike.
        if (198..=212).contains(&round) {
            println!(
                "round {:>3}: +{:<3} arrivals  exec {:<2} drop {:<2} recolor {:<2} pending {}",
                round,
                arrivals.iter().map(|&(_, k)| k).sum::<u64>(),
                out.executed,
                out.dropped,
                out.recolored,
                engine.pending_jobs()
            );
        }
    }
    let result = engine.finish().expect("drain");
    println!(
        "\nfinal: cost {} (reconfig {}, drops {}), completion {:.1}%",
        result.cost.total(),
        result.cost.reconfig,
        result.cost.drop,
        100.0 * result.completion_rate()
    );
}
