//! Multi-service router scenario (paper §1): packet categories with
//! per-category delay tolerances on a multi-core network processor; traffic
//! arrives as heavy-tailed flowlets, so per-category load swings sharply.
//!
//! ```sh
//! cargo run --example router
//! ```

use rrs::analysis::runner::{run_kind, PolicyKind};
use rrs::analysis::table::Table;
use rrs::prelude::*;

fn main() {
    let scenario = Router {
        delay_bounds: vec![4, 8, 8, 16, 32, 64],
        flowlet_rate: 0.12,
        pareto_alpha: 1.4,
        pareto_scale: 3.0,
        max_flowlet: 64,
        horizon: 4096,
    };
    let trace = scenario.generate(7);
    println!(
        "router: {} packet categories, {} packets over {} rounds",
        trace.colors().len(),
        trace.total_jobs(),
        trace.horizon()
    );
    let max_burst = trace.iter().map(|a| a.count).max().unwrap_or(0);
    println!("largest single-round burst: {max_burst} packets\n");

    let (n, m, delta) = (16, 4, 4);
    let lower = combined_bound(&trace, m, delta);
    let mut table = Table::new(["policy", "total", "reconfig", "drops", "completion %"]);
    for kind in [
        PolicyKind::VarBatch,
        PolicyKind::Dlru,
        PolicyKind::Edf,
        PolicyKind::GreedyPending,
        PolicyKind::StaticPartition,
        PolicyKind::HindsightGreedy,
    ] {
        let s = run_kind(kind, &trace, n, delta).expect("run");
        let total_jobs = s.executed + s.cost.drop;
        table.row([
            kind.name().to_string(),
            s.cost.total().to_string(),
            s.cost.reconfig.to_string(),
            s.cost.drop.to_string(),
            format!("{:.1}", 100.0 * s.executed as f64 / total_jobs.max(1) as f64),
        ]);
    }
    print!("{}", table.render());
    println!("\noffline lower bound (m={m}): {lower}");
}
