//! Plain-text tables and CSV output for experiment reports.

use std::fmt::Write as _;

/// A simple column-aligned ASCII table.
#[derive(Debug, Clone, Default)]
pub struct Table {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column headers.
    pub fn new<S: Into<String>, I: IntoIterator<Item = S>>(headers: I) -> Self {
        Table {
            headers: headers.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row (must match the header count).
    pub fn row<S: Into<String>, I: IntoIterator<Item = S>>(&mut self, cells: I) -> &mut Self {
        let row: Vec<String> = cells.into_iter().map(Into::into).collect();
        assert_eq!(row.len(), self.headers.len(), "row arity mismatch");
        self.rows.push(row);
        self
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders the table with aligned columns.
    pub fn render(&self) -> String {
        let cols = self.headers.len();
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.chars().count()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.chars().count());
            }
        }
        let mut out = String::new();
        let fmt_row = |out: &mut String, cells: &[String]| {
            for i in 0..cols {
                let pad = widths[i] - cells[i].chars().count();
                let _ = write!(out, "{}{}", cells[i], " ".repeat(pad));
                if i + 1 < cols {
                    out.push_str("  ");
                }
            }
            out.push('\n');
        };
        fmt_row(&mut out, &self.headers);
        let total: usize = widths.iter().sum::<usize>() + 2 * (cols - 1);
        let _ = writeln!(out, "{}", "-".repeat(total));
        for row in &self.rows {
            fmt_row(&mut out, row);
        }
        out
    }

    /// Renders the table as GitHub-flavored Markdown.
    pub fn to_markdown(&self) -> String {
        let mut out = String::new();
        let escape = |s: &String| s.replace('|', "\\|");
        let _ = writeln!(
            out,
            "| {} |",
            self.headers.iter().map(&escape).collect::<Vec<_>>().join(" | ")
        );
        let _ = writeln!(
            out,
            "|{}|",
            self.headers.iter().map(|_| "---").collect::<Vec<_>>().join("|")
        );
        for row in &self.rows {
            let _ = writeln!(
                out,
                "| {} |",
                row.iter().map(&escape).collect::<Vec<_>>().join(" | ")
            );
        }
        out
    }

    /// Renders the table as CSV (RFC-4180-ish quoting of commas and quotes).
    pub fn to_csv(&self) -> String {
        let quote = |s: &String| -> String {
            if s.contains(',') || s.contains('"') || s.contains('\n') {
                format!("\"{}\"", s.replace('"', "\"\""))
            } else {
                s.clone()
            }
        };
        let mut out = String::new();
        let _ = writeln!(
            out,
            "{}",
            self.headers.iter().map(quote).collect::<Vec<_>>().join(",")
        );
        for row in &self.rows {
            let _ = writeln!(out, "{}", row.iter().map(quote).collect::<Vec<_>>().join(","));
        }
        out
    }
}

/// Formats a float ratio compactly (`inf` for infinity).
pub fn fmt_ratio(x: f64) -> String {
    if x.is_infinite() {
        "inf".into()
    } else {
        format!("{x:.2}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned() {
        let mut t = Table::new(["algo", "cost"]);
        t.row(["ΔLRU-EDF", "120"]).row(["EDF", "4500"]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].starts_with("algo"));
        assert!(lines[2].contains("ΔLRU-EDF"));
        assert_eq!(t.len(), 2);
        assert!(!t.is_empty());
    }

    #[test]
    fn markdown_renders_pipes_escaped() {
        let mut t = Table::new(["a", "b"]);
        t.row(["x|y", "z"]);
        let md = t.to_markdown();
        assert!(md.starts_with("| a | b |"));
        assert!(md.contains("|---|---|"));
        assert!(md.contains("x\\|y"));
    }

    #[test]
    fn csv_quotes_commas() {
        let mut t = Table::new(["a", "b"]);
        t.row(["x,y", "plain"]);
        t.row(["has \"quote\"", "z"]);
        let csv = t.to_csv();
        assert!(csv.contains("\"x,y\""));
        assert!(csv.contains("\"has \"\"quote\"\"\""));
    }

    #[test]
    #[should_panic(expected = "arity")]
    fn arity_checked() {
        Table::new(["a", "b"]).row(["only-one"]);
    }

    #[test]
    fn ratio_formatting() {
        assert_eq!(fmt_ratio(2.0), "2.00");
        assert_eq!(fmt_ratio(f64::INFINITY), "inf");
    }
}
