//! E15 and E16: the SPAA 2006 companion variant and the paging special case.
//!
//! The supplied paper builds on two earlier results it cites explicitly:
//! its own companion (reference [14]: uniform delay bounds, variable drop
//! costs, solved via file caching) and Sleator–Tarjan paging (the degenerate
//! special case). `rrs-uniform` implements both; these experiments measure
//! their claims.

use super::{ExpOptions, ExpReport};
use crate::sweep::par_map;
use crate::table::{fmt_ratio, Table};
use rrs_uniform::filecache;
use rrs_uniform::problem::{run_block_policy, GreedyBlocks, StaticBlocks};
use rrs_uniform::{
    block_lower_bound, lru_paging_faults, optimal_uniform, PagingInstance, UniformOptConfig,
    UniformWorkload, WeightedDlru,
};

/// E15 — the uniform variant `[Δ | c_ℓ | D | D]`: the weighted-ΔLRU
/// (Landlord-style) algorithm is resource competitive; cost-oblivious and
/// static baselines are not.
pub fn e15_uniform_variant(opts: ExpOptions) -> ExpReport {
    let delta = 8;
    let m = 1;
    let n = 4 * m;
    let seeds: Vec<u64> = (0..if opts.quick { 2 } else { 6 })
        .map(|i| opts.seed + i)
        .collect();
    let rows = par_map(seeds, opts.threads, |&seed| {
        let workload = UniformWorkload {
            blocks: if opts.quick { 48 } else { 192 },
            ..UniformWorkload::default()
        };
        let inst = workload.generate(seed);
        let opt = optimal_uniform(&inst, UniformOptConfig::new(m, delta))
            .expect("block DP fits");
        let lb = block_lower_bound(&inst, m, delta);
        let mut w = WeightedDlru::new(&inst, n, delta);
        let online = run_block_policy(&inst, &mut w, n, delta).expect("run");
        let mut g = GreedyBlocks::new(&inst, n);
        let greedy = run_block_policy(&inst, &mut g, n, delta).expect("run");
        let mut s = StaticBlocks::spread(inst.ncolors(), n);
        let stat = run_block_policy(&inst, &mut s, n, delta).expect("run");
        (seed, lb, opt, online, greedy, stat)
    });
    let mut table = Table::new([
        "seed",
        "OPT(m=1)",
        "LB",
        "wΔLRU cost",
        "ratio",
        "Greedy cost",
        "Static cost",
    ]);
    let mut worst = 0.0f64;
    let mut sound = true;
    for (seed, lb, opt, online, greedy, stat) in &rows {
        sound &= lb <= opt;
        let r = online.total() as f64 / (*opt).max(1) as f64;
        worst = worst.max(r);
        table.row([
            seed.to_string(),
            opt.to_string(),
            lb.to_string(),
            online.total().to_string(),
            fmt_ratio(r),
            greedy.total().to_string(),
            stat.total().to_string(),
        ]);
    }
    let pass = sound && worst.is_finite() && worst < 12.0;
    ExpReport {
        id: "E15",
        title: "Companion variant [Δ | c_ℓ | D | D] (SPAA 2006 reduction to caching)",
        claim: "with a uniform delay bound the deadline aspect degenerates and a \
                cost-weighted ΔLRU (Landlord-style caching) is resource competitive \
                against the exact block-level optimum",
        table,
        notes: vec![format!("worst ratio vs exact block OPT: {worst:.2} (n = 4m)")],
        pass: Some(pass),
    }
}

/// E16 — the paging special case: Sleator–Tarjan's `k/(k−h+1)` bound for LRU,
/// plus the embedding into the scheduling model.
pub fn e16_paging(opts: ExpOptions) -> ExpReport {
    let npages = 9;
    let len = if opts.quick { 180 } else { 1800 };
    let cyclic = PagingInstance::cyclic(npages, len);
    let local = PagingInstance::with_locality(32, len, 4, 0.85, opts.seed);
    let mut table = Table::new([
        "sequence", "k", "h", "LRU(k)", "OPT(h)", "ratio", "k/(k-h+1)", "within bound",
    ]);
    let mut pass = true;
    for (name, inst) in [("cyclic", &cyclic), ("working-set", &local)] {
        for (k, h) in [(8usize, 8usize), (8, 5), (8, 2), (4, 4)] {
            let lru = lru_paging_faults(inst, k);
            let opt = filecache::belady_faults(&inst.to_caching(), h);
            let ratio = lru as f64 / (opt as f64).max(1.0);
            let bound = k as f64 / (k - h + 1) as f64;
            let ok = ratio <= bound + 1e-9;
            pass &= ok;
            table.row([
                name.to_string(),
                k.to_string(),
                h.to_string(),
                lru.to_string(),
                opt.to_string(),
                fmt_ratio(ratio),
                fmt_ratio(bound),
                ok.to_string(),
            ]);
        }
    }
    // The embedding: LRU faults == reconfiguration events in the RRS model.
    let trace = local.to_rrs_trace();
    let mut policy = rrs_uniform::paging::PagingLru::new();
    let run = rrs_core::engine::run_policy(&trace, &mut policy, 8, 1).expect("run");
    let faults = lru_paging_faults(&local, 8);
    let embed_ok = run.reconfig_events == faults && run.cost.drop == 0;
    pass &= embed_ok;
    ExpReport {
        id: "E16",
        title: "Paging special case (Sleator–Tarjan)",
        claim: "paging = RRS with unit delay bound, unit Δ, infinite drop cost; LRU is \
                k/(k−h+1)-competitive, matching the resource-augmentation paradigm the \
                paper adopts",
        table,
        notes: vec![format!(
            "embedding check: PagingLRU in the scheduling engine reconfigures {} times \
             = LRU faults {faults}, zero drops: {embed_ok}",
            run.reconfig_events
        )],
        pass: Some(pass),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn e15_quick_passes() {
        let r = e15_uniform_variant(ExpOptions::quick());
        assert_eq!(r.pass, Some(true), "\n{}", r.render());
    }

    #[test]
    fn e16_quick_passes() {
        let r = e16_paging(ExpOptions::quick());
        assert_eq!(r.pass, Some(true), "\n{}", r.render());
    }
}
