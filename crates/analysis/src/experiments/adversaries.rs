//! E1 and E2: the paper's Appendix A/B lower-bound constructions, measured.
//!
//! Each experiment sweeps the construction's free exponent, runs the targeted
//! algorithm and ΔLRU-EDF on the same input with the same resources, and
//! reports cost ratios against the offline schedule the appendix describes
//! (whose cost we also bracket with our own OPT estimate). The paper's claim
//! is a *shape*: the targeted algorithm's ratio grows without bound along the
//! sweep while ΔLRU-EDF's stays flat.

use super::{ExpOptions, ExpReport};
use crate::ratio::{estimate_opt, ratio, EstimateOptions};
use crate::runner::{run_kind, PolicyKind};
use crate::sweep::par_map;
use crate::table::{fmt_ratio, Table};
use rrs_workloads::{DlruAdversary, EdfAdversary};

/// E1 — Appendix A: ΔLRU is not resource competitive.
pub fn e1_dlru_adversary(opts: ExpOptions) -> ExpReport {
    let n = 8;
    let delta = 2; // 2^{j+1} > nΔ = 16 needs j >= 4
    let js: Vec<u32> = if opts.quick {
        vec![5, 7]
    } else {
        vec![5, 6, 7, 8, 9, 10, 11]
    };
    let rows = par_map(js, opts.threads, |&j| {
        let adv = DlruAdversary {
            n,
            delta,
            j,
            k: j + 2,
        };
        let trace = adv.generate();
        let dlru = run_kind(PolicyKind::Dlru, &trace, n, delta).expect("run ΔLRU");
        let combo = run_kind(PolicyKind::DlruEdf, &trace, n, delta).expect("run ΔLRU-EDF");
        // The offline comparator has one resource (as in the appendix).
        let opt = estimate_opt(&trace, 1, delta, EstimateOptions::default());
        (j, adv, dlru, combo, opt)
    });
    let mut table = Table::new([
        "j", "k", "rounds", "ΔLRU cost", "ΔLRU-EDF cost", "OPT≤", "ratio ΔLRU", "ratio ΔLRU-EDF",
        "paper bound",
    ]);
    let mut dlru_ratios = Vec::new();
    let mut combo_ratios = Vec::new();
    for (j, adv, dlru, combo, opt) in &rows {
        let denom = opt.upper; // a concrete offline schedule's cost
        let r_dlru = ratio(dlru.cost.total(), denom);
        let r_combo = ratio(combo.cost.total(), denom);
        dlru_ratios.push(r_dlru);
        combo_ratios.push(r_combo);
        table.row([
            j.to_string(),
            adv.k.to_string(),
            (1u64 << adv.k).to_string(),
            dlru.cost.total().to_string(),
            combo.cost.total().to_string(),
            denom.to_string(),
            fmt_ratio(r_dlru),
            fmt_ratio(r_combo),
            fmt_ratio(adv.paper_ratio_bound()),
        ]);
    }
    // Shape check: ΔLRU's ratio grows monotonically along the sweep and ends
    // at least 4x above ΔLRU-EDF's, which stays below a fixed constant.
    let growing = dlru_ratios.windows(2).all(|w| w[1] > w[0]);
    let last = *dlru_ratios.last().unwrap();
    let combo_flat = combo_ratios.iter().all(|&r| r < 16.0);
    let pass = growing && combo_flat && last > 4.0 * combo_ratios.last().unwrap();
    ExpReport {
        id: "E1",
        title: "Appendix A adversary vs ΔLRU",
        claim: "ΔLRU's competitive ratio is Ω(2^{j+1}/(nΔ)) — unbounded in j — while \
                ΔLRU-EDF stays constant on the same input",
        table,
        notes: vec![format!(
            "ΔLRU ratio grew {:.1} → {:.1}; ΔLRU-EDF stayed in [{:.1}, {:.1}]",
            dlru_ratios.first().unwrap(),
            last,
            combo_ratios.iter().cloned().fold(f64::INFINITY, f64::min),
            combo_ratios.iter().cloned().fold(0.0, f64::max)
        )],
        pass: Some(pass),
    }
}

/// E2 — Appendix B: EDF is not resource competitive.
pub fn e2_edf_adversary(opts: ExpOptions) -> ExpReport {
    let n = 4;
    let delta = 6; // 2^j > Δ > n with j = 3
    let j = 3;
    let ks: Vec<u32> = if opts.quick {
        vec![5, 7]
    } else {
        vec![5, 6, 7, 8, 9, 10, 11, 12]
    };
    let rows = par_map(ks, opts.threads, |&k| {
        let adv = EdfAdversary { n, delta, j, k };
        let trace = adv.generate();
        let edf = run_kind(PolicyKind::Edf, &trace, n, delta).expect("run EDF");
        let combo = run_kind(PolicyKind::DlruEdf, &trace, n, delta).expect("run ΔLRU-EDF");
        let opt = estimate_opt(&trace, 1, delta, EstimateOptions::default());
        (k, adv, edf, combo, opt)
    });
    let mut table = Table::new([
        "k-j",
        "rounds",
        "EDF cost",
        "EDF reconfig",
        "ΔLRU-EDF cost",
        "OPT≤",
        "ratio EDF",
        "ratio ΔLRU-EDF",
        "paper bound",
    ]);
    let mut edf_ratios = Vec::new();
    let mut combo_ratios = Vec::new();
    for (k, adv, edf, combo, opt) in &rows {
        // The appendix's offline schedule cost is (n/2+1)Δ; our estimate's
        // upper bound is a real schedule too — use the smaller.
        let denom = opt.upper.min(adv.offline_cost());
        let r_edf = ratio(edf.cost.total(), denom);
        let r_combo = ratio(combo.cost.total(), denom);
        edf_ratios.push(r_edf);
        combo_ratios.push(r_combo);
        table.row([
            (k - j).to_string(),
            (1u64 << (k + n as u32 / 2 - 1)).to_string(),
            edf.cost.total().to_string(),
            edf.cost.reconfig.to_string(),
            combo.cost.total().to_string(),
            denom.to_string(),
            fmt_ratio(r_edf),
            fmt_ratio(r_combo),
            fmt_ratio(adv.paper_ratio_bound()),
        ]);
    }
    let growing = edf_ratios.windows(2).all(|w| w[1] >= w[0]);
    // Each doubling of 2^{k-j} should roughly double the ratio; require at
    // least a 2x overall rise per two sweep points.
    let diverged = *edf_ratios.last().unwrap() >= 2.0 * edf_ratios.first().unwrap();
    let combo_flat = {
        let max = combo_ratios.iter().cloned().fold(0.0, f64::max);
        let min = combo_ratios.iter().cloned().fold(f64::INFINITY, f64::min);
        max < 8.0 * min.max(1.0)
    };
    ExpReport {
        id: "E2",
        title: "Appendix B adversary vs EDF",
        claim: "EDF's competitive ratio is ≥ 2^{k-j-1}/(n/2+1) — unbounded in k−j — \
                while ΔLRU-EDF stays constant on the same input",
        table,
        notes: vec![format!(
            "EDF ratio grew {:.1} → {:.1}; ΔLRU-EDF stayed ≤ {:.1}",
            edf_ratios.first().unwrap(),
            edf_ratios.last().unwrap(),
            combo_ratios.iter().cloned().fold(0.0, f64::max)
        )],
        pass: Some(growing && diverged && combo_flat),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn e1_quick_passes() {
        let r = e1_dlru_adversary(ExpOptions::quick());
        assert_eq!(r.pass, Some(true), "\n{}", r.render());
    }

    #[test]
    fn e2_quick_passes() {
        let r = e2_edf_adversary(ExpOptions::quick());
        assert_eq!(r.pass, Some(true), "\n{}", r.render());
    }
}
