//! E10 and E11: resource-augmentation sweep and design ablations.

use super::suite::rate_limited_suite;
use super::{ExpOptions, ExpReport};
use crate::cache::bound_cache;
use crate::ratio::{estimate_opt, ratio, EstimateOptions};
use crate::runner::{run_kind, PolicyKind};
use crate::sweep::ParallelRunner;
use crate::table::{fmt_ratio, Table};
use rrs_algorithms::{DlruEdf, DlruEdfConfig};
use rrs_core::prelude::*;
use rrs_core::{CostModel, Engine};
use rrs_workloads::{Bursty, DlruAdversary};

/// E10 — how much augmentation does ΔLRU-EDF actually need? Sweep `n` while
/// the offline comparator keeps `m = 1` resource.
pub fn e10_augmentation(opts: ExpOptions) -> ExpReport {
    let delta = 3;
    let m = 1;
    let horizon = if opts.quick { 256 } else { 2048 };
    let g = Bursty {
        delay_bounds: vec![4, 8, 16, 32],
        on_load: 0.9,
        p_on: 0.3,
        p_off: 0.3,
        horizon,
        rate_limited: true,
    };
    let trace = g.generate(opts.seed);
    let cache_before = bound_cache().stats();
    let opt = estimate_opt(&trace, m, delta, EstimateOptions::default());
    let ns: Vec<usize> = vec![4, 8, 16, 32];
    let sweep = ParallelRunner::new(opts.threads).run(ns, |&n| {
        let s = run_kind(PolicyKind::DlruEdf, &trace, n, delta).expect("run");
        // The comparator's bound is fixed at m=1, so every cell after the
        // first estimate_opt call above is a cache hit.
        let lower = bound_cache().combined_bound(&trace, m, delta);
        debug_assert_eq!(lower, opt.lower);
        (n, s.cost)
    });
    let rows = &sweep.results;
    let mut table = Table::new(["n (m=1)", "cost", "reconfig", "drops", "ratio≤ vs lower"]);
    let mut ratios = Vec::new();
    for (n, cost) in rows {
        let r = ratio(cost.total(), opt.lower);
        ratios.push(r);
        table.row([
            n.to_string(),
            cost.total().to_string(),
            cost.reconfig.to_string(),
            cost.drop.to_string(),
            fmt_ratio(r),
        ]);
    }
    // Shape: more resources never hurt much — the ratio at n=32 is at most
    // the ratio at n=4, and by n=8 (the theorem's 8m) it is bounded.
    let pass = ratios.last().unwrap() <= ratios.first().unwrap() && ratios[1].is_finite();
    ExpReport {
        id: "E10",
        title: "Resource augmentation sweep",
        claim: "the competitive ratio improves (or saturates) as the augmentation \
                factor n/m grows; n = 8m (Theorem 1) is already in the flat regime",
        table,
        notes: vec![
            format!("OPT sandwich: [{}, {}]", opt.lower, opt.upper),
            format!("sweep: {}", sweep.stats.summary()),
            format!("{}", bound_cache().stats().since(&cache_before).summary()),
        ],
        pass: Some(pass),
    }
}

/// E11 — ablations of the two ΔLRU-EDF design choices: the LRU/EDF capacity
/// split and the two-location replication.
pub fn e11_ablation(opts: ExpOptions) -> ExpReport {
    let n = 8;
    let delta = 2;
    // Configurations: the paper's (1/4 LRU + 1/4 EDF, replicated ×2), a
    // pure-LRU cache, a pure-EDF cache, and no-replication variants.
    let configs: Vec<(&'static str, DlruEdfConfig)> = vec![
        (
            "paper (1+1, r=2)",
            DlruEdfConfig {
                lru_quarters: 1,
                edf_quarters: 1,
                replication: 2,
            },
        ),
        (
            "all-LRU (2+0, r=2)",
            DlruEdfConfig {
                lru_quarters: 2,
                edf_quarters: 0,
                replication: 2,
            },
        ),
        (
            "all-EDF (0+2, r=2)",
            DlruEdfConfig {
                lru_quarters: 0,
                edf_quarters: 2,
                replication: 2,
            },
        ),
        (
            "no-repl (2+2, r=1)",
            DlruEdfConfig {
                lru_quarters: 2,
                edf_quarters: 2,
                replication: 1,
            },
        ),
        (
            "no-repl LRU-heavy (3+1, r=1)",
            DlruEdfConfig {
                lru_quarters: 3,
                edf_quarters: 1,
                replication: 1,
            },
        ),
    ];
    // Workloads: the ΔLRU adversary (kills recency-only), plus a random
    // rate-limited suite instance (general health).
    let adv = DlruAdversary {
        n,
        delta,
        j: if opts.quick { 5 } else { 8 },
        k: if opts.quick { 7 } else { 10 },
    };
    let mut workloads = vec![("appendix-A".to_string(), adv.generate())];
    workloads.extend(rate_limited_suite(opts).into_iter().take(2));

    let grid: Vec<(String, &'static str, DlruEdfConfig)> = workloads
        .iter()
        .flat_map(|(wname, _)| {
            configs
                .iter()
                .map(move |(cname, cfg)| (wname.clone(), *cname, *cfg))
        })
        .collect();
    let traces: std::collections::BTreeMap<String, Trace> = workloads.into_iter().collect();
    let sweep = ParallelRunner::new(opts.threads).run(grid, |(wname, cname, cfg)| {
        let trace = &traces[wname];
        let mut p = DlruEdf::with_config(trace.colors(), n, delta, *cfg).expect("geometry");
        let r = Engine::new()
            .run(trace, &mut p, n, CostModel::new(delta))
            .expect("run");
        (wname.clone(), *cname, r.cost)
    });
    let rows = &sweep.results;
    let mut table = Table::new(["workload", "config", "cost", "reconfig", "drops"]);
    let mut paper_costs = std::collections::BTreeMap::new();
    let mut all_costs: Vec<(String, String, u64)> = Vec::new();
    for (wname, cname, cost) in rows {
        if *cname == "paper (1+1, r=2)" {
            paper_costs.insert(wname.clone(), cost.total());
        }
        all_costs.push((wname.clone(), cname.to_string(), cost.total()));
        table.row([
            wname.clone(),
            cname.to_string(),
            cost.total().to_string(),
            cost.reconfig.to_string(),
            cost.drop.to_string(),
        ]);
    }
    // Shape check: on the Appendix A adversary, the paper split must beat the
    // all-LRU ablation by a wide margin (that ablation is ΔLRU-like).
    let paper_adv = paper_costs["appendix-A"];
    let all_lru_adv = all_costs
        .iter()
        .find(|(w, c, _)| w == "appendix-A" && c.starts_with("all-LRU"))
        .map(|&(_, _, v)| v)
        .unwrap();
    let pass = paper_adv * 2 <= all_lru_adv;
    ExpReport {
        id: "E11",
        title: "Ablations (LRU/EDF split, replication)",
        claim: "both halves matter: removing the EDF half reproduces the ΔLRU \
                pathology on the Appendix A adversary",
        table,
        notes: vec![
            format!("appendix-A: paper config {paper_adv} vs all-LRU {all_lru_adv}"),
            format!("sweep: {}", sweep.stats.summary()),
        ],
        pass: Some(pass),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn e10_quick_passes() {
        let r = e10_augmentation(ExpOptions::quick());
        assert_eq!(r.pass, Some(true), "\n{}", r.render());
    }

    #[test]
    fn e11_quick_passes() {
        let r = e11_ablation(ExpOptions::quick());
        assert_eq!(r.pass, Some(true), "\n{}", r.render());
    }
}
