//! The experiment harness: one function per claim in the paper.
//!
//! The paper is theory-only (no tables or figures), so the "evaluation" to
//! reproduce is its set of theorems, lemmas and appendix constructions. Each
//! experiment regenerates one claim as a measurable table; EXPERIMENTS.md
//! records the claim vs. what we measure. Experiment ids:
//!
//! | id  | claim |
//! |-----|-------|
//! | E1  | Appendix A: ΔLRU's ratio diverges; ΔLRU-EDF stays flat |
//! | E2  | Appendix B: EDF's ratio diverges; ΔLRU-EDF stays flat |
//! | E3  | Theorem 1: ΔLRU-EDF resource competitive (rate-limited batched) |
//! | E4  | Lemma 3.3: reconfig cost ≤ 4 · epochs · Δ |
//! | E5  | Lemma 3.4: ineligible drop cost ≤ epochs · Δ |
//! | E6  | Lemma 3.2 chain: eligible drops ≤ DS-Seq-EDF(α) ≤ Par-EDF(α) |
//! | E7  | Theorem 2 (Distribute) + Lemma 4.1 (Aggregate factor sweep) |
//! | E8  | Theorem 3 (VarBatch on general arrivals) |
//! | E9  | True competitive ratios vs exact OPT on small instances |
//! | E10 | Resource-augmentation sweep (ratio vs n/m) |
//! | E11 | Ablations: LRU/EDF split and replication |
//! | E13 | Data-center scenario comparison |
//! | E14 | Router scenario comparison |
//! | E15 | Companion variant [Δ|c_ℓ|D|D] via weighted caching (SPAA 2006) |
//! | E16 | Paging special case: Sleator–Tarjan k/(k−h+1) + embedding |
//! | E17 | Extensions: ARC-style adaptive split, ΔLRU-K |
//! | E18 | §3.4 super-epoch accounting (Lemma 3.5 machinery) |
//! | E19 | QoS latency (sojourn) profiles across algorithms |
//! | E20 | §1 background dilemma: eager vs patient idle-cycle strategies |
//!
//! (E12 is the Criterion throughput benchmark suite in `rrs-bench`.)

pub mod adversaries;
pub mod companion;
pub mod extensions;
pub mod lemmas;
pub mod scenarios;
pub mod suite;
pub mod sweeps;
pub mod theorems;

use crate::table::Table;

/// Output of one experiment.
#[derive(Debug, Clone)]
pub struct ExpReport {
    /// Experiment id (e.g. "E1").
    pub id: &'static str,
    /// Short title.
    pub title: &'static str,
    /// The paper claim being checked.
    pub claim: &'static str,
    /// Result table.
    pub table: Table,
    /// Free-form observations.
    pub notes: Vec<String>,
    /// Whether the claim's checkable inequality held on every row
    /// (`None` when the experiment is descriptive).
    pub pass: Option<bool>,
}

impl ExpReport {
    /// Renders the report as Markdown (for EXPERIMENTS.md-style documents).
    pub fn render_markdown(&self) -> String {
        let mut out = format!(
            "## {} — {}\n\n**Claim.** {}\n\n{}",
            self.id,
            self.title,
            self.claim,
            self.table.to_markdown()
        );
        for n in &self.notes {
            out.push_str("\n*");
            out.push_str(n);
            out.push_str("*\n");
        }
        if let Some(p) = self.pass {
            out.push_str(if p { "\n**PASS**\n" } else { "\n**FAIL**\n" });
        }
        out
    }

    /// Renders the report for terminal output.
    pub fn render(&self) -> String {
        let mut out = format!("== {} — {} ==\nClaim: {}\n\n", self.id, self.title, self.claim);
        out.push_str(&self.table.render());
        for n in &self.notes {
            out.push_str("note: ");
            out.push_str(n);
            out.push('\n');
        }
        if let Some(p) = self.pass {
            out.push_str(if p { "PASS\n" } else { "FAIL\n" });
        }
        out
    }
}

/// Global experiment sizing.
#[derive(Debug, Clone, Copy)]
pub struct ExpOptions {
    /// Shrink instance sizes for fast CI runs.
    pub quick: bool,
    /// Worker threads for sweeps (0 = auto).
    pub threads: usize,
    /// Base RNG seed.
    pub seed: u64,
}

impl Default for ExpOptions {
    fn default() -> Self {
        ExpOptions {
            quick: false,
            threads: 0,
            seed: 0xC0FFEE,
        }
    }
}

impl ExpOptions {
    /// Quick-mode constructor used by tests.
    pub fn quick() -> Self {
        ExpOptions {
            quick: true,
            ..Default::default()
        }
    }
}

/// Runs an experiment by id ("e1" … "e14", case-insensitive).
pub fn run_experiment(id: &str, opts: ExpOptions) -> Option<ExpReport> {
    match id.to_ascii_lowercase().as_str() {
        "e1" => Some(adversaries::e1_dlru_adversary(opts)),
        "e2" => Some(adversaries::e2_edf_adversary(opts)),
        "e3" => Some(theorems::e3_theorem1(opts)),
        "e4" => Some(lemmas::e4_lemma33(opts)),
        "e5" => Some(lemmas::e5_lemma34(opts)),
        "e6" => Some(lemmas::e6_lemma32_chain(opts)),
        "e7" => Some(theorems::e7_distribute(opts)),
        "e8" => Some(theorems::e8_varbatch(opts)),
        "e9" => Some(theorems::e9_exact_opt(opts)),
        "e10" => Some(sweeps::e10_augmentation(opts)),
        "e11" => Some(sweeps::e11_ablation(opts)),
        "e13" => Some(scenarios::e13_datacenter(opts)),
        "e15" => Some(companion::e15_uniform_variant(opts)),
        "e16" => Some(companion::e16_paging(opts)),
        "e17" => Some(extensions::e17_extensions(opts)),
        "e18" => Some(lemmas::e18_super_epochs(opts)),
        "e19" => Some(scenarios::e19_latency(opts)),
        "e20" => Some(scenarios::e20_background_dilemma(opts)),
        "e14" => Some(scenarios::e14_router(opts)),
        _ => None,
    }
}

/// All experiment ids in order.
pub const ALL_IDS: &[&str] = &[
    "e1", "e2", "e3", "e4", "e5", "e6", "e7", "e8", "e9", "e10", "e11", "e13", "e14", "e15", "e16", "e17", "e18", "e19", "e20",
];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unknown_id_is_none() {
        assert!(run_experiment("nope", ExpOptions::quick()).is_none());
    }

    #[test]
    fn report_renders() {
        let mut t = Table::new(["x"]);
        t.row(["1"]);
        let r = ExpReport {
            id: "E0",
            title: "t",
            claim: "c",
            table: t,
            notes: vec!["hello".into()],
            pass: Some(true),
        };
        let s = r.render();
        assert!(s.contains("E0"));
        assert!(s.contains("PASS"));
        assert!(s.contains("hello"));
        let md = r.render_markdown();
        assert!(md.starts_with("## E0"));
        assert!(md.contains("**PASS**"));
        assert!(md.contains("| x |"));
    }
}
