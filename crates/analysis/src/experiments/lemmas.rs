//! E4–E6: the analysis lemmas of §3.2–§3.3, measured.
//!
//! These lemmas are the load-bearing inequalities behind Theorem 1. Each
//! experiment evaluates both sides on real runs and checks the inequality
//! holds (and reports the slack, which the paper's constants leave on the
//! table).

use super::suite::rate_limited_suite;
use super::{ExpOptions, ExpReport};
use crate::sweep::par_map;
use crate::table::Table;
use rrs_algorithms::{par_edf, DlruEdf, Edf};
use rrs_core::prelude::*;
use rrs_core::{CostModel, Engine, EngineOptions};

/// E4 — Lemma 3.3: `ReconfigCost(ΔLRU-EDF) ≤ 4 · numEpochs · Δ`.
pub fn e4_lemma33(opts: ExpOptions) -> ExpReport {
    let n = 8;
    let delta = 3;
    let suite = rate_limited_suite(opts);
    let rows = par_map(suite, opts.threads, |(name, trace)| {
        let mut p = DlruEdf::new(trace.colors(), n, delta).expect("geometry");
        let r = Engine::new()
            .run(trace, &mut p, n, CostModel::new(delta))
            .expect("run");
        let epochs = p.state().num_epochs();
        (name.clone(), r.cost.reconfig, epochs)
    });
    let mut table = Table::new(["workload", "reconfig cost", "epochs", "4·epochs·Δ", "holds"]);
    let mut pass = true;
    for (name, reconfig, epochs) in &rows {
        let bound = 4 * epochs * delta;
        let ok = *reconfig <= bound;
        pass &= ok;
        table.row([
            name.clone(),
            reconfig.to_string(),
            epochs.to_string(),
            bound.to_string(),
            ok.to_string(),
        ]);
    }
    ExpReport {
        id: "E4",
        title: "Lemma 3.3 (reconfiguration cost vs epochs)",
        claim: "ΔLRU-EDF's reconfiguration cost is at most 4 · numEpochs · Δ",
        table,
        notes: vec![],
        pass: Some(pass),
    }
}

/// E5 — Lemma 3.4: `IneligibleDropCost(ΔLRU-EDF) ≤ numEpochs · Δ`.
pub fn e5_lemma34(opts: ExpOptions) -> ExpReport {
    let n = 8;
    let delta = 3;
    let suite = rate_limited_suite(opts);
    let rows = par_map(suite, opts.threads, |(name, trace)| {
        let mut p = DlruEdf::new(trace.colors(), n, delta).expect("geometry");
        Engine::new()
            .run(trace, &mut p, n, CostModel::new(delta))
            .expect("run");
        let st = p.state();
        (
            name.clone(),
            st.ineligible_drop_cost(),
            st.num_epochs(),
            // Colors that never became eligible are covered by Lemma 3.1, not
            // 3.4; count their drops separately for the note.
            trace
                .colors()
                .ids()
                .filter(|&c| p.state().color(c).became_eligible == 0)
                .map(|c| p.state().color(c).ineligible_drops)
                .sum::<u64>(),
        )
    });
    let mut table = Table::new([
        "workload",
        "inelig. drops (3.4 scope)",
        "epochs",
        "epochs·Δ",
        "holds",
    ]);
    let mut pass = true;
    for (name, inelig, epochs, never_eligible) in &rows {
        // Lemma 3.4 bounds drops within epochs that became eligible; subtract
        // the Lemma 3.1 colors (which never start an epoch in our count).
        let in_scope = inelig - never_eligible;
        let bound = epochs * delta;
        let ok = in_scope <= bound;
        pass &= ok;
        table.row([
            name.clone(),
            in_scope.to_string(),
            epochs.to_string(),
            bound.to_string(),
            ok.to_string(),
        ]);
    }
    ExpReport {
        id: "E5",
        title: "Lemma 3.4 (ineligible drops vs epochs)",
        claim: "ΔLRU-EDF drops at most Δ ineligible jobs per epoch",
        table,
        notes: vec!["colors with < Δ total jobs never start an epoch and are covered by \
                     Lemma 3.1; their drops are excluded here"
            .into()],
        pass: Some(pass),
    }
}

/// E6 — the Lemma 3.2 chain:
/// `EligibleDrop_{ΔLRU-EDF(n)}(σ) ≤ Drop_{DS-Seq-EDF(n/4)}(α) ≤ Drop_{Par-EDF(n/4)}(α)`
/// where α is the eligible subsequence of σ.
pub fn e6_lemma32_chain(opts: ExpOptions) -> ExpReport {
    let n = 8;
    let delta = 3;
    // Lemma 3.10's coupling gives DS-Seq-EDF m = n/8 resources (the lemma's
    // "2m = n/4" identity): per round it touches up to 2m distinct colors,
    // matching ΔLRU-EDF's n/4-color EDF half.
    let m = n / 8;
    let suite = rate_limited_suite(opts);
    let rows = par_map(suite, opts.threads, |(name, trace)| {
        let mut p = DlruEdf::new(trace.colors(), n, delta).expect("geometry");
        Engine::new()
            .run(trace, &mut p, n, CostModel::new(delta))
            .expect("run");
        let eligible_drops = p.state().eligible_drop_cost();
        let alpha = p.state().eligible_subsequence(trace);
        // DS-Seq-EDF on α with m resources.
        let mut seq = Edf::seq_edf(alpha.colors(), m, delta).expect("geometry");
        let ds = Engine::with_options(EngineOptions {
            speed: Speed::Double,
            record_schedule: false,
            track_latency: false,
            track_perf: false,
        });
        let ds_drops = ds
            .run(&alpha, &mut seq, m, CostModel::new(delta))
            .expect("run")
            .cost
            .drop;
        let par_drops = par_edf(&alpha, m).dropped;
        (name.clone(), eligible_drops, ds_drops, par_drops)
    });
    let mut table = Table::new([
        "workload",
        "eligible drops ΔLRU-EDF(n)",
        "drops DS-Seq-EDF(α, n/4)",
        "drops Par-EDF(α, n/4)",
        "chain holds",
    ]);
    let mut pass = true;
    for (name, elig, ds, par) in &rows {
        // Lemma 3.10: elig ≤ ds; Corollary 3.1: ds ≤ par (DS-Seq-EDF runs at
        // double speed, so it executes more than uni-speed Par-EDF).
        let ok = elig <= ds && ds <= par;
        pass &= ok;
        table.row([
            name.clone(),
            elig.to_string(),
            ds.to_string(),
            par.to_string(),
            ok.to_string(),
        ]);
    }
    ExpReport {
        id: "E6",
        title: "Lemma 3.2 chain (eligible drops)",
        claim: "ΔLRU-EDF's eligible drops on σ are at most DS-Seq-EDF's drops on the \
                eligible subsequence α, which upper-bound Par-EDF's drops on α \
                (Lemma 3.10 + Corollary 3.1); Par-EDF(α) lower-bounds OFF's drops \
                (Lemmas 3.6–3.7)",
        table,
        notes: vec![],
        pass: Some(pass),
    }
}

/// E18 — the §3.4 epoch/super-epoch machinery behind Lemma 3.5.
///
/// Three measurable consequences of the paper's definitions:
/// 1. every *completed* super-epoch consumes ≥ 2m distinct timestamp
///    updates, so `2m · superEpochs ≤ tsUpdates`;
/// 2. the Lemma 3.14–3.16 chain gives
///    `numEpochs ≤ 3 · tsUpdates + 3 · numColors`
///    (≤ 3 nonspecial epochs per i-active color per super-epoch, ≤ 3 special
///    epochs per color);
/// 3. Lemma 3.5's direction: on inputs where every color has ≥ Δ jobs,
///    `numEpochs · Δ = O(OPT)` — checked against the hindsight upper bound
///    with the paper-scale constant.
pub fn e18_super_epochs(opts: ExpOptions) -> ExpReport {
    use crate::ratio::{estimate_opt, EstimateOptions};
    let n = 8;
    let delta = 3;
    let m = n / 8;
    let suite = rate_limited_suite(opts);
    let rows = par_map(suite, opts.threads, |(name, trace)| {
        let mut p = DlruEdf::new(trace.colors(), n, delta).expect("geometry");
        p.state_mut().track_super_epochs(2 * m);
        Engine::new()
            .run(trace, &mut p, n, CostModel::new(delta))
            .expect("run");
        let st = p.state();
        let opt = estimate_opt(trace, m, delta, EstimateOptions::default());
        let every_color_heavy = trace
            .colors()
            .ids()
            .all(|c| trace.jobs_of_color(c) == 0 || trace.jobs_of_color(c) >= delta);
        (
            name.clone(),
            st.num_epochs(),
            st.ts_update_events(),
            st.super_epochs_completed,
            trace.colors().len() as u64,
            opt.upper,
            every_color_heavy,
        )
    });
    let mut table = Table::new([
        "workload",
        "epochs",
        "ts updates",
        "super-epochs",
        "3·ts+3·colors",
        "epochs·Δ",
        "OPT≤",
        "holds",
    ]);
    let mut pass = true;
    for (name, epochs, ts, supers, ncolors, opt_upper, heavy) in &rows {
        let chain_bound = 3 * ts + 3 * ncolors;
        let ok_chain = epochs <= &chain_bound;
        let ok_supers = 2 * m as u64 * supers <= *ts;
        // Lemma 3.5 shape (only asserted when its precondition holds):
        // epochs·Δ within the paper-scale constant (≤ 18, from the 6Δ-credit
        // accounting of §3.4) of a real offline schedule's cost.
        let ok_opt = !heavy || epochs * delta <= 18 * (*opt_upper).max(1);
        let ok = ok_chain && ok_supers && ok_opt;
        pass &= ok;
        table.row([
            name.clone(),
            epochs.to_string(),
            ts.to_string(),
            supers.to_string(),
            chain_bound.to_string(),
            (epochs * delta).to_string(),
            opt_upper.to_string(),
            ok.to_string(),
        ]);
    }
    ExpReport {
        id: "E18",
        title: "Super-epoch accounting (§3.4, Lemma 3.5 machinery)",
        claim: "completed super-epochs consume ≥ 2m timestamp updates each; epochs are                 bounded by 3·tsUpdates + 3·colors (Lemmas 3.14–3.16); and epochs·Δ is                 within the paper-scale constant of the offline cost (Lemma 3.5)",
        table,
        notes: vec![],
        pass: Some(pass),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn e18_quick_passes() {
        let r = e18_super_epochs(ExpOptions::quick());
        assert_eq!(r.pass, Some(true), "\n{}", r.render());
    }

    #[test]
    fn e4_quick_passes() {
        let r = e4_lemma33(ExpOptions::quick());
        assert_eq!(r.pass, Some(true), "\n{}", r.render());
    }

    #[test]
    fn e5_quick_passes() {
        let r = e5_lemma34(ExpOptions::quick());
        assert_eq!(r.pass, Some(true), "\n{}", r.render());
    }

    #[test]
    fn e6_quick_passes() {
        let r = e6_lemma32_chain(ExpOptions::quick());
        assert_eq!(r.pass, Some(true), "\n{}", r.render());
    }
}
