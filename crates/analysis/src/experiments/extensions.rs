//! E17: the extension algorithms (adaptive split, ΔLRU-K) head to head with
//! the paper's fixed-split ΔLRU-EDF.
//!
//! These variants come from the related work the paper itself cites (ARC,
//! LRU-K); the paper's Theorem 1 covers only the fixed split, so this
//! experiment checks that (a) the adaptive variant never loses badly to the
//! fixed split, and (b) it still survives both Appendix adversaries where the
//! single-principle schemes diverge.

use super::suite::rate_limited_suite;
use super::{ExpOptions, ExpReport};
use crate::runner::{run_kind, PolicyKind};
use crate::sweep::par_map;
use crate::table::Table;
use rrs_core::prelude::*;
use rrs_workloads::{DlruAdversary, EdfAdversary};

/// E17 — extension ablation: paper split vs adaptive split vs ΔLRU-K.
pub fn e17_extensions(opts: ExpOptions) -> ExpReport {
    let n = 8;
    let delta = 2;
    let mut workloads: Vec<(String, Trace)> = Vec::new();
    let adv_a = DlruAdversary {
        n,
        delta,
        j: if opts.quick { 5 } else { 8 },
        k: if opts.quick { 7 } else { 10 },
    };
    workloads.push(("appendix-A".into(), adv_a.generate()));
    let adv_b = EdfAdversary {
        n: 4,
        delta: 6,
        j: 3,
        k: if opts.quick { 6 } else { 9 },
    };
    workloads.push(("appendix-B".into(), adv_b.generate()));
    workloads.extend(rate_limited_suite(opts).into_iter().take(3));

    let kinds = [
        PolicyKind::DlruEdf,
        PolicyKind::AdaptiveDlruEdf,
        PolicyKind::DlruK2,
        PolicyKind::Dlru,
    ];
    let grid: Vec<(String, PolicyKind)> = workloads
        .iter()
        .flat_map(|(w, _)| kinds.iter().map(move |&k| (w.clone(), k)))
        .collect();
    let traces: std::collections::BTreeMap<String, Trace> = workloads.into_iter().collect();
    let rows = par_map(grid, opts.threads, |(wname, kind)| {
        // Appendix B uses n=4 (its construction's geometry); others n=8.
        let n_used = if wname == "appendix-B" { 4 } else { n };
        let delta_used = if wname == "appendix-B" { 6 } else { delta };
        let s = run_kind(*kind, &traces[wname], n_used, delta_used).expect("run");
        (wname.clone(), *kind, s.cost)
    });
    let mut table = Table::new(["workload", "algorithm", "cost", "reconfig", "drops"]);
    let mut cost_of = std::collections::BTreeMap::new();
    for (w, k, cost) in &rows {
        cost_of.insert((w.clone(), *k), cost.total());
        table.row([
            w.clone(),
            k.name().to_string(),
            cost.total().to_string(),
            cost.reconfig.to_string(),
            cost.drop.to_string(),
        ]);
    }
    // Checks: adaptive within 2x of the paper split everywhere; on the
    // Appendix A adversary both ΔLRU-EDF variants crush plain ΔLRU.
    let mut pass = true;
    let mut notes = Vec::new();
    for w in cost_of
        .keys()
        .map(|(w, _)| w.clone())
        .collect::<std::collections::BTreeSet<_>>()
    {
        let fixed = cost_of[&(w.clone(), PolicyKind::DlruEdf)];
        let adaptive = cost_of[&(w.clone(), PolicyKind::AdaptiveDlruEdf)];
        if adaptive > 2 * fixed.max(delta) {
            pass = false;
            notes.push(format!("{w}: adaptive {adaptive} > 2× fixed {fixed}"));
        }
    }
    let fixed_a = cost_of[&("appendix-A".to_string(), PolicyKind::DlruEdf)];
    let dlru_a = cost_of[&("appendix-A".to_string(), PolicyKind::Dlru)];
    if fixed_a * 3 > dlru_a {
        pass = false;
        notes.push(format!(
            "appendix-A: ΔLRU-EDF {fixed_a} not clearly ahead of ΔLRU {dlru_a}"
        ));
    }
    ExpReport {
        id: "E17",
        title: "Extensions: adaptive split and ΔLRU-K",
        claim: "the ARC-style adaptive split tracks the paper's fixed split within a \
                small factor everywhere (including both appendix adversaries), and \
                K>1 timestamps remain a recency-only scheme (no rescue on Appendix A)",
        table,
        notes,
        pass: Some(pass),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn e17_quick_passes() {
        let r = e17_extensions(ExpOptions::quick());
        assert_eq!(r.pass, Some(true), "\n{}", r.render());
    }
}
