//! Shared workload suites used by several experiments.
//!
//! Suite generation fans out over the [`crate::sweep::ParallelRunner`]: each
//! named (generator, seed) cell produces its trace on the worker pool, and
//! the canonical-order merge keeps the returned suite identical for every
//! thread count (generation is deterministic per seed).

use super::ExpOptions;
use crate::sweep::ParallelRunner;
use rrs_core::prelude::*;
use rrs_workloads::prelude::*;

/// A named, boxed trace generator cell.
type SuiteCell = (String, Box<dyn Fn() -> Trace + Send + Sync>);

fn generate_all(cells: Vec<SuiteCell>, opts: ExpOptions) -> Vec<(String, Trace)> {
    ParallelRunner::new(opts.threads)
        .run(cells, |(name, gen)| (name.clone(), gen()))
        .results
}

/// A named suite of **rate-limited batched** traces (the Theorem 1 regime).
pub fn rate_limited_suite(opts: ExpOptions) -> Vec<(String, Trace)> {
    let horizon = if opts.quick { 256 } else { 2048 };
    let mut cells: Vec<SuiteCell> = Vec::new();
    for (name, bounds, load, activity) in [
        ("uniform-2c", vec![4u64, 8], 0.6, 1.0),
        ("uniform-6c", vec![2, 4, 4, 8, 16, 32], 0.5, 1.0),
        ("sparse-6c", vec![2, 4, 4, 8, 16, 32], 0.7, 0.5),
        ("hot-cold", vec![4, 4, 64, 64], 0.8, 0.9),
    ] {
        for s in 0..if opts.quick { 1 } else { 3 } {
            let bounds = bounds.clone();
            let seed = opts.seed + s;
            cells.push((
                format!("{name}/s{s}"),
                Box::new(move || {
                    RandomBatched {
                        delay_bounds: bounds.clone(),
                        load,
                        activity,
                        horizon,
                        rate_limited: true,
                    }
                    .generate(seed)
                }),
            ));
        }
    }
    let seed = opts.seed;
    cells.push((
        "bursty".into(),
        Box::new(move || {
            Bursty {
                delay_bounds: vec![4, 8, 16, 32],
                on_load: 0.9,
                p_on: 0.3,
                p_off: 0.3,
                horizon,
                rate_limited: true,
            }
            .generate(seed)
        }),
    ));
    generate_all(cells, opts)
}

/// A named suite of **batched but not rate-limited** traces (Theorem 2 regime).
pub fn batched_suite(opts: ExpOptions) -> Vec<(String, Trace)> {
    let horizon = if opts.quick { 256 } else { 2048 };
    let seed = opts.seed;
    let mut cells: Vec<SuiteCell> = Vec::new();
    for (name, bounds, load) in [
        ("burst-2c", vec![4u64, 8], 2.5),
        ("burst-4c", vec![2, 8, 16, 64], 3.0),
    ] {
        cells.push((
            name.to_string(),
            Box::new(move || {
                RandomBatched {
                    delay_bounds: bounds.clone(),
                    load,
                    activity: 0.7,
                    horizon,
                    rate_limited: false,
                }
                .generate(seed)
            }),
        ));
    }
    generate_all(cells, opts)
}

/// A named suite of **general-arrival** traces (Theorem 3 regime).
pub fn general_suite(opts: ExpOptions) -> Vec<(String, Trace)> {
    let horizon = if opts.quick { 256 } else { 2048 };
    let seed = opts.seed;
    let cells: Vec<SuiteCell> = vec![
        (
            "poisson-4c".into(),
            Box::new(move || {
                RandomGeneral {
                    delay_bounds: vec![4, 8, 16, 64],
                    rates: vec![0.5, 0.4, 0.3, 0.2],
                    horizon,
                }
                .generate(seed)
            }),
        ),
        (
            "background-mix".into(),
            Box::new(move || {
                BackgroundMix {
                    horizon,
                    ..BackgroundMix::default()
                }
                .generate(seed)
            }),
        ),
        (
            "datacenter".into(),
            Box::new(move || {
                Datacenter {
                    horizon,
                    ..Datacenter::default()
                }
                .generate(seed)
            }),
        ),
    ];
    generate_all(cells, opts)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn suites_have_expected_classes() {
        let o = ExpOptions::quick();
        for (name, t) in rate_limited_suite(o) {
            assert_eq!(t.batch_class(), BatchClass::RateLimited, "{name}");
            assert!(t.total_jobs() > 0, "{name}");
        }
        for (name, t) in batched_suite(o) {
            assert_ne!(t.batch_class(), BatchClass::General, "{name}");
        }
        assert_eq!(general_suite(o).len(), 3);
    }

    #[test]
    fn suites_are_identical_across_thread_counts() {
        let base = ExpOptions::quick();
        let serial = rate_limited_suite(ExpOptions { threads: 1, ..base });
        let parallel = rate_limited_suite(ExpOptions { threads: 4, ..base });
        assert_eq!(serial.len(), parallel.len());
        for ((an, at), (bn, bt)) in serial.iter().zip(&parallel) {
            assert_eq!(an, bn);
            assert_eq!(at.to_bytes().as_ref(), bt.to_bytes().as_ref(), "{an}");
        }
    }
}
