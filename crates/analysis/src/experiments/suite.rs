//! Shared workload suites used by several experiments.

use super::ExpOptions;
use rrs_core::prelude::*;
use rrs_workloads::prelude::*;

/// A named suite of **rate-limited batched** traces (the Theorem 1 regime).
pub fn rate_limited_suite(opts: ExpOptions) -> Vec<(String, Trace)> {
    let horizon = if opts.quick { 256 } else { 2048 };
    let mut out = Vec::new();
    for (name, bounds, load, activity) in [
        ("uniform-2c", vec![4u64, 8], 0.6, 1.0),
        ("uniform-6c", vec![2, 4, 4, 8, 16, 32], 0.5, 1.0),
        ("sparse-6c", vec![2, 4, 4, 8, 16, 32], 0.7, 0.5),
        ("hot-cold", vec![4, 4, 64, 64], 0.8, 0.9),
    ] {
        let g = RandomBatched {
            delay_bounds: bounds,
            load,
            activity,
            horizon,
            rate_limited: true,
        };
        for s in 0..if opts.quick { 1 } else { 3 } {
            out.push((format!("{name}/s{s}"), g.generate(opts.seed + s)));
        }
    }
    let bursty = Bursty {
        delay_bounds: vec![4, 8, 16, 32],
        on_load: 0.9,
        p_on: 0.3,
        p_off: 0.3,
        horizon,
        rate_limited: true,
    };
    out.push(("bursty".into(), bursty.generate(opts.seed)));
    out
}

/// A named suite of **batched but not rate-limited** traces (Theorem 2 regime).
pub fn batched_suite(opts: ExpOptions) -> Vec<(String, Trace)> {
    let horizon = if opts.quick { 256 } else { 2048 };
    let mut out = Vec::new();
    for (name, bounds, load) in [
        ("burst-2c", vec![4u64, 8], 2.5),
        ("burst-4c", vec![2, 8, 16, 64], 3.0),
    ] {
        let g = RandomBatched {
            delay_bounds: bounds,
            load,
            activity: 0.7,
            horizon,
            rate_limited: false,
        };
        out.push((name.to_string(), g.generate(opts.seed)));
    }
    out
}

/// A named suite of **general-arrival** traces (Theorem 3 regime).
pub fn general_suite(opts: ExpOptions) -> Vec<(String, Trace)> {
    let horizon = if opts.quick { 256 } else { 2048 };
    let mut out = Vec::new();
    let g = RandomGeneral {
        delay_bounds: vec![4, 8, 16, 64],
        rates: vec![0.5, 0.4, 0.3, 0.2],
        horizon,
    };
    out.push(("poisson-4c".into(), g.generate(opts.seed)));
    let bg = BackgroundMix {
        horizon,
        ..BackgroundMix::default()
    };
    out.push(("background-mix".into(), bg.generate(opts.seed)));
    let dc = Datacenter {
        horizon,
        ..Datacenter::default()
    };
    out.push(("datacenter".into(), dc.generate(opts.seed)));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn suites_have_expected_classes() {
        let o = ExpOptions::quick();
        for (name, t) in rate_limited_suite(o) {
            assert_eq!(t.batch_class(), BatchClass::RateLimited, "{name}");
            assert!(t.total_jobs() > 0, "{name}");
        }
        for (name, t) in batched_suite(o) {
            assert_ne!(t.batch_class(), BatchClass::General, "{name}");
        }
        assert_eq!(general_suite(o).len(), 3);
    }
}
