//! E3, E7, E8, E9: the paper's three theorems plus exact-OPT ratios.

use super::suite::{batched_suite, general_suite, rate_limited_suite};
use super::{ExpOptions, ExpReport};
use crate::ratio::{estimate_opt, ratio, EstimateOptions};
use crate::runner::{run_kind, PolicyKind};
use crate::sweep::par_map;
use crate::table::{fmt_ratio, Table};
use rrs_core::prelude::*;
use rrs_offline::{optimal, OptConfig};
use rrs_reductions::aggregate;
use rrs_workloads::RandomBatched;

/// E3 — Theorem 1: ΔLRU-EDF is resource competitive on rate-limited batched
/// inputs with `n = 8m`.
pub fn e3_theorem1(opts: ExpOptions) -> ExpReport {
    let m = 1;
    let n = 8 * m; // the theorem's augmentation
    let delta = 3;
    let suite = rate_limited_suite(opts);
    let rows = par_map(suite, opts.threads, |(name, trace)| {
        let combo = run_kind(PolicyKind::DlruEdf, trace, n, delta).expect("run");
        let opt = estimate_opt(trace, m, delta, EstimateOptions::default());
        (name.clone(), combo.cost, opt)
    });
    let mut table = Table::new([
        "workload",
        "ΔLRU-EDF cost",
        "reconfig",
        "drops",
        "OPT lower",
        "OPT upper",
        "ratio≤ (vs lower)",
        "ratio (vs upper)",
    ]);
    let mut worst = 0.0f64;
    for (name, cost, opt) in &rows {
        let r_low = ratio(cost.total(), opt.lower);
        let r_up = ratio(cost.total(), opt.upper);
        worst = worst.max(r_low);
        table.row([
            name.clone(),
            cost.total().to_string(),
            cost.reconfig.to_string(),
            cost.drop.to_string(),
            opt.lower.to_string(),
            opt.upper.to_string(),
            fmt_ratio(r_low),
            fmt_ratio(r_up),
        ]);
    }
    // "Constant competitive": every ratio (even against the loose lower
    // bound) stays under a fixed constant across the whole suite.
    let pass = worst.is_finite() && worst < 40.0;
    ExpReport {
        id: "E3",
        title: "Theorem 1 (ΔLRU-EDF, rate-limited batched, n = 8m)",
        claim: "ΔLRU-EDF's cost is within a constant factor of a 1-resource optimal \
                schedule when given 8 resources",
        table,
        notes: vec![format!("worst ratio vs (loose) lower bound: {worst:.2}")],
        pass: Some(pass),
    }
}

/// E7 — Theorem 2 (Distribute) and Lemma 4.1 (Aggregate factor sweep).
pub fn e7_distribute(opts: ExpOptions) -> ExpReport {
    let n = 8;
    let m = 1;
    let delta = 3;
    let suite = batched_suite(opts);
    let mut table = Table::new([
        "workload",
        "sub-colors",
        "inner cost",
        "projected cost",
        "OPT lower",
        "ratio≤",
        "proj ≤ inner",
    ]);
    let mut pass = true;
    let mut worst = 0.0f64;
    let rows = par_map(suite, opts.threads, |(name, trace)| {
        let run = rrs_reductions::run_distribute(trace, n, delta).expect("distribute");
        let opt = estimate_opt(trace, m, delta, EstimateOptions::default());
        (name.clone(), run, opt)
    });
    for (name, run, opt) in &rows {
        let mono = run.projected_cost.total() <= run.inner.cost.total();
        pass &= mono;
        let r = ratio(run.projected_cost.total(), opt.lower);
        worst = worst.max(r);
        table.row([
            name.clone(),
            run.sub_colors.to_string(),
            run.inner.cost.total().to_string(),
            run.projected_cost.total().to_string(),
            opt.lower.to_string(),
            fmt_ratio(r),
            mono.to_string(),
        ]);
    }
    pass &= worst.is_finite() && worst < 60.0;

    // Lemma 4.1 companion: build exact-OPT schedules on tiny batched
    // instances and sweep the Aggregate resource factor.
    let mut notes = Vec::new();
    let tiny = TraceBuilder::with_delay_bounds(&[2, 4])
        .jobs(0, 0, 5)
        .jobs(4, 0, 3)
        .jobs(0, 1, 7)
        .jobs(8, 1, 2)
        .build();
    if let Ok(optr) = optimal(&tiny, OptConfig::new(2, delta)) {
        for factor in 1..=3usize {
            match aggregate(&tiny, &optr.schedule, factor, delta) {
                Ok(agg) => {
                    notes.push(format!(
                        "Aggregate factor {factor}: ok, drop {} (OPT schedule drop side) , \
                         reconfig {} vs OPT total {}",
                        agg.cost.drop, agg.cost.reconfig, optr.cost
                    ));
                    // Lemma 4.5: same executed jobs = same drop side.
                    pass &= agg.schedule.executed_jobs() == optr.schedule.executed_jobs();
                    break;
                }
                Err(_) => notes.push(format!("Aggregate factor {factor}: out of room")),
            }
        }
    }
    ExpReport {
        id: "E7",
        title: "Theorem 2 (Distribute) + Lemma 4.1 (Aggregate)",
        claim: "Distribute is resource competitive for batched arrivals: the projected \
                schedule costs no more than the inner rate-limited run (Lemma 4.2) and \
                stays within a constant factor of OPT; Aggregate realizes Lemma 4.1's \
                offline transformation with a small constant resource factor",
        table,
        notes,
        pass: Some(pass),
    }
}

/// E8 — Theorem 3: VarBatch on general arrivals, vs the online baselines.
pub fn e8_varbatch(opts: ExpOptions) -> ExpReport {
    let n = 8;
    let m = 2;
    let delta = 3;
    let suite = general_suite(opts);
    let kinds = [
        PolicyKind::VarBatch,
        PolicyKind::GreedyPending,
        PolicyKind::StaticPartition,
        PolicyKind::NeverReconfigure,
    ];
    let mut table = Table::new([
        "workload",
        "algorithm",
        "cost",
        "reconfig",
        "drops",
        "OPT lower",
        "ratio≤",
    ]);
    let mut worst_varbatch = 0.0f64;
    let jobs: Vec<(String, Trace)> = suite;
    let results = par_map(jobs, opts.threads, |(name, trace)| {
        let opt = estimate_opt(trace, m, delta, EstimateOptions::default());
        let runs: Vec<_> = kinds
            .iter()
            .map(|&k| (k, run_kind(k, trace, n, delta).expect("run")))
            .collect();
        (name.clone(), opt, runs)
    });
    for (name, opt, runs) in &results {
        for (k, s) in runs {
            let r = ratio(s.cost.total(), opt.lower);
            if *k == PolicyKind::VarBatch {
                worst_varbatch = worst_varbatch.max(r);
            }
            table.row([
                name.clone(),
                k.name().to_string(),
                s.cost.total().to_string(),
                s.cost.reconfig.to_string(),
                s.cost.drop.to_string(),
                opt.lower.to_string(),
                fmt_ratio(r),
            ]);
        }
    }
    let pass = worst_varbatch.is_finite() && worst_varbatch < 80.0;
    ExpReport {
        id: "E8",
        title: "Theorem 3 (VarBatch, general arrivals — the main result)",
        claim: "VarBatch ∘ Distribute ∘ ΔLRU-EDF is resource competitive for \
                [Δ|1|D_ℓ|1]; its ratio stays bounded where baselines blow up",
        table,
        notes: vec![format!("worst VarBatch ratio vs lower bound: {worst_varbatch:.2}")],
        pass: Some(pass),
    }
}

/// E9 — true competitive ratios against the exact DP optimum on small
/// instances.
pub fn e9_exact_opt(opts: ExpOptions) -> ExpReport {
    let n = 8;
    let m = 1;
    let delta = 2;
    let count = if opts.quick { 4 } else { 20 };
    let instances: Vec<(String, Trace)> = (0..count)
        .map(|i| {
            let g = RandomBatched {
                delay_bounds: vec![2, 4, 8],
                load: 0.7,
                activity: 0.8,
                horizon: 32,
                rate_limited: true,
            };
            (format!("small/s{i}"), g.generate(opts.seed + i))
        })
        .collect();
    let rows = par_map(instances, opts.threads, |(name, trace)| {
        let combo = run_kind(PolicyKind::DlruEdf, trace, n, delta).expect("run");
        let exact = optimal(trace, OptConfig::new(m, delta)).map(|r| r.cost).ok();
        (name.clone(), combo.cost.total(), exact)
    });
    let mut table = Table::new(["instance", "ΔLRU-EDF cost", "exact OPT(m=1)", "true ratio"]);
    let mut ratios = Vec::new();
    for (name, cost, exact) in &rows {
        match exact {
            Some(opt) => {
                let r = ratio(*cost, *opt);
                ratios.push(r);
                table.row([
                    name.clone(),
                    cost.to_string(),
                    opt.to_string(),
                    fmt_ratio(r),
                ]);
            }
            None => {
                table.row([name.clone(), cost.to_string(), "-".into(), "-".into()]);
            }
        }
    }
    let max = ratios.iter().cloned().fold(0.0, f64::max);
    let mean = ratios.iter().sum::<f64>() / ratios.len().max(1) as f64;
    let pass = !ratios.is_empty() && max.is_finite() && max < 20.0;
    ExpReport {
        id: "E9",
        title: "True competitive ratios (exact OPT, small instances)",
        claim: "with 8× resources, ΔLRU-EDF's measured cost stays within a small \
                constant of the exact optimum",
        table,
        notes: vec![format!("mean ratio {mean:.2}, max ratio {max:.2} over {} instances", ratios.len())],
        pass: Some(pass),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn e3_quick_passes() {
        let r = e3_theorem1(ExpOptions::quick());
        assert_eq!(r.pass, Some(true), "\n{}", r.render());
    }

    #[test]
    fn e7_quick_passes() {
        let r = e7_distribute(ExpOptions::quick());
        assert_eq!(r.pass, Some(true), "\n{}", r.render());
    }

    #[test]
    fn e8_quick_passes() {
        let r = e8_varbatch(ExpOptions::quick());
        assert_eq!(r.pass, Some(true), "\n{}", r.render());
    }

    #[test]
    fn e9_quick_passes() {
        let r = e9_exact_opt(ExpOptions::quick());
        assert_eq!(r.pass, Some(true), "\n{}", r.render());
    }
}
