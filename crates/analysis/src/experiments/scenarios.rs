//! E13 and E14: the introduction's application scenarios, as head-to-head
//! comparisons of all online algorithms.

use super::{ExpOptions, ExpReport};
use crate::ratio::{estimate_opt, ratio, EstimateOptions};
use crate::runner::{run_kind, PolicyKind, RunSummary};
use crate::sweep::ParallelRunner;
use crate::table::{fmt_ratio, Table};
use rrs_core::prelude::*;
use rrs_workloads::{Datacenter, Router};

/// Resource/cost parameters of a scenario comparison.
struct ScenarioParams {
    n: usize,
    m: usize,
    delta: u64,
}

fn scenario_report(
    id: &'static str,
    title: &'static str,
    claim: &'static str,
    trace: Trace,
    params: ScenarioParams,
    opts: ExpOptions,
) -> ExpReport {
    let ScenarioParams { n, m, delta } = params;
    let kinds: Vec<PolicyKind> = vec![
        PolicyKind::VarBatch,
        PolicyKind::Dlru,
        PolicyKind::Edf,
        PolicyKind::GreedyPending,
        PolicyKind::StaticPartition,
        PolicyKind::NeverReconfigure,
        PolicyKind::HindsightGreedy,
    ];
    let opt = estimate_opt(&trace, m, delta, EstimateOptions::default());
    let sweep = ParallelRunner::new(opts.threads).run(kinds, |&k| {
        (k, run_kind(k, &trace, n, delta).expect("run"))
    });
    let runs: Vec<(PolicyKind, RunSummary)> = sweep.results;
    let mut table = Table::new([
        "algorithm",
        "cost",
        "reconfig",
        "drops",
        "completion %",
        "ratio≤ vs lower",
    ]);
    let mut varbatch = (u64::MAX, u64::MAX, 0.0f64); // (reconfig, drops, completion)
    let mut greedy_reconfig = 0u64;
    let mut never_drops = 0u64;
    let mut varbatch_ratio = f64::INFINITY;
    for (k, s) in &runs {
        let total_jobs = s.executed + s.cost.drop;
        let completion = if total_jobs == 0 {
            100.0
        } else {
            100.0 * s.executed as f64 / total_jobs as f64
        };
        match k {
            PolicyKind::VarBatch => {
                varbatch = (s.cost.reconfig, s.cost.drop, completion);
                varbatch_ratio = ratio(s.cost.total(), opt.lower);
            }
            PolicyKind::GreedyPending => greedy_reconfig = s.cost.reconfig,
            PolicyKind::NeverReconfigure => never_drops = s.cost.drop,
            _ => {}
        }
        table.row([
            k.name().to_string(),
            s.cost.total().to_string(),
            s.cost.reconfig.to_string(),
            s.cost.drop.to_string(),
            format!("{completion:.1}"),
            fmt_ratio(ratio(s.cost.total(), opt.lower)),
        ]);
    }
    // Shape: the reduction pipeline pays a constant-factor overhead but never
    // exhibits either failure mode. Check each failure mode directly:
    // reconfiguration cost far below the thrashing greedy's, drops far below
    // the starving configure-once baseline's, high completion, and a bounded
    // ratio against the (loose) OPT lower bound.
    // The completion floor is a guardrail against the starvation failure mode
    // (configure-once lands near 30%), not a precision claim — keep slack so
    // it is robust to the RNG stream behind the generated trace.
    let (vb_reconfig, vb_drops, vb_completion) = varbatch;
    let pass = varbatch_ratio.is_finite()
        && varbatch_ratio < 60.0
        && vb_reconfig < greedy_reconfig
        && vb_drops < never_drops
        && vb_completion >= 75.0;
    ExpReport {
        id,
        title,
        claim,
        table,
        notes: vec![
            format!("OPT sandwich (m={m}): [{}, {}]", opt.lower, opt.upper),
            format!("sweep: {}", sweep.stats.summary()),
        ],
        pass: Some(pass),
    }
}

/// E13 — the shared data center scenario.
pub fn e13_datacenter(opts: ExpOptions) -> ExpReport {
    let horizon = if opts.quick { 512 } else { 2048 };
    let trace = Datacenter {
        horizon,
        ..Datacenter::default()
    }
    .generate(opts.seed);
    scenario_report(
        "E13",
        "Shared data center (diurnal multi-service)",
        "under shifting workload composition the combined recency+deadline pipeline \
         tracks demand without thrashing or starving any service class",
        trace,
        ScenarioParams { n: 16, m: 4, delta: 4 },
        opts,
    )
}

/// E14 — the multi-service router scenario.
pub fn e14_router(opts: ExpOptions) -> ExpReport {
    let horizon = if opts.quick { 512 } else { 2048 };
    let trace = Router {
        horizon,
        ..Router::default()
    }
    .generate(opts.seed);
    scenario_report(
        "E14",
        "Multi-service router (heavy-tailed flowlets)",
        "with per-category delay tolerances and bursty traffic, the pipeline keeps \
         packet completion high at bounded reconfiguration cost",
        trace,
        ScenarioParams { n: 16, m: 4, delta: 4 },
        opts,
    )
}

/// E19 — QoS latency profiles (the paper's §1 motivation: jobs must be
/// processed within their delay tolerance).
///
/// The delay-bound guarantee is structural — an executed job's sojourn is
/// always below its color's delay bound — and the engine's latency tracker
/// lets us verify it and compare the *distribution* across algorithms: the
/// deadline-aware schemes keep tail latency far below the bound, while
/// recency-only and static schemes push work to the deadline edge.
pub fn e19_latency(opts: ExpOptions) -> ExpReport {
    use rrs_core::{CostModel, Engine, EngineOptions};
    let horizon = if opts.quick { 512 } else { 2048 };
    let trace = Datacenter {
        horizon,
        ..Datacenter::default()
    }
    .generate(opts.seed);
    let n = 16;
    let delta = 4;
    let engine = Engine::with_options(EngineOptions {
        speed: Speed::Uni,
        record_schedule: false,
        track_latency: true,
        track_perf: false,
    });
    let mut policies: Vec<(&'static str, Box<dyn rrs_core::Policy>)> = vec![
        (
            "ΔLRU-EDF",
            Box::new(rrs_algorithms::DlruEdf::new(trace.colors(), n, delta).expect("geometry")),
        ),
        (
            "EDF",
            Box::new(rrs_algorithms::Edf::new(trace.colors(), n, delta).expect("geometry")),
        ),
        (
            "ΔLRU",
            Box::new(rrs_algorithms::Dlru::new(trace.colors(), n, delta).expect("geometry")),
        ),
        ("Greedy", Box::new(rrs_algorithms::GreedyPending::new())),
        (
            "Static",
            Box::new(rrs_algorithms::StaticPartition::new(trace.colors(), n)),
        ),
    ];
    let max_d = trace.colors().max_delay_bound();
    let mut table = Table::new([
        "algorithm",
        "executed",
        "mean sojourn",
        "p50",
        "p99",
        "max",
        "< max D",
    ]);
    let mut pass = true;
    for (name, p) in policies.iter_mut() {
        let r = engine
            .run(&trace, p.as_mut(), n, CostModel::new(delta))
            .expect("run");
        let h = r.latency.as_ref().expect("tracking enabled");
        let ok = h.max() < max_d;
        pass &= ok;
        table.row([
            name.to_string(),
            h.count().to_string(),
            format!("{:.2}", h.mean()),
            h.quantile(0.5).to_string(),
            h.quantile(0.99).to_string(),
            h.max().to_string(),
            ok.to_string(),
        ]);
    }
    ExpReport {
        id: "E19",
        title: "QoS latency profiles (sojourn distributions)",
        claim: "every executed job finishes within its delay tolerance (a structural                 guarantee of the model), and the deadline-aware algorithms keep tail                 sojourns well inside the bound",
        table,
        notes: vec![format!("max delay bound: {max_d} rounds")],
        pass: Some(pass),
    }
}

/// E20 — the introduction's background-jobs dilemma, quantified.
///
/// On the background+short-term mix, "use idle cycles whenever available"
/// thrashes (reconfiguration-dominated cost) and "wait for a long idle
/// period" underutilizes (drop-dominated cost) — while the paper's pipeline
/// stays off both failure axes.
pub fn e20_background_dilemma(opts: ExpOptions) -> ExpReport {
    use rrs_workloads::BackgroundMix;
    let horizon = if opts.quick { 512 } else { 2048 };
    let trace = BackgroundMix {
        horizon,
        burst_prob: 0.4,
        ..BackgroundMix::default()
    }
    .generate(opts.seed);
    let n = 8;
    let delta = 8;
    let kinds = [
        PolicyKind::EagerBackground,
        PolicyKind::PatientBackground,
        PolicyKind::VarBatch,
        PolicyKind::DlruEdf,
    ];
    let runs: Vec<(PolicyKind, RunSummary)> = ParallelRunner::new(opts.threads)
        .run(kinds.to_vec(), |&k| {
            (k, run_kind(k, &trace, n, delta).expect("run"))
        })
        .results;
    let mut table = Table::new([
        "strategy",
        "cost",
        "reconfig",
        "drops",
        "reconfig share %",
    ]);
    let mut metrics = std::collections::BTreeMap::new();
    for (k, s) in &runs {
        let share = 100.0 * s.cost.reconfig as f64 / s.cost.total().max(1) as f64;
        metrics.insert(*k, (s.cost.total(), s.cost.reconfig, s.cost.drop));
        table.row([
            k.name().to_string(),
            s.cost.total().to_string(),
            s.cost.reconfig.to_string(),
            s.cost.drop.to_string(),
            format!("{share:.0}"),
        ]);
    }
    let eager = metrics[&PolicyKind::EagerBackground];
    let patient = metrics[&PolicyKind::PatientBackground];
    let combo = metrics[&PolicyKind::DlruEdf];
    // The dilemma: relative to each other, eager trades drops for
    // reconfigurations (thrashing) and patient trades reconfigurations for
    // drops (underutilization); ΔLRU-EDF beats both on total cost.
    let eager_thrashes = eager.1 > patient.1 && eager.2 < patient.2;
    let patient_starves = patient.2 > eager.2;
    let combo_wins = combo.0 <= eager.0 && combo.0 <= patient.0;
    ExpReport {
        id: "E20",
        title: "§1 background dilemma (eager vs patient idle-cycle use)",
        claim: "either basic approach leads to thrashing or underutilization (paper §1);                 the recency+deadline combination avoids both",
        table,
        notes: vec![format!(
            "eager reconfig {} vs drops {}; patient reconfig {} vs drops {}; ΔLRU-EDF total {}",
            eager.1, eager.2, patient.1, patient.2, combo.0
        )],
        pass: Some(eager_thrashes && patient_starves && combo_wins),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn e20_quick_passes() {
        let r = e20_background_dilemma(ExpOptions::quick());
        assert_eq!(r.pass, Some(true), "\n{}", r.render());
    }

    #[test]
    fn e19_quick_passes() {
        let r = e19_latency(ExpOptions::quick());
        assert_eq!(r.pass, Some(true), "\n{}", r.render());
    }

    #[test]
    fn e13_quick_passes() {
        let r = e13_datacenter(ExpOptions::quick());
        assert_eq!(r.pass, Some(true), "\n{}", r.render());
    }

    #[test]
    fn e14_quick_passes() {
        let r = e14_router(ExpOptions::quick());
        assert_eq!(r.pass, Some(true), "\n{}", r.render());
    }
}
