//! Parallel parameter sweeps.
//!
//! Experiments fan out over (workload, seed, n, Δ, algorithm) grids;
//! [`par_map`] evaluates a pure function over such a grid on all cores using
//! crossbeam scoped threads with a shared atomic work index (no unsafe, no
//! data races — results return through per-thread vectors that are stitched
//! back in input order).

use parking_lot::Mutex;
use std::sync::atomic::{AtomicUsize, Ordering};

/// Applies `f` to every item in parallel, preserving input order in the
/// output. `threads = 0` uses the available parallelism.
pub fn par_map<I, O, F>(items: Vec<I>, threads: usize, f: F) -> Vec<O>
where
    I: Send + Sync,
    O: Send,
    F: Fn(&I) -> O + Sync,
{
    let threads = if threads == 0 {
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
    } else {
        threads
    };
    let n = items.len();
    if n == 0 {
        return Vec::new();
    }
    let threads = threads.min(n);
    if threads <= 1 {
        return items.iter().map(&f).collect();
    }

    let next = AtomicUsize::new(0);
    let results: Mutex<Vec<Option<O>>> = Mutex::new((0..n).map(|_| None).collect());
    crossbeam::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|_| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= n {
                    break;
                }
                let out = f(&items[i]);
                results.lock()[i] = Some(out);
            });
        }
    })
    .expect("sweep worker panicked");
    results
        .into_inner()
        .into_iter()
        .map(|o| o.expect("every index was processed"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preserves_order() {
        let items: Vec<u64> = (0..1000).collect();
        let out = par_map(items.clone(), 8, |&x| x * x);
        for (i, &o) in out.iter().enumerate() {
            assert_eq!(o, (i as u64) * (i as u64));
        }
    }

    #[test]
    fn empty_and_single() {
        let out: Vec<u32> = par_map(Vec::<u32>::new(), 4, |&x| x);
        assert!(out.is_empty());
        assert_eq!(par_map(vec![7], 4, |&x| x + 1), vec![8]);
    }

    #[test]
    fn zero_threads_means_auto() {
        let out = par_map((0..100).collect::<Vec<u32>>(), 0, |&x| x + 1);
        assert_eq!(out.len(), 100);
        assert_eq!(out[99], 100);
    }

    #[test]
    fn heavier_work_is_correct() {
        let out = par_map((0..64u64).collect::<Vec<_>>(), 4, |&x| {
            (0..=x).sum::<u64>()
        });
        assert_eq!(out[10], 55);
        assert_eq!(out[63], 63 * 64 / 2);
    }
}
