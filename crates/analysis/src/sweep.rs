//! Parallel sweep executor.
//!
//! Experiments fan out over (workload, seed, n, Δ, algorithm) grids.
//! [`ParallelRunner`] evaluates a pure function over such a grid with a
//! work-stealing thread pool: cells start in a shared [`Injector`], each
//! worker keeps a local FIFO deque and falls back to batch-stealing from the
//! injector and then from sibling [`Stealer`]s, so a straggler cell never
//! idles the rest of the pool. Finished cells flow back through a lock-free
//! channel tagged with their grid index and are merged in canonical cell
//! order, which makes the output **bit-identical regardless of the thread
//! count** — only the [`SweepStats`] timing side-channel varies between runs.
//!
//! [`par_map`] is the original order-preserving map API, kept as a thin
//! wrapper over the runner for existing callers.

use crossbeam::channel;
use crossbeam::deque::{Injector, Steal, Stealer, Worker};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::time::{Duration, Instant};

/// Work-stealing executor for sweep grids.
///
/// `threads = 0` (the [`Default`]) resolves to the machine's available
/// parallelism; any other value pins the pool size. The pool never exceeds
/// the number of cells.
#[derive(Debug, Clone, Copy)]
pub struct ParallelRunner {
    threads: usize,
}

impl Default for ParallelRunner {
    fn default() -> Self {
        ParallelRunner::new(0)
    }
}

impl ParallelRunner {
    /// A runner with a fixed pool size (`0` = auto-detect).
    pub fn new(threads: usize) -> Self {
        ParallelRunner { threads }
    }

    /// Pool size after resolving `0 = auto` and capping at `cells`.
    pub fn resolved_threads(&self, cells: usize) -> usize {
        let t = if self.threads == 0 {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        } else {
            self.threads
        };
        t.min(cells).max(1)
    }

    /// Applies `f` to every cell, returning outputs in input order plus
    /// execution statistics. The result vector is identical for every thread
    /// count (the merge is by grid index, not completion order).
    pub fn run<I, O, F>(&self, items: Vec<I>, f: F) -> Sweep<O>
    where
        I: Send + Sync,
        O: Send,
        F: Fn(&I) -> O + Sync,
    {
        let cells = items.len();
        let start = Instant::now();
        if cells == 0 {
            return Sweep {
                results: Vec::new(),
                stats: SweepStats {
                    threads: self.resolved_threads(0),
                    ..SweepStats::default()
                },
            };
        }
        let threads = self.resolved_threads(cells);
        if threads <= 1 {
            return run_serial(items, f, start);
        }

        let injector = Injector::new();
        for i in 0..cells {
            injector.push(i);
        }
        let locals: Vec<Worker<usize>> = (0..threads).map(|_| Worker::new_fifo()).collect();
        let stealers: Vec<Stealer<usize>> = locals.iter().map(|w| w.stealer()).collect();
        let completed = AtomicUsize::new(0);
        let steals = AtomicU64::new(0);
        let busy_ns = AtomicU64::new(0);
        let max_cell_ns = AtomicU64::new(0);
        let (tx, rx) = channel::unbounded();

        std::thread::scope(|scope| {
            for (wid, local) in locals.into_iter().enumerate() {
                let tx = tx.clone();
                let (injector, stealers) = (&injector, &stealers);
                let (items, f) = (&items, &f);
                let (completed, steals) = (&completed, &steals);
                let (busy_ns, max_cell_ns) = (&busy_ns, &max_cell_ns);
                scope.spawn(move || loop {
                    let task = local.pop().or_else(|| {
                        find_task(wid, injector, stealers, steals, &local)
                    });
                    match task {
                        Some(i) => {
                            let t0 = Instant::now();
                            let out = f(&items[i]);
                            let ns = t0.elapsed().as_nanos() as u64;
                            busy_ns.fetch_add(ns, Ordering::Relaxed);
                            max_cell_ns.fetch_max(ns, Ordering::Relaxed);
                            tx.send((i, out)).expect("collector outlives workers");
                            completed.fetch_add(1, Ordering::Release);
                        }
                        None => {
                            // Every cell is in the injector, in some live
                            // worker's deque, or running — so spinning here
                            // always terminates once `completed` catches up.
                            if completed.load(Ordering::Acquire) >= cells {
                                break;
                            }
                            std::thread::yield_now();
                        }
                    }
                });
            }
            drop(tx);
        });

        // Canonical-order merge: slot every output by its grid index.
        let mut slots: Vec<Option<O>> = (0..cells).map(|_| None).collect();
        for (i, out) in rx {
            debug_assert!(slots[i].is_none(), "cell {i} produced twice");
            slots[i] = Some(out);
        }
        let results = slots
            .into_iter()
            .map(|o| o.expect("every cell completed"))
            .collect();
        Sweep {
            results,
            stats: SweepStats {
                cells,
                threads,
                steals: steals.load(Ordering::Relaxed),
                wall: start.elapsed(),
                busy: Duration::from_nanos(busy_ns.load(Ordering::Relaxed)),
                max_cell: Duration::from_nanos(max_cell_ns.load(Ordering::Relaxed)),
            },
        }
    }
}

/// Non-local work acquisition: batch-steal from the injector first (half its
/// backlog lands in our deque), then raid sibling deques.
fn find_task(
    wid: usize,
    injector: &Injector<usize>,
    stealers: &[Stealer<usize>],
    steals: &AtomicU64,
    local: &Worker<usize>,
) -> Option<usize> {
    if let Steal::Success(i) = injector.steal_batch_and_pop(local) {
        return Some(i);
    }
    for (sid, s) in stealers.iter().enumerate() {
        if sid == wid {
            continue;
        }
        if let Steal::Success(i) = s.steal() {
            steals.fetch_add(1, Ordering::Relaxed);
            return Some(i);
        }
    }
    None
}

fn run_serial<I, O, F>(items: Vec<I>, f: F, start: Instant) -> Sweep<O>
where
    F: Fn(&I) -> O,
{
    let cells = items.len();
    let mut busy = Duration::ZERO;
    let mut max_cell = Duration::ZERO;
    let mut results = Vec::with_capacity(cells);
    for item in &items {
        let t0 = Instant::now();
        results.push(f(item));
        let dt = t0.elapsed();
        busy += dt;
        max_cell = max_cell.max(dt);
    }
    Sweep {
        results,
        stats: SweepStats {
            cells,
            threads: 1,
            steals: 0,
            wall: start.elapsed(),
            busy,
            max_cell,
        },
    }
}

/// A finished sweep: outputs in canonical (input) order plus timing stats.
#[derive(Debug)]
pub struct Sweep<O> {
    /// One output per input cell, in input order — independent of thread
    /// count and completion order.
    pub results: Vec<O>,
    /// Execution statistics (wall/busy time, steals); these DO vary run to
    /// run and are deliberately kept out of `results`.
    pub stats: SweepStats,
}

/// Timing and scheduling statistics for one sweep execution.
#[derive(Debug, Clone, Copy, Default)]
pub struct SweepStats {
    /// Grid cells executed.
    pub cells: usize,
    /// Worker threads used (after resolving `0 = auto`).
    pub threads: usize,
    /// Successful steals from sibling deques (0 on the serial path).
    pub steals: u64,
    /// End-to-end wall time of the sweep.
    pub wall: Duration,
    /// Sum of per-cell execution times across all workers.
    pub busy: Duration,
    /// The slowest single cell.
    pub max_cell: Duration,
}

impl SweepStats {
    /// `busy / wall` — approaches the thread count when the pool is saturated
    /// and 1.0 on a serial run.
    pub fn parallel_efficiency(&self) -> f64 {
        if self.wall.is_zero() {
            return 1.0;
        }
        self.busy.as_secs_f64() / self.wall.as_secs_f64()
    }

    /// One-line human-readable summary.
    pub fn summary(&self) -> String {
        format!(
            "{} cells on {} thread{} in {:.1?} (busy {:.1?}, {:.2}x, max cell {:.1?}, {} steals)",
            self.cells,
            self.threads,
            if self.threads == 1 { "" } else { "s" },
            self.wall,
            self.busy,
            self.parallel_efficiency(),
            self.max_cell,
            self.steals,
        )
    }

    /// Merges stats from a sub-sweep (cells/steals/busy add; wall/max take
    /// the max; threads takes the max).
    pub fn absorb(&mut self, other: &SweepStats) {
        self.cells += other.cells;
        self.threads = self.threads.max(other.threads);
        self.steals += other.steals;
        self.wall = self.wall.max(other.wall);
        self.busy += other.busy;
        self.max_cell = self.max_cell.max(other.max_cell);
    }
}

/// Applies `f` to every item in parallel, preserving input order in the
/// output. `threads = 0` uses the available parallelism.
///
/// Compatibility wrapper over [`ParallelRunner::run`] that discards the
/// [`SweepStats`].
pub fn par_map<I, O, F>(items: Vec<I>, threads: usize, f: F) -> Vec<O>
where
    I: Send + Sync,
    O: Send,
    F: Fn(&I) -> O + Sync,
{
    ParallelRunner::new(threads).run(items, f).results
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preserves_order() {
        let items: Vec<u64> = (0..1000).collect();
        let out = par_map(items.clone(), 8, |&x| x * x);
        for (i, &o) in out.iter().enumerate() {
            assert_eq!(o, (i as u64) * (i as u64));
        }
    }

    #[test]
    fn empty_and_single() {
        let out: Vec<u32> = par_map(Vec::<u32>::new(), 4, |&x| x);
        assert!(out.is_empty());
        assert_eq!(par_map(vec![7], 4, |&x| x + 1), vec![8]);
    }

    #[test]
    fn zero_threads_means_auto() {
        let out = par_map((0..100).collect::<Vec<u32>>(), 0, |&x| x + 1);
        assert_eq!(out.len(), 100);
        assert_eq!(out[99], 100);
    }

    #[test]
    fn heavier_work_is_correct() {
        let out = par_map((0..64u64).collect::<Vec<_>>(), 4, |&x| {
            (0..=x).sum::<u64>()
        });
        assert_eq!(out[10], 55);
        assert_eq!(out[63], 63 * 64 / 2);
    }

    #[test]
    fn stats_account_for_every_cell() {
        let sweep = ParallelRunner::new(4).run((0..200u64).collect(), |&x| x + 1);
        assert_eq!(sweep.results.len(), 200);
        assert_eq!(sweep.stats.cells, 200);
        assert!(sweep.stats.threads >= 1 && sweep.stats.threads <= 4);
        assert!(sweep.stats.busy >= sweep.stats.max_cell);
    }

    #[test]
    fn identical_results_across_thread_counts() {
        let items: Vec<u64> = (0..257).collect();
        let serial = ParallelRunner::new(1).run(items.clone(), |&x| x.wrapping_mul(x) ^ 0xABCD);
        for threads in [2, 3, 8] {
            let par = ParallelRunner::new(threads)
                .run(items.clone(), |&x| x.wrapping_mul(x) ^ 0xABCD);
            assert_eq!(serial.results, par.results, "threads = {threads}");
        }
    }

    #[test]
    fn stats_summary_mentions_cells_and_threads() {
        let sweep = ParallelRunner::new(1).run(vec![1u32, 2, 3], |&x| x);
        let s = sweep.stats.summary();
        assert!(s.contains("3 cells"), "{s}");
        assert!(s.contains("1 thread"), "{s}");
    }
}
