//! Memoised offline lower bounds, keyed by `(trace fingerprint, m)`.
//!
//! A sweep grid evaluates every policy kind against the same handful of
//! traces, and each cell's competitive-ratio column needs the OPT lower
//! bound — whose expensive component is the Par-EDF simulation (linear in
//! the trace, but re-run per cell it dominates small sweeps). [`BoundCache`]
//! computes Par-EDF once per `(trace, m)` pair and serves every later lookup
//! from a [`parking_lot::RwLock`]-guarded map; the cheap `O(colors)`
//! per-color and capacity bounds are recomputed on the fly so the cached
//! entry stays independent of `Δ`.
//!
//! Traces are identified by an FNV-1a fingerprint of their canonical byte
//! encoding ([`Trace::to_bytes`]), so structurally equal traces share an
//! entry even across clones. Concurrent misses on the same key may race to
//! compute the value — both arrive at the same deterministic answer, so the
//! last insert simply wins and the duplicate work is bounded by the thread
//! count.

use parking_lot::RwLock;
use rrs_algorithms::par_edf::{par_edf, ParEdfResult};
use rrs_core::prelude::*;
use rrs_offline::bounds;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::OnceLock;

/// FNV-1a hash of a trace's canonical byte encoding.
pub fn trace_fingerprint(trace: &Trace) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in trace.to_bytes().as_ref() {
        h ^= b as u64;
        h = h.wrapping_mul(0x1000_0000_01b3);
    }
    h
}

/// Hit/miss counters and current size of a [`BoundCache`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups served from the map.
    pub hits: u64,
    /// Lookups that had to run Par-EDF.
    pub misses: u64,
    /// Distinct `(fingerprint, m)` entries resident.
    pub entries: usize,
}

impl CacheStats {
    /// Counter deltas accumulated since an earlier snapshot.
    pub fn since(&self, before: &CacheStats) -> CacheStats {
        CacheStats {
            hits: self.hits - before.hits,
            misses: self.misses - before.misses,
            entries: self.entries,
        }
    }

    /// One-line human-readable summary.
    pub fn summary(&self) -> String {
        format!(
            "bound cache: {} hits, {} misses, {} entries",
            self.hits, self.misses, self.entries
        )
    }
}

/// Concurrent memo of Par-EDF results keyed by `(trace fingerprint, m)`.
#[derive(Debug, Default)]
pub struct BoundCache {
    entries: RwLock<HashMap<(u64, usize), ParEdfResult>>,
    hits: AtomicU64,
    misses: AtomicU64,
}

impl BoundCache {
    /// An empty cache.
    pub fn new() -> Self {
        BoundCache::default()
    }

    /// The Par-EDF outcome for `(trace, m)`, computed at most once per key.
    pub fn par_edf(&self, trace: &Trace, m: usize) -> ParEdfResult {
        let key = (trace_fingerprint(trace), m);
        if let Some(&r) = self.entries.read().get(&key) {
            self.hits.fetch_add(1, Ordering::Relaxed);
            return r;
        }
        // Compute outside any lock: Par-EDF is the expensive part and a
        // racing duplicate is deterministic, so blocking readers would only
        // serialise the sweep.
        let r = par_edf(trace, m);
        self.misses.fetch_add(1, Ordering::Relaxed);
        self.entries.write().insert(key, r);
        r
    }

    /// [`bounds::combined_bound`] with the Par-EDF component served from the
    /// cache. Identical to the uncached function for every input.
    pub fn combined_bound(&self, trace: &Trace, m: usize, delta: u64) -> u64 {
        let par_edf_part = if trace.total_jobs() == 0 {
            0
        } else {
            self.par_edf(trace, m).dropped * trace.colors().min_drop_cost().max(1)
        };
        bounds::per_color_bound(trace, delta)
            .max(par_edf_part)
            .max(bounds::capacity_bound(trace, m))
    }

    /// Current counters.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            entries: self.entries.read().len(),
        }
    }

    /// Drops every entry (counters are kept; they are cumulative).
    pub fn clear(&self) {
        self.entries.write().clear();
    }
}

/// The process-global cache used by [`crate::ratio::estimate_opt`].
pub fn bound_cache() -> &'static BoundCache {
    static CACHE: OnceLock<BoundCache> = OnceLock::new();
    CACHE.get_or_init(BoundCache::new)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_trace(seed: u64) -> Trace {
        TraceBuilder::with_delay_bounds(&[4, 8])
            .jobs(0, 0, 3 + seed)
            .jobs(1, 1, 2)
            .jobs(3, 0, 5)
            .build()
    }

    #[test]
    fn cached_matches_uncached() {
        let cache = BoundCache::new();
        for seed in 0..4 {
            let t = small_trace(seed);
            for m in 1..=3 {
                for delta in [1, 4, 16] {
                    assert_eq!(
                        cache.combined_bound(&t, m, delta),
                        bounds::combined_bound(&t, m, delta),
                        "seed={seed} m={m} delta={delta}"
                    );
                }
            }
        }
    }

    #[test]
    fn second_lookup_hits() {
        let cache = BoundCache::new();
        let t = small_trace(0);
        cache.par_edf(&t, 2);
        let before = cache.stats();
        assert_eq!(before.misses, 1);
        cache.par_edf(&t, 2);
        let after = cache.stats();
        assert_eq!(after.hits, before.hits + 1);
        assert_eq!(after.misses, before.misses);
        assert_eq!(after.entries, 1);
    }

    #[test]
    fn clones_share_an_entry_but_m_does_not() {
        let cache = BoundCache::new();
        let t = small_trace(1);
        cache.par_edf(&t.clone(), 1);
        cache.par_edf(&t.clone(), 1);
        assert_eq!(cache.stats().entries, 1, "clones must share a fingerprint");
        cache.par_edf(&t, 2);
        assert_eq!(cache.stats().entries, 2, "m is part of the key");
    }

    #[test]
    fn fingerprint_distinguishes_traces() {
        assert_ne!(
            trace_fingerprint(&small_trace(0)),
            trace_fingerprint(&small_trace(1))
        );
        assert_eq!(
            trace_fingerprint(&small_trace(2)),
            trace_fingerprint(&small_trace(2).clone())
        );
    }

    #[test]
    fn delta_since_subtracts() {
        let a = CacheStats { hits: 2, misses: 3, entries: 3 };
        let b = CacheStats { hits: 7, misses: 4, entries: 4 };
        assert_eq!(b.since(&a), CacheStats { hits: 5, misses: 1, entries: 4 });
    }
}
