//! Plain-text visualization of schedules and traces.
//!
//! [`render_timeline`] draws a cache-occupancy chart from an
//! [`ExplicitSchedule`]: one row per color, one column per time bucket, with
//! the glyph encoding how many locations the color held during the bucket.
//! Good for eyeballing thrashing (vertical stripes), starvation (empty rows
//! under load) and the ΔLRU-EDF residency pattern.

use rrs_core::prelude::*;
use rrs_core::schedule::ExplicitSchedule;
use std::fmt::Write as _;

/// Glyph ramp: occupancy share of the bucket → density character.
const RAMP: &[char] = &[' ', '.', ':', '+', '*', '#'];

/// Renders a per-color occupancy timeline of `schedule` over `width` columns.
/// Each column aggregates `ceil(rounds / width)` rounds; the glyph shows the
/// color's average cached-copy count in the bucket relative to the schedule's
/// maximum per-color occupancy.
pub fn render_timeline(schedule: &ExplicitSchedule, colors: &ColorTable, width: usize) -> String {
    let width = width.max(1);
    let steps = &schedule.steps;
    if steps.is_empty() || colors.is_empty() {
        return String::from("(empty schedule)\n");
    }
    let rounds = steps.last().map(|s| s.round + 1).unwrap_or(0) as usize;
    let bucket = rounds.div_ceil(width).max(1);
    let ncols = rounds.div_ceil(bucket);
    // occupancy[color][bucket] = sum of cached copies over the bucket.
    // Copy-on-change steps carry the last explicit content forward.
    let mut occupancy = vec![vec![0u64; ncols]; colors.len()];
    let mut current = CacheTarget::empty();
    for step in steps {
        let b = step.round as usize / bucket;
        for (c, copies) in step.cache_or(&current).iter() {
            occupancy[c.index()][b] += u64::from(copies);
        }
        if let Some(target) = &step.cache {
            current = target.clone();
        }
    }
    let max = occupancy
        .iter()
        .flat_map(|row| row.iter().copied())
        .max()
        .unwrap_or(0)
        .max(1);
    let mut out = String::new();
    let _ = writeln!(
        out,
        "cache occupancy ({} rounds, {} per column; ' '<.<:<+<*<# density)",
        rounds, bucket
    );
    for (i, row) in occupancy.iter().enumerate() {
        let c = ColorId(i as u32);
        let _ = write!(out, "{:>4} D={:<6} |", c.to_string(), colors.delay_bound(c));
        for &v in row {
            let idx = ((v * (RAMP.len() as u64 - 1)).div_ceil(max)) as usize;
            out.push(RAMP[idx.min(RAMP.len() - 1)]);
        }
        out.push_str("|\n");
    }
    out
}

/// Summary statistics of a trace.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceStats {
    /// Total jobs.
    pub total_jobs: u64,
    /// Number of colors.
    pub ncolors: usize,
    /// Horizon (max deadline).
    pub horizon: Round,
    /// Jobs per color.
    pub jobs_per_color: Vec<u64>,
    /// Largest single-round arrival burst.
    pub peak_burst: u64,
    /// Mean arrivals per round (over rounds 0..=last arrival).
    pub mean_load: f64,
    /// Index of dispersion of per-round arrival counts (variance / mean);
    /// 1 ≈ Poisson, ≫1 bursty.
    pub dispersion: f64,
}

/// Computes [`TraceStats`].
pub fn trace_stats(trace: &Trace) -> TraceStats {
    let ncolors = trace.colors().len();
    let mut jobs_per_color = vec![0u64; ncolors];
    let mut per_round: std::collections::BTreeMap<Round, u64> = Default::default();
    let mut peak_burst = 0;
    for a in trace.iter() {
        jobs_per_color[a.color.index()] += a.count;
        peak_burst = peak_burst.max(a.count);
        *per_round.entry(a.round).or_insert(0) += a.count;
    }
    let last = trace.last_arrival_round().unwrap_or(0);
    let rounds = (last + 1) as f64;
    let mean = trace.total_jobs() as f64 / rounds;
    // Variance over all rounds including empty ones.
    let sum_sq: f64 = per_round.values().map(|&v| (v as f64) * (v as f64)).sum();
    let var = sum_sq / rounds - mean * mean;
    TraceStats {
        total_jobs: trace.total_jobs(),
        ncolors,
        horizon: trace.horizon(),
        jobs_per_color,
        peak_burst,
        mean_load: mean,
        dispersion: if mean > 0.0 { var / mean } else { 0.0 },
    }
}

impl TraceStats {
    /// Renders the stats as a small report.
    pub fn render(&self, colors: &ColorTable) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "jobs {}  colors {}  horizon {}  peak burst {}  mean load {:.2}/round  dispersion {:.2}",
            self.total_jobs, self.ncolors, self.horizon, self.peak_burst, self.mean_load,
            self.dispersion
        );
        for (i, &jobs) in self.jobs_per_color.iter().enumerate() {
            let c = ColorId(i as u32);
            let _ = writeln!(
                out,
                "  {c}: D={} jobs={} ({:.1}%)",
                colors.delay_bound(c),
                jobs,
                100.0 * jobs as f64 / self.total_jobs.max(1) as f64
            );
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rrs_core::{CostModel, Engine, EngineOptions};

    #[test]
    fn timeline_renders_rows_per_color() {
        let trace = TraceBuilder::with_delay_bounds(&[4, 8])
            .batched_jobs(0, 4, 0, 32)
            .batched_jobs(1, 8, 0, 32)
            .build();
        let mut p = rrs_algorithms::DlruEdf::new(trace.colors(), 4, 2).unwrap();
        let engine = Engine::with_options(EngineOptions {
            speed: Speed::Uni,
            record_schedule: true,
            track_latency: false,
            track_perf: false,
        });
        let r = engine.run(&trace, &mut p, 4, CostModel::new(2)).unwrap();
        let viz = render_timeline(r.schedule.as_ref().unwrap(), trace.colors(), 40);
        let lines: Vec<&str> = viz.lines().collect();
        assert_eq!(lines.len(), 3, "{viz}");
        assert!(lines[1].contains("c0"));
        assert!(lines[2].contains("c1"));
        assert!(viz.contains('#'), "an occupied stretch renders densely:\n{viz}");
    }

    #[test]
    fn empty_schedule_renders_placeholder() {
        let s = ExplicitSchedule::new(2, Speed::Uni);
        let t = ColorTable::from_delay_bounds(&[2]);
        assert!(render_timeline(&s, &t, 10).contains("empty"));
    }

    #[test]
    fn stats_basics() {
        let trace = TraceBuilder::with_delay_bounds(&[4, 8])
            .jobs(0, 0, 6)
            .jobs(0, 1, 2)
            .jobs(4, 0, 2)
            .build();
        let s = trace_stats(&trace);
        assert_eq!(s.total_jobs, 10);
        assert_eq!(s.jobs_per_color, vec![8, 2]);
        assert_eq!(s.peak_burst, 6);
        assert_eq!(s.horizon, 8);
        assert!((s.mean_load - 2.0).abs() < 1e-9, "{}", s.mean_load);
        assert!(s.dispersion > 1.0, "bursty trace disperses: {}", s.dispersion);
        let rendered = s.render(trace.colors());
        assert!(rendered.contains("c0"));
    }

    #[test]
    fn stats_empty_trace() {
        let t = Trace::new(ColorTable::from_delay_bounds(&[2]));
        let s = trace_stats(&t);
        assert_eq!(s.total_jobs, 0);
        assert_eq!(s.dispersion, 0.0);
    }
}
