//! # rrs-analysis — measurement toolkit and experiment harness
//!
//! * [`runner`] — a uniform [`runner::PolicyKind`] interface over every
//!   scheduler in the workspace;
//! * [`ratio`] — competitive-ratio estimation against the OPT sandwich
//!   (lower bounds ≤ exact DP ≤ hindsight-greedy upper bound);
//! * [`cache`] — memoised offline lower bounds keyed by
//!   `(trace fingerprint, m)` so Par-EDF runs once per trace per sweep;
//! * [`sweep`] — the work-stealing parallel sweep executor
//!   ([`sweep::ParallelRunner`]) with canonical-order merge and
//!   per-phase statistics;
//! * [`table`] — plain-text and CSV tables;
//! * [`experiments`] — one function per paper claim (E1–E14); see
//!   EXPERIMENTS.md for the claim ↔ measurement mapping.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cache;
pub mod experiments;
pub mod ratio;
pub mod runner;
pub mod stats;
pub mod sweep;
pub mod table;
pub mod viz;

pub use cache::{bound_cache, BoundCache, CacheStats};
pub use experiments::{run_experiment, ExpOptions, ExpReport, ALL_IDS};
pub use ratio::{estimate_opt, ratio, EstimateOptions, OptEstimate};
pub use runner::{
    run_cells, run_kind, CellOutcome, CellRow, GridSpec, PolicyKind, RunSummary, SweepCell,
};
pub use stats::{bootstrap_ci, summarize, ConfidenceInterval, Summary};
pub use sweep::{par_map, ParallelRunner, Sweep, SweepStats};
pub use table::Table;
pub use viz::{render_timeline, trace_stats, TraceStats};
