//! # rrs-analysis — measurement toolkit and experiment harness
//!
//! * [`runner`] — a uniform [`runner::PolicyKind`] interface over every
//!   scheduler in the workspace;
//! * [`ratio`] — competitive-ratio estimation against the OPT sandwich
//!   (lower bounds ≤ exact DP ≤ hindsight-greedy upper bound);
//! * [`sweep`] — parallel parameter sweeps (crossbeam scoped threads);
//! * [`table`] — plain-text and CSV tables;
//! * [`experiments`] — one function per paper claim (E1–E14); see
//!   EXPERIMENTS.md for the claim ↔ measurement mapping.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod experiments;
pub mod ratio;
pub mod runner;
pub mod stats;
pub mod sweep;
pub mod table;
pub mod viz;

pub use experiments::{run_experiment, ExpOptions, ExpReport, ALL_IDS};
pub use ratio::{estimate_opt, ratio, EstimateOptions, OptEstimate};
pub use runner::{run_kind, PolicyKind, RunSummary};
pub use stats::{bootstrap_ci, summarize, ConfidenceInterval, Summary};
pub use sweep::par_map;
pub use table::Table;
pub use viz::{render_timeline, trace_stats, TraceStats};
