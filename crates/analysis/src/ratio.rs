//! Competitive-ratio estimation against the OPT sandwich.
//!
//! `OPT(σ, m)` is bracketed as `lower ≤ OPT ≤ upper`:
//! the lower bound is `rrs_offline::bounds::combined_bound` (and the exact DP
//! value when the instance is small enough), the upper bound is the hindsight
//! greedy's cost (any feasible schedule upper-bounds OPT). Ratios against the
//! lower bound are **upper bounds on the true competitive ratio**, ratios
//! against the upper bound are lower bounds on it; the two together bound the
//! truth.

use crate::cache::bound_cache;
use rrs_core::prelude::*;
use rrs_core::{CostModel, Engine, EngineOptions};
use rrs_offline::{improve_schedule, optimal, HindsightGreedy, OptConfig};
use serde::{Deserialize, Serialize};

/// An estimate of the optimal offline cost for `m` resources.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct OptEstimate {
    /// Sound combinatorial lower bound.
    pub lower: u64,
    /// Exact optimum, when the DP fit in its state budget.
    pub exact: Option<u64>,
    /// Feasible-schedule upper bound (hindsight greedy).
    pub upper: u64,
}

impl OptEstimate {
    /// The best available stand-in for OPT: exact if known, else the lower
    /// bound (keeping reported ratios conservative, i.e. pessimistic for the
    /// online algorithm).
    pub fn best(&self) -> u64 {
        self.exact.unwrap_or(self.lower)
    }
}

/// Options for [`estimate_opt`].
#[derive(Debug, Clone, Copy)]
pub struct EstimateOptions {
    /// Attempt the exact DP (bounded by `max_states`).
    pub try_exact: bool,
    /// DP state budget.
    pub max_states: usize,
    /// Lookahead for the hindsight greedy (0 = auto from delay bounds).
    pub lookahead: u64,
    /// Local-search iterations to tighten the upper bound (0 = off).
    pub improve_iterations: u64,
}

impl Default for EstimateOptions {
    fn default() -> Self {
        EstimateOptions {
            try_exact: false,
            max_states: 200_000,
            lookahead: 0,
            improve_iterations: 0,
        }
    }
}

/// Estimates `OPT(trace, m)` under reconfiguration cost `delta`.
///
/// The lower bound's Par-EDF component is served from the process-global
/// [`bound_cache`], so sweeping many cells over the same trace pays for the
/// simulation once per `(trace, m)` pair.
pub fn estimate_opt(trace: &Trace, m: usize, delta: u64, opts: EstimateOptions) -> OptEstimate {
    let lower = bound_cache().combined_bound(trace, m, delta);
    let exact = if opts.try_exact {
        let cfg = OptConfig {
            m,
            delta,
            max_states: opts.max_states,
        };
        optimal(trace, cfg).ok().map(|r| r.cost)
    } else {
        None
    };
    let lookahead = if opts.lookahead == 0 {
        trace.colors().max_delay_bound().max(8)
    } else {
        opts.lookahead
    };
    let mut h = HindsightGreedy::new(trace.clone(), lookahead);
    let engine = Engine::with_options(EngineOptions {
        speed: Speed::Uni,
        record_schedule: opts.improve_iterations > 0,
        track_latency: false,
        track_perf: false,
    });
    let upper = match engine.run(trace, &mut h, m, CostModel::new(delta)) {
        Ok(r) => {
            let mut upper = r.cost.total();
            if opts.improve_iterations > 0 {
                if let Some(schedule) = r.schedule.as_ref() {
                    if let Ok(improved) = improve_schedule(
                        trace,
                        schedule,
                        delta,
                        opts.improve_iterations,
                        0x5EED,
                    ) {
                        upper = upper.min(improved.cost);
                    }
                }
            }
            upper
        }
        Err(_) => u64::MAX,
    };
    OptEstimate {
        lower,
        exact,
        upper: upper.max(exact.unwrap_or(0)).max(lower),
    }
}

/// Ratio of an online cost to an OPT stand-in, with 0/0 = 1.
pub fn ratio(online_cost: u64, opt: u64) -> f64 {
    match (online_cost, opt) {
        (0, 0) => 1.0,
        (_, 0) => f64::INFINITY,
        _ => online_cost as f64 / opt as f64,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sandwich_is_ordered() {
        let t = TraceBuilder::with_delay_bounds(&[4, 8])
            .batched_jobs(0, 3, 0, 32)
            .jobs(0, 1, 12)
            .build();
        let est = estimate_opt(
            &t,
            1,
            2,
            EstimateOptions {
                try_exact: true,
                ..Default::default()
            },
        );
        let exact = est.exact.expect("small instance solves exactly");
        assert!(est.lower <= exact, "{} <= {exact}", est.lower);
        assert!(exact <= est.upper, "{exact} <= {}", est.upper);
        assert_eq!(est.best(), exact);
    }

    #[test]
    fn ratio_edge_cases() {
        assert_eq!(ratio(0, 0), 1.0);
        assert_eq!(ratio(5, 0), f64::INFINITY);
        assert!((ratio(6, 3) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn local_search_tightens_the_upper_bound() {
        let t = TraceBuilder::with_delay_bounds(&[4, 8])
            .batched_jobs(0, 3, 0, 64)
            .jobs(0, 1, 12)
            .build();
        let plain = estimate_opt(&t, 1, 3, EstimateOptions::default());
        let tightened = estimate_opt(
            &t,
            1,
            3,
            EstimateOptions {
                improve_iterations: 500,
                ..Default::default()
            },
        );
        assert!(tightened.upper <= plain.upper);
        assert!(tightened.lower == plain.lower);
    }

    #[test]
    fn without_exact_best_is_lower() {
        let t = TraceBuilder::with_delay_bounds(&[4]).jobs(0, 0, 6).build();
        let est = estimate_opt(&t, 1, 3, EstimateOptions::default());
        assert!(est.exact.is_none());
        assert_eq!(est.best(), est.lower);
        assert!(est.upper >= est.lower);
    }
}
