//! Summary statistics for multi-seed experiment aggregation.
//!
//! Sweeps repeat each configuration across seeds; these helpers turn the raw
//! samples into a [`Summary`] (mean, standard deviation, percentiles) and a
//! seeded bootstrap confidence interval for the mean, so tables can report
//! `mean ± half-width` instead of bare point estimates.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Point summary of a sample.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Summary {
    /// Sample size.
    pub n: usize,
    /// Arithmetic mean.
    pub mean: f64,
    /// Sample standard deviation (n−1 denominator; 0 for n < 2).
    pub stddev: f64,
    /// Minimum.
    pub min: f64,
    /// Median (50th percentile).
    pub median: f64,
    /// Maximum.
    pub max: f64,
}

/// Computes a [`Summary`] (empty samples produce all-zero output).
pub fn summarize(samples: &[f64]) -> Summary {
    let n = samples.len();
    if n == 0 {
        return Summary {
            n: 0,
            mean: 0.0,
            stddev: 0.0,
            min: 0.0,
            median: 0.0,
            max: 0.0,
        };
    }
    let mean = samples.iter().sum::<f64>() / n as f64;
    let var = if n > 1 {
        samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / (n - 1) as f64
    } else {
        0.0
    };
    let mut sorted = samples.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("finite samples"));
    Summary {
        n,
        mean,
        stddev: var.sqrt(),
        min: sorted[0],
        median: percentile_sorted(&sorted, 0.5),
        max: sorted[n - 1],
    }
}

/// The `q`-percentile of a **sorted** sample via linear interpolation.
pub fn percentile_sorted(sorted: &[f64], q: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let q = q.clamp(0.0, 1.0);
    let pos = q * (sorted.len() - 1) as f64;
    let lo = pos.floor() as usize;
    let hi = pos.ceil() as usize;
    if lo == hi {
        sorted[lo]
    } else {
        let frac = pos - lo as f64;
        sorted[lo] * (1.0 - frac) + sorted[hi] * frac
    }
}

/// A seeded bootstrap confidence interval for the mean.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ConfidenceInterval {
    /// Lower endpoint.
    pub lo: f64,
    /// Upper endpoint.
    pub hi: f64,
    /// Confidence level used (e.g. 0.95).
    pub level: f64,
}

/// Percentile-bootstrap CI for the mean with `resamples` draws.
pub fn bootstrap_ci(samples: &[f64], level: f64, resamples: usize, seed: u64) -> ConfidenceInterval {
    if samples.len() < 2 {
        let v = samples.first().copied().unwrap_or(0.0);
        return ConfidenceInterval {
            lo: v,
            hi: v,
            level,
        };
    }
    let mut rng = StdRng::seed_from_u64(seed);
    let mut means: Vec<f64> = (0..resamples.max(1))
        .map(|_| {
            (0..samples.len())
                .map(|_| samples[rng.gen_range(0..samples.len())])
                .sum::<f64>()
                / samples.len() as f64
        })
        .collect();
    means.sort_by(|a, b| a.partial_cmp(b).expect("finite means"));
    let alpha = (1.0 - level.clamp(0.0, 1.0)) / 2.0;
    ConfidenceInterval {
        lo: percentile_sorted(&means, alpha),
        hi: percentile_sorted(&means, 1.0 - alpha),
        level,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summary_basics() {
        let s = summarize(&[1.0, 2.0, 3.0, 4.0]);
        assert_eq!(s.n, 4);
        assert!((s.mean - 2.5).abs() < 1e-12);
        assert!((s.median - 2.5).abs() < 1e-12);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.max, 4.0);
        assert!((s.stddev - (5.0f64 / 3.0).sqrt()).abs() < 1e-12);
    }

    #[test]
    fn empty_and_singleton() {
        let e = summarize(&[]);
        assert_eq!(e.n, 0);
        assert_eq!(e.mean, 0.0);
        let s = summarize(&[7.0]);
        assert_eq!(s.stddev, 0.0);
        assert_eq!(s.median, 7.0);
    }

    #[test]
    fn percentiles_interpolate() {
        let sorted = [0.0, 10.0];
        assert!((percentile_sorted(&sorted, 0.25) - 2.5).abs() < 1e-12);
        assert_eq!(percentile_sorted(&sorted, 0.0), 0.0);
        assert_eq!(percentile_sorted(&sorted, 1.0), 10.0);
        assert_eq!(percentile_sorted(&[], 0.5), 0.0);
    }

    #[test]
    fn bootstrap_contains_the_mean_and_is_seeded() {
        let samples: Vec<f64> = (0..40).map(|i| (i % 7) as f64).collect();
        let mean = summarize(&samples).mean;
        let ci = bootstrap_ci(&samples, 0.95, 500, 1);
        assert!(ci.lo <= mean && mean <= ci.hi, "{ci:?} vs mean {mean}");
        assert!(ci.lo < ci.hi);
        let ci2 = bootstrap_ci(&samples, 0.95, 500, 1);
        assert_eq!(ci, ci2, "deterministic per seed");
    }

    #[test]
    fn bootstrap_narrows_with_more_data() {
        let small: Vec<f64> = (0..8).map(|i| (i % 5) as f64).collect();
        let big: Vec<f64> = (0..512).map(|i| (i % 5) as f64).collect();
        let ci_small = bootstrap_ci(&small, 0.95, 400, 2);
        let ci_big = bootstrap_ci(&big, 0.95, 400, 2);
        assert!(ci_big.hi - ci_big.lo < ci_small.hi - ci_small.lo);
    }

    #[test]
    fn bootstrap_degenerate_cases() {
        let ci = bootstrap_ci(&[], 0.9, 100, 0);
        assert_eq!((ci.lo, ci.hi), (0.0, 0.0));
        let ci = bootstrap_ci(&[3.5], 0.9, 100, 0);
        assert_eq!((ci.lo, ci.hi), (3.5, 3.5));
    }
}
