//! A uniform, nameable interface over every scheduler in the workspace.
//!
//! Experiments, sweeps and benchmarks refer to algorithms as [`PolicyKind`]
//! values (plain data, serializable), and [`run_kind`] executes any of them on
//! a trace, returning a single [`RunSummary`] shape regardless of whether the
//! algorithm is a plain engine policy, a double-speed policy, a reduction
//! pipeline or the offline heuristic.

use rrs_algorithms::prelude::*;
use rrs_core::prelude::*;
use rrs_core::{CostModel, Engine, EngineOptions};
use rrs_offline::HindsightGreedy;
use rrs_reductions::{run_distribute, run_varbatch};
use serde::{Deserialize, Serialize};

/// Every runnable scheduler.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum PolicyKind {
    /// ΔLRU-EDF (paper §3.1.3) — the core contribution.
    DlruEdf,
    /// ΔLRU alone (paper §3.1.1).
    Dlru,
    /// EDF alone (paper §3.1.2).
    Edf,
    /// Seq-EDF (paper §3.3; no replication).
    SeqEdf,
    /// DS-Seq-EDF (paper §3.3; Seq-EDF on a double-speed engine).
    DsSeqEdf,
    /// Distribute ∘ ΔLRU-EDF (paper §4) — for batched inputs.
    Distribute,
    /// VarBatch ∘ Distribute ∘ ΔLRU-EDF (paper §5) — for general inputs.
    VarBatch,
    /// Static round-robin partition baseline.
    StaticPartition,
    /// Configure-once baseline.
    NeverReconfigure,
    /// Fully greedy most-pending baseline.
    GreedyPending,
    /// Offline hindsight greedy (the lookahead window is chosen from the
    /// trace's delay bounds).
    HindsightGreedy,
    /// ARC-style adaptive ΔLRU-EDF (extension beyond the paper).
    AdaptiveDlruEdf,
    /// ΔLRU with LRU-K style (K = 2) timestamps (extension).
    DlruK2,
    /// §1's "use idle cycles whenever available" strategy.
    EagerBackground,
    /// §1's "wait for a long idle period" strategy (patience = max D).
    PatientBackground,
}

impl PolicyKind {
    /// Display name.
    pub fn name(self) -> &'static str {
        match self {
            PolicyKind::DlruEdf => "ΔLRU-EDF",
            PolicyKind::Dlru => "ΔLRU",
            PolicyKind::Edf => "EDF",
            PolicyKind::SeqEdf => "Seq-EDF",
            PolicyKind::DsSeqEdf => "DS-Seq-EDF",
            PolicyKind::Distribute => "Distribute",
            PolicyKind::VarBatch => "VarBatch",
            PolicyKind::StaticPartition => "Static",
            PolicyKind::NeverReconfigure => "Never",
            PolicyKind::GreedyPending => "Greedy",
            PolicyKind::HindsightGreedy => "Hindsight",
            PolicyKind::AdaptiveDlruEdf => "Adaptive-ΔLRU-EDF",
            PolicyKind::DlruK2 => "ΔLRU-2",
            PolicyKind::EagerBackground => "Eager-BG",
            PolicyKind::PatientBackground => "Patient-BG",
        }
    }

    /// All online algorithms from the paper.
    pub fn paper_online() -> &'static [PolicyKind] {
        &[PolicyKind::Dlru, PolicyKind::Edf, PolicyKind::DlruEdf]
    }

    /// A standard comparison set: paper algorithms plus baselines.
    pub fn comparison_set() -> &'static [PolicyKind] {
        &[
            PolicyKind::DlruEdf,
            PolicyKind::Dlru,
            PolicyKind::Edf,
            PolicyKind::StaticPartition,
            PolicyKind::NeverReconfigure,
            PolicyKind::GreedyPending,
        ]
    }
}

/// The flattened outcome of one run.
///
/// `PartialEq`/`Eq` compare every field; the determinism tests rely on this
/// to assert that sweeps are bit-identical across thread counts.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct RunSummary {
    /// Which algorithm ran.
    pub kind: PolicyKind,
    /// Resources given.
    pub n: usize,
    /// Δ used.
    pub delta: u64,
    /// Total, reconfiguration and drop cost.
    pub cost: Cost,
    /// Executed job count.
    pub executed: u64,
    /// Dropped job count (equals `cost.drop` under the paper's unit drop
    /// costs).
    pub dropped_jobs: u64,
    /// Individual resource recolorings.
    pub reconfig_events: u64,
    /// Paper-analysis instrumentation, when the algorithm exposes it.
    pub instrumentation: Option<Instrumentation>,
}

/// Quantities from the paper's analysis (§3.2–§3.4), captured when the policy
/// maintains the shared batch state.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Instrumentation {
    /// Number of epochs (per the §3.2 definition).
    pub num_epochs: u64,
    /// Drop cost on ineligible jobs (Lemma 3.4's LHS).
    pub ineligible_drops: u64,
    /// Drop cost on eligible jobs (Lemma 3.2's LHS).
    pub eligible_drops: u64,
    /// Timestamp update events (§3.4).
    pub ts_updates: u64,
}

fn instr(state: &BatchState) -> Instrumentation {
    Instrumentation {
        num_epochs: state.num_epochs(),
        ineligible_drops: state.ineligible_drop_cost(),
        eligible_drops: state.eligible_drop_cost(),
        ts_updates: state.ts_update_events(),
    }
}

fn summarize(kind: PolicyKind, r: &RunResult, instrumentation: Option<Instrumentation>) -> RunSummary {
    RunSummary {
        kind,
        n: r.n,
        delta: r.delta,
        cost: r.cost,
        executed: r.executed,
        dropped_jobs: r.dropped_jobs,
        reconfig_events: r.reconfig_events,
        instrumentation,
    }
}

/// Runs `kind` with `n` resources and reconfiguration cost `delta` on `trace`.
pub fn run_kind(kind: PolicyKind, trace: &Trace, n: usize, delta: u64) -> Result<RunSummary> {
    let engine = Engine::new();
    let cm = CostModel::new(delta);
    match kind {
        PolicyKind::DlruEdf => {
            let mut p = DlruEdf::new(trace.colors(), n, delta)?;
            let r = engine.run(trace, &mut p, n, cm)?;
            Ok(summarize(kind, &r, Some(instr(p.state()))))
        }
        PolicyKind::Dlru => {
            let mut p = Dlru::new(trace.colors(), n, delta)?;
            let r = engine.run(trace, &mut p, n, cm)?;
            Ok(summarize(kind, &r, Some(instr(p.state()))))
        }
        PolicyKind::Edf => {
            let mut p = Edf::new(trace.colors(), n, delta)?;
            let r = engine.run(trace, &mut p, n, cm)?;
            Ok(summarize(kind, &r, Some(instr(p.state()))))
        }
        PolicyKind::SeqEdf => {
            let mut p = Edf::seq_edf(trace.colors(), n, delta)?;
            let r = engine.run(trace, &mut p, n, cm)?;
            Ok(summarize(kind, &r, Some(instr(p.state()))))
        }
        PolicyKind::DsSeqEdf => {
            let mut p = Edf::seq_edf(trace.colors(), n, delta)?;
            let ds = Engine::with_options(EngineOptions {
                speed: Speed::Double,
                record_schedule: false,
                track_latency: false,
                track_perf: false,
            });
            let r = ds.run(trace, &mut p, n, cm)?;
            Ok(summarize(kind, &r, Some(instr(p.state()))))
        }
        PolicyKind::Distribute => {
            let run = run_distribute(trace, n, delta)?;
            Ok(RunSummary {
                kind,
                n,
                delta,
                // The reductions target the unit-drop-cost main problem, so
                // drop cost equals dropped-job count.
                cost: run.projected_cost,
                executed: trace.total_jobs() - run.projected_cost.drop,
                dropped_jobs: run.projected_cost.drop,
                reconfig_events: run.projected_cost.reconfig / delta,
                instrumentation: None,
            })
        }
        PolicyKind::VarBatch => {
            let run = run_varbatch(trace, n, delta)?;
            Ok(RunSummary {
                kind,
                n,
                delta,
                cost: run.cost,
                executed: trace.total_jobs() - run.cost.drop,
                dropped_jobs: run.cost.drop,
                reconfig_events: run.cost.reconfig / delta,
                instrumentation: None,
            })
        }
        PolicyKind::StaticPartition => {
            let mut p = StaticPartition::new(trace.colors(), n);
            let r = engine.run(trace, &mut p, n, cm)?;
            Ok(summarize(kind, &r, None))
        }
        PolicyKind::NeverReconfigure => {
            let mut p = NeverReconfigure::new();
            let r = engine.run(trace, &mut p, n, cm)?;
            Ok(summarize(kind, &r, None))
        }
        PolicyKind::GreedyPending => {
            let mut p = GreedyPending::new();
            let r = engine.run(trace, &mut p, n, cm)?;
            Ok(summarize(kind, &r, None))
        }
        PolicyKind::HindsightGreedy => {
            let lookahead = trace.colors().max_delay_bound().max(8);
            let mut p = HindsightGreedy::new(trace.clone(), lookahead);
            let r = engine.run(trace, &mut p, n, cm)?;
            Ok(summarize(kind, &r, None))
        }
        PolicyKind::AdaptiveDlruEdf => {
            let mut p = AdaptiveDlruEdf::new(trace.colors(), n, delta)?;
            let r = engine.run(trace, &mut p, n, cm)?;
            Ok(summarize(kind, &r, Some(instr(p.state()))))
        }
        PolicyKind::DlruK2 => {
            let mut p = DlruK::new(trace.colors(), n, delta, 2)?;
            let r = engine.run(trace, &mut p, n, cm)?;
            Ok(summarize(kind, &r, Some(instr(p.state()))))
        }
        PolicyKind::EagerBackground => {
            let mut p = EagerBackground::new();
            let r = engine.run(trace, &mut p, n, cm)?;
            Ok(summarize(kind, &r, None))
        }
        PolicyKind::PatientBackground => {
            let mut p = PatientBackground::new(trace.colors().max_delay_bound());
            let r = engine.run(trace, &mut p, n, cm)?;
            Ok(summarize(kind, &r, None))
        }
    }
}

/// One cell of a sweep grid: which policy runs on which trace with which
/// resource count and reconfiguration cost.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct SweepCell {
    /// Algorithm under test.
    pub kind: PolicyKind,
    /// Index into the grid's trace list.
    pub trace: usize,
    /// Resources given to the online algorithm.
    pub n: usize,
    /// Reconfiguration cost Δ.
    pub delta: u64,
}

/// The cross-product description of a sweep grid.
#[derive(Debug, Clone, Copy)]
pub struct GridSpec<'a> {
    /// Algorithms to run.
    pub kinds: &'a [PolicyKind],
    /// Traces to run them on (cells refer to these by index).
    pub traces: &'a [Trace],
    /// Resource counts.
    pub ns: &'a [usize],
    /// Reconfiguration costs.
    pub deltas: &'a [u64],
}

impl GridSpec<'_> {
    /// The grid's cells in canonical order: kind-major, then trace, then
    /// `n`, then `Δ`. Sweep output rows always follow this order regardless
    /// of execution schedule.
    pub fn cells(&self) -> Vec<SweepCell> {
        let mut out =
            Vec::with_capacity(self.kinds.len() * self.traces.len() * self.ns.len() * self.deltas.len());
        for &kind in self.kinds {
            for trace in 0..self.traces.len() {
                for &n in self.ns {
                    for &delta in self.deltas {
                        out.push(SweepCell { kind, trace, n, delta });
                    }
                }
            }
        }
        out
    }
}

/// One finished grid cell: the run outcome plus the cached OPT lower bound
/// for the cell's `(trace, n, Δ)`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CellRow {
    /// The cell's coordinates.
    pub cell: SweepCell,
    /// The run summary, or the error message if the configuration was
    /// infeasible (e.g. fewer resources than colors for a partition policy).
    pub summary: std::result::Result<RunSummary, String>,
    /// `combined_bound(trace, n, Δ)` served through the global
    /// [`crate::cache::BoundCache`].
    pub opt_lower: u64,
}

/// A finished sweep over a [`GridSpec`].
#[derive(Debug)]
pub struct CellOutcome {
    /// Per-cell rows in canonical [`GridSpec::cells`] order — identical for
    /// every thread count.
    pub rows: Vec<CellRow>,
    /// Executor timing statistics (these vary run to run).
    pub stats: crate::sweep::SweepStats,
    /// Bound-cache activity attributable to this sweep.
    pub cache: crate::cache::CacheStats,
}

/// Executes every cell of `spec` on a work-stealing pool of `threads`
/// workers (`0` = auto) and merges the rows in canonical order.
///
/// Each cell also computes its OPT lower bound through the global
/// [`crate::cache::bound_cache`], so the expensive Par-EDF component runs
/// once per `(trace, n)` no matter how many kinds and Δs the grid crosses
/// it with.
pub fn run_cells(spec: &GridSpec, threads: usize) -> CellOutcome {
    let cache_before = crate::cache::bound_cache().stats();
    let cells = spec.cells();
    let traces = spec.traces;
    let sweep = crate::sweep::ParallelRunner::new(threads).run(cells, |&cell| {
        let trace = &traces[cell.trace];
        CellRow {
            cell,
            summary: run_kind(cell.kind, trace, cell.n, cell.delta).map_err(|e| e.to_string()),
            opt_lower: crate::cache::bound_cache().combined_bound(trace, cell.n, cell.delta),
        }
    });
    CellOutcome {
        rows: sweep.results,
        stats: sweep.stats,
        cache: crate::cache::bound_cache().stats().since(&cache_before),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn demo_trace() -> Trace {
        TraceBuilder::with_delay_bounds(&[4, 8])
            .batched_jobs(0, 3, 0, 64)
            .batched_jobs(1, 6, 0, 64)
            .build()
    }

    #[test]
    fn all_kinds_run_and_conserve_jobs() {
        let t = demo_trace();
        for &kind in &[
            PolicyKind::DlruEdf,
            PolicyKind::Dlru,
            PolicyKind::Edf,
            PolicyKind::SeqEdf,
            PolicyKind::DsSeqEdf,
            PolicyKind::Distribute,
            PolicyKind::VarBatch,
            PolicyKind::StaticPartition,
            PolicyKind::NeverReconfigure,
            PolicyKind::GreedyPending,
            PolicyKind::HindsightGreedy,
        ] {
            let s = run_kind(kind, &t, 8, 2).unwrap_or_else(|e| panic!("{kind:?}: {e}"));
            assert_eq!(
                s.executed + s.cost.drop,
                t.total_jobs(),
                "{kind:?} conserves jobs"
            );
        }
    }

    #[test]
    fn instrumentation_present_for_batched_policies() {
        let t = demo_trace();
        let s = run_kind(PolicyKind::DlruEdf, &t, 8, 2).unwrap();
        let i = s.instrumentation.expect("ΔLRU-EDF is instrumented");
        assert!(i.num_epochs >= 1);
        assert!(run_kind(PolicyKind::GreedyPending, &t, 8, 2)
            .unwrap()
            .instrumentation
            .is_none());
    }

    #[test]
    fn names_are_stable() {
        assert_eq!(PolicyKind::DlruEdf.name(), "ΔLRU-EDF");
        assert_eq!(PolicyKind::comparison_set().len(), 6);
    }

    #[test]
    fn grid_cells_are_canonical_kind_major() {
        let traces = [demo_trace()];
        let spec = GridSpec {
            kinds: &[PolicyKind::Edf, PolicyKind::Dlru],
            traces: &traces,
            ns: &[4, 8],
            deltas: &[1, 2],
        };
        let cells = spec.cells();
        assert_eq!(cells.len(), 8);
        assert_eq!(
            cells[0],
            SweepCell { kind: PolicyKind::Edf, trace: 0, n: 4, delta: 1 }
        );
        assert_eq!(
            cells[1],
            SweepCell { kind: PolicyKind::Edf, trace: 0, n: 4, delta: 2 }
        );
        assert_eq!(cells[4].kind, PolicyKind::Dlru);
    }

    #[test]
    fn run_cells_rows_match_grid_and_reuse_bounds() {
        let traces = [demo_trace()];
        let spec = GridSpec {
            kinds: PolicyKind::paper_online(),
            traces: &traces,
            ns: &[8],
            deltas: &[2, 4],
        };
        let out = run_cells(&spec, 2);
        assert_eq!(out.rows.len(), spec.cells().len());
        for (row, cell) in out.rows.iter().zip(spec.cells()) {
            assert_eq!(row.cell, cell);
            let s = row.summary.as_ref().expect("feasible configuration");
            assert_eq!(s.kind, cell.kind);
            assert!(
                s.cost.total() >= row.opt_lower || s.cost.total() == 0,
                "online never beats the OPT lower bound"
            );
        }
        // 3 kinds × 2 deltas share one (trace, n=8) Par-EDF computation.
        assert!(
            out.cache.hits >= 4,
            "expected cache reuse across kinds/deltas: {:?}",
            out.cache
        );
        assert_eq!(out.stats.cells, out.rows.len());
    }
}
