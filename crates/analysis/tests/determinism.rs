//! The executor's headline guarantee: a sweep's result table is
//! **bit-identical for every worker-thread count**. Runs the same grid with
//! 1, 2 and 8 threads and compares both the typed rows and their JSON
//! serialization.

use rrs_analysis::experiments::{run_experiment, ExpOptions};
use rrs_analysis::{run_cells, CellRow, GridSpec, PolicyKind};
use rrs_core::prelude::*;
use rrs_workloads::prelude::*;

fn grid_traces() -> Vec<Trace> {
    (0..3)
        .map(|s| {
            RandomBatched {
                delay_bounds: vec![2, 4, 8, 16],
                load: 0.7,
                activity: 0.8,
                horizon: 128,
                rate_limited: true,
            }
            .generate(0xD5EED + s)
        })
        .collect()
}

fn run_grid(traces: &[Trace], threads: usize) -> Vec<CellRow> {
    let spec = GridSpec {
        kinds: PolicyKind::comparison_set(),
        traces,
        ns: &[4, 8],
        deltas: &[2, 8],
    };
    run_cells(&spec, threads).rows
}

#[test]
fn sweep_rows_identical_across_thread_counts() {
    let traces = grid_traces();
    let baseline = run_grid(&traces, 1);
    assert!(!baseline.is_empty());
    for threads in [2, 8] {
        let rows = run_grid(&traces, threads);
        assert_eq!(baseline, rows, "rows diverged at {threads} threads");
        // Belt and braces: the serialized tables match byte for byte, so no
        // field outside PartialEq's reach (or a future skipped one) differs.
        for (a, b) in baseline.iter().zip(&rows) {
            let (sa, sb) = (a.summary.as_ref().unwrap(), b.summary.as_ref().unwrap());
            assert_eq!(
                serde_json::to_string(sa).unwrap(),
                serde_json::to_string(sb).unwrap(),
                "serialized summary diverged at {threads} threads for {:?}",
                a.cell
            );
        }
    }
}

#[test]
fn experiment_reports_identical_across_thread_counts() {
    // End-to-end through an experiment that sweeps policies in parallel:
    // the rendered table (not the timing notes) must not depend on threads.
    let render = |threads| {
        let opts = ExpOptions {
            threads,
            ..ExpOptions::quick()
        };
        let report = run_experiment("e13", opts).expect("known experiment id");
        (report.table.render(), report.pass)
    };
    let (table1, pass1) = render(1);
    for threads in [2, 8] {
        let (table, pass) = render(threads);
        assert_eq!(table1, table, "E13 table diverged at {threads} threads");
        assert_eq!(pass1, pass);
    }
}
