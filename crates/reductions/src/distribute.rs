//! Algorithm Distribute (paper §4.1): reduces `[Δ | 1 | D_ℓ | D_ℓ]` (batched,
//! unbounded batch sizes) to rate-limited `[Δ | 1 | D_ℓ | D_ℓ]`.
//!
//! Three steps:
//!
//! 1. **Split.** Each batch of color ℓ is split over *sub-colors* `(ℓ, j)`: the
//!    job ranked `r` within the batch goes to sub-color `j = ⌊r / D_ℓ⌋`. Every
//!    sub-color then receives at most `D_ℓ` jobs per multiple of `D_ℓ` — a
//!    rate-limited instance `I′`. The split is online (it only looks at the
//!    current round's request).
//! 2. **Solve.** Run ΔLRU-EDF (or any policy for the rate-limited problem) on
//!    `I′`.
//! 3. **Project.** Whenever the inner schedule configures `(ℓ, j)`, configure
//!    `ℓ`; whenever it executes an `(ℓ, j)` job, execute an `ℓ` job. The
//!    projected cost never exceeds the inner cost (Lemma 4.2) — merging
//!    sub-colors can only remove reconfigurations.
//!
//! Theorem 2: with ΔLRU-EDF inside, Distribute is resource competitive for
//! `[Δ | 1 | D_ℓ | D_ℓ]` with power-of-two delay bounds.

use rrs_algorithms::DlruEdf;
use rrs_core::prelude::*;
use rrs_core::schedule::{ExplicitSchedule, ScheduleStep};
use rrs_core::{CostModel, Engine, EngineOptions};

/// The color-splitting map from an instance `I` to its rate-limited `I′`.
#[derive(Debug, Clone)]
pub struct ColorSplit {
    /// For each sub-color id (index), the original color it belongs to.
    pub sub_to_orig: Vec<ColorId>,
    /// For each original color, its sub-color ids in `j` order.
    pub orig_to_subs: Vec<Vec<ColorId>>,
}

/// Splits `trace` into a rate-limited instance: sub-color `(ℓ, j)` receives
/// `min(D_ℓ, batch − j·D_ℓ)` jobs of each color-ℓ batch. Returns the split
/// trace and the color mapping.
pub fn split_trace(trace: &Trace) -> (Trace, ColorSplit) {
    let colors = trace.colors();
    // Number of sub-colors per color: the largest ⌈batch/D⌉ over its batches
    // (at least 1 so every color is represented).
    let mut max_subs = vec![1u64; colors.len()];
    for a in trace.iter() {
        let d = colors.delay_bound(a.color);
        let subs = a.count.div_ceil(d);
        let e = &mut max_subs[a.color.index()];
        *e = (*e).max(subs);
    }
    let mut sub_table = ColorTable::new();
    let mut sub_to_orig = Vec::new();
    let mut orig_to_subs = vec![Vec::new(); colors.len()];
    for (c, info) in colors.iter() {
        for _ in 0..max_subs[c.index()] {
            let sub = sub_table.push(info);
            sub_to_orig.push(c);
            orig_to_subs[c.index()].push(sub);
        }
    }
    let mut out = Trace::new(sub_table);
    for a in trace.iter() {
        let d = colors.delay_bound(a.color);
        let mut remaining = a.count;
        let mut j = 0usize;
        while remaining > 0 {
            let take = remaining.min(d);
            let sub = orig_to_subs[a.color.index()][j];
            out.add(a.round, sub, take).expect("sub-color exists");
            remaining -= take;
            j += 1;
        }
    }
    (
        out,
        ColorSplit {
            sub_to_orig,
            orig_to_subs,
        },
    )
}

/// Projects a schedule for the split instance back onto the original colors
/// (step 3 of Distribute).
pub fn project_schedule(inner: &ExplicitSchedule, split: &ColorSplit) -> ExplicitSchedule {
    let mut out = ExplicitSchedule::new(inner.n, inner.speed);
    for step in &inner.steps {
        // Copy-on-change passes through: an unchanged inner content projects
        // to an unchanged outer content.
        let cache = step.cache.as_ref().map(|target| {
            let mut cache = CacheTarget::empty();
            for (sub, copies) in target.iter() {
                cache.add(split.sub_to_orig[sub.index()], copies);
            }
            cache
        });
        let executed = step
            .executed
            .iter()
            .map(|sub| split.sub_to_orig[sub.index()])
            .collect();
        out.steps.push(ScheduleStep {
            round: step.round,
            mini: step.mini,
            cache,
            executed,
        });
    }
    out
}

/// Outcome of running Distribute end to end.
#[derive(Debug, Clone)]
pub struct DistributeRun {
    /// Cost of the inner (rate-limited) run of ΔLRU-EDF on `I′`.
    pub inner: RunResult,
    /// Cost of the projected schedule on the original instance, recomputed
    /// independently by the schedule checker.
    pub projected_cost: Cost,
    /// The projected schedule itself.
    pub schedule: ExplicitSchedule,
    /// Number of sub-colors in `I′`.
    pub sub_colors: usize,
}

/// Runs Distribute with ΔLRU-EDF inside: split `trace`, run ΔLRU-EDF with `n`
/// resources on the split instance, project back and re-validate.
///
/// # Errors
/// Propagates engine and validation errors (e.g. `n` not a multiple of 4).
pub fn run_distribute(trace: &Trace, n: usize, delta: u64) -> Result<DistributeRun> {
    let (split_t, split) = split_trace(trace);
    let mut inner_policy = DlruEdf::new(split_t.colors(), n, delta)?;
    let engine = Engine::with_options(EngineOptions {
        speed: Speed::Uni,
        record_schedule: true,
        track_latency: false,
        track_perf: false,
    });
    let inner = engine.run(&split_t, &mut inner_policy, n, CostModel::new(delta))?;
    let inner_schedule = inner
        .schedule
        .as_ref()
        .expect("record_schedule was enabled");
    let schedule = project_schedule(inner_schedule, &split);
    let projected_cost = rrs_core::schedule::check_schedule(trace, &schedule, CostModel::new(delta))?;
    let sub_colors = split_t.colors().len();
    Ok(DistributeRun {
        inner,
        projected_cost,
        schedule,
        sub_colors,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn split_respects_rate_limit() {
        // One batch of 10 with D = 4: sub-colors get 4, 4, 2.
        let t = TraceBuilder::with_delay_bounds(&[4]).jobs(0, 0, 10).build();
        let (t2, split) = split_trace(&t);
        assert_eq!(t2.colors().len(), 3);
        assert_eq!(t2.batch_class(), BatchClass::RateLimited);
        assert_eq!(t2.total_jobs(), 10);
        let counts: Vec<u64> = split.orig_to_subs[0]
            .iter()
            .map(|&s| t2.jobs_of_color(s))
            .collect();
        assert_eq!(counts, vec![4, 4, 2]);
    }

    #[test]
    fn split_preserves_rate_limited_traces() {
        let t = TraceBuilder::with_delay_bounds(&[4, 8])
            .batched_jobs(0, 3, 0, 32)
            .batched_jobs(1, 8, 0, 32)
            .build();
        let (t2, _) = split_trace(&t);
        assert_eq!(t2.colors().len(), 2, "already rate-limited: one sub each");
        assert_eq!(t2.total_jobs(), t.total_jobs());
    }

    #[test]
    fn sub_color_count_is_per_color_max() {
        let t = TraceBuilder::with_delay_bounds(&[4, 4])
            .jobs(0, 0, 9) // 3 subs
            .jobs(4, 0, 2) // still 3
            .jobs(0, 1, 4) // 1 sub
            .build();
        let (t2, split) = split_trace(&t);
        assert_eq!(split.orig_to_subs[0].len(), 3);
        assert_eq!(split.orig_to_subs[1].len(), 1);
        assert_eq!(t2.colors().len(), 4);
    }

    #[test]
    fn projection_merges_sub_colors() {
        let t = TraceBuilder::with_delay_bounds(&[2]).jobs(0, 0, 4).build();
        let (t2, split) = split_trace(&t);
        assert_eq!(t2.colors().len(), 2);
        let mut inner = ExplicitSchedule::new(4, Speed::Uni);
        inner.steps.push(ScheduleStep::new(
            0,
            0,
            CacheTarget::replicated([ColorId(0), ColorId(1)], 2),
            vec![ColorId(0), ColorId(0), ColorId(1), ColorId(1)],
        ));
        let proj = project_schedule(&inner, &split);
        let step_cache = proj.steps[0].cache.as_ref().expect("explicit content");
        assert_eq!(step_cache.copies_of(ColorId(0)), 4);
        assert_eq!(proj.steps[0].executed, vec![ColorId(0); 4]);
        // The projected schedule is feasible for the original trace.
        let cost =
            rrs_core::schedule::check_schedule(&t, &proj, CostModel::new(1)).unwrap();
        assert_eq!(cost.drop, 0);
    }

    #[test]
    fn end_to_end_projected_cost_never_exceeds_inner() {
        // Lemma 4.2 on a bursty batched (not rate-limited) workload.
        let t = TraceBuilder::with_delay_bounds(&[4, 8])
            .jobs(0, 0, 10)
            .jobs(4, 0, 6)
            .jobs(0, 1, 20)
            .jobs(16, 1, 3)
            .build();
        let run = run_distribute(&t, 8, 2).unwrap();
        assert!(run.projected_cost.total() <= run.inner.cost.total());
        assert_eq!(
            run.projected_cost.drop, run.inner.cost.drop,
            "drop cost is preserved exactly (Lemma 4.2)"
        );
    }

    #[test]
    fn distribute_serves_rate_limited_input_like_plain_dlru_edf() {
        // On an already rate-limited trace the split is the identity, so
        // Distribute == ΔLRU-EDF.
        let t = TraceBuilder::with_delay_bounds(&[4])
            .batched_jobs(0, 4, 0, 64)
            .build();
        let run = run_distribute(&t, 8, 2).unwrap();
        let mut direct = DlruEdf::new(t.colors(), 8, 2).unwrap();
        let direct_run = rrs_core::engine::run_policy(&t, &mut direct, 8, 2).unwrap();
        assert_eq!(run.projected_cost.total(), direct_run.cost.total());
    }
}
