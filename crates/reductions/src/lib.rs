//! # rrs-reductions — the paper's layered reductions
//!
//! The paper solves the main problem `[Δ | 1 | D_ℓ | 1]` through two layers:
//!
//! * [`distribute`] (§4): batched → rate-limited batched, by splitting every
//!   oversized batch across sub-colors `(ℓ, j)` and projecting the inner
//!   schedule back (Theorem 2);
//! * [`varbatch`] (§5): general arrivals → batched, by delaying every job to
//!   the next half-block of its delay bound (Theorem 3); the §5.3 extension
//!   handles arbitrary (non power-of-two) delay bounds;
//! * [`aggregate`] (§4.3): the constructive offline transformation behind
//!   Lemma 4.1, used to validate the reduction's offline side empirically.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod aggregate;
pub mod distribute;
pub mod varbatch;

pub use aggregate::{aggregate, AggregateRun};
pub use distribute::{run_distribute, split_trace, ColorSplit, DistributeRun};
pub use varbatch::{batched_delay, delay_to_batches, run_varbatch, VarBatchRun};

/// Convenience re-exports.
pub mod prelude {
    pub use crate::aggregate::{aggregate, AggregateRun};
    pub use crate::distribute::{run_distribute, split_trace, DistributeRun};
    pub use crate::varbatch::{delay_to_batches, run_varbatch, VarBatchRun};
}
