//! Algorithm Aggregate (paper §4.3): turning an offline schedule `T` for a
//! batched instance `I` into an offline schedule `T′` for the split instance
//! `I′` with a constant-factor resource blow-up — the constructive core of
//! Lemma 4.1 ("if `I` has a schedule, `I′` has a resource-competitive one").
//!
//! Our realization keeps the paper's skeleton — process delay bounds in
//! ascending order, block by block; partition each color's executed jobs in a
//! block into groups of size ≤ p; assign each group a sub-color label by group
//! rank (largest group → label 0, matching the batch split of `I′`); place
//! each group on a single resource inside the block, preferring the resource
//! that served the same `(ℓ, label)` in the previous block (the paper's label
//! inheritance, which is what bounds the reconfiguration cost) — but replaces
//! the paper's mono/multichromatic case analysis with explicit first-fit
//! placement over `factor × m` resources, validated post-hoc by the
//! independent schedule checker. The paper proves `factor = 3` always
//! suffices for its construction; ours may occasionally want more, which the
//! caller observes as an `Err` and can retry with a larger factor (experiment
//! E7 sweeps this).

use crate::distribute::{split_trace, ColorSplit};
use rrs_core::prelude::*;
use rrs_core::schedule::{ExplicitSchedule, ScheduleStep};
use rrs_core::time::block_index;
use std::collections::{BTreeMap, HashMap};

/// Outcome of an Aggregate construction.
#[derive(Debug, Clone)]
pub struct AggregateRun {
    /// The constructed schedule for the split instance `I′`.
    pub schedule: ExplicitSchedule,
    /// Its cost, recomputed by the independent checker against `I′`.
    pub cost: Cost,
    /// The split instance `I′`.
    pub split_trace: Trace,
    /// The color mapping between `I` and `I′`.
    pub split: ColorSplit,
}

/// Executes Aggregate: given `trace` (a batched instance) and an offline
/// uni-speed schedule `t_sched` for it with `m` resources, build a schedule
/// for the split instance with `factor × m` resources.
///
/// # Errors
/// Returns an error when first-fit placement runs out of room (retry with a
/// larger `factor`) or when the input schedule is malformed.
pub fn aggregate(
    trace: &Trace,
    t_sched: &ExplicitSchedule,
    factor: usize,
    delta: u64,
) -> Result<AggregateRun> {
    if t_sched.speed != Speed::Uni {
        return Err(Error::InvalidParameter(
            "Aggregate expects a uni-speed input schedule".into(),
        ));
    }
    let colors = trace.colors();
    let horizon = trace.horizon();
    let n_out = t_sched.n * factor;
    let rounds = (horizon + 1) as usize;

    // Count T's executions per (delay bound p, block i, color ℓ).
    let mut per_block: BTreeMap<(u64, u64, ColorId), u64> = BTreeMap::new();
    for step in &t_sched.steps {
        for &c in &step.executed {
            let p = colors.delay_bound(c);
            *per_block.entry((p, block_index(p, step.round), c)).or_insert(0) += 1;
        }
    }

    let (split_t, split) = split_trace(trace);

    // Per-resource occupancy and color timeline for the output schedule.
    let mut occupied = vec![vec![false; rounds]; n_out];
    let mut timeline: Vec<Vec<Option<ColorId>>> = vec![vec![None; rounds]; n_out];
    // Label inheritance: (orig color, label) -> resource used in previous block.
    let mut last_resource: HashMap<(ColorId, usize), usize> = HashMap::new();
    let mut executions: Vec<Vec<ColorId>> = vec![Vec::new(); rounds];

    // Process in ascending order of delay bounds, then blocks, then colors —
    // BTreeMap iteration order gives exactly (p, i, ℓ) ascending.
    for (&(p, i, c), &count) in &per_block {
        let block_start = (i * p) as usize;
        let block_end = (((i + 1) * p) as usize).min(rounds);
        // Partition into groups of size <= p, largest (p) first; group g gets
        // sub-color label g, which is guaranteed to have >= group-size jobs in
        // this block's batch of I'.
        let mut remaining = count;
        let mut label = 0usize;
        while remaining > 0 {
            let group = remaining.min(p);
            let sub = split.orig_to_subs[c.index()][label];
            // Candidate resources: the inherited one first, then all others.
            let preferred = last_resource.get(&(c, label)).copied();
            let mut order: Vec<usize> = Vec::with_capacity(n_out);
            if let Some(r) = preferred {
                order.push(r);
            }
            order.extend((0..n_out).filter(|&r| Some(r) != preferred));
            let mut placed = false;
            for r in order {
                let free: Vec<usize> = (block_start..block_end)
                    .filter(|&t| !occupied[r][t])
                    .collect();
                if free.len() as u64 >= group {
                    for &t in free.iter().take(group as usize) {
                        occupied[r][t] = true;
                        timeline[r][t] = Some(sub);
                        executions[t].push(sub);
                    }
                    last_resource.insert((c, label), r);
                    placed = true;
                    break;
                }
            }
            if !placed {
                return Err(Error::InvalidParameter(format!(
                    "Aggregate first-fit out of room for {c} in block({p},{i}) \
                     with factor {factor}; retry with a larger factor"
                )));
            }
            remaining -= group;
            label += 1;
        }
    }

    // Fill timeline gaps: a resource keeps its previous color between groups
    // (free persistence, matching the cost model where only gaining a color
    // pays Δ).
    for row in timeline.iter_mut() {
        let mut current: Option<ColorId> = None;
        for slot in row.iter_mut() {
            match *slot {
                Some(c) => current = Some(c),
                None => *slot = current,
            }
        }
    }

    // Compose the explicit schedule.
    let mut schedule = ExplicitSchedule::new(n_out, Speed::Uni);
    for t in 0..rounds {
        let mut cache = CacheTarget::empty();
        for row in &timeline {
            if let Some(c) = row[t] {
                cache.add(c, 1);
            }
        }
        schedule
            .steps
            .push(ScheduleStep::new(t as Round, 0, cache, std::mem::take(&mut executions[t])));
    }

    let cost = rrs_core::schedule::check_schedule(&split_t, &schedule, CostModel::new(delta))?;
    Ok(AggregateRun {
        schedule,
        cost,
        split_trace: split_t,
        split,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use rrs_core::schedule::check_schedule;

    /// A hand-built offline schedule serving one color on one resource.
    fn single_color_schedule(rounds: u64, c: ColorId, per_round: bool) -> ExplicitSchedule {
        let mut s = ExplicitSchedule::new(1, Speed::Uni);
        for round in 0..rounds {
            s.steps.push(ScheduleStep::new(
                round,
                0,
                CacheTarget::singles([c]),
                if per_round { vec![c] } else { vec![] },
            ));
        }
        s
    }

    #[test]
    fn aggregate_preserves_executed_jobs() {
        // 4 jobs of D=4 at round 0, served by T on one resource.
        let t = TraceBuilder::with_delay_bounds(&[4]).jobs(0, 0, 4).build();
        let sched = single_color_schedule(4, ColorId(0), true);
        let orig_cost = check_schedule(&t, &sched, CostModel::new(2)).unwrap();
        assert_eq!(orig_cost.drop, 0);
        let agg = aggregate(&t, &sched, 3, 2).unwrap();
        assert_eq!(agg.cost.drop, 0, "Lemma 4.5: same drop cost");
        assert_eq!(agg.schedule.executed_jobs(), 4);
    }

    #[test]
    fn aggregate_splits_oversized_batches_across_labels() {
        // A batch of 10 with D=4: I' has sub-colors of sizes 4,4,2. T (with
        // enough resources) executes all 10 in the block; Aggregate must place
        // 3 groups.
        let t = TraceBuilder::with_delay_bounds(&[4]).jobs(0, 0, 10).build();
        let mut sched = ExplicitSchedule::new(3, Speed::Uni);
        for round in 0..4u64 {
            let execs = if round < 3 { 3 } else { 1 }; // 3+3+3+1 = 10
            sched.steps.push(ScheduleStep::new(
                round,
                0,
                CacheTarget::replicated([ColorId(0)], 3),
                vec![ColorId(0); execs],
            ));
        }
        assert_eq!(
            check_schedule(&t, &sched, CostModel::new(1)).unwrap().drop,
            0
        );
        let agg = aggregate(&t, &sched, 3, 1).unwrap();
        assert_eq!(agg.cost.drop, 0);
        // All three sub-colors appear in the output.
        let used: std::collections::BTreeSet<ColorId> = agg
            .schedule
            .steps
            .iter()
            .flat_map(|s| s.executed.iter().copied())
            .collect();
        assert_eq!(used.len(), 3);
    }

    #[test]
    fn label_inheritance_keeps_reconfig_cost_low() {
        // T serves one steady color over many blocks on one resource. T' must
        // not reconfigure per block: label 0 inherits its resource.
        let t = TraceBuilder::with_delay_bounds(&[4])
            .batched_jobs(0, 4, 0, 64)
            .build();
        let sched = single_color_schedule(64, ColorId(0), true);
        let agg = aggregate(&t, &sched, 3, 5).unwrap();
        assert_eq!(agg.cost.drop, 0);
        assert_eq!(
            agg.cost.reconfig, 5,
            "a single configuration of (c0, label 0), inherited forever"
        );
    }

    #[test]
    fn rejects_double_speed_input() {
        let t = TraceBuilder::with_delay_bounds(&[4]).build();
        let s = ExplicitSchedule::new(1, Speed::Double);
        assert!(aggregate(&t, &s, 3, 1).is_err());
    }

    #[test]
    fn factor_one_can_fail_where_three_succeeds() {
        // Two colors of different delay bounds interleaved on one resource in
        // T; placing the split groups with factor 1 can run out of room, while
        // a larger factor succeeds. (We only assert the larger factor works
        // and never errs.)
        let t = TraceBuilder::with_delay_bounds(&[2, 4])
            .batched_jobs(0, 2, 0, 16)
            .batched_jobs(1, 2, 0, 16)
            .build();
        // Offline: 2 resources, color per resource.
        let mut sched = ExplicitSchedule::new(2, Speed::Uni);
        for round in 0..16u64 {
            let mut executed = vec![ColorId(0)];
            if round % 4 < 2 {
                executed.push(ColorId(1));
            }
            sched.steps.push(ScheduleStep::new(
                round,
                0,
                CacheTarget::singles([ColorId(0), ColorId(1)]),
                executed,
            ));
        }
        assert_eq!(
            check_schedule(&t, &sched, CostModel::new(1)).unwrap().drop,
            0
        );
        let agg = aggregate(&t, &sched, 3, 1).unwrap();
        assert_eq!(agg.cost.drop, 0);
    }
}
