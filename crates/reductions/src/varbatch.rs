//! Algorithm VarBatch (paper §5.1) and its extension to arbitrary delay
//! bounds (§5.3): reduces the main problem `[Δ | 1 | D_ℓ | 1]` to the batched
//! problem solved by Distribute.
//!
//! A job of delay bound `p` arriving in half-block `i` of `p` is delayed to
//! the start of half-block `i + 1` and must execute within that half-block —
//! i.e. it becomes a job of delay bound `p/2` in a batched instance
//! `[Δ | 1 | p/2 | p/2]`. The delayed deadline `(i+2)·p/2` never exceeds the
//! original `arrival + p`, so any schedule for the batched instance is
//! feasible for the original one.
//!
//! For arbitrary (non power-of-two) delay bounds `2^j ≤ p < 2^{j+1}` the §5.3
//! extension uses half-blocks of `2^{j-1}` — uniformly expressed here as
//! `D′ = pow2_floor(p) / 2` (delay-1 colors are already batched and pass
//! through unchanged).
//!
//! Theorem 3: VarBatch (with Distribute and ΔLRU-EDF inside) is resource
//! competitive for `[Δ | 1 | D_ℓ | 1]`.

use crate::distribute::{run_distribute, DistributeRun};
use rrs_core::prelude::*;
use rrs_core::time::pow2_floor;

/// The batched delay bound VarBatch assigns to an original delay bound `p`:
/// `p/2` for powers of two `> 1`, `pow2_floor(p)/2` in general, and 1 for
/// `p ∈ {1, 2, 3}` (whose floor-halving would be zero).
pub fn batched_delay(p: u64) -> u64 {
    (pow2_floor(p) / 2).max(1)
}

/// Builds the batched instance σ′: every job of color ℓ arriving in
/// half-block `i` of `D′_ℓ·2` reappears at the start of half-block `i+1` with
/// delay bound `D′_ℓ`. Equivalently: a job arriving at round `r` reappears at
/// `(⌊r / D′⌋ + 1) · D′`.
pub fn delay_to_batches(trace: &Trace) -> Trace {
    let colors = trace.colors();
    let new_bounds: Vec<u64> = colors
        .iter()
        .map(|(_, info)| batched_delay(info.delay_bound))
        .collect();
    let mut out = Trace::new(ColorTable::from_delay_bounds(&new_bounds));
    for a in trace.iter() {
        // Delay-1 colors are already batched (every round is a multiple of 1);
        // delaying them would push jobs past their own deadline (paper §5
        // assumes D_ℓ > 1 for exactly this reason).
        if trace.colors().delay_bound(a.color) == 1 {
            out.add(a.round, a.color, a.count).expect("same colors");
            continue;
        }
        let d2 = new_bounds[a.color.index()];
        let delayed_round = (a.round / d2 + 1) * d2;
        out.add(delayed_round, a.color, a.count).expect("same colors");
    }
    out
}

/// Outcome of running VarBatch end to end.
#[derive(Debug, Clone)]
pub struct VarBatchRun {
    /// The inner Distribute run on the batched instance σ′.
    pub distribute: DistributeRun,
    /// Cost of the final schedule re-validated against the **original** trace.
    pub cost: Cost,
}

/// Runs VarBatch with Distribute+ΔLRU-EDF inside on a general-arrival trace.
///
/// ```
/// use rrs_core::prelude::*;
/// use rrs_reductions::run_varbatch;
///
/// // General arrivals (any round, any delay bounds — even non powers of 2).
/// let mut b = TraceBuilder::with_delay_bounds(&[8, 12]);
/// for r in 0..64 {
///     b = b.jobs(r, (r % 2) as u32, 1);
/// }
/// let trace = b.build();
/// let run = run_varbatch(&trace, 8, 2)?;
/// assert!(run.cost.drop < trace.total_jobs(), "most jobs are served");
/// # Ok::<(), rrs_core::Error>(())
/// ```
///
/// The schedule produced for σ′ is replayed against the original σ: since σ's
/// jobs arrive no later and expire no earlier than their σ′ counterparts,
/// the schedule is feasible verbatim, and the independent checker confirms it.
pub fn run_varbatch(trace: &Trace, n: usize, delta: u64) -> Result<VarBatchRun> {
    let batched = delay_to_batches(trace);
    let distribute = run_distribute(&batched, n, delta)?;
    // Replay the projected schedule against the original trace. Executions of
    // delayed jobs always map to available original jobs (earlier arrivals,
    // later deadlines). Drop cost may only shrink; here job counts are equal,
    // so it is identical — but we recompute from scratch to be sure.
    let cost = rrs_core::schedule::check_schedule(
        trace,
        &distribute.schedule,
        CostModel::new(delta),
    )?;
    Ok(VarBatchRun { distribute, cost })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn batched_delay_halves_powers_of_two() {
        assert_eq!(batched_delay(2), 1);
        assert_eq!(batched_delay(8), 4);
        assert_eq!(batched_delay(1024), 512);
    }

    #[test]
    fn batched_delay_handles_arbitrary_bounds() {
        // 2^j <= p < 2^{j+1} -> 2^{j-1}.
        assert_eq!(batched_delay(5), 2); // floor 4 -> 2
        assert_eq!(batched_delay(7), 2);
        assert_eq!(batched_delay(9), 4); // floor 8 -> 4
        assert_eq!(batched_delay(1), 1);
        assert_eq!(batched_delay(3), 1);
    }

    #[test]
    fn delayed_jobs_land_on_next_half_block() {
        // D = 8, half-blocks of 4. A job at round 5 (half-block 1) moves to
        // round 8; a job at round 8 (half-block 2) moves to round 12.
        let t = TraceBuilder::with_delay_bounds(&[8])
            .jobs(5, 0, 2)
            .jobs(8, 0, 1)
            .build();
        let b = delay_to_batches(&t);
        assert_eq!(b.colors().delay_bound(ColorId(0)), 4);
        assert_eq!(b.arrivals_at(8), vec![(ColorId(0), 2)]);
        assert_eq!(b.arrivals_at(12), vec![(ColorId(0), 1)]);
        // Batched (here even rate-limited, since the counts are <= D').
        assert_ne!(b.batch_class(), BatchClass::General);
    }

    #[test]
    fn delayed_deadline_respects_original_window() {
        // For every job: new deadline (delayed_round + D') <= arrival + D.
        let t = TraceBuilder::with_delay_bounds(&[8, 16, 5])
            .jobs(3, 0, 1)
            .jobs(7, 1, 1)
            .jobs(9, 2, 1)
            .build();
        let b = delay_to_batches(&t);
        let mut orig: Vec<_> = t.iter().collect();
        let mut delayed: Vec<_> = b.iter().collect();
        orig.sort_by_key(|a| (a.color, a.round));
        delayed.sort_by_key(|a| (a.color, a.round));
        for (o, d) in orig.iter().zip(&delayed) {
            assert_eq!(o.color, d.color);
            let orig_deadline = o.round + t.colors().delay_bound(o.color);
            let new_deadline = d.round + b.colors().delay_bound(d.color);
            assert!(d.round >= o.round, "jobs are delayed, never advanced");
            assert!(
                new_deadline <= orig_deadline,
                "window shrinks: {new_deadline} vs {orig_deadline}"
            );
        }
    }

    #[test]
    fn varbatch_serves_general_arrivals() {
        // Steady general traffic one color: VarBatch must serve nearly all of
        // it (some warmup drops before eligibility are fine).
        let mut b = TraceBuilder::with_delay_bounds(&[8]);
        for r in 0..128 {
            b = b.jobs(r, 0, 2);
        }
        let t = b.build();
        let run = run_varbatch(&t, 8, 2).unwrap();
        let served_fraction = 1.0 - run.cost.drop as f64 / t.total_jobs() as f64;
        assert!(
            served_fraction > 0.9,
            "served {served_fraction}, cost {:?}",
            run.cost
        );
    }

    #[test]
    fn varbatch_cost_matches_inner_drop_accounting() {
        let t = TraceBuilder::with_delay_bounds(&[8, 16])
            .jobs(1, 0, 6)
            .jobs(9, 0, 3)
            .jobs(2, 1, 10)
            .build();
        let run = run_varbatch(&t, 8, 2).unwrap();
        assert_eq!(
            run.cost.drop, run.distribute.projected_cost.drop,
            "same jobs, same executions, same drops"
        );
        assert_eq!(run.cost.reconfig, run.distribute.projected_cost.reconfig);
    }

    #[test]
    fn varbatch_handles_non_power_of_two_bounds() {
        let mut b = TraceBuilder::with_delay_bounds(&[5, 13]);
        for r in 0..64 {
            b = b.jobs(r, (r % 2) as u32, 1);
        }
        let t = b.build();
        let run = run_varbatch(&t, 8, 1).unwrap();
        assert!(run.cost.total() > 0);
        assert!(run.cost.drop < t.total_jobs(), "a decent share is served");
    }
}
