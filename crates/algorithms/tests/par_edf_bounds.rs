//! Par-EDF's two load-bearing properties as explicit tests (Lemma 3.7):
//! its drop count is monotonically non-increasing in the resource count `m`,
//! and it lower-bounds the drops of every baseline policy run with the same
//! resources.

use rrs_algorithms::{par_edf, GreedyPending, NeverReconfigure, StaticPartition};
use rrs_core::engine::run_policy;
use rrs_core::prelude::*;
use rrs_workloads::prelude::*;

fn workload_traces() -> Vec<(String, Trace)> {
    let mut out = vec![
        (
            "handcrafted-overload".into(),
            TraceBuilder::with_delay_bounds(&[2, 4, 8])
                .jobs(0, 0, 9)
                .jobs(0, 1, 6)
                .jobs(2, 2, 12)
                .jobs(5, 0, 4)
                .jobs(8, 1, 8)
                .build(),
        ),
        (
            "single-color-burst".into(),
            TraceBuilder::with_delay_bounds(&[4]).jobs(0, 0, 40).build(),
        ),
    ];
    for seed in 0..3 {
        let t = RandomBatched {
            delay_bounds: vec![2, 4, 8, 16],
            load: 1.4, // overloaded so drops actually occur
            activity: 0.9,
            horizon: 256,
            rate_limited: false,
        }
        .generate(seed);
        out.push((format!("random-batched/s{seed}"), t));
    }
    out
}

#[test]
fn par_edf_drops_non_increasing_in_m() {
    for (name, trace) in workload_traces() {
        let mut prev = u64::MAX;
        for m in 1..=12 {
            let r = par_edf(&trace, m);
            assert!(
                r.dropped <= prev,
                "{name}: drops rose from {prev} to {} at m={m}",
                r.dropped
            );
            assert_eq!(
                r.executed + r.dropped,
                trace.total_jobs(),
                "{name}: Par-EDF conserves jobs at m={m}"
            );
            prev = r.dropped;
        }
        // With resources for every pending job no drop is forced.
        let saturated = par_edf(&trace, trace.total_jobs().max(1) as usize);
        assert_eq!(saturated.dropped, 0, "{name}: saturation clears all drops");
    }
}

#[test]
fn par_edf_lower_bounds_every_baseline_policy() {
    for (name, trace) in workload_traces() {
        for m in [1usize, 2, 4, 8] {
            let bound = par_edf(&trace, m).dropped;
            let mut baselines: Vec<(&str, Box<dyn Policy>)> = vec![
                ("greedy", Box::new(GreedyPending::new())),
                ("never", Box::new(NeverReconfigure::new())),
                ("static", Box::new(StaticPartition::new(trace.colors(), m))),
            ];
            for (bname, policy) in baselines.iter_mut() {
                let r = run_policy(&trace, policy.as_mut(), m, 2).unwrap();
                assert!(
                    bound <= r.dropped_jobs,
                    "{name}/{bname} m={m}: Par-EDF bound {bound} exceeds policy drops {}",
                    r.dropped_jobs
                );
            }
        }
    }
}
