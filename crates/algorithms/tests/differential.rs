//! Differential tests pinning every optimized policy to its frozen
//! pre-optimization twin in [`rrs_algorithms::reference`].
//!
//! The live policies run on incrementally-maintained indices
//! ([`rrs_algorithms::ranking`]) fed by the phase-delta refresh contracts; the
//! reference twins rebuild and re-sort from scratch every mini-round. Both are
//! run over randomized traces at both speeds with schedule recording on, and
//! the *entire* [`rrs_core::RunResult`] — costs, per-color tallies, and the
//! recorded [`rrs_core::ExplicitSchedule`] — must match **bit-identically**.
//!
//! A separate test cuts a streaming run mid-flight (engine snapshot + policy
//! clone) and checks the restored half continues bit-identically.

use proptest::prelude::*;
use rrs_algorithms::dlru_edf::DlruEdfConfig;
use rrs_algorithms::prelude::*;
use rrs_algorithms::reference::{
    RefAdaptiveDlruEdf, RefDlru, RefDlruEdf, RefDlruK, RefEdf, RefGreedyPending,
};
use rrs_core::prelude::*;
use rrs_core::streaming::StreamingEngine;
use std::sync::{Arc, Mutex};

/// Strategy: a trace over 2–8 colors with power-of-two delay bounds and a few
/// dozen arrival bursts — enough to exercise wraps, eligibility flips, idle
/// alternation, evictions and the expiry wheel's cascade boundaries.
fn random_trace() -> impl Strategy<Value = Trace> {
    let bounds = proptest::collection::vec(
        prop_oneof![
            Just(1u64),
            Just(2),
            Just(4),
            Just(8),
            Just(16),
            Just(32),
            Just(64),
            Just(128)
        ],
        2..=8,
    );
    bounds.prop_flat_map(|bs| {
        let ncolors = bs.len() as u32;
        let arrivals = proptest::collection::vec((0u64..96, 0..ncolors, 1u64..=9), 1..40);
        arrivals.prop_map(move |arr| {
            let mut table = ColorTable::new();
            for &b in &bs {
                table.push(ColorInfo::new(b));
            }
            let mut t = Trace::new(table);
            for (round, color, count) in arr {
                t.add(round, ColorId(color), count).unwrap();
            }
            t
        })
    })
}

/// Runs a fresh live policy and a fresh reference policy over `trace` at both
/// speeds with schedule recording on, asserting bit-identical [`RunResult`]s
/// (recorded schedules included).
fn assert_twin(
    trace: &Trace,
    mk_live: impl Fn() -> Box<dyn Policy>,
    mk_reference: impl Fn() -> Box<dyn Policy>,
    n: usize,
    delta: u64,
) {
    for speed in [Speed::Uni, Speed::Double] {
        let engine = Engine::with_options(EngineOptions {
            speed,
            record_schedule: true,
            track_latency: true,
            track_perf: false,
        });
        let (mut live, mut reference) = (mk_live(), mk_reference());
        let res_live = engine
            .run(trace, live.as_mut(), n, CostModel::new(delta))
            .unwrap();
        let res_ref = engine
            .run(trace, reference.as_mut(), n, CostModel::new(delta))
            .unwrap();
        assert_eq!(
            res_live, res_ref,
            "optimized diverged from reference ({speed:?}, n={n}, Δ={delta})"
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn dlru_matches_reference(
        trace in random_trace(),
        delta in 1u64..6,
        repl in prop_oneof![Just(1u32), Just(2), Just(4)],
    ) {
        let (t, n) = (trace.colors().clone(), 8usize);
        assert_twin(
            &trace,
            || Box::new(Dlru::with_replication(&t, n, delta, repl).unwrap()),
            || Box::new(RefDlru::new(&t, n, delta, repl).unwrap()),
            n,
            delta,
        );
    }

    #[test]
    fn dlru_k_matches_reference(
        trace in random_trace(),
        delta in 1u64..6,
        k in 1usize..4,
    ) {
        let (t, n) = (trace.colors().clone(), 8usize);
        assert_twin(
            &trace,
            || Box::new(DlruK::new(&t, n, delta, k).unwrap()),
            || Box::new(RefDlruK::new(&t, n, delta, k).unwrap()),
            n,
            delta,
        );
    }

    #[test]
    fn edf_matches_reference(
        trace in random_trace(),
        delta in 1u64..6,
        repl in prop_oneof![Just(1u32), Just(2), Just(4)],
    ) {
        let (t, n) = (trace.colors().clone(), 8usize);
        assert_twin(
            &trace,
            || Box::new(Edf::with_replication(&t, n, delta, repl).unwrap()),
            || Box::new(RefEdf::new(&t, n, delta, repl).unwrap()),
            n,
            delta,
        );
    }

    #[test]
    fn dlru_edf_matches_reference(
        trace in random_trace(),
        delta in 1u64..6,
        alt_config in 0u32..2,
    ) {
        let (t, n) = (trace.colors().clone(), 8usize);
        let config = if alt_config == 1 {
            DlruEdfConfig { lru_quarters: 3, edf_quarters: 1, replication: 1 }
        } else {
            DlruEdfConfig::default()
        };
        assert_twin(
            &trace,
            || Box::new(DlruEdf::with_config(&t, n, delta, config).unwrap()),
            || Box::new(RefDlruEdf::new(&t, n, delta, config).unwrap()),
            n,
            delta,
        );
    }

    #[test]
    fn adaptive_matches_reference(
        trace in random_trace(),
        delta in 1u64..6,
    ) {
        let (t, n) = (trace.colors().clone(), 8usize);
        assert_twin(
            &trace,
            || Box::new(AdaptiveDlruEdf::new(&t, n, delta).unwrap()),
            || Box::new(RefAdaptiveDlruEdf::new(&t, n, delta).unwrap()),
            n,
            delta,
        );
    }

    #[test]
    fn greedy_pending_matches_reference(
        trace in random_trace(),
        delta in 1u64..6,
        n in 1usize..9,
    ) {
        assert_twin(
            &trace,
            || Box::new(GreedyPending::new()),
            || Box::new(RefGreedyPending),
            n,
            delta,
        );
    }
}

/// Delegating wrapper so a test can keep a handle on a streaming engine's
/// policy and clone its exact state at the snapshot cut.
struct Shared<P>(Arc<Mutex<P>>);

impl<P: Policy> Policy for Shared<P> {
    fn name(&self) -> String {
        self.0.lock().unwrap().name()
    }
    fn on_drop_phase(&mut self, round: Round, dropped: &[(ColorId, u64)], view: &EngineView) {
        self.0.lock().unwrap().on_drop_phase(round, dropped, view);
    }
    fn on_arrival_phase(&mut self, round: Round, arrivals: &[(ColorId, u64)], view: &EngineView) {
        self.0.lock().unwrap().on_arrival_phase(round, arrivals, view);
    }
    fn reconfigure(&mut self, round: Round, mini: u32, view: &EngineView) -> CacheTarget {
        self.0.lock().unwrap().reconfigure(round, mini, view)
    }
}

/// Snapshot/restore mid-run: an optimized (index-carrying) policy cloned at
/// the cut plus the engine snapshot must continue bit-identically — i.e. the
/// incremental indices are part of the policy's cloneable state and survive
/// the cut without drifting from a straight-through run.
#[test]
fn snapshot_restore_mid_run_is_bit_identical() {
    // Deterministic LCG-driven arrival schedule, 48 rounds, 6 colors.
    let bounds = [1u64, 2, 4, 8, 16, 32];
    let mut table = ColorTable::new();
    for &b in &bounds {
        table.push(ColorInfo::new(b));
    }
    let mut seed = 0x1234_5678_9abc_def0u64;
    let mut rng = move || {
        seed = seed
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        seed >> 33
    };
    let mut per_round: Vec<Vec<(ColorId, u64)>> = Vec::new();
    for _ in 0..48 {
        let mut row = Vec::new();
        for c in 0..bounds.len() as u32 {
            if rng() % 3 == 0 {
                row.push((ColorId(c), 1 + rng() % 7));
            }
        }
        per_round.push(row);
    }

    for cut in [1usize, 13, 29, 47] {
        let (n, delta) = (8usize, 2u64);
        // Straight-through run, with an outside handle on the policy.
        let handle = Arc::new(Mutex::new(DlruEdf::new(&table, n, delta).unwrap()));
        let mut full = StreamingEngine::new(
            table.clone(),
            Box::new(Shared(handle.clone())),
            n,
            CostModel::new(delta),
        )
        .unwrap();
        let mut snap = None;
        let mut policy_at_cut = None;
        for (i, row) in per_round.iter().enumerate() {
            if i == cut {
                snap = Some(full.snapshot());
                policy_at_cut = Some(handle.lock().unwrap().clone());
            }
            full.step(row).unwrap();
        }
        let full_result = full.finish().unwrap();

        // Restored run: engine snapshot + policy clone, then the same tail.
        let mut resumed = StreamingEngine::restore(
            table.clone(),
            Box::new(policy_at_cut.unwrap()),
            snap.unwrap(),
        )
        .unwrap();
        for row in per_round.iter().skip(cut) {
            resumed.step(row).unwrap();
        }
        let resumed_result = resumed.finish().unwrap();
        assert_eq!(
            full_result, resumed_result,
            "restored run diverged (cut at round {cut})"
        );
    }
}
