//! Par-EDF (paper §3.3): the relaxed super-resource EDF used in the analysis.
//!
//! Par-EDF treats the `m` resources as one super resource executing up to `m`
//! pending jobs per round with the best job ranks (earliest deadline, then delay
//! bound, then color order), **ignoring colors and reconfiguration costs
//! entirely**. By the optimality of EDF for unit jobs (Lemma 3.7),
//! `DropCost_ParEDF(σ) ≤ DropCost_OFF(σ)` for every offline schedule with `m`
//! resources — making Par-EDF's drop count a sound lower bound on the optimum's
//! drop cost, which `rrs-offline` uses as one of its bounds.

use rrs_core::prelude::*;
use std::collections::BTreeMap;

/// Outcome of a Par-EDF run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ParEdfResult {
    /// Jobs executed.
    pub executed: u64,
    /// Jobs dropped (a lower bound on any m-resource schedule's drop cost).
    pub dropped: u64,
}

/// Runs Par-EDF with `m` resources over `trace`.
///
/// ```
/// use rrs_core::prelude::*;
/// use rrs_algorithms::par_edf::par_edf;
///
/// // 6 jobs in a 4-round window on one resource: 2 drops are inevitable
/// // for ANY schedule — this is the Lemma 3.7 lower bound.
/// let trace = TraceBuilder::with_delay_bounds(&[4]).jobs(0, 0, 6).build();
/// assert_eq!(par_edf(&trace, 1).dropped, 2);
/// ```
///
/// # Panics
/// Panics if `m == 0`.
pub fn par_edf(trace: &Trace, m: usize) -> ParEdfResult {
    assert!(m > 0, "Par-EDF needs at least one resource");
    let colors = trace.colors();
    // Pending jobs keyed by job rank (deadline, delay bound, color) -> count.
    let mut pending: BTreeMap<(Round, u64, ColorId), u64> = BTreeMap::new();
    let mut executed = 0u64;
    let mut dropped = 0u64;

    let horizon = trace.horizon();
    for round in 0..=horizon {
        // Drop phase: remove expired jobs (deadline <= round).
        while let Some((&key, &count)) = pending.iter().next() {
            if key.0 <= round {
                dropped += count;
                pending.remove(&key);
            } else {
                break;
            }
        }
        // Arrival phase.
        for (color, count) in trace.arrivals_at(round) {
            let d = colors.delay_bound(color);
            *pending.entry((round + d, d, color)).or_insert(0) += count;
        }
        // Execution phase: up to m best-ranked pending jobs.
        let mut budget = m as u64;
        while budget > 0 {
            let Some((&key, &count)) = pending.iter().next() else {
                break;
            };
            let take = count.min(budget);
            executed += take;
            budget -= take;
            if take == count {
                pending.remove(&key);
            } else {
                *pending.get_mut(&key).unwrap() -= take;
            }
        }
    }
    debug_assert_eq!(executed + dropped, trace.total_jobs());
    ParEdfResult { executed, dropped }
}

/// Whether `trace` is *nice* for `m` resources (paper §3.3): Par-EDF incurs no
/// drops on it.
pub fn is_nice(trace: &Trace, m: usize) -> bool {
    par_edf(trace, m).dropped == 0
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn executes_everything_when_capacity_suffices() {
        let trace = TraceBuilder::with_delay_bounds(&[4])
            .batched_jobs(0, 4, 0, 32)
            .build();
        let r = par_edf(&trace, 1);
        assert_eq!(r.dropped, 0);
        assert!(is_nice(&trace, 1));
    }

    #[test]
    fn drops_exact_overflow() {
        // 6 jobs with a 4-round window on one resource: exactly 2 drops.
        let trace = TraceBuilder::with_delay_bounds(&[4]).jobs(0, 0, 6).build();
        let r = par_edf(&trace, 1);
        assert_eq!(r.dropped, 2);
        assert_eq!(r.executed, 4);
        assert!(!is_nice(&trace, 1));
        assert!(is_nice(&trace, 2));
    }

    #[test]
    fn earliest_deadline_is_preferred() {
        // Color 0: 2 jobs, deadline 2. Color 1: 2 jobs, deadline 8.
        // One resource: EDF does c0,c0,c1,c1 — everything fits.
        let trace = TraceBuilder::with_delay_bounds(&[2, 8])
            .jobs(0, 0, 2)
            .jobs(0, 1, 2)
            .build();
        assert_eq!(par_edf(&trace, 1).dropped, 0);
    }

    #[test]
    fn colors_are_irrelevant_to_capacity() {
        // m jobs per round across many colors: Par-EDF serves them all even
        // though a real schedule would need reconfigurations.
        let trace = TraceBuilder::with_delay_bounds(&[1, 1, 1])
            .jobs(0, 0, 1)
            .jobs(0, 1, 1)
            .jobs(0, 2, 1)
            .build();
        assert_eq!(par_edf(&trace, 3).dropped, 0);
        assert_eq!(par_edf(&trace, 1).dropped, 2);
    }

    #[test]
    fn multi_resource_rounds() {
        // 8 jobs, window 2 rounds, 4 resources: 4+4 executions.
        let trace = TraceBuilder::with_delay_bounds(&[2]).jobs(0, 0, 8).build();
        assert_eq!(par_edf(&trace, 4).dropped, 0);
        assert_eq!(par_edf(&trace, 3).dropped, 2);
    }
}
