//! Baseline policies used as comparators in the experiments.
//!
//! None of these come from the paper; they bracket the design space the paper's
//! introduction describes: static allocations (no reconfiguration cost, heavy
//! drops under shifting workloads) versus fully greedy adaptation (good
//! utilization, heavy thrashing). ΔLRU-EDF must beat both on adversarial mixes.

use crate::ranking::{colors_by_pending, NonidleSet};
use rrs_core::prelude::*;
use std::cmp::Reverse;

/// Statically partitions the `n` resources over all colors round-robin at round
/// 0 and never reconfigures again.
#[derive(Debug, Clone)]
pub struct StaticPartition {
    target: CacheTarget,
    configured: bool,
}

impl StaticPartition {
    /// Creates the static partition for `table` over `n` resources: slot `i`
    /// serves color `i mod ncolors`.
    pub fn new(table: &ColorTable, n: usize) -> Self {
        let mut target = CacheTarget::empty();
        if !table.is_empty() {
            for slot in 0..n {
                target.add(ColorId((slot % table.len()) as u32), 1);
            }
        }
        StaticPartition {
            target,
            configured: false,
        }
    }
}

impl Policy for StaticPartition {
    fn name(&self) -> String {
        "StaticPartition".into()
    }

    fn reconfigure(&mut self, _round: Round, _mini: u32, _view: &EngineView) -> CacheTarget {
        self.configured = true;
        self.target.clone()
    }
}

/// Configures once — at the first round with pending work, to the colors with
/// the largest backlogs — and never reconfigures again.
#[derive(Debug, Clone, Default)]
pub struct NeverReconfigure {
    target: Option<CacheTarget>,
}

impl NeverReconfigure {
    /// Creates the policy.
    pub fn new() -> Self {
        Self::default()
    }
}

impl Policy for NeverReconfigure {
    fn name(&self) -> String {
        "NeverReconfigure".into()
    }

    fn reconfigure(&mut self, _round: Round, _mini: u32, view: &EngineView) -> CacheTarget {
        if let Some(t) = &self.target {
            return t.clone();
        }
        let mut colors = colors_by_pending(view.pending);
        if colors.is_empty() {
            return CacheTarget::empty();
        }
        colors.truncate(view.n);
        // Fill all n slots by cycling through the chosen colors.
        let mut target = CacheTarget::empty();
        for slot in 0..view.n {
            target.add(colors[slot % colors.len()], 1);
        }
        self.target = Some(target.clone());
        target
    }
}

/// Fully greedy: every round, allocate all `n` slots to the colors with the
/// most pending jobs (one slot per color, cycling while slots remain). Maximally
/// adaptive and maximally thrash-prone.
#[derive(Debug, Clone)]
pub struct GreedyPending {
    /// Nonidle colors (membership only), maintained O(1) from phase deltas.
    /// Greedy changes most counts every round, so a fully ordered count
    /// index rebalances constantly for a top-`n` it barely reads; selecting
    /// the top `n` from the membership set at use time is strictly cheaper.
    nonidle: NonidleSet,
    /// Colors the last reconfiguration allocated slots to — the only colors
    /// the subsequent execution phase can drain.
    selected: Vec<ColorId>,
    /// Scratch: chosen colors with their unallocated pending counts.
    remaining: Vec<(ColorId, u64)>,
}

impl GreedyPending {
    /// Creates the policy.
    pub fn new() -> Self {
        GreedyPending {
            nonidle: NonidleSet::new(0),
            selected: Vec::new(),
            remaining: Vec::new(),
        }
    }
}

impl Default for GreedyPending {
    fn default() -> Self {
        Self::new()
    }
}

impl Policy for GreedyPending {
    fn name(&self) -> String {
        "GreedyPending".into()
    }

    fn on_drop_phase(&mut self, _round: Round, dropped: &[(ColorId, u64)], view: &EngineView) {
        for &(c, _) in dropped {
            self.nonidle.refresh(view.pending, c);
        }
    }

    fn on_arrival_phase(&mut self, _round: Round, arrivals: &[(ColorId, u64)], view: &EngineView) {
        for &(c, _) in arrivals {
            self.nonidle.refresh(view.pending, c);
        }
    }

    fn reconfigure(&mut self, _round: Round, _mini: u32, view: &EngineView) -> CacheTarget {
        // Execution drains only the colors the previous target configured, with
        // no policy hook: re-derive their membership before selecting.
        for i in 0..self.selected.len() {
            self.nonidle.refresh(view.pending, self.selected[i]);
        }
        let mut target = CacheTarget::empty();
        // Top `view.n` nonidle colors by (descending backlog, ascending id) —
        // identical to the full `colors_by_pending` sort truncated to `n`,
        // via a linear-time partial selection over the live counts.
        self.remaining.clear();
        self.remaining
            .extend(self.nonidle.iter().map(|c| (c, view.pending.count(c))));
        let top = view.n.min(self.remaining.len());
        if top < self.remaining.len() {
            if top == 0 {
                self.remaining.clear();
            } else {
                self.remaining
                    .select_nth_unstable_by_key(top - 1, |&(c, k)| (Reverse(k), c));
                self.remaining.truncate(top);
            }
        }
        self.remaining
            .sort_unstable_by_key(|&(c, k)| (Reverse(k), c));
        self.selected.clear();
        self.selected.extend(self.remaining.iter().map(|&(c, _)| c));
        if self.remaining.is_empty() {
            return target;
        }
        // Allocate slots proportionally-ish: round-robin over the chosen colors,
        // but never more slots for a color than it has pending jobs.
        let mut slots = view.n;
        while slots > 0 {
            let mut progressed = false;
            for (c, left) in self.remaining.iter_mut() {
                if slots == 0 {
                    break;
                }
                if *left > 0 {
                    target.add(*c, 1);
                    *left -= 1;
                    slots -= 1;
                    progressed = true;
                }
            }
            if !progressed {
                break;
            }
        }
        target
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rrs_core::engine::run_policy;

    #[test]
    fn static_partition_serves_uniform_load() {
        let trace = TraceBuilder::with_delay_bounds(&[4, 4])
            .batched_jobs(0, 2, 0, 32)
            .batched_jobs(1, 2, 0, 32)
            .build();
        let mut p = StaticPartition::new(trace.colors(), 2);
        let r = run_policy(&trace, &mut p, 2, 4).unwrap();
        assert_eq!(r.cost.drop, 0);
        assert_eq!(r.reconfig_events, 2, "configures each slot exactly once");
    }

    #[test]
    fn static_partition_fails_on_skew() {
        // All load on color 1; half the capacity is wasted on color 0.
        let trace = TraceBuilder::with_delay_bounds(&[4, 4])
            .batched_jobs(1, 8, 0, 32)
            .build();
        let mut p = StaticPartition::new(trace.colors(), 2);
        let r = run_policy(&trace, &mut p, 2, 4).unwrap();
        assert!(r.cost.drop > 0, "skewed load overflows the static slot");
    }

    #[test]
    fn never_reconfigure_configures_once() {
        let trace = TraceBuilder::with_delay_bounds(&[4, 4])
            .jobs(0, 0, 4)
            .jobs(8, 1, 4)
            .build();
        let mut p = NeverReconfigure::new();
        let r = run_policy(&trace, &mut p, 2, 4).unwrap();
        assert_eq!(r.reconfig_events, 2, "both slots configured once, never again");
        assert_eq!(r.drops_by_color[1], 4, "later color is never served");
    }

    #[test]
    fn greedy_pending_adapts_but_thrashes() {
        // Load alternates between two colors each multiple of 4.
        let mut b = TraceBuilder::with_delay_bounds(&[4, 4]);
        for i in 0..8 {
            b = b.jobs(i * 4, (i % 2) as u32, 4);
        }
        let trace = b.build();
        let mut p = GreedyPending::new();
        let r = run_policy(&trace, &mut p, 1, 4).unwrap();
        assert!(r.reconfig_events >= 8, "greedy reconfigures per burst");
    }

    #[test]
    fn greedy_pending_respects_pending_counts() {
        // One pending job, four slots: greedy must not claim 4 copies.
        let trace = TraceBuilder::with_delay_bounds(&[4]).jobs(0, 0, 1).build();
        let mut p = GreedyPending::new();
        let r = run_policy(&trace, &mut p, 4, 1).unwrap();
        assert_eq!(r.executed, 1);
        assert_eq!(r.reconfig_events, 1, "only one slot ever configured");
    }

    #[test]
    fn empty_color_table_is_harmless() {
        let trace = Trace::new(ColorTable::new());
        let mut p = StaticPartition::new(trace.colors(), 2);
        let r = run_policy(&trace, &mut p, 2, 1).unwrap();
        assert_eq!(r.cost.total(), 0);
    }
}
