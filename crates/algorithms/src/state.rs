//! The per-color state machine shared by the batched algorithms (paper §3.1).
//!
//! ΔLRU, EDF and ΔLRU-EDF differ only in their reconfiguration schemes; they
//! share the following per-color bookkeeping, which [`BatchState`] implements:
//!
//! * a counter `ℓ.cnt` incremented by arrivals and wrapped modulo Δ (*counter
//!   wrapping events*);
//! * a deadline `ℓ.dd`, set to `k + D_ℓ` at every integral multiple `k` of `D_ℓ`;
//! * an *eligible* flag: a color becomes eligible at its first counter wrapping
//!   event and becomes ineligible again (with `cnt` reset to zero) at a multiple
//!   of `D_ℓ` at which it is eligible but not cached;
//! * a *timestamp*: the latest round **before** the most recent multiple of
//!   `D_ℓ` in which a counter wrapping event occurred, or 0 (paper §3.1.1).
//!
//! The struct additionally instruments the quantities used by the paper's
//! analysis: epochs (§3.2), timestamp update events and super-epochs (§3.4), and
//! the eligible/ineligible drop classification of Lemma 3.2/3.4.

use rrs_core::prelude::*;
use std::collections::BTreeSet;

/// Mutable per-color state.
#[derive(Debug, Clone)]
pub struct ColorState {
    /// Delay bound `D_ℓ` (cached from the color table).
    pub delay_bound: u64,
    /// The counter `ℓ.cnt` (always `< Δ` outside the arrival phase).
    pub cnt: u64,
    /// The deadline `ℓ.dd` (valid once the color has seen a multiple of `D_ℓ`).
    pub deadline: Round,
    /// Eligibility flag.
    pub eligible: bool,
    /// Round of the most recent counter wrapping event, if any.
    pub last_wrap: Option<Round>,
    /// Current timestamp per the §3.1.1 definition (0 if no qualifying wrap).
    pub timestamp: Round,
    // --- instrumentation ---
    /// Number of times the color became eligible (= number of epochs that
    /// progressed past their initial ineligible prefix; see [`BatchState::num_epochs`]).
    pub became_eligible: u64,
    /// Number of times the color became ineligible (completed epochs).
    pub became_ineligible: u64,
    /// Number of timestamp update events (timestamp value changes; §3.4).
    pub ts_updates: u64,
    /// Jobs dropped while the color was ineligible (Lemma 3.4's quantity).
    pub ineligible_drops: u64,
    /// Jobs dropped while the color was eligible (Lemma 3.2's quantity).
    pub eligible_drops: u64,
}

impl ColorState {
    fn new(delay_bound: u64) -> Self {
        ColorState {
            delay_bound,
            cnt: 0,
            deadline: 0,
            eligible: false,
            last_wrap: None,
            timestamp: 0,
            became_eligible: 0,
            became_ineligible: 0,
            ts_updates: 0,
            ineligible_drops: 0,
            eligible_drops: 0,
        }
    }
}

/// Shared state machine driving the common aspects of the batched algorithms.
///
/// The owning policy calls [`BatchState::drop_phase`] and
/// [`BatchState::arrival_phase`] from the corresponding engine hooks, providing
/// its current cached-color set, and then reads eligibility, deadlines and
/// timestamps from [`BatchState::color`] inside its reconfiguration scheme.
#[derive(Debug, Clone)]
pub struct BatchState {
    /// Reconfiguration cost Δ.
    pub delta: u64,
    colors: Vec<ColorState>,
    /// Colors grouped by delay bound (ascending bounds, members ascending), so
    /// the per-phase multiple-of-`D_ℓ` work only visits groups whose bound
    /// divides the round instead of scanning every color.
    groups: Vec<(u64, Vec<ColorId>)>,
    /// Colors whose rank-relevant state changed in the most recent phase
    /// (sorted, deduplicated). Policies feed this delta into their incremental
    /// indexes instead of rescanning all colors.
    touched: Vec<ColorId>,
    /// Arrival batches classified as ineligible (their jobs will be dropped
    /// while the color is ineligible), recorded as `(round, color, count)`.
    ineligible_batches: Vec<(Round, ColorId, u64)>,
    /// Super-epoch tracker threshold (`2m` in the analysis); 0 disables tracking.
    super_epoch_threshold: usize,
    super_epoch_updated: BTreeSet<ColorId>,
    /// Number of completed super-epochs (§3.4).
    pub super_epochs_completed: u64,
}

impl BatchState {
    /// Creates state for all colors in `table` with reconfiguration cost `delta`.
    ///
    /// # Panics
    /// Panics if `delta == 0`.
    pub fn new(table: &ColorTable, delta: u64) -> Self {
        assert!(delta > 0, "Δ must be positive");
        let mut by_bound: std::collections::BTreeMap<u64, Vec<ColorId>> = Default::default();
        for (c, info) in table.iter() {
            by_bound.entry(info.delay_bound).or_default().push(c);
        }
        BatchState {
            delta,
            colors: table
                .iter()
                .map(|(_, info)| ColorState::new(info.delay_bound))
                .collect(),
            groups: by_bound.into_iter().collect(),
            touched: Vec::new(),
            ineligible_batches: Vec::new(),
            super_epoch_threshold: 0,
            super_epoch_updated: BTreeSet::new(),
            super_epochs_completed: 0,
        }
    }

    /// Enables super-epoch tracking: a super-epoch ends the moment at least
    /// `threshold` (= `2m` in the paper) distinct colors have increased their
    /// timestamps since it started (§3.4).
    pub fn track_super_epochs(&mut self, threshold: usize) {
        self.super_epoch_threshold = threshold;
    }

    /// Per-color state of `color`.
    #[inline]
    pub fn color(&self, color: ColorId) -> &ColorState {
        &self.colors[color.index()]
    }

    /// Number of colors.
    #[inline]
    pub fn ncolors(&self) -> usize {
        self.colors.len()
    }

    /// Colors whose rank-relevant state (eligibility, deadline, timestamp or
    /// counter) changed in the most recent drop or arrival phase, ascending and
    /// deduplicated. The delta an incremental rank index must refresh —
    /// together with the phase's `dropped`/`arrivals` slice, whose colors'
    /// pending queues (idleness, counts) changed.
    pub fn touched(&self) -> &[ColorId] {
        &self.touched
    }

    /// Ids of all currently eligible colors, ascending.
    pub fn eligible_colors(&self) -> Vec<ColorId> {
        self.colors
            .iter()
            .enumerate()
            .filter(|(_, s)| s.eligible)
            .map(|(i, _)| ColorId(i as u32))
            .collect()
    }

    /// Drop-phase bookkeeping (paper §3.1 "Drop phase"): classify the engine's
    /// drops as eligible/ineligible, then for every color ℓ with
    /// `round ≡ 0 (mod D_ℓ)` that is eligible and **not** in `cached`, make it
    /// ineligible and zero its counter (ending its current epoch).
    ///
    /// Afterwards [`BatchState::touched`] holds the colors whose eligibility
    /// flipped. Colors whose pending queues changed are in the `dropped` slice
    /// the caller already has; an index over rank keys must refresh both sets.
    pub fn drop_phase(
        &mut self,
        round: Round,
        dropped: &[(ColorId, u64)],
        cached: &dyn Fn(ColorId) -> bool,
    ) {
        self.touched.clear();
        for &(color, count) in dropped {
            let s = &mut self.colors[color.index()];
            if s.eligible {
                s.eligible_drops += count;
            } else {
                s.ineligible_drops += count;
            }
        }
        for (bound, members) in &self.groups {
            if !round.is_multiple_of(*bound) {
                continue;
            }
            for &c in members {
                let s = &mut self.colors[c.index()];
                if s.eligible && !cached(c) {
                    s.eligible = false;
                    s.cnt = 0;
                    s.became_ineligible += 1;
                    self.touched.push(c);
                }
            }
        }
        self.touched.sort_unstable();
    }

    /// Arrival-phase bookkeeping (paper §3.1 "Arrival phase"): for every color ℓ
    /// with `round ≡ 0 (mod D_ℓ)` — whether or not jobs arrived — refresh the
    /// timestamp, set `ℓ.dd = round + D_ℓ`, add the arrivals to `ℓ.cnt`, and on
    /// `cnt ≥ Δ` perform a counter wrapping event (`cnt %= Δ`; the color becomes
    /// eligible if it was not).
    pub fn arrival_phase(&mut self, round: Round, arrivals: &[(ColorId, u64)]) {
        // Refreshes and deadlines only concern colors at a multiple of their
        // delay bound; counter updates only concern colors with arrivals. The
        // two passes below visit exactly those colors. A wrap in this round can
        // never feed this round's refresh (a refresh needs a wrap strictly
        // before `round`), so running all refreshes before all counter updates
        // is equivalent to the interleaved per-color order — and processing
        // refreshes in ascending color order preserves the super-epoch
        // tracker's residual set exactly.
        self.touched.clear();
        for (bound, members) in &self.groups {
            if round.is_multiple_of(*bound) {
                self.touched.extend_from_slice(members);
            }
        }
        self.touched.sort_unstable();
        let at_multiple = std::mem::take(&mut self.touched);
        for &id in &at_multiple {
            let s = &mut self.colors[id.index()];
            // Timestamp refresh: the most recent multiple of D_ℓ is now `round`,
            // so the timestamp becomes the latest wrap strictly before `round`.
            if let Some(w) = s.last_wrap {
                if w < round && s.timestamp != w {
                    s.timestamp = w;
                    s.ts_updates += 1;
                    if self.super_epoch_threshold > 0 {
                        self.super_epoch_updated.insert(id);
                        if self.super_epoch_updated.len() >= self.super_epoch_threshold {
                            self.super_epochs_completed += 1;
                            self.super_epoch_updated.clear();
                        }
                    }
                }
            }
            s.deadline = round + s.delay_bound;
        }
        self.touched = at_multiple;
        // Counter updates, in the arrivals' ascending color order. Off-multiple
        // arrivals only occur on general (non-batched) inputs, where the
        // paper's algorithms are not defined; we generalize naturally so they
        // can serve as comparators: the counter accumulates immediately
        // (wrapping as usual), while deadline and timestamp refreshes stay
        // pinned to multiples — which makes both cases the same code here.
        for &(id, count) in arrivals {
            if count == 0 {
                continue;
            }
            let s = &mut self.colors[id.index()];
            s.cnt += count;
            if s.cnt >= self.delta {
                s.cnt %= self.delta;
                s.last_wrap = Some(round);
                if !s.eligible {
                    s.eligible = true;
                    s.became_eligible += 1;
                }
            }
            // Lemma 3.2/3.4 classification: a batch whose color is (still)
            // ineligible at the end of the arrival phase will be dropped while
            // ineligible — eligibility cannot change before its deadline.
            if !s.eligible {
                self.ineligible_batches.push((round, id, count));
            }
            self.touched.push(id);
        }
        self.touched.sort_unstable();
        self.touched.dedup();
    }

    /// Total number of epochs per the paper's definition (§3.2), counting the
    /// trailing incomplete epoch of each color that ever became eligible. Epochs
    /// that never progressed past their ineligible prefix (colors with fewer
    /// than Δ jobs) are excluded — those colors are handled by Lemma 3.1.
    pub fn num_epochs(&self) -> u64 {
        self.colors.iter().map(|s| s.became_eligible).sum()
    }

    /// Total jobs dropped while their color was ineligible (Lemma 3.4's LHS).
    pub fn ineligible_drop_cost(&self) -> u64 {
        self.colors.iter().map(|s| s.ineligible_drops).sum()
    }

    /// Total jobs dropped while their color was eligible (Lemma 3.2's LHS).
    pub fn eligible_drop_cost(&self) -> u64 {
        self.colors.iter().map(|s| s.eligible_drops).sum()
    }

    /// Total timestamp update events over all colors (§3.4).
    pub fn ts_update_events(&self) -> u64 {
        self.colors.iter().map(|s| s.ts_updates).sum()
    }

    /// The *eligible subsequence* α of `trace`: the trace minus every arrival
    /// batch whose jobs were classified ineligible (used to drive the Lemma 3.2
    /// chain DS-Seq-EDF(α) / Par-EDF(α) experiments).
    pub fn eligible_subsequence(&self, trace: &Trace) -> Trace {
        let mut removed: std::collections::BTreeMap<(Round, ColorId), u64> = Default::default();
        for &(r, c, k) in &self.ineligible_batches {
            *removed.entry((r, c)).or_insert(0) += k;
        }
        let mut out = Trace::new(trace.colors().clone());
        for a in trace.iter() {
            let cut = removed.get(&(a.round, a.color)).copied().unwrap_or(0);
            let keep = a.count.saturating_sub(cut);
            out.add(a.round, a.color, keep).expect("same color table");
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn table(bounds: &[u64]) -> ColorTable {
        ColorTable::from_delay_bounds(bounds)
    }

    fn c(i: u32) -> ColorId {
        ColorId(i)
    }

    const NOT_CACHED: &dyn Fn(ColorId) -> bool = &|_| false;

    #[test]
    fn counter_wraps_make_color_eligible() {
        let mut st = BatchState::new(&table(&[4]), 3);
        st.arrival_phase(0, &[(c(0), 2)]);
        assert!(!st.color(c(0)).eligible);
        assert_eq!(st.color(c(0)).cnt, 2);
        st.arrival_phase(4, &[(c(0), 2)]);
        assert!(st.color(c(0)).eligible);
        assert_eq!(st.color(c(0)).cnt, 1); // 4 mod 3
        assert_eq!(st.color(c(0)).last_wrap, Some(4));
        assert_eq!(st.num_epochs(), 1);
    }

    #[test]
    fn big_batch_wraps_immediately() {
        let mut st = BatchState::new(&table(&[4]), 3);
        st.arrival_phase(0, &[(c(0), 7)]);
        assert!(st.color(c(0)).eligible);
        assert_eq!(st.color(c(0)).cnt, 1); // 7 mod 3
    }

    #[test]
    fn deadline_tracks_multiples() {
        let mut st = BatchState::new(&table(&[4]), 2);
        st.arrival_phase(0, &[]);
        assert_eq!(st.color(c(0)).deadline, 4);
        st.arrival_phase(4, &[]);
        assert_eq!(st.color(c(0)).deadline, 8);
        // Round 6 is not a multiple: deadline unchanged.
        st.arrival_phase(6, &[]);
        assert_eq!(st.color(c(0)).deadline, 8);
    }

    #[test]
    fn timestamp_lags_by_one_multiple() {
        let mut st = BatchState::new(&table(&[4]), 2);
        // Wrap at round 0.
        st.arrival_phase(0, &[(c(0), 2)]);
        assert_eq!(st.color(c(0)).timestamp, 0, "wrap at 0 not yet visible");
        assert_eq!(st.color(c(0)).ts_updates, 0);
        // At round 4 the wrap at 0 becomes the timestamp... but 0 is also the
        // default, so no "update event" is recorded for value 0.
        st.arrival_phase(4, &[(c(0), 2)]);
        assert_eq!(st.color(c(0)).timestamp, 0);
        // Wrap at round 4 becomes visible at round 8.
        st.arrival_phase(8, &[]);
        assert_eq!(st.color(c(0)).timestamp, 4);
        assert_eq!(st.color(c(0)).ts_updates, 1);
    }

    #[test]
    fn uncached_eligible_color_becomes_ineligible_at_multiple() {
        let mut st = BatchState::new(&table(&[4]), 2);
        st.arrival_phase(0, &[(c(0), 2)]);
        assert!(st.color(c(0)).eligible);
        st.drop_phase(4, &[], NOT_CACHED);
        assert!(!st.color(c(0)).eligible);
        assert_eq!(st.color(c(0)).cnt, 0);
        assert_eq!(st.color(c(0)).became_ineligible, 1);
    }

    #[test]
    fn cached_color_stays_eligible() {
        let mut st = BatchState::new(&table(&[4]), 2);
        st.arrival_phase(0, &[(c(0), 2)]);
        st.drop_phase(4, &[], &|id| id == c(0));
        assert!(st.color(c(0)).eligible);
    }

    #[test]
    fn off_multiple_drop_phase_is_noop() {
        let mut st = BatchState::new(&table(&[4]), 2);
        st.arrival_phase(0, &[(c(0), 2)]);
        st.drop_phase(3, &[], NOT_CACHED);
        assert!(st.color(c(0)).eligible);
    }

    #[test]
    fn drop_classification() {
        let mut st = BatchState::new(&table(&[4]), 3);
        // Batch of 2 < Δ: ineligible.
        st.arrival_phase(0, &[(c(0), 2)]);
        st.drop_phase(4, &[(c(0), 2)], NOT_CACHED);
        assert_eq!(st.ineligible_drop_cost(), 2);
        // Next batch of 4 wraps: eligible; dropping those is an eligible drop.
        st.arrival_phase(4, &[(c(0), 4)]);
        assert!(st.color(c(0)).eligible);
        st.drop_phase(8, &[(c(0), 4)], NOT_CACHED);
        assert_eq!(st.eligible_drop_cost(), 4);
        assert_eq!(st.ineligible_drop_cost(), 2);
    }

    #[test]
    fn eligible_subsequence_removes_ineligible_batches() {
        let trace = TraceBuilder::with_delay_bounds(&[4])
            .jobs(0, 0, 2) // ineligible (below Δ=3)
            .jobs(4, 0, 4) // wraps: eligible
            .build();
        let mut st = BatchState::new(trace.colors(), 3);
        st.arrival_phase(0, &trace.arrivals_at(0));
        st.drop_phase(4, &[(c(0), 2)], NOT_CACHED);
        st.arrival_phase(4, &trace.arrivals_at(4));
        let alpha = st.eligible_subsequence(&trace);
        assert_eq!(alpha.jobs_of_color(c(0)), 4);
        assert_eq!(alpha.arrivals_at(0), vec![]);
    }

    #[test]
    fn epochs_count_eligibility_cycles() {
        let mut st = BatchState::new(&table(&[4]), 2);
        for i in 0..3 {
            st.drop_phase(i * 8, &[], NOT_CACHED);
            st.arrival_phase(i * 8, &[(c(0), 2)]); // wrap -> eligible
            st.drop_phase(i * 8 + 4, &[], NOT_CACHED); // -> ineligible
            st.arrival_phase(i * 8 + 4, &[]);
        }
        assert_eq!(st.num_epochs(), 3);
        assert_eq!(st.color(c(0)).became_ineligible, 3);
    }

    #[test]
    fn super_epoch_tracking() {
        let mut st = BatchState::new(&table(&[2, 2]), 1);
        st.track_super_epochs(2);
        // Each multiple-of-2 arrival with >= 1 job wraps (Δ=1). Timestamps become
        // visible one multiple later; after two visible updates (both colors),
        // one super-epoch completes.
        st.arrival_phase(0, &[(c(0), 1), (c(1), 1)]);
        st.arrival_phase(2, &[(c(0), 1), (c(1), 1)]);
        assert_eq!(st.super_epochs_completed, 0, "value-0 timestamps don't count");
        st.arrival_phase(4, &[(c(0), 1), (c(1), 1)]);
        assert_eq!(st.super_epochs_completed, 1);
    }
}
