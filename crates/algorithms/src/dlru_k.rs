//! ΔLRU-K: the LRU-K idea (O'Neil et al., cited in the paper's related work)
//! applied to ΔLRU's timestamps.
//!
//! Plain ΔLRU stamps a color with its *most recent* qualifying counter
//! wrapping event; ΔLRU-K stamps it with its **K-th most recent** one, so a
//! color must sustain Δ-sized bursts K times before it outranks steadily
//! recurring colors — the classic defense against one-off scans evicting a
//! stable working set. `K = 1` reproduces ΔLRU exactly (tested). Like ΔLRU,
//! this is a recency-only scheme and inherits its Appendix A pathology; it
//! exists for the E17 ablation.

use crate::ranking::RecencyIndex;
use crate::state::BatchState;
use rrs_core::prelude::*;
use std::collections::{BTreeSet, VecDeque};

/// The ΔLRU-K policy.
#[derive(Debug, Clone)]
pub struct DlruK {
    state: BatchState,
    cached: BTreeSet<ColorId>,
    /// Qualifying wrap-round history per color (most recent first, length K).
    history: Vec<VecDeque<Round>>,
    /// Last wrap round already folded into `history` per color.
    folded: Vec<Option<Round>>,
    /// Eligible colors by K-th timestamp, maintained incrementally.
    recency: RecencyIndex,
    /// Scratch: colors whose cached membership changed in a reconfiguration.
    changed: Vec<ColorId>,
    n: usize,
    k: usize,
}

/// The K-th most recent qualifying wrap round recorded in `history` (0 if
/// fewer than K wraps have qualified). Free function so index refreshes can
/// borrow `history` alongside the other policy fields.
fn kth(history: &[VecDeque<Round>], k: usize, color: ColorId) -> Round {
    let h = &history[color.index()];
    if h.len() < k {
        0
    } else {
        h[k - 1]
    }
}

impl DlruK {
    /// Creates ΔLRU-K with history depth `k ≥ 1` and the paper's replication.
    pub fn new(table: &ColorTable, n: usize, delta: u64, k: usize) -> Result<Self> {
        if n == 0 || !n.is_multiple_of(2) {
            return Err(Error::InvalidParameter(format!(
                "ΔLRU-K needs even positive n; got {n}"
            )));
        }
        if k == 0 {
            return Err(Error::InvalidParameter("K must be at least 1".into()));
        }
        Ok(DlruK {
            state: BatchState::new(table, delta),
            cached: BTreeSet::new(),
            history: vec![VecDeque::new(); table.len()],
            folded: vec![None; table.len()],
            recency: RecencyIndex::new(table.len()),
            changed: Vec::new(),
            n,
            k,
        })
    }

    /// The K-th most recent qualifying wrap round of `color` (0 if fewer than
    /// K wraps have qualified).
    pub fn kth_timestamp(&self, color: ColorId) -> Round {
        kth(&self.history, self.k, color)
    }

    /// Re-derives the recency entries of the most recent phase's touched
    /// colors (eligibility and timestamps only change there).
    fn refresh_touched(&mut self) {
        let (state, recency, cached, history, k) = (
            &self.state,
            &mut self.recency,
            &self.cached,
            &self.history,
            self.k,
        );
        for &c in state.touched() {
            let s = state.color(c);
            recency.refresh(
                c,
                s.eligible
                    .then(|| (kth(history, k, c), cached.contains(&c))),
            );
        }
    }

    /// Instrumented per-color state.
    pub fn state(&self) -> &BatchState {
        &self.state
    }
}

impl Policy for DlruK {
    fn name(&self) -> String {
        format!("ΔLRU-{}", self.k)
    }

    fn on_drop_phase(&mut self, round: Round, dropped: &[(ColorId, u64)], _view: &EngineView) {
        let cached = &self.cached;
        self.state
            .drop_phase(round, dropped, &|c| cached.contains(&c));
        self.refresh_touched();
    }

    fn on_arrival_phase(&mut self, round: Round, arrivals: &[(ColorId, u64)], _view: &EngineView) {
        self.state.arrival_phase(round, arrivals);
        // Fold newly-qualifying wraps into the history. The shared state's
        // `timestamp` is exactly "the latest wrap strictly before the most
        // recent multiple", so whenever it advances we record it. Timestamps
        // only advance during the arrival phase's delay-bound refresh, and
        // every refreshed color is reported in `touched`, so folding over the
        // touched set visits every advanced timestamp (for the rest the
        // `folded` guard would skip the fold anyway).
        for &c in self.state.touched() {
            let i = c.index();
            let ts = self.state.color(c).timestamp;
            if ts > 0 && self.folded[i] != Some(ts) {
                self.folded[i] = Some(ts);
                self.history[i].push_front(ts);
                self.history[i].truncate(self.k);
            }
        }
        self.refresh_touched();
    }

    fn reconfigure(&mut self, _round: Round, _mini: u32, view: &EngineView) -> CacheTarget {
        debug_assert_eq!(view.n, self.n);
        // Top n/2 eligible colors by (K-th timestamp desc, cached-first,
        // color asc), read straight off the recency index.
        let quota = self.n / 2;
        let new_cached: BTreeSet<ColorId> = self.recency.iter().take(quota).collect();
        self.changed.clear();
        self.changed
            .extend(new_cached.symmetric_difference(&self.cached));
        self.cached = new_cached;
        // The cached-first tie-break is part of the recency key: re-derive the
        // entries of every color whose membership changed.
        let (state, recency, cached, history, k, changed) = (
            &self.state,
            &mut self.recency,
            &self.cached,
            &self.history,
            self.k,
            &self.changed,
        );
        for &c in changed {
            let s = state.color(c);
            recency.refresh(
                c,
                s.eligible
                    .then(|| (kth(history, k, c), cached.contains(&c))),
            );
        }
        CacheTarget::replicated(self.cached.iter().copied(), 2)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Dlru;
    use rrs_core::engine::run_policy;

    #[test]
    fn k1_matches_dlru() {
        for seed_shift in 0..3u64 {
            let trace = TraceBuilder::with_delay_bounds(&[4, 8, 16])
                .batched_jobs(0, 3, 0, 128 + seed_shift * 8)
                .batched_jobs(1, 5, 0, 128)
                .batched_jobs(2, 9, 16, 128)
                .build();
            let mut k1 = DlruK::new(trace.colors(), 4, 2, 1).unwrap();
            let r1 = run_policy(&trace, &mut k1, 4, 2).unwrap();
            let mut dlru = Dlru::new(trace.colors(), 4, 2).unwrap();
            let r0 = run_policy(&trace, &mut dlru, 4, 2).unwrap();
            assert_eq!(r1.cost, r0.cost, "K=1 is exactly ΔLRU");
        }
    }

    #[test]
    fn higher_k_resists_one_off_bursts() {
        // Color 0 recurs steadily; color 1 fires one big burst that under
        // ΔLRU (K=1) instantly outranks color 0, but under K=2 does not.
        let trace = TraceBuilder::with_delay_bounds(&[4, 4])
            .batched_jobs(0, 2, 0, 64)
            .jobs(32, 1, 2)
            .build();
        // Capacity one distinct color (n=2, replication 2).
        let mut k2 = DlruK::new(trace.colors(), 2, 2, 2).unwrap();
        let r2 = run_policy(&trace, &mut k2, 2, 2).unwrap();
        let mut k1 = DlruK::new(trace.colors(), 2, 2, 1).unwrap();
        let r1 = run_policy(&trace, &mut k1, 2, 2).unwrap();
        // Under K=2 the steady color keeps the slot and drops nothing of its
        // own after warmup; under K=1 the burst steals the slot for a while.
        assert!(
            r2.drops_by_color[0] <= r1.drops_by_color[0],
            "K=2 protects the steady color: {:?} vs {:?}",
            r2.drops_by_color,
            r1.drops_by_color
        );
    }

    #[test]
    fn rejects_bad_parameters() {
        let t = ColorTable::from_delay_bounds(&[4]);
        assert!(DlruK::new(&t, 3, 1, 1).is_err());
        assert!(DlruK::new(&t, 4, 1, 0).is_err());
    }
}
