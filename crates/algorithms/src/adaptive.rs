//! An ARC-inspired adaptive variant of ΔLRU-EDF.
//!
//! The paper's related-work section points at Megiddo–Modha's Adaptive
//! Replacement Cache, which balances two lists (recency vs frequency) with a
//! self-tuning parameter. ΔLRU-EDF's two halves (recency vs deadline) invite
//! the same treatment: [`AdaptiveDlruEdf`] moves capacity between the LRU and
//! EDF halves in response to the failure signals each half exists to prevent —
//!
//! * a **thrash signal** (a color is re-cached shortly after being evicted:
//!   a larger LRU half would have kept it) grows the LRU half;
//! * a **starvation signal** (an eligible color drops jobs while uncached:
//!   a larger EDF half would have served it) grows the EDF half.
//!
//! This is an *extension* beyond the paper (its fixed n/4+n/4 split is what
//! the proof of Theorem 1 uses); experiment E17 compares the two and shows
//! the adaptive split matching the fixed one on the paper's adversaries while
//! improving on skewed mixes.

use crate::ranking::{RankIndex, RecencyIndex};
use crate::state::BatchState;
use rrs_core::prelude::*;
use std::collections::{BTreeMap, BTreeSet};

/// ΔLRU-EDF with a self-tuning LRU/EDF capacity split.
#[derive(Debug, Clone)]
pub struct AdaptiveDlruEdf {
    state: BatchState,
    cached: BTreeSet<ColorId>,
    lru_set: BTreeSet<ColorId>,
    /// Eligible colors in recency order, maintained incrementally.
    recency: RecencyIndex,
    /// Eligible colors in EDF rank order, maintained incrementally.
    rank: RankIndex,
    /// Scratch: colors whose cached membership changed in a reconfiguration.
    changed: Vec<ColorId>,
    n: usize,
    /// Current LRU quota (distinct colors), in `[1, capacity - 1]`.
    lru_quota: usize,
    /// Rounds since each color was evicted (for the thrash signal).
    evicted_at: BTreeMap<ColorId, Round>,
    /// Re-cache window for the thrash signal.
    window: Round,
    thrash_signals: u64,
    starve_signals: u64,
}

impl AdaptiveDlruEdf {
    /// Creates the adaptive policy (`n` a positive multiple of 4, replication
    /// fixed at 2 as in the paper).
    pub fn new(table: &ColorTable, n: usize, delta: u64) -> Result<Self> {
        if n == 0 || !n.is_multiple_of(4) {
            return Err(Error::InvalidParameter(format!(
                "adaptive ΔLRU-EDF needs n to be a positive multiple of 4; got {n}"
            )));
        }
        let window = table.max_delay_bound().max(4);
        Ok(AdaptiveDlruEdf {
            state: BatchState::new(table, delta),
            cached: BTreeSet::new(),
            lru_set: BTreeSet::new(),
            recency: RecencyIndex::new(table.len()),
            rank: RankIndex::new(table.len()),
            changed: Vec::new(),
            n,
            lru_quota: n / 4, // start at the paper's split
            evicted_at: BTreeMap::new(),
            window,
            thrash_signals: 0,
            starve_signals: 0,
        })
    }

    fn capacity(&self) -> usize {
        self.n / 2
    }

    /// Re-derives both indices' entries for the most recent phase's touched
    /// colors (eligibility, timestamps and deadlines only change there).
    fn refresh_touched(&mut self, pending: &PendingJobs) {
        let (state, recency, rank, cached) = (
            &self.state,
            &mut self.recency,
            &mut self.rank,
            &self.cached,
        );
        for &c in state.touched() {
            let s = state.color(c);
            recency.refresh(c, s.eligible.then(|| (s.timestamp, cached.contains(&c))));
            rank.refresh(state, pending, c);
        }
    }

    /// Diagnostic: how often each adaptation signal fired.
    pub fn signals(&self) -> (u64, u64) {
        (self.thrash_signals, self.starve_signals)
    }

    /// Diagnostic: the current LRU quota.
    pub fn lru_quota(&self) -> usize {
        self.lru_quota
    }

    /// Instrumented per-color state.
    pub fn state(&self) -> &BatchState {
        &self.state
    }
}

impl Policy for AdaptiveDlruEdf {
    fn name(&self) -> String {
        "Adaptive-ΔLRU-EDF".into()
    }

    fn on_drop_phase(&mut self, round: Round, dropped: &[(ColorId, u64)], view: &EngineView) {
        // Starvation signal: eligible colors dropping jobs while uncached.
        for &(c, _) in dropped {
            if self.state.color(c).eligible && !self.cached.contains(&c) {
                self.starve_signals += 1;
                if self.lru_quota > 1 {
                    self.lru_quota -= 1;
                }
            }
        }
        let cached = &self.cached;
        self.state
            .drop_phase(round, dropped, &|c| cached.contains(&c));
        self.refresh_touched(view.pending);
        // Dropped colors may have flipped their idle bit (an EDF rank
        // component) without an eligibility change.
        let (state, rank) = (&self.state, &mut self.rank);
        rank.refresh_many(state, view.pending, dropped.iter().map(|&(c, _)| c));
    }

    fn on_arrival_phase(&mut self, round: Round, arrivals: &[(ColorId, u64)], view: &EngineView) {
        self.state.arrival_phase(round, arrivals);
        self.refresh_touched(view.pending);
    }

    fn reconfigure(&mut self, round: Round, _mini: u32, view: &EngineView) -> CacheTarget {
        // Execution drains cached colors' queues without a policy hook, so
        // their EDF rank (idle bit) may be stale: re-derive before selecting.
        self.rank
            .refresh_many(&self.state, view.pending, self.cached.iter().copied());
        self.changed.clear();
        let capacity = self.capacity();
        let lru_quota = self.lru_quota.min(capacity - 1).max(1);

        // LRU half, read straight off the recency index.
        self.lru_set.clear();
        let (recency, lru_set) = (&self.recency, &mut self.lru_set);
        lru_set.extend(recency.iter().take(lru_quota));
        for &c in &self.lru_set {
            if self.cached.insert(c) {
                self.changed.push(c);
                // Thrash signal: this color was evicted only recently.
                if let Some(&t) = self.evicted_at.get(&c) {
                    if round.saturating_sub(t) <= self.window {
                        self.thrash_signals += 1;
                        if self.lru_quota < capacity - 1 {
                            self.lru_quota += 1;
                        }
                    }
                }
            }
        }

        // EDF half over the remaining capacity.
        let edf_quota = capacity - lru_quota;
        let (rank, lru_set, cached, changed) = (
            &self.rank,
            &self.lru_set,
            &mut self.cached,
            &mut self.changed,
        );
        for c in rank.iter().filter(|c| !lru_set.contains(c)).take(edf_quota) {
            if !view.pending.is_idle(c) && cached.insert(c) {
                changed.push(c);
                if let Some(&t) = self.evicted_at.get(&c) {
                    if round.saturating_sub(t) <= self.window {
                        self.thrash_signals += 1;
                        if self.lru_quota < capacity - 1 {
                            self.lru_quota += 1;
                        }
                    }
                }
            }
        }

        // Evictions.
        while self.cached.len() > capacity {
            let worst = self
                .rank
                .iter_rev()
                .filter(|c| !self.lru_set.contains(c))
                .find(|c| self.cached.contains(c))
                .expect("over capacity implies a cached non-LRU color");
            self.cached.remove(&worst);
            self.changed.push(worst);
            self.evicted_at.insert(worst, round);
        }

        // The cached-first tie-break is part of the recency key: re-derive the
        // entries of every color whose membership changed.
        let (state, recency, cached, changed) = (
            &self.state,
            &mut self.recency,
            &self.cached,
            &self.changed,
        );
        for &c in changed {
            let s = state.color(c);
            recency.refresh(c, s.eligible.then(|| (s.timestamp, cached.contains(&c))));
        }

        CacheTarget::replicated(self.cached.iter().copied(), 2)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rrs_core::engine::run_policy;

    #[test]
    fn rejects_bad_geometry() {
        let t = ColorTable::from_delay_bounds(&[4]);
        assert!(AdaptiveDlruEdf::new(&t, 6, 1).is_err());
        assert!(AdaptiveDlruEdf::new(&t, 8, 1).is_ok());
    }

    #[test]
    fn serves_steady_traffic_like_the_fixed_split() {
        let trace = TraceBuilder::with_delay_bounds(&[4, 8])
            .batched_jobs(0, 4, 0, 128)
            .batched_jobs(1, 8, 0, 128)
            .build();
        let mut adaptive = AdaptiveDlruEdf::new(trace.colors(), 8, 2).unwrap();
        let ra = run_policy(&trace, &mut adaptive, 8, 2).unwrap();
        let mut fixed = crate::DlruEdf::new(trace.colors(), 8, 2).unwrap();
        let rf = run_policy(&trace, &mut fixed, 8, 2).unwrap();
        assert_eq!(ra.cost.drop, rf.cost.drop);
    }

    #[test]
    fn starvation_shrinks_the_lru_half() {
        // Many eligible colors with pending work but capacity for few: the
        // EDF half should grow (lru_quota shrink) as eligible drops appear.
        let mut b = TraceBuilder::with_delay_bounds(&[4, 4, 4, 4, 4, 4]);
        for c in 0..6 {
            b = b.batched_jobs(c, 4, 0, 96);
        }
        let trace = b.build();
        let mut p = AdaptiveDlruEdf::new(trace.colors(), 4, 2).unwrap();
        run_policy(&trace, &mut p, 4, 2).unwrap();
        let (_, starve) = p.signals();
        assert!(starve > 0, "starvation signal fired");
        assert_eq!(p.lru_quota(), 1, "LRU half shrank to its floor");
    }

    #[test]
    fn quota_stays_in_bounds() {
        let trace = TraceBuilder::with_delay_bounds(&[2, 4, 8, 16])
            .batched_jobs(0, 2, 0, 64)
            .batched_jobs(1, 4, 0, 64)
            .batched_jobs(2, 8, 0, 64)
            .batched_jobs(3, 16, 0, 64)
            .build();
        let mut p = AdaptiveDlruEdf::new(trace.colors(), 8, 2).unwrap();
        run_policy(&trace, &mut p, 8, 2).unwrap();
        let q = p.lru_quota();
        assert!((1..=3).contains(&q), "quota {q} within [1, capacity-1]");
    }
}
