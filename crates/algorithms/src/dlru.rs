//! The ΔLRU reconfiguration scheme (paper §3.1.1).
//!
//! ΔLRU caches the eligible colors with the most recent *timestamps* — a
//! recency signal that is only refreshed after roughly Δ job arrivals of a color
//! **and** after a subsequent multiple of its delay bound has elapsed. The cache
//! invariant is: keep the top `n/2` eligible colors by timestamp (each cached at
//! two locations; paper §3.1's replication invariant), ties broken in favour of
//! already-cached colors and then by the consistent color order.
//!
//! ΔLRU is **not** resource competitive (paper Appendix A): it can pin recent
//! but idle short-term colors while a long-term color with an enormous backlog
//! starves. The Appendix A adversary in `rrs-workloads` exhibits exactly this.

use crate::ranking::RecencyIndex;
use crate::state::BatchState;
use rrs_core::prelude::*;
use std::collections::BTreeSet;

/// The standalone ΔLRU policy.
#[derive(Debug, Clone)]
pub struct Dlru {
    state: BatchState,
    cached: BTreeSet<ColorId>,
    /// Eligible colors in recency order, maintained incrementally from the
    /// phase deltas instead of re-sorted every mini-round.
    recency: RecencyIndex,
    /// Scratch: colors whose cached membership changed in a reconfiguration.
    changed: Vec<ColorId>,
    n: usize,
    /// Copies per cached color (2 = the paper's replication invariant).
    replication: u32,
}

impl Dlru {
    /// Creates ΔLRU with `n` resources and reconfiguration cost `delta`,
    /// using the paper's two-location replication.
    ///
    /// # Errors
    /// `n` must be even and positive so that `n/2` distinct colors fit twice.
    pub fn new(table: &ColorTable, n: usize, delta: u64) -> Result<Self> {
        Self::with_replication(table, n, delta, 2)
    }

    /// Creates ΔLRU with a custom replication factor (1 disables replication;
    /// used by the ablation experiments).
    pub fn with_replication(
        table: &ColorTable,
        n: usize,
        delta: u64,
        replication: u32,
    ) -> Result<Self> {
        if n == 0 || replication == 0 || !n.is_multiple_of(replication as usize) {
            return Err(Error::InvalidParameter(format!(
                "ΔLRU needs n divisible by the replication factor; got n={n}, r={replication}"
            )));
        }
        Ok(Dlru {
            state: BatchState::new(table, delta),
            cached: BTreeSet::new(),
            recency: RecencyIndex::new(table.len()),
            changed: Vec::new(),
            n,
            replication,
        })
    }

    /// Re-derives the recency entries of the most recent phase's touched
    /// colors (eligibility and timestamps only change there).
    fn refresh_touched(&mut self) {
        let (state, recency, cached) = (&self.state, &mut self.recency, &self.cached);
        for &c in state.touched() {
            let s = state.color(c);
            recency.refresh(c, s.eligible.then(|| (s.timestamp, cached.contains(&c))));
        }
    }

    /// Number of distinct colors the cache holds.
    fn quota(&self) -> usize {
        self.n / self.replication as usize
    }

    /// Instrumented per-color state (epochs, timestamps, drop classes).
    pub fn state(&self) -> &BatchState {
        &self.state
    }

    /// Colors currently cached.
    pub fn cached_colors(&self) -> impl Iterator<Item = ColorId> + '_ {
        self.cached.iter().copied()
    }

}

impl Policy for Dlru {
    fn name(&self) -> String {
        format!("ΔLRU(r={})", self.replication)
    }

    fn on_drop_phase(&mut self, round: Round, dropped: &[(ColorId, u64)], _view: &EngineView) {
        let cached = &self.cached;
        self.state
            .drop_phase(round, dropped, &|c| cached.contains(&c));
        self.refresh_touched();
    }

    fn on_arrival_phase(&mut self, round: Round, arrivals: &[(ColorId, u64)], _view: &EngineView) {
        self.state.arrival_phase(round, arrivals);
        self.refresh_touched();
    }

    fn reconfigure(&mut self, _round: Round, _mini: u32, view: &EngineView) -> CacheTarget {
        debug_assert_eq!(view.n, self.n, "engine and policy disagree on n");
        // The ΔLRU invariant set: the top `quota` eligible colors by
        // (timestamp desc, cached-first, color id asc) — read straight off the
        // recency index.
        let quota = self.quota();
        let new_cached: BTreeSet<ColorId> = self.recency.iter().take(quota).collect();
        self.changed.clear();
        self.changed
            .extend(new_cached.symmetric_difference(&self.cached));
        self.cached = new_cached;
        // The cached-first tie-break is part of the recency key: re-derive the
        // entries of every color whose membership changed.
        let (state, recency, cached, changed) =
            (&self.state, &mut self.recency, &self.cached, &self.changed);
        for &c in changed {
            let s = state.color(c);
            recency.refresh(c, s.eligible.then(|| (s.timestamp, cached.contains(&c))));
        }
        CacheTarget::replicated(self.cached.iter().copied(), self.replication)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rrs_core::engine::run_policy;

    fn c(i: u32) -> ColorId {
        ColorId(i)
    }

    #[test]
    fn rejects_bad_geometry() {
        let t = ColorTable::from_delay_bounds(&[4]);
        assert!(Dlru::new(&t, 3, 1).is_err());
        assert!(Dlru::new(&t, 0, 1).is_err());
        assert!(Dlru::new(&t, 4, 1).is_ok());
    }

    #[test]
    fn caches_nothing_until_a_color_is_eligible() {
        // Δ=4: a batch of 3 jobs never wraps the counter, so ΔLRU never caches
        // and all jobs are dropped.
        let trace = TraceBuilder::with_delay_bounds(&[4]).jobs(0, 0, 3).build();
        let mut p = Dlru::new(trace.colors(), 4, 4).unwrap();
        let r = run_policy(&trace, &mut p, 4, 4).unwrap();
        assert_eq!(r.cost.reconfig, 0);
        assert_eq!(r.cost.drop, 3);
        assert_eq!(p.state().ineligible_drop_cost(), 3);
    }

    #[test]
    fn eligible_color_gets_cached_and_served() {
        // Δ=2: the first batch of 4 wraps immediately; ΔLRU caches the color
        // from round 0 and serves subsequent batches.
        let trace = TraceBuilder::with_delay_bounds(&[4])
            .batched_jobs(0, 4, 0, 32)
            .build();
        let mut p = Dlru::new(trace.colors(), 4, 2).unwrap();
        let r = run_policy(&trace, &mut p, 4, 2).unwrap();
        // The first batch of 4 >= Δ=2 wraps immediately, so the color is
        // eligible (and cached) from round 0: nothing ever drops.
        assert_eq!(r.cost.drop, 0);
        assert!(r.cost.reconfig > 0);
    }

    #[test]
    fn keeps_recent_timestamps_over_stale_ones() {
        // Two colors, capacity for one (n=2, replication 2). Color 0 wraps
        // early then goes quiet; color 1 wraps repeatedly. Eventually color 1's
        // timestamp is more recent, so it owns the cache.
        let trace = TraceBuilder::with_delay_bounds(&[4, 4])
            .jobs(0, 0, 2)
            .batched_jobs(1, 2, 0, 40)
            .build();
        let mut p = Dlru::new(trace.colors(), 2, 2).unwrap();
        run_policy(&trace, &mut p, 2, 2).unwrap();
        let cached: Vec<ColorId> = p.cached_colors().collect();
        assert_eq!(cached, vec![c(1)]);
        assert!(p.state().color(c(1)).timestamp > p.state().color(c(0)).timestamp);
    }

    #[test]
    fn idle_colors_may_stay_cached() {
        // The ΔLRU pathology: an idle color with a recent timestamp stays
        // cached even when another color has pending work but an older stamp.
        // Color 0: repeated wraps until round 16, then silence (idle but fresh).
        // Color 1: wraps once at round 0 with a big backlog.
        let trace = TraceBuilder::with_delay_bounds(&[4, 32])
            .batched_jobs(0, 4, 0, 20)
            .jobs(0, 1, 32)
            .build();
        let mut p = Dlru::new(trace.colors(), 2, 2).unwrap();
        let r = run_policy(&trace, &mut p, 2, 2).unwrap();
        // Color 1 (the backlog) is starved: most of its 32 jobs drop.
        assert!(
            r.drops_by_color[1] > 0,
            "ΔLRU starves the backlog color: {:?}",
            r.drops_by_color
        );
    }
}
