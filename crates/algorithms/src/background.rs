//! The introduction's two naive background-job strategies (paper §1).
//!
//! The paper motivates the difficulty of variable delay bounds with a
//! two-category scenario — *background* jobs with far-future deadlines and
//! intermittent *short-term* jobs — and the dilemma of using idle cycles:
//!
//! * **use idle cycles whenever available** ([`EagerBackground`]) — every
//!   short idle gap triggers a reconfiguration to the background color and
//!   back, "incurring a large number of reconfigurations" (thrashing); and
//! * **wait for a long idle period** ([`PatientBackground`]) — with a
//!   patience threshold that never clears, background work is never served,
//!   "we may regret doing so if we never encounter a long idle interval"
//!   (underutilization).
//!
//! Both are implemented verbatim as engine policies so experiment E20 can
//! reproduce the dilemma quantitatively and show ΔLRU-EDF escaping it.
//! Foreground (short-delay) categories are served EDF-style; the strategies
//! differ only in when they hand spare capacity to the background category.

use rrs_core::prelude::*;

/// Splits colors into foreground (small delay bound) and background (the
/// color with the largest delay bound).
fn background_color(colors: &ColorTable) -> Option<ColorId> {
    colors
        .ids()
        .max_by_key(|&c| (colors.delay_bound(c), std::cmp::Reverse(c)))
}

/// Serves foreground categories earliest-deadline-first and gives **every**
/// spare slot to the background color the moment it is idle-capacity.
#[derive(Debug, Clone, Default)]
pub struct EagerBackground;

impl EagerBackground {
    /// Creates the policy.
    pub fn new() -> Self {
        Self
    }
}

/// Allocates slots EDF-style to nonidle foreground colors; `spare` go to
/// `bg` when `give_bg` is true.
fn allocate(
    view: &EngineView,
    round: Round,
    bg: Option<ColorId>,
    give_bg: bool,
) -> CacheTarget {
    let mut target = CacheTarget::empty();
    let mut remaining = view.n as u32;
    // Foreground demand: nonidle colors except the background one, earliest
    // deadline (= earliest pending deadline) first.
    let mut fg: Vec<ColorId> = view
        .pending
        .nonidle_colors()
        .into_iter()
        .filter(|&c| Some(c) != bg)
        .collect();
    fg.sort_by_key(|&c| (view.pending.earliest_deadline(c), c));
    for c in fg {
        if remaining == 0 {
            break;
        }
        // Enough slots to drain the pending jobs within their remaining
        // window (deadline minus current round), capped by what's left.
        let slack = view
            .pending
            .earliest_deadline(c)
            .map(|d| d.saturating_sub(round).max(1))
            .unwrap_or(1);
        let want = view
            .pending
            .count(c)
            .div_ceil(slack)
            .max(1)
            .min(u64::from(remaining)) as u32;
        target.add(c, want);
        remaining -= want;
    }
    if give_bg && remaining > 0 {
        if let Some(bg) = bg {
            if !view.pending.is_idle(bg) {
                target.add(bg, remaining.min(view.pending.count(bg).max(1) as u32));
            }
        }
    }
    target
}

impl Policy for EagerBackground {
    fn name(&self) -> String {
        "EagerBackground".into()
    }
    fn reconfigure(&mut self, round: Round, _mini: u32, view: &EngineView) -> CacheTarget {
        let bg = background_color(view.colors);
        allocate(view, round, bg, true)
    }
}

/// Serves foreground EDF-style but hands spare slots to the background color
/// only after observing `patience` consecutive rounds of spare capacity —
/// and resets the wait whenever foreground work returns.
#[derive(Debug, Clone)]
pub struct PatientBackground {
    /// Consecutive idle rounds required before background runs.
    pub patience: u64,
    idle_streak: u64,
}

impl PatientBackground {
    /// Creates the policy with the given patience threshold.
    pub fn new(patience: u64) -> Self {
        PatientBackground {
            patience,
            idle_streak: 0,
        }
    }
}

impl Policy for PatientBackground {
    fn name(&self) -> String {
        format!("PatientBackground({})", self.patience)
    }
    fn reconfigure(&mut self, round: Round, _mini: u32, view: &EngineView) -> CacheTarget {
        let bg = background_color(view.colors);
        // Is there spare capacity this round (foreground demand below n)?
        let fg_demand: u64 = view
            .pending
            .nonidle_colors()
            .iter()
            .filter(|&&c| Some(c) != bg)
            .map(|&c| {
                let slack = view
                    .pending
                    .earliest_deadline(c)
                    .map(|d| d.saturating_sub(round).max(1))
                    .unwrap_or(1);
                view.pending.count(c).div_ceil(slack).max(1)
            })
            .sum();
        if fg_demand < view.n as u64 {
            self.idle_streak += 1;
        } else {
            self.idle_streak = 0;
        }
        allocate(view, round, bg, self.idle_streak > self.patience)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rrs_core::engine::run_policy;

    /// Intro scenario: short bursts alternate with gaps; a background backlog
    /// waits.
    fn intro_trace() -> Trace {
        let mut b = TraceBuilder::with_delay_bounds(&[4, 256]);
        // Short bursts in even 8-round windows only: gaps of 4+ rounds.
        for i in 0..16 {
            b = b.jobs(i * 16, 0, 4);
        }
        b = b.jobs(0, 1, 128);
        b.build()
    }

    #[test]
    fn eager_thrashes_on_alternating_gaps() {
        let trace = intro_trace();
        let mut eager = EagerBackground::new();
        let r = run_policy(&trace, &mut eager, 2, 8).unwrap();
        // Eager reconfigures into/out of the background color every gap.
        assert!(
            r.reconfig_events >= 16,
            "eager thrashes: only {} recolorings",
            r.reconfig_events
        );
    }

    #[test]
    fn patient_starves_background_when_gaps_are_short() {
        let trace = intro_trace();
        // Patience longer than any gap: background never runs.
        let mut patient = PatientBackground::new(1000);
        let r = run_policy(&trace, &mut patient, 2, 8).unwrap();
        assert_eq!(
            r.drops_by_color[1], 128,
            "background fully starved: {:?}",
            r.drops_by_color
        );
        assert_eq!(r.drops_by_color[0], 0, "foreground still served");
    }

    #[test]
    fn patient_with_short_patience_behaves_like_eager_eventually() {
        let trace = intro_trace();
        let mut patient = PatientBackground::new(1);
        let r = run_policy(&trace, &mut patient, 2, 8).unwrap();
        assert!(r.drops_by_color[1] < 128, "some background work happens");
    }

    #[test]
    fn foreground_priority_is_respected() {
        // Heavy foreground: background must not steal needed slots.
        let trace = TraceBuilder::with_delay_bounds(&[4, 256])
            .batched_jobs(0, 8, 0, 64)
            .jobs(0, 1, 10)
            .build();
        let mut eager = EagerBackground::new();
        let r = run_policy(&trace, &mut eager, 2, 4).unwrap();
        assert_eq!(r.drops_by_color[0], 0, "{:?}", r.drops_by_color);
    }
}
