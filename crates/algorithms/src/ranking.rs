//! The paper's color and job ranking schemes (§3.1.2, §3.3).
//!
//! Eligible colors are ranked **first on idleness** (nonidle colors first), then
//! in ascending order of deadlines, breaking ties by increasing delay bounds and
//! then by the consistent order of colors (ascending [`ColorId`]). Pending jobs
//! are ranked by increasing deadline, then delay bound, then color order — which
//! is exactly the derived `Ord` on [`rrs_core::Job`].

use crate::state::BatchState;
use rrs_core::prelude::*;

/// A color's rank key. Smaller keys rank higher (better).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub struct ColorRank {
    /// `false` (nonidle) sorts before `true` (idle).
    pub idle: bool,
    /// The color's current deadline `ℓ.dd`.
    pub deadline: Round,
    /// The color's delay bound `D_ℓ`.
    pub delay_bound: u64,
    /// Consistent tie-break: the color id.
    pub color: ColorId,
}

/// Computes the rank key of `color` given the batch state and pending jobs.
pub fn rank_key(state: &BatchState, pending: &PendingJobs, color: ColorId) -> ColorRank {
    let s = state.color(color);
    ColorRank {
        idle: pending.is_idle(color),
        deadline: s.deadline,
        delay_bound: s.delay_bound,
        color,
    }
}

/// Ranks `colors` by the EDF scheme, best first.
pub fn rank_colors(state: &BatchState, pending: &PendingJobs, colors: &mut [ColorId]) {
    colors.sort_by_key(|&c| rank_key(state, pending, c));
}

#[cfg(test)]
mod tests {
    use super::*;

    fn c(i: u32) -> ColorId {
        ColorId(i)
    }

    #[test]
    fn nonidle_beats_idle_and_deadline_orders() {
        // Colors: 0 (D=8), 1 (D=4), 2 (D=4).
        let table = ColorTable::from_delay_bounds(&[8, 4, 4]);
        let mut st = BatchState::new(&table, 1);
        let mut pending = PendingJobs::new(3);
        // Round 0: all colors hit a multiple; arrivals for colors 0 and 2.
        st.arrival_phase(0, &[(c(0), 1), (c(2), 1)]);
        pending.arrive(c(0), 8, 1);
        pending.arrive(c(2), 4, 1);
        // Deadlines: c0 -> 8, c1 -> 4, c2 -> 4. c1 is idle.
        let mut colors = vec![c(0), c(1), c(2)];
        rank_colors(&st, &pending, &mut colors);
        // Nonidle first: c2 (deadline 4) before c0 (deadline 8); idle c1 last.
        assert_eq!(colors, vec![c(2), c(0), c(1)]);
    }

    #[test]
    fn delay_bound_breaks_deadline_ties() {
        // c0: D=8 arriving at 0 -> deadline 8. c1: D=4, at round 4 deadline 8.
        let table = ColorTable::from_delay_bounds(&[8, 4]);
        let mut st = BatchState::new(&table, 1);
        let mut pending = PendingJobs::new(2);
        st.arrival_phase(0, &[(c(0), 1)]);
        pending.arrive(c(0), 8, 1);
        st.arrival_phase(4, &[(c(1), 1)]);
        pending.arrive(c(1), 8, 1);
        let mut colors = vec![c(0), c(1)];
        rank_colors(&st, &pending, &mut colors);
        // Equal deadlines (8); smaller delay bound (c1, D=4) ranks first.
        assert_eq!(colors, vec![c(1), c(0)]);
    }

    #[test]
    fn color_id_is_final_tiebreak() {
        let table = ColorTable::from_delay_bounds(&[4, 4]);
        let mut st = BatchState::new(&table, 1);
        let mut pending = PendingJobs::new(2);
        st.arrival_phase(0, &[(c(0), 1), (c(1), 1)]);
        pending.arrive(c(0), 4, 1);
        pending.arrive(c(1), 4, 1);
        let mut colors = vec![c(1), c(0)];
        rank_colors(&st, &pending, &mut colors);
        assert_eq!(colors, vec![c(0), c(1)]);
    }
}
