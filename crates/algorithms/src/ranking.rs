//! The paper's color and job ranking schemes (§3.1.2, §3.3), and the
//! incremental rank indexes the policies select from.
//!
//! Eligible colors are ranked **first on idleness** (nonidle colors first), then
//! in ascending order of deadlines, breaking ties by increasing delay bounds and
//! then by the consistent order of colors (ascending [`ColorId`]). Pending jobs
//! are ranked by increasing deadline, then delay bound, then color order — which
//! is exactly the derived `Ord` on [`rrs_core::Job`].
//!
//! Historically every policy re-collected the eligible colors and re-sorted
//! them from scratch in every mini-round — `O(E log E)` per reconfiguration
//! with `E` eligible colors, even when almost nothing changed. The
//! [`OrdIndex`] family below maintains the same orders incrementally: a policy
//! refreshes only the colors whose state a phase actually touched (the
//! [`BatchState::touched`] delta plus the phase's own dropped/arrival slices)
//! and then reads the best candidates off the index in order. Every key embeds
//! its [`ColorId`] as the final tiebreak, so keys are unique per color and the
//! index order equals the order the old full sorts produced.

use crate::state::BatchState;
use rrs_core::prelude::*;
use std::cmp::Reverse;
use std::collections::BTreeSet;

/// A color's rank key. Smaller keys rank higher (better).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub struct ColorRank {
    /// `false` (nonidle) sorts before `true` (idle).
    pub idle: bool,
    /// The color's current deadline `ℓ.dd`.
    pub deadline: Round,
    /// The color's delay bound `D_ℓ`.
    pub delay_bound: u64,
    /// Consistent tie-break: the color id.
    pub color: ColorId,
}

/// Computes the rank key of `color` given the batch state and pending jobs.
pub fn rank_key(state: &BatchState, pending: &PendingJobs, color: ColorId) -> ColorRank {
    let s = state.color(color);
    ColorRank {
        idle: pending.is_idle(color),
        deadline: s.deadline,
        delay_bound: s.delay_bound,
        color,
    }
}

/// Ranks `colors` by the EDF scheme, best first.
pub fn rank_colors(state: &BatchState, pending: &PendingJobs, colors: &mut [ColorId]) {
    colors.sort_by_key(|&c| rank_key(state, pending, c));
}

/// The nonidle colors ordered by descending pending count, ties by ascending
/// color id — the greedy baselines' one-shot ranking.
pub fn colors_by_pending(pending: &PendingJobs) -> Vec<ColorId> {
    let mut colors = pending.nonidle_colors();
    colors.sort_by_key(|&c| (Reverse(pending.count(c)), c));
    colors
}

/// An incrementally-maintained ordered set of per-color keys.
///
/// Each color holds at most one key; [`OrdIndex::update`] replaces (or
/// removes) it in `O(log n)`. Iteration yields keys in ascending order without
/// sorting. Keys must be **unique per color** — embed the [`ColorId`] as the
/// final tiebreak component.
#[derive(Debug, Clone)]
pub struct OrdIndex<K: Ord + Copy> {
    keys: Vec<Option<K>>,
    set: BTreeSet<K>,
}

impl<K: Ord + Copy> OrdIndex<K> {
    /// Creates an empty index over `ncolors` colors (grows on demand).
    pub fn new(ncolors: usize) -> Self {
        OrdIndex {
            keys: vec![None; ncolors],
            set: BTreeSet::new(),
        }
    }

    /// Sets `color`'s key to `key` (`None` removes the color from the index).
    pub fn update(&mut self, color: ColorId, key: Option<K>) {
        if color.index() >= self.keys.len() {
            self.keys.resize(color.index() + 1, None);
        }
        let slot = &mut self.keys[color.index()];
        if *slot == key {
            return;
        }
        if let Some(old) = slot.take() {
            self.set.remove(&old);
        }
        if let Some(new) = key {
            self.set.insert(new);
            *slot = Some(new);
        }
    }

    /// Number of indexed colors.
    pub fn len(&self) -> usize {
        self.set.len()
    }

    /// Whether the index is empty.
    pub fn is_empty(&self) -> bool {
        self.set.is_empty()
    }

    /// Keys in ascending (best-first) order.
    pub fn iter(&self) -> impl Iterator<Item = &K> {
        self.set.iter()
    }

    /// Keys in descending (worst-first) order.
    pub fn iter_rev(&self) -> impl Iterator<Item = &K> {
        self.set.iter().rev()
    }
}

/// An incremental index over the *eligible* colors in EDF rank order
/// ([`ColorRank`]): the live replacement for re-sorting
/// [`BatchState::eligible_colors`] by [`rank_key`] every mini-round.
///
/// Refresh contract: call [`RankIndex::refresh`] for every color in
/// [`BatchState::touched`] *plus* the phase's dropped/arrival colors after each
/// drop and arrival phase (their idle bit may have changed), and for the
/// policy's currently-cached colors at the start of each reconfiguration (the
/// execution phase empties queues of cached colors without a policy hook).
#[derive(Debug, Clone)]
pub struct RankIndex {
    inner: OrdIndex<ColorRank>,
}

impl RankIndex {
    /// Creates an empty index over `ncolors` colors.
    pub fn new(ncolors: usize) -> Self {
        RankIndex {
            inner: OrdIndex::new(ncolors),
        }
    }

    /// Re-derives `color`'s key from the current state: indexed with its
    /// current [`rank_key`] while eligible, absent otherwise.
    pub fn refresh(&mut self, state: &BatchState, pending: &PendingJobs, color: ColorId) {
        let key = state
            .color(color)
            .eligible
            .then(|| rank_key(state, pending, color));
        self.inner.update(color, key);
    }

    /// Refreshes every color in `colors`.
    pub fn refresh_many(
        &mut self,
        state: &BatchState,
        pending: &PendingJobs,
        colors: impl IntoIterator<Item = ColorId>,
    ) {
        for c in colors {
            self.refresh(state, pending, c);
        }
    }

    /// Eligible colors, best rank first.
    pub fn iter(&self) -> impl Iterator<Item = ColorId> + '_ {
        self.inner.iter().map(|k| k.color)
    }

    /// Eligible colors, worst rank first.
    pub fn iter_rev(&self) -> impl Iterator<Item = ColorId> + '_ {
        self.inner.iter_rev().map(|k| k.color)
    }

    /// Number of eligible colors indexed.
    pub fn len(&self) -> usize {
        self.inner.len()
    }

    /// Whether no color is currently eligible.
    pub fn is_empty(&self) -> bool {
        self.inner.len() == 0
    }
}

/// An incremental index over the eligible colors in exact EDF rank order that
/// exploits the batched setting's deadline structure instead of keying a tree
/// on per-color deadlines.
///
/// [`BatchState::arrival_phase`] sets the deadline of **every** color with
/// `round ≡ 0 (mod D)` to `round + D`, whether or not jobs arrived — so colors
/// sharing a delay bound always share a deadline, and that deadline is the
/// pure function `(round / D) · D + D` of the current round. Keeping one
/// eligible set per delay-bound group, split by idleness, therefore
/// reproduces the exact [`ColorRank`] order (idle-major, then group deadline,
/// then bound, then color) while the deadline movement at every multiple
/// costs *nothing*: where a [`RankIndex`] must re-key each eligible at-multiple
/// color (`O(log E)` tree surgery per color per multiple), this index is left
/// untouched by a phase that only moved deadlines.
///
/// Refresh contract: call [`GroupRankIndex::refresh`] only for colors whose
/// *eligibility or idleness* may have changed — the drop phase's
/// [`BatchState::touched`] delta plus its `dropped` slice, the arrival
/// phase's `arrivals` slice (counter wraps and idle flips need arrivals),
/// and the policy's cached colors at reconfiguration (execution drains them
/// without a hook). An unchanged color exits in O(1). Call
/// [`GroupRankIndex::prepare`] with the current round before iterating.
#[derive(Debug, Clone)]
pub struct GroupRankIndex {
    /// Ascending distinct delay bounds; group `g` holds bound `bounds[g]`.
    bounds: Vec<u64>,
    /// Per color: its group index.
    group_of: Vec<u32>,
    /// Per group: eligible nonidle members, ascending color order.
    nonidle: Vec<BTreeSet<ColorId>>,
    /// Per group: eligible idle members, ascending color order.
    idle: Vec<BTreeSet<ColorId>>,
    /// Per color: `Some(is_idle)` while indexed (eligible), `None` otherwise.
    slot: Vec<Option<bool>>,
    /// Group visit order for the prepared round.
    order: Vec<u32>,
    len: usize,
}

impl GroupRankIndex {
    /// Creates an empty index over the colors of `table`.
    pub fn new(table: &ColorTable) -> Self {
        let mut by_bound: std::collections::BTreeMap<u64, Vec<ColorId>> = Default::default();
        for (c, info) in table.iter() {
            by_bound.entry(info.delay_bound).or_default().push(c);
        }
        let bounds: Vec<u64> = by_bound.keys().copied().collect();
        let mut group_of = vec![0u32; table.len()];
        for (g, members) in by_bound.values().enumerate() {
            for &c in members {
                group_of[c.index()] = g as u32;
            }
        }
        GroupRankIndex {
            nonidle: vec![BTreeSet::new(); bounds.len()],
            idle: vec![BTreeSet::new(); bounds.len()],
            order: (0..bounds.len() as u32).collect(),
            slot: vec![None; table.len()],
            bounds,
            group_of,
            len: 0,
        }
    }

    /// Re-derives `color`'s placement from the current state: in its group's
    /// nonidle or idle set while eligible, absent otherwise. O(1) when
    /// nothing changed.
    pub fn refresh(&mut self, state: &BatchState, pending: &PendingJobs, color: ColorId) {
        let i = color.index();
        let entry = state.color(color).eligible.then(|| pending.is_idle(color));
        if self.slot[i] == entry {
            return;
        }
        let g = self.group_of[i] as usize;
        match self.slot[i] {
            Some(true) => {
                self.idle[g].remove(&color);
                self.len -= 1;
            }
            Some(false) => {
                self.nonidle[g].remove(&color);
                self.len -= 1;
            }
            None => {}
        }
        match entry {
            Some(true) => {
                self.idle[g].insert(color);
                self.len += 1;
            }
            Some(false) => {
                self.nonidle[g].insert(color);
                self.len += 1;
            }
            None => {}
        }
        self.slot[i] = entry;
    }

    /// Refreshes every color in `colors`.
    pub fn refresh_many(
        &mut self,
        state: &BatchState,
        pending: &PendingJobs,
        colors: impl IntoIterator<Item = ColorId>,
    ) {
        for c in colors {
            self.refresh(state, pending, c);
        }
    }

    /// Orders the groups for `round`: ascending group deadline
    /// `(round / D) · D + D`, ties by ascending bound. Must be called after
    /// the round's arrival phase and before [`GroupRankIndex::iter`].
    pub fn prepare(&mut self, round: Round) {
        let bounds = &self.bounds;
        self.order.sort_unstable_by_key(|&g| {
            let d = bounds[g as usize];
            ((round / d) * d + d, d)
        });
    }

    /// Eligible colors, best rank first, for the prepared round: every
    /// nonidle color (groups in deadline order, members in color order)
    /// before every idle one — exactly the [`ColorRank`] order.
    pub fn iter(&self) -> impl Iterator<Item = ColorId> + '_ {
        self.order
            .iter()
            .flat_map(move |&g| self.nonidle[g as usize].iter().copied())
            .chain(
                self.order
                    .iter()
                    .flat_map(move |&g| self.idle[g as usize].iter().copied()),
            )
    }

    /// Number of eligible colors indexed.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether no color is currently eligible.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }
}

/// A recency key: most recent timestamp first, ties in favour of
/// already-cached colors, then ascending color id — the ΔLRU selection order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub struct RecencyKey {
    /// The color's (possibly K-th) timestamp, most recent first.
    pub ts: Reverse<Round>,
    /// `false` (currently cached) sorts before `true` on timestamp ties.
    pub uncached: bool,
    /// Final tiebreak: the color id.
    pub color: ColorId,
}

/// An incremental index over the eligible colors in ΔLRU recency order: the
/// live replacement for the `sort_by_key((Reverse(ts), !cached, c))` pattern.
///
/// Refresh contract: call [`RecencyIndex::refresh`] for every
/// [`BatchState::touched`] color after each drop and arrival phase
/// (eligibility and timestamps change only there), and — because the
/// cached-first tie-break is part of the key — for every color whose cached
/// membership changed at the end of each reconfiguration.
#[derive(Debug, Clone)]
pub struct RecencyIndex {
    inner: OrdIndex<RecencyKey>,
}

impl RecencyIndex {
    /// Creates an empty index over `ncolors` colors.
    pub fn new(ncolors: usize) -> Self {
        RecencyIndex {
            inner: OrdIndex::new(ncolors),
        }
    }

    /// Sets `color`'s entry: `Some((timestamp, currently_cached))` while
    /// eligible, `None` otherwise.
    pub fn refresh(&mut self, color: ColorId, entry: Option<(Round, bool)>) {
        self.inner.update(
            color,
            entry.map(|(ts, cached)| RecencyKey {
                ts: Reverse(ts),
                uncached: !cached,
                color,
            }),
        );
    }

    /// Eligible colors, most recent first.
    pub fn iter(&self) -> impl Iterator<Item = ColorId> + '_ {
        self.inner.iter().map(|k| k.color)
    }

    /// Number of eligible colors indexed.
    pub fn len(&self) -> usize {
        self.inner.len()
    }

    /// Whether no color is currently eligible.
    pub fn is_empty(&self) -> bool {
        self.inner.len() == 0
    }
}

/// A pending-backlog key: largest pending count first, ties by ascending color
/// id — the greedy baselines' selection order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub struct PendingKey {
    /// Pending jobs of the color, largest first.
    pub count: Reverse<u64>,
    /// Final tiebreak: the color id.
    pub color: ColorId,
}

/// An incremental index over the *nonidle* colors by descending pending count:
/// the live replacement for sorting [`PendingJobs::nonidle_colors`] every
/// round.
///
/// Refresh contract: pending counts change in exactly three places — drops
/// (refresh the drop phase's `dropped` colors), arrivals (refresh the arrival
/// slice's colors) and executions, which only ever touch colors the policy
/// itself selected in its previous reconfiguration (refresh those at the start
/// of the next one).
#[derive(Debug, Clone)]
pub struct PendingCountIndex {
    inner: OrdIndex<PendingKey>,
}

impl PendingCountIndex {
    /// Creates an empty index; it grows to any color id it sees.
    pub fn new(ncolors: usize) -> Self {
        PendingCountIndex {
            inner: OrdIndex::new(ncolors),
        }
    }

    /// Re-derives `color`'s key from its current pending count.
    pub fn refresh(&mut self, pending: &PendingJobs, color: ColorId) {
        let count = pending.count(color);
        self.inner.update(
            color,
            (count > 0).then_some(PendingKey {
                count: Reverse(count),
                color,
            }),
        );
    }

    /// Nonidle colors with their pending counts, largest backlog first.
    pub fn iter(&self) -> impl Iterator<Item = (ColorId, u64)> + '_ {
        self.inner.iter().map(|k| (k.color, k.count.0))
    }

    /// Number of nonidle colors indexed.
    pub fn len(&self) -> usize {
        self.inner.len()
    }

    /// Whether every color is currently idle.
    pub fn is_empty(&self) -> bool {
        self.inner.len() == 0
    }
}

/// An O(1)-update membership set of the nonidle colors, unordered.
///
/// [`PendingCountIndex`] keeps the full backlog order but pays a tree
/// rebalance every time a count changes — and counts change on essentially
/// every refresh, so for a policy that only reads a small top-`n` each round
/// the index does far more ordering work than the consumer ever uses.
/// Tracking *membership* in O(1) (idle flips are rare; count changes are
/// free) and selecting the top `n` at use time with a linear-time
/// `select_nth_unstable` over the live counts does strictly less work.
///
/// Refresh contract: identical to [`PendingCountIndex`] — refresh the drop
/// phase's `dropped` colors, the arrival slice's colors, and the colors the
/// policy itself selected in its previous reconfiguration (executions only
/// drain those).
#[derive(Debug, Clone, Default)]
pub struct NonidleSet {
    /// Per color: position + 1 in `colors`; 0 = absent.
    pos: Vec<u32>,
    colors: Vec<ColorId>,
}

impl NonidleSet {
    /// Creates an empty set; it grows to any color id it sees.
    pub fn new(ncolors: usize) -> Self {
        NonidleSet { pos: vec![0; ncolors], colors: Vec::new() }
    }

    /// Re-derives `color`'s membership from its current pending count.
    pub fn refresh(&mut self, pending: &PendingJobs, color: ColorId) {
        if color.index() >= self.pos.len() {
            self.pos.resize(color.index() + 1, 0);
        }
        let present = self.pos[color.index()] != 0;
        let want = !pending.is_idle(color);
        if want == present {
            return;
        }
        if want {
            self.colors.push(color);
            self.pos[color.index()] = self.colors.len() as u32;
        } else {
            let at = (self.pos[color.index()] - 1) as usize;
            self.colors.swap_remove(at);
            self.pos[color.index()] = 0;
            if let Some(&moved) = self.colors.get(at) {
                self.pos[moved.index()] = at as u32 + 1;
            }
        }
    }

    /// The nonidle colors, in no particular order.
    pub fn iter(&self) -> impl Iterator<Item = ColorId> + '_ {
        self.colors.iter().copied()
    }

    /// Number of nonidle colors.
    pub fn len(&self) -> usize {
        self.colors.len()
    }

    /// Whether every color is currently idle.
    pub fn is_empty(&self) -> bool {
        self.colors.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn c(i: u32) -> ColorId {
        ColorId(i)
    }

    #[test]
    fn nonidle_beats_idle_and_deadline_orders() {
        // Colors: 0 (D=8), 1 (D=4), 2 (D=4).
        let table = ColorTable::from_delay_bounds(&[8, 4, 4]);
        let mut st = BatchState::new(&table, 1);
        let mut pending = PendingJobs::new(3);
        // Round 0: all colors hit a multiple; arrivals for colors 0 and 2.
        st.arrival_phase(0, &[(c(0), 1), (c(2), 1)]);
        pending.arrive(c(0), 8, 1);
        pending.arrive(c(2), 4, 1);
        // Deadlines: c0 -> 8, c1 -> 4, c2 -> 4. c1 is idle.
        let mut colors = vec![c(0), c(1), c(2)];
        rank_colors(&st, &pending, &mut colors);
        // Nonidle first: c2 (deadline 4) before c0 (deadline 8); idle c1 last.
        assert_eq!(colors, vec![c(2), c(0), c(1)]);
    }

    #[test]
    fn delay_bound_breaks_deadline_ties() {
        // c0: D=8 arriving at 0 -> deadline 8. c1: D=4, at round 4 deadline 8.
        let table = ColorTable::from_delay_bounds(&[8, 4]);
        let mut st = BatchState::new(&table, 1);
        let mut pending = PendingJobs::new(2);
        st.arrival_phase(0, &[(c(0), 1)]);
        pending.arrive(c(0), 8, 1);
        st.arrival_phase(4, &[(c(1), 1)]);
        pending.arrive(c(1), 8, 1);
        let mut colors = vec![c(0), c(1)];
        rank_colors(&st, &pending, &mut colors);
        // Equal deadlines (8); smaller delay bound (c1, D=4) ranks first.
        assert_eq!(colors, vec![c(1), c(0)]);
    }

    #[test]
    fn color_id_is_final_tiebreak() {
        let table = ColorTable::from_delay_bounds(&[4, 4]);
        let mut st = BatchState::new(&table, 1);
        let mut pending = PendingJobs::new(2);
        st.arrival_phase(0, &[(c(0), 1), (c(1), 1)]);
        pending.arrive(c(0), 4, 1);
        pending.arrive(c(1), 4, 1);
        let mut colors = vec![c(1), c(0)];
        rank_colors(&st, &pending, &mut colors);
        assert_eq!(colors, vec![c(0), c(1)]);
    }

    #[test]
    fn ord_index_updates_replace_and_remove() {
        let mut idx: OrdIndex<(u64, ColorId)> = OrdIndex::new(2);
        idx.update(c(0), Some((5, c(0))));
        idx.update(c(1), Some((3, c(1))));
        assert_eq!(idx.iter().copied().collect::<Vec<_>>(), vec![(3, c(1)), (5, c(0))]);
        // Replacing a key re-sorts the color.
        idx.update(c(0), Some((1, c(0))));
        assert_eq!(idx.iter().next(), Some(&(1, c(0))));
        assert_eq!(idx.len(), 2);
        // Idempotent update is a no-op; None removes.
        idx.update(c(0), Some((1, c(0))));
        idx.update(c(1), None);
        assert_eq!(idx.len(), 1);
        assert_eq!(idx.iter_rev().next(), Some(&(1, c(0))));
        // Growing past the initial arity works.
        idx.update(c(7), Some((0, c(7))));
        assert_eq!(idx.iter().next(), Some(&(0, c(7))));
    }

    #[test]
    fn rank_index_matches_full_sort() {
        let table = ColorTable::from_delay_bounds(&[8, 4, 4, 16]);
        let mut st = BatchState::new(&table, 1);
        let mut pending = PendingJobs::new(4);
        let mut idx = RankIndex::new(4);
        st.arrival_phase(0, &[(c(0), 1), (c(2), 2), (c(3), 1)]);
        pending.arrive(c(0), 8, 1);
        pending.arrive(c(2), 4, 2);
        pending.arrive(c(3), 16, 1);
        idx.refresh_many(&st, &pending, (0..4).map(c));
        let mut expect = st.eligible_colors();
        rank_colors(&st, &pending, &mut expect);
        assert_eq!(idx.iter().collect::<Vec<_>>(), expect);
        let mut rev = expect.clone();
        rev.reverse();
        assert_eq!(idx.iter_rev().collect::<Vec<_>>(), rev);
        // Executing c2's backlog flips its idle bit; refreshing re-ranks it.
        pending.execute_one(c(2));
        pending.execute_one(c(2));
        idx.refresh(&st, &pending, c(2));
        let mut expect = st.eligible_colors();
        rank_colors(&st, &pending, &mut expect);
        assert_eq!(idx.iter().collect::<Vec<_>>(), expect);
    }

    #[test]
    fn recency_index_orders_by_timestamp_then_cached() {
        let mut idx = RecencyIndex::new(3);
        idx.refresh(c(0), Some((4, false)));
        idx.refresh(c(1), Some((8, false)));
        idx.refresh(c(2), Some((4, true)));
        // ts 8 first; among ts 4 the cached color wins; ineligible drops out.
        assert_eq!(idx.iter().collect::<Vec<_>>(), vec![c(1), c(2), c(0)]);
        idx.refresh(c(1), None);
        assert_eq!(idx.iter().collect::<Vec<_>>(), vec![c(2), c(0)]);
        assert_eq!(idx.len(), 2);
    }

    #[test]
    fn group_rank_index_matches_full_sort_across_rounds() {
        // Bounds 2/4 interleave their multiples, so group deadlines cross
        // over as rounds advance; the group index must track the full sort
        // at every round.
        let table = ColorTable::from_delay_bounds(&[2, 4, 2, 4, 2]);
        let mut st = BatchState::new(&table, 1);
        let mut pending = PendingJobs::new(5);
        let mut idx = GroupRankIndex::new(&table);
        assert!(idx.is_empty());
        for round in 0..8u64 {
            st.drop_phase(round, &[], &|_| false);
            idx.refresh_many(&st, &pending, st.touched().iter().copied());
            // Arrivals rotate over colors; Δ=1 wraps immediately.
            let arrivals: Vec<(ColorId, u64)> = (0..5)
                .filter(|i| (round + i) % 3 != 0)
                .map(|i| (c(i as u32), 1))
                .collect();
            st.arrival_phase(round, &arrivals);
            for &(col, k) in &arrivals {
                pending.arrive(col, st.color(col).deadline, k);
            }
            idx.refresh_many(&st, &pending, arrivals.iter().map(|&(col, _)| col));
            // Execute one job of the best color to exercise idle flips.
            let best = idx.iter().next();
            if let Some(best) = best {
                pending.execute_one(best);
                idx.refresh(&st, &pending, best);
            }
            idx.prepare(round);
            let mut expect = st.eligible_colors();
            rank_colors(&st, &pending, &mut expect);
            assert_eq!(idx.iter().collect::<Vec<_>>(), expect, "round {round}");
            assert_eq!(idx.len(), expect.len());
        }
    }

    #[test]
    fn nonidle_set_tracks_membership() {
        let mut pending = PendingJobs::new(3);
        let mut set = NonidleSet::new(2); // deliberately small: must grow
        for i in 0..3 {
            set.refresh(&pending, c(i));
        }
        assert!(set.is_empty());
        pending.arrive(c(0), 4, 2);
        pending.arrive(c(2), 4, 1);
        for i in 0..3 {
            set.refresh(&pending, c(i));
        }
        let mut got: Vec<ColorId> = set.iter().collect();
        got.sort_unstable();
        assert_eq!(got, vec![c(0), c(2)]);
        // Refresh with no change is a no-op; draining removes (swap_remove
        // path must fix the moved color's position).
        set.refresh(&pending, c(0));
        assert_eq!(set.len(), 2);
        pending.execute_one(c(0));
        pending.execute_one(c(0));
        set.refresh(&pending, c(0));
        assert_eq!(set.iter().collect::<Vec<_>>(), vec![c(2)]);
        pending.execute_one(c(2));
        set.refresh(&pending, c(2));
        assert!(set.is_empty());
    }

    #[test]
    fn pending_count_index_matches_full_sort() {
        let mut pending = PendingJobs::new(3);
        pending.arrive(c(0), 4, 2);
        pending.arrive(c(1), 4, 5);
        pending.arrive(c(2), 8, 2);
        let mut idx = PendingCountIndex::new(3);
        for i in 0..3 {
            idx.refresh(&pending, c(i));
        }
        let expect = colors_by_pending(&pending);
        assert_eq!(idx.iter().map(|(c, _)| c).collect::<Vec<_>>(), expect);
        assert_eq!(idx.iter().next(), Some((c(1), 5)));
        // Draining a queue removes the color.
        pending.execute_one(c(0));
        pending.execute_one(c(0));
        idx.refresh(&pending, c(0));
        assert_eq!(idx.len(), 2);
        assert_eq!(
            idx.iter().map(|(c, _)| c).collect::<Vec<_>>(),
            colors_by_pending(&pending)
        );
    }
}
