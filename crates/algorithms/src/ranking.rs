//! The paper's color and job ranking schemes (§3.1.2, §3.3), and the
//! incremental rank indexes the policies select from.
//!
//! Eligible colors are ranked **first on idleness** (nonidle colors first), then
//! in ascending order of deadlines, breaking ties by increasing delay bounds and
//! then by the consistent order of colors (ascending [`ColorId`]). Pending jobs
//! are ranked by increasing deadline, then delay bound, then color order — which
//! is exactly the derived `Ord` on [`rrs_core::Job`].
//!
//! Historically every policy re-collected the eligible colors and re-sorted
//! them from scratch in every mini-round — `O(E log E)` per reconfiguration
//! with `E` eligible colors, even when almost nothing changed. The
//! [`OrdIndex`] family below maintains the same orders incrementally: a policy
//! refreshes only the colors whose state a phase actually touched (the
//! [`BatchState::touched`] delta plus the phase's own dropped/arrival slices)
//! and then reads the best candidates off the index in order. Every key embeds
//! its [`ColorId`] as the final tiebreak, so keys are unique per color and the
//! index order equals the order the old full sorts produced.

use crate::state::BatchState;
use rrs_core::prelude::*;
use std::cmp::Reverse;
use std::collections::BTreeSet;

/// A color's rank key. Smaller keys rank higher (better).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub struct ColorRank {
    /// `false` (nonidle) sorts before `true` (idle).
    pub idle: bool,
    /// The color's current deadline `ℓ.dd`.
    pub deadline: Round,
    /// The color's delay bound `D_ℓ`.
    pub delay_bound: u64,
    /// Consistent tie-break: the color id.
    pub color: ColorId,
}

/// Computes the rank key of `color` given the batch state and pending jobs.
pub fn rank_key(state: &BatchState, pending: &PendingJobs, color: ColorId) -> ColorRank {
    let s = state.color(color);
    ColorRank {
        idle: pending.is_idle(color),
        deadline: s.deadline,
        delay_bound: s.delay_bound,
        color,
    }
}

/// Ranks `colors` by the EDF scheme, best first.
pub fn rank_colors(state: &BatchState, pending: &PendingJobs, colors: &mut [ColorId]) {
    colors.sort_by_key(|&c| rank_key(state, pending, c));
}

/// The nonidle colors ordered by descending pending count, ties by ascending
/// color id — the greedy baselines' one-shot ranking.
pub fn colors_by_pending(pending: &PendingJobs) -> Vec<ColorId> {
    let mut colors = pending.nonidle_colors();
    colors.sort_by_key(|&c| (Reverse(pending.count(c)), c));
    colors
}

/// An incrementally-maintained ordered set of per-color keys.
///
/// Each color holds at most one key; [`OrdIndex::update`] replaces (or
/// removes) it in `O(log n)`. Iteration yields keys in ascending order without
/// sorting. Keys must be **unique per color** — embed the [`ColorId`] as the
/// final tiebreak component.
#[derive(Debug, Clone)]
pub struct OrdIndex<K: Ord + Copy> {
    keys: Vec<Option<K>>,
    set: BTreeSet<K>,
}

impl<K: Ord + Copy> OrdIndex<K> {
    /// Creates an empty index over `ncolors` colors (grows on demand).
    pub fn new(ncolors: usize) -> Self {
        OrdIndex {
            keys: vec![None; ncolors],
            set: BTreeSet::new(),
        }
    }

    /// Sets `color`'s key to `key` (`None` removes the color from the index).
    pub fn update(&mut self, color: ColorId, key: Option<K>) {
        if color.index() >= self.keys.len() {
            self.keys.resize(color.index() + 1, None);
        }
        let slot = &mut self.keys[color.index()];
        if *slot == key {
            return;
        }
        if let Some(old) = slot.take() {
            self.set.remove(&old);
        }
        if let Some(new) = key {
            self.set.insert(new);
            *slot = Some(new);
        }
    }

    /// Number of indexed colors.
    pub fn len(&self) -> usize {
        self.set.len()
    }

    /// Whether the index is empty.
    pub fn is_empty(&self) -> bool {
        self.set.is_empty()
    }

    /// Keys in ascending (best-first) order.
    pub fn iter(&self) -> impl Iterator<Item = &K> {
        self.set.iter()
    }

    /// Keys in descending (worst-first) order.
    pub fn iter_rev(&self) -> impl Iterator<Item = &K> {
        self.set.iter().rev()
    }
}

/// An incremental index over the *eligible* colors in EDF rank order
/// ([`ColorRank`]): the live replacement for re-sorting
/// [`BatchState::eligible_colors`] by [`rank_key`] every mini-round.
///
/// Refresh contract: call [`RankIndex::refresh`] for every color in
/// [`BatchState::touched`] *plus* the phase's dropped/arrival colors after each
/// drop and arrival phase (their idle bit may have changed), and for the
/// policy's currently-cached colors at the start of each reconfiguration (the
/// execution phase empties queues of cached colors without a policy hook).
#[derive(Debug, Clone)]
pub struct RankIndex {
    inner: OrdIndex<ColorRank>,
}

impl RankIndex {
    /// Creates an empty index over `ncolors` colors.
    pub fn new(ncolors: usize) -> Self {
        RankIndex {
            inner: OrdIndex::new(ncolors),
        }
    }

    /// Re-derives `color`'s key from the current state: indexed with its
    /// current [`rank_key`] while eligible, absent otherwise.
    pub fn refresh(&mut self, state: &BatchState, pending: &PendingJobs, color: ColorId) {
        let key = state
            .color(color)
            .eligible
            .then(|| rank_key(state, pending, color));
        self.inner.update(color, key);
    }

    /// Refreshes every color in `colors`.
    pub fn refresh_many(
        &mut self,
        state: &BatchState,
        pending: &PendingJobs,
        colors: impl IntoIterator<Item = ColorId>,
    ) {
        for c in colors {
            self.refresh(state, pending, c);
        }
    }

    /// Eligible colors, best rank first.
    pub fn iter(&self) -> impl Iterator<Item = ColorId> + '_ {
        self.inner.iter().map(|k| k.color)
    }

    /// Eligible colors, worst rank first.
    pub fn iter_rev(&self) -> impl Iterator<Item = ColorId> + '_ {
        self.inner.iter_rev().map(|k| k.color)
    }

    /// Number of eligible colors indexed.
    pub fn len(&self) -> usize {
        self.inner.len()
    }

    /// Whether no color is currently eligible.
    pub fn is_empty(&self) -> bool {
        self.inner.len() == 0
    }
}

/// A recency key: most recent timestamp first, ties in favour of
/// already-cached colors, then ascending color id — the ΔLRU selection order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub struct RecencyKey {
    /// The color's (possibly K-th) timestamp, most recent first.
    pub ts: Reverse<Round>,
    /// `false` (currently cached) sorts before `true` on timestamp ties.
    pub uncached: bool,
    /// Final tiebreak: the color id.
    pub color: ColorId,
}

/// An incremental index over the eligible colors in ΔLRU recency order: the
/// live replacement for the `sort_by_key((Reverse(ts), !cached, c))` pattern.
///
/// Refresh contract: call [`RecencyIndex::refresh`] for every
/// [`BatchState::touched`] color after each drop and arrival phase
/// (eligibility and timestamps change only there), and — because the
/// cached-first tie-break is part of the key — for every color whose cached
/// membership changed at the end of each reconfiguration.
#[derive(Debug, Clone)]
pub struct RecencyIndex {
    inner: OrdIndex<RecencyKey>,
}

impl RecencyIndex {
    /// Creates an empty index over `ncolors` colors.
    pub fn new(ncolors: usize) -> Self {
        RecencyIndex {
            inner: OrdIndex::new(ncolors),
        }
    }

    /// Sets `color`'s entry: `Some((timestamp, currently_cached))` while
    /// eligible, `None` otherwise.
    pub fn refresh(&mut self, color: ColorId, entry: Option<(Round, bool)>) {
        self.inner.update(
            color,
            entry.map(|(ts, cached)| RecencyKey {
                ts: Reverse(ts),
                uncached: !cached,
                color,
            }),
        );
    }

    /// Eligible colors, most recent first.
    pub fn iter(&self) -> impl Iterator<Item = ColorId> + '_ {
        self.inner.iter().map(|k| k.color)
    }

    /// Number of eligible colors indexed.
    pub fn len(&self) -> usize {
        self.inner.len()
    }

    /// Whether no color is currently eligible.
    pub fn is_empty(&self) -> bool {
        self.inner.len() == 0
    }
}

/// A pending-backlog key: largest pending count first, ties by ascending color
/// id — the greedy baselines' selection order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub struct PendingKey {
    /// Pending jobs of the color, largest first.
    pub count: Reverse<u64>,
    /// Final tiebreak: the color id.
    pub color: ColorId,
}

/// An incremental index over the *nonidle* colors by descending pending count:
/// the live replacement for sorting [`PendingJobs::nonidle_colors`] every
/// round.
///
/// Refresh contract: pending counts change in exactly three places — drops
/// (refresh the drop phase's `dropped` colors), arrivals (refresh the arrival
/// slice's colors) and executions, which only ever touch colors the policy
/// itself selected in its previous reconfiguration (refresh those at the start
/// of the next one).
#[derive(Debug, Clone)]
pub struct PendingCountIndex {
    inner: OrdIndex<PendingKey>,
}

impl PendingCountIndex {
    /// Creates an empty index; it grows to any color id it sees.
    pub fn new(ncolors: usize) -> Self {
        PendingCountIndex {
            inner: OrdIndex::new(ncolors),
        }
    }

    /// Re-derives `color`'s key from its current pending count.
    pub fn refresh(&mut self, pending: &PendingJobs, color: ColorId) {
        let count = pending.count(color);
        self.inner.update(
            color,
            (count > 0).then_some(PendingKey {
                count: Reverse(count),
                color,
            }),
        );
    }

    /// Nonidle colors with their pending counts, largest backlog first.
    pub fn iter(&self) -> impl Iterator<Item = (ColorId, u64)> + '_ {
        self.inner.iter().map(|k| (k.color, k.count.0))
    }

    /// Number of nonidle colors indexed.
    pub fn len(&self) -> usize {
        self.inner.len()
    }

    /// Whether every color is currently idle.
    pub fn is_empty(&self) -> bool {
        self.inner.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn c(i: u32) -> ColorId {
        ColorId(i)
    }

    #[test]
    fn nonidle_beats_idle_and_deadline_orders() {
        // Colors: 0 (D=8), 1 (D=4), 2 (D=4).
        let table = ColorTable::from_delay_bounds(&[8, 4, 4]);
        let mut st = BatchState::new(&table, 1);
        let mut pending = PendingJobs::new(3);
        // Round 0: all colors hit a multiple; arrivals for colors 0 and 2.
        st.arrival_phase(0, &[(c(0), 1), (c(2), 1)]);
        pending.arrive(c(0), 8, 1);
        pending.arrive(c(2), 4, 1);
        // Deadlines: c0 -> 8, c1 -> 4, c2 -> 4. c1 is idle.
        let mut colors = vec![c(0), c(1), c(2)];
        rank_colors(&st, &pending, &mut colors);
        // Nonidle first: c2 (deadline 4) before c0 (deadline 8); idle c1 last.
        assert_eq!(colors, vec![c(2), c(0), c(1)]);
    }

    #[test]
    fn delay_bound_breaks_deadline_ties() {
        // c0: D=8 arriving at 0 -> deadline 8. c1: D=4, at round 4 deadline 8.
        let table = ColorTable::from_delay_bounds(&[8, 4]);
        let mut st = BatchState::new(&table, 1);
        let mut pending = PendingJobs::new(2);
        st.arrival_phase(0, &[(c(0), 1)]);
        pending.arrive(c(0), 8, 1);
        st.arrival_phase(4, &[(c(1), 1)]);
        pending.arrive(c(1), 8, 1);
        let mut colors = vec![c(0), c(1)];
        rank_colors(&st, &pending, &mut colors);
        // Equal deadlines (8); smaller delay bound (c1, D=4) ranks first.
        assert_eq!(colors, vec![c(1), c(0)]);
    }

    #[test]
    fn color_id_is_final_tiebreak() {
        let table = ColorTable::from_delay_bounds(&[4, 4]);
        let mut st = BatchState::new(&table, 1);
        let mut pending = PendingJobs::new(2);
        st.arrival_phase(0, &[(c(0), 1), (c(1), 1)]);
        pending.arrive(c(0), 4, 1);
        pending.arrive(c(1), 4, 1);
        let mut colors = vec![c(1), c(0)];
        rank_colors(&st, &pending, &mut colors);
        assert_eq!(colors, vec![c(0), c(1)]);
    }

    #[test]
    fn ord_index_updates_replace_and_remove() {
        let mut idx: OrdIndex<(u64, ColorId)> = OrdIndex::new(2);
        idx.update(c(0), Some((5, c(0))));
        idx.update(c(1), Some((3, c(1))));
        assert_eq!(idx.iter().copied().collect::<Vec<_>>(), vec![(3, c(1)), (5, c(0))]);
        // Replacing a key re-sorts the color.
        idx.update(c(0), Some((1, c(0))));
        assert_eq!(idx.iter().next(), Some(&(1, c(0))));
        assert_eq!(idx.len(), 2);
        // Idempotent update is a no-op; None removes.
        idx.update(c(0), Some((1, c(0))));
        idx.update(c(1), None);
        assert_eq!(idx.len(), 1);
        assert_eq!(idx.iter_rev().next(), Some(&(1, c(0))));
        // Growing past the initial arity works.
        idx.update(c(7), Some((0, c(7))));
        assert_eq!(idx.iter().next(), Some(&(0, c(7))));
    }

    #[test]
    fn rank_index_matches_full_sort() {
        let table = ColorTable::from_delay_bounds(&[8, 4, 4, 16]);
        let mut st = BatchState::new(&table, 1);
        let mut pending = PendingJobs::new(4);
        let mut idx = RankIndex::new(4);
        st.arrival_phase(0, &[(c(0), 1), (c(2), 2), (c(3), 1)]);
        pending.arrive(c(0), 8, 1);
        pending.arrive(c(2), 4, 2);
        pending.arrive(c(3), 16, 1);
        idx.refresh_many(&st, &pending, (0..4).map(c));
        let mut expect = st.eligible_colors();
        rank_colors(&st, &pending, &mut expect);
        assert_eq!(idx.iter().collect::<Vec<_>>(), expect);
        let mut rev = expect.clone();
        rev.reverse();
        assert_eq!(idx.iter_rev().collect::<Vec<_>>(), rev);
        // Executing c2's backlog flips its idle bit; refreshing re-ranks it.
        pending.execute_one(c(2));
        pending.execute_one(c(2));
        idx.refresh(&st, &pending, c(2));
        let mut expect = st.eligible_colors();
        rank_colors(&st, &pending, &mut expect);
        assert_eq!(idx.iter().collect::<Vec<_>>(), expect);
    }

    #[test]
    fn recency_index_orders_by_timestamp_then_cached() {
        let mut idx = RecencyIndex::new(3);
        idx.refresh(c(0), Some((4, false)));
        idx.refresh(c(1), Some((8, false)));
        idx.refresh(c(2), Some((4, true)));
        // ts 8 first; among ts 4 the cached color wins; ineligible drops out.
        assert_eq!(idx.iter().collect::<Vec<_>>(), vec![c(1), c(2), c(0)]);
        idx.refresh(c(1), None);
        assert_eq!(idx.iter().collect::<Vec<_>>(), vec![c(2), c(0)]);
        assert_eq!(idx.len(), 2);
    }

    #[test]
    fn pending_count_index_matches_full_sort() {
        let mut pending = PendingJobs::new(3);
        pending.arrive(c(0), 4, 2);
        pending.arrive(c(1), 4, 5);
        pending.arrive(c(2), 8, 2);
        let mut idx = PendingCountIndex::new(3);
        for i in 0..3 {
            idx.refresh(&pending, c(i));
        }
        let expect = colors_by_pending(&pending);
        assert_eq!(idx.iter().map(|(c, _)| c).collect::<Vec<_>>(), expect);
        assert_eq!(idx.iter().next(), Some((c(1), 5)));
        // Draining a queue removes the color.
        pending.execute_one(c(0));
        pending.execute_one(c(0));
        idx.refresh(&pending, c(0));
        assert_eq!(idx.len(), 2);
        assert_eq!(
            idx.iter().map(|(c, _)| c).collect::<Vec<_>>(),
            colors_by_pending(&pending)
        );
    }
}
