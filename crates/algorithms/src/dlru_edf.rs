//! ΔLRU-EDF — the paper's core contribution (§3.1.3).
//!
//! ΔLRU-EDF keeps **two** sets of colors configured:
//!
//! * an **LRU half**: the `n/4` eligible colors with the most recent timestamps
//!   (recency aspect; idleness is deliberately ignored so that short-delay
//!   colors stay cached between their bursts — this is what kills thrashing);
//! * an **EDF half**: among the remaining (non-LRU) eligible colors, the nonidle
//!   ones ranked in the top `n/4` by the EDF scheme are brought in (deadline
//!   aspect; this is what kills underutilization).
//!
//! When the cache (capacity `n/2` distinct colors, each cached at two locations)
//! overflows, the non-LRU color with the lowest EDF rank is evicted. Colors that
//! drop out of the LRU set are *not* evicted eagerly — they linger as non-LRU
//! colors until EDF pressure pushes them out, exactly as in the paper, where the
//! cache content only changes through the two insertion rules plus
//! lowest-rank eviction.
//!
//! Theorem 1: with `n = 8m` resources, ΔLRU-EDF's total cost on any rate-limited
//! `[Δ | 1 | D_ℓ | D_ℓ]` sequence (power-of-two delay bounds) is within a
//! constant factor of an optimal offline schedule using `m` resources.

use crate::ranking::{RankIndex, RecencyIndex};
use crate::state::BatchState;
use rrs_core::prelude::*;
use std::collections::BTreeSet;

/// Tuning knobs for ablation studies (the defaults are the paper's algorithm).
#[derive(Debug, Clone, Copy)]
pub struct DlruEdfConfig {
    /// Fraction of distinct-color capacity devoted to the LRU set, in quarters
    /// of `n`: the paper uses 1 quarter LRU + 1 quarter EDF (with replication 2
    /// the two quarters fill all `n` locations). `lru_quarters + edf_quarters`
    /// must equal `replication == 2 ? 2 : 4`.
    pub lru_quarters: u32,
    /// Quarters of `n` devoted to the EDF set.
    pub edf_quarters: u32,
    /// Copies per cached color (paper: 2).
    pub replication: u32,
}

impl Default for DlruEdfConfig {
    fn default() -> Self {
        DlruEdfConfig {
            lru_quarters: 1,
            edf_quarters: 1,
            replication: 2,
        }
    }
}

/// The ΔLRU-EDF policy.
///
/// ```
/// use rrs_core::prelude::*;
/// use rrs_core::engine::run_policy;
/// use rrs_algorithms::DlruEdf;
///
/// // Rate-limited batched traffic on two categories.
/// let trace = TraceBuilder::with_delay_bounds(&[4, 8])
///     .batched_jobs(0, 3, 0, 64)
///     .batched_jobs(1, 6, 0, 64)
///     .build();
/// let (n, delta) = (8, 2);
/// let mut policy = DlruEdf::new(trace.colors(), n, delta)?;
/// let result = run_policy(&trace, &mut policy, n, delta)?;
/// assert_eq!(result.cost.drop, 0, "steady eligible traffic is fully served");
/// # Ok::<(), rrs_core::Error>(())
/// ```
#[derive(Debug, Clone)]
pub struct DlruEdf {
    state: BatchState,
    /// All cached colors (LRU ∪ non-LRU), mirroring the engine's cache.
    cached: BTreeSet<ColorId>,
    /// The current LRU set (recomputed every reconfiguration phase).
    lru_set: BTreeSet<ColorId>,
    /// Eligible colors in recency order (step 1), maintained incrementally.
    recency: RecencyIndex,
    /// Eligible colors in EDF rank order (steps 2–3), maintained incrementally.
    rank: RankIndex,
    /// Scratch: colors whose cached membership changed in a reconfiguration.
    changed: Vec<ColorId>,
    n: usize,
    config: DlruEdfConfig,
}

impl DlruEdf {
    /// Creates ΔLRU-EDF with the paper's configuration (`n/4` LRU colors,
    /// `n/4` EDF colors, two locations per color).
    ///
    /// # Errors
    /// `n` must be a positive multiple of 4.
    pub fn new(table: &ColorTable, n: usize, delta: u64) -> Result<Self> {
        Self::with_config(table, n, delta, DlruEdfConfig::default())
    }

    /// Creates ΔLRU-EDF with custom quarter allocations / replication.
    pub fn with_config(
        table: &ColorTable,
        n: usize,
        delta: u64,
        config: DlruEdfConfig,
    ) -> Result<Self> {
        if n == 0 || !n.is_multiple_of(4) {
            return Err(Error::InvalidParameter(format!(
                "ΔLRU-EDF needs n to be a positive multiple of 4; got n={n}"
            )));
        }
        let quarters_needed = if config.replication == 2 {
            2
        } else if config.replication == 1 {
            4
        } else {
            return Err(Error::InvalidParameter(
                "replication must be 1 or 2".into(),
            ));
        };
        if config.lru_quarters + config.edf_quarters != quarters_needed {
            return Err(Error::InvalidParameter(format!(
                "lru_quarters + edf_quarters must be {quarters_needed} for replication {}",
                config.replication
            )));
        }
        Ok(DlruEdf {
            state: BatchState::new(table, delta),
            cached: BTreeSet::new(),
            lru_set: BTreeSet::new(),
            recency: RecencyIndex::new(table.len()),
            rank: RankIndex::new(table.len()),
            changed: Vec::new(),
            n,
            config,
        })
    }

    /// Re-derives both indices' entries for the most recent phase's touched
    /// colors (eligibility, timestamps and deadlines only change there).
    fn refresh_touched(&mut self, pending: &PendingJobs) {
        let (state, recency, rank, cached) = (
            &self.state,
            &mut self.recency,
            &mut self.rank,
            &self.cached,
        );
        for &c in state.touched() {
            let s = state.color(c);
            recency.refresh(c, s.eligible.then(|| (s.timestamp, cached.contains(&c))));
            rank.refresh(state, pending, c);
        }
    }

    /// Distinct colors in the LRU set.
    fn lru_quota(&self) -> usize {
        self.n / 4 * self.config.lru_quarters as usize
    }

    /// Distinct colors the EDF rule may bring in per round.
    fn edf_quota(&self) -> usize {
        self.n / 4 * self.config.edf_quarters as usize
    }

    /// Total distinct-color capacity.
    fn capacity(&self) -> usize {
        self.n / self.config.replication as usize
    }

    /// Instrumented per-color state (epochs, timestamps, drop classes).
    pub fn state(&self) -> &BatchState {
        &self.state
    }

    /// Mutable access to the instrumented state (e.g. to enable super-epoch
    /// tracking before a run).
    pub fn state_mut(&mut self) -> &mut BatchState {
        &mut self.state
    }

    /// Colors currently cached.
    pub fn cached_colors(&self) -> impl Iterator<Item = ColorId> + '_ {
        self.cached.iter().copied()
    }

    /// Colors currently in the LRU set (a subset of the cached colors).
    pub fn lru_colors(&self) -> impl Iterator<Item = ColorId> + '_ {
        self.lru_set.iter().copied()
    }
}

impl Policy for DlruEdf {
    fn name(&self) -> String {
        let d = DlruEdfConfig::default();
        if self.config.lru_quarters == d.lru_quarters
            && self.config.edf_quarters == d.edf_quarters
            && self.config.replication == d.replication
        {
            "ΔLRU-EDF".to_string()
        } else {
            format!(
                "ΔLRU-EDF(lru={}/4,edf={}/4,r={})",
                self.config.lru_quarters, self.config.edf_quarters, self.config.replication
            )
        }
    }

    fn on_drop_phase(&mut self, round: Round, dropped: &[(ColorId, u64)], view: &EngineView) {
        let cached = &self.cached;
        self.state
            .drop_phase(round, dropped, &|c| cached.contains(&c));
        self.refresh_touched(view.pending);
        // Dropped colors may have flipped their idle bit (an EDF rank
        // component) without an eligibility change.
        let (state, rank) = (&self.state, &mut self.rank);
        rank.refresh_many(state, view.pending, dropped.iter().map(|&(c, _)| c));
    }

    fn on_arrival_phase(&mut self, round: Round, arrivals: &[(ColorId, u64)], view: &EngineView) {
        self.state.arrival_phase(round, arrivals);
        self.refresh_touched(view.pending);
    }

    fn reconfigure(&mut self, _round: Round, _mini: u32, view: &EngineView) -> CacheTarget {
        debug_assert_eq!(view.n, self.n, "engine and policy disagree on n");
        // Execution drains cached colors' queues without a policy hook, so
        // their EDF rank (idle bit) may be stale: re-derive before selecting.
        self.rank
            .refresh_many(&self.state, view.pending, self.cached.iter().copied());
        self.changed.clear();
        let (lru_quota, edf_quota) = (self.lru_quota(), self.edf_quota());

        // Step 1 (ΔLRU): the lru_quota eligible colors with the most recent
        // timestamps, ties in favour of already-cached colors then color order
        // — read straight off the recency index.
        self.lru_set.clear();
        let (recency, lru_set) = (&self.recency, &mut self.lru_set);
        lru_set.extend(recency.iter().take(lru_quota));
        for &c in &self.lru_set {
            if self.cached.insert(c) {
                self.changed.push(c);
            }
        }

        // Step 2 (EDF): rank the non-LRU eligible colors; bring in the nonidle
        // ones in the top edf_quota rankings that are not yet cached.
        let (rank, lru_set, cached, changed) = (
            &self.rank,
            &self.lru_set,
            &mut self.cached,
            &mut self.changed,
        );
        for c in rank.iter().filter(|c| !lru_set.contains(c)).take(edf_quota) {
            if !view.pending.is_idle(c) && cached.insert(c) {
                changed.push(c);
            }
        }

        // Step 3: evict the lowest-ranked non-LRU colors while over capacity.
        while self.cached.len() > self.capacity() {
            let worst = self
                .rank
                .iter_rev()
                .filter(|c| !self.lru_set.contains(c))
                .find(|c| self.cached.contains(c))
                .expect("over capacity implies a cached non-LRU color exists");
            self.cached.remove(&worst);
            self.changed.push(worst);
        }

        // The cached-first tie-break is part of the recency key: re-derive the
        // entries of every color whose membership changed.
        let (state, recency, cached, changed) = (
            &self.state,
            &mut self.recency,
            &self.cached,
            &self.changed,
        );
        for &c in changed {
            let s = state.color(c);
            recency.refresh(c, s.eligible.then(|| (s.timestamp, cached.contains(&c))));
        }

        CacheTarget::replicated(self.cached.iter().copied(), self.config.replication)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rrs_core::engine::run_policy;

    fn c(i: u32) -> ColorId {
        ColorId(i)
    }

    #[test]
    fn rejects_bad_geometry() {
        let t = ColorTable::from_delay_bounds(&[4]);
        assert!(DlruEdf::new(&t, 6, 1).is_err());
        assert!(DlruEdf::new(&t, 0, 1).is_err());
        assert!(DlruEdf::new(&t, 8, 1).is_ok());
        let bad = DlruEdfConfig {
            lru_quarters: 2,
            edf_quarters: 2,
            replication: 2,
        };
        assert!(DlruEdf::with_config(&t, 8, 1, bad).is_err());
        let no_repl = DlruEdfConfig {
            lru_quarters: 2,
            edf_quarters: 2,
            replication: 1,
        };
        assert!(DlruEdf::with_config(&t, 8, 1, no_repl).is_ok());
    }

    #[test]
    fn serves_steady_eligible_traffic() {
        let trace = TraceBuilder::with_delay_bounds(&[4])
            .batched_jobs(0, 4, 0, 64)
            .build();
        let mut p = DlruEdf::new(trace.colors(), 4, 2).unwrap();
        let r = run_policy(&trace, &mut p, 4, 2).unwrap();
        assert_eq!(r.cost.drop, 0);
    }

    #[test]
    fn never_caches_sub_delta_colors() {
        let trace = TraceBuilder::with_delay_bounds(&[4]).jobs(0, 0, 3).build();
        let mut p = DlruEdf::new(trace.colors(), 4, 4).unwrap();
        let r = run_policy(&trace, &mut p, 4, 4).unwrap();
        assert_eq!(r.cost.reconfig, 0, "Lemma 3.1 behaviour");
        assert_eq!(r.cost.drop, 3);
        assert_eq!(p.state().ineligible_drop_cost(), 3);
    }

    #[test]
    fn edf_half_serves_backlog_while_lru_half_holds_recent() {
        // n=8: LRU set 2 colors, EDF set 2 colors, capacity 4 distinct.
        // Two chatty short colors keep recent timestamps; a long color with a
        // large backlog must still be served through the EDF half.
        let trace = TraceBuilder::with_delay_bounds(&[4, 4, 64])
            .batched_jobs(0, 4, 0, 64)
            .batched_jobs(1, 4, 0, 64)
            .jobs(0, 2, 64)
            .build();
        let mut p = DlruEdf::new(trace.colors(), 8, 2).unwrap();
        let r = run_policy(&trace, &mut p, 8, 2).unwrap();
        assert_eq!(
            r.drops_by_color[2], 0,
            "backlog color served via EDF half: {:?}",
            r.drops_by_color
        );
    }

    #[test]
    fn lru_colors_are_subset_of_cached() {
        let trace = TraceBuilder::with_delay_bounds(&[4, 8])
            .batched_jobs(0, 4, 0, 32)
            .batched_jobs(1, 8, 0, 32)
            .build();
        let mut p = DlruEdf::new(trace.colors(), 4, 2).unwrap();
        run_policy(&trace, &mut p, 4, 2).unwrap();
        let cached: BTreeSet<ColorId> = p.cached_colors().collect();
        for l in p.lru_colors() {
            assert!(cached.contains(&l));
        }
    }

    #[test]
    fn idle_recent_color_stays_in_lru_half() {
        // The anti-thrashing property: color 0 alternates between idle and
        // nonidle; with a recent timestamp it stays cached (LRU half ignores
        // idleness), so re-serving it costs no new reconfigurations.
        let trace = TraceBuilder::with_delay_bounds(&[4, 64])
            .batched_jobs(0, 4, 0, 33)
            .jobs(0, 1, 32)
            .build();
        let mut p = DlruEdf::new(trace.colors(), 8, 2).unwrap();
        let r = run_policy(&trace, &mut p, 8, 2).unwrap();
        // Color 0 reconfigured at most a couple of times despite 9 bursts.
        // Total recolorings bounded well below one per burst.
        assert!(
            r.reconfig_events <= 8,
            "no per-burst thrashing: {} recolorings",
            r.reconfig_events
        );
        assert_eq!(r.drops_by_color[0], 0);
    }

    #[test]
    fn eviction_prefers_low_ranked_non_lru_colors() {
        // Fill the cache beyond capacity and check the LRU set survives.
        // n=4: LRU quota 1, EDF quota 1, capacity 2.
        let trace = TraceBuilder::with_delay_bounds(&[4, 4, 4])
            .batched_jobs(0, 4, 0, 32)
            .batched_jobs(1, 4, 0, 32)
            .batched_jobs(2, 4, 0, 32)
            .build();
        let mut p = DlruEdf::new(trace.colors(), 4, 2).unwrap();
        run_policy(&trace, &mut p, 4, 2).unwrap();
        assert!(p.cached_colors().count() <= 2);
        let cached: BTreeSet<ColorId> = p.cached_colors().collect();
        for l in p.lru_colors() {
            assert!(cached.contains(&l), "LRU colors never evicted while in set");
        }
        let _ = c(0);
    }
}
