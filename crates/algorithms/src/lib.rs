//! # rrs-algorithms — online scheduling policies from the paper
//!
//! Implements every algorithm of *Reconfigurable Resource Scheduling with
//! Variable Delay Bounds*:
//!
//! * [`DlruEdf`] — the paper's core contribution (§3.1.3): a combination of the
//!   ΔLRU and EDF principles that is resource competitive for rate-limited
//!   batched arrivals (Theorem 1);
//! * [`Dlru`] (§3.1.1) and [`Edf`] (§3.1.2) — the two building blocks, each of
//!   which is *not* resource competitive on its own (Appendices A and B);
//! * [`par_edf`] and [`Edf::seq_edf`] — the analysis companions Par-EDF,
//!   Seq-EDF and (via a double-speed engine) DS-Seq-EDF (§3.3);
//! * [`baselines`] — static/greedy comparators bracketing the design space.
//!
//! All batched policies share the per-color state machine in [`state`]
//! (counters, counter wrapping events, eligibility, timestamps) and the ranking
//! scheme in [`ranking`], and instrument the quantities used by the paper's
//! analysis: epochs, super-epochs, timestamp update events, and the
//! eligible/ineligible drop split.
//!
//! The live policies select from incrementally-maintained rank indices
//! ([`ranking::RankIndex`], [`ranking::RecencyIndex`],
//! [`ranking::PendingCountIndex`]); [`reference`] retains the original
//! rebuild-and-sort implementations as frozen oracles for differential tests
//! and the throughput benchmark.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod adaptive;
pub mod background;
pub mod baselines;
pub mod dlru;
pub mod dlru_edf;
pub mod dlru_k;
pub mod edf;
pub mod par_edf;
pub mod ranking;
pub mod reference;
pub mod state;

pub use adaptive::AdaptiveDlruEdf;
pub use background::{EagerBackground, PatientBackground};
pub use baselines::{GreedyPending, NeverReconfigure, StaticPartition};
pub use dlru_k::DlruK;
pub use dlru::Dlru;
pub use dlru_edf::{DlruEdf, DlruEdfConfig};
pub use edf::Edf;
pub use par_edf::{is_nice, par_edf, ParEdfResult};
pub use state::{BatchState, ColorState};

/// Convenience re-exports.
pub mod prelude {
    pub use crate::adaptive::AdaptiveDlruEdf;
    pub use crate::background::{EagerBackground, PatientBackground};
    pub use crate::baselines::{GreedyPending, NeverReconfigure, StaticPartition};
    pub use crate::dlru_k::DlruK;
    pub use crate::dlru::Dlru;
    pub use crate::dlru_edf::{DlruEdf, DlruEdfConfig};
    pub use crate::edf::Edf;
    pub use crate::par_edf::{is_nice, par_edf, ParEdfResult};
    pub use crate::state::BatchState;
}
