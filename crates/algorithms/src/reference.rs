//! Frozen pre-optimization implementations of the shared state machine and
//! every shipped policy, kept as **differential oracles**.
//!
//! The live implementations in [`crate::state`] and the policy modules took an
//! allocation-free rewrite: delay-bound groups instead of all-color scans in
//! the phase hooks, and incremental [`crate::ranking`] indexes instead of
//! per-mini-round rebuild-and-sort in the reconfiguration schemes. This module
//! preserves the original straight-line logic — full scans, fresh sorts —
//! exactly as it stood before that rewrite.
//!
//! Two consumers:
//!
//! * the differential test suite (`tests/differential.rs`) pins every
//!   optimized policy to its reference twin **bit-identically** (equal
//!   [`RunResult`]s and equal recorded [`rrs_core::ExplicitSchedule`]s) over
//!   randomized traces;
//! * the engine throughput benchmark (`rrs-cli bench-engine`, `rrs-bench`)
//!   uses the pair as before/after sides of the tracked baseline.
//!
//! These types are deliberately *not* re-exported from the crate prelude; use
//! them only for verification and benchmarking.

use crate::dlru_edf::DlruEdfConfig;
use crate::ranking::colors_by_pending;
use rrs_core::prelude::*;
use std::collections::{BTreeMap, BTreeSet, VecDeque};

/// The pre-optimization [`crate::BatchState`]: identical bookkeeping, but the
/// drop and arrival phases scan every color of the table each round.
#[derive(Debug, Clone)]
pub struct RefBatchState {
    /// Reconfiguration cost Δ.
    pub delta: u64,
    colors: Vec<RefColorState>,
}

/// Per-color state of [`RefBatchState`] (the fields the policies read).
#[derive(Debug, Clone)]
pub struct RefColorState {
    /// Delay bound `D_ℓ`.
    pub delay_bound: u64,
    /// The counter `ℓ.cnt`.
    pub cnt: u64,
    /// The deadline `ℓ.dd`.
    pub deadline: Round,
    /// Eligibility flag.
    pub eligible: bool,
    /// Round of the most recent counter wrapping event, if any.
    pub last_wrap: Option<Round>,
    /// Current timestamp per the §3.1.1 definition.
    pub timestamp: Round,
}

impl RefBatchState {
    /// Creates state for all colors in `table`.
    pub fn new(table: &ColorTable, delta: u64) -> Self {
        assert!(delta > 0, "Δ must be positive");
        RefBatchState {
            delta,
            colors: table
                .iter()
                .map(|(_, info)| RefColorState {
                    delay_bound: info.delay_bound,
                    cnt: 0,
                    deadline: 0,
                    eligible: false,
                    last_wrap: None,
                    timestamp: 0,
                })
                .collect(),
        }
    }

    /// Per-color state of `color`.
    pub fn color(&self, color: ColorId) -> &RefColorState {
        &self.colors[color.index()]
    }

    /// Ids of all currently eligible colors, ascending.
    pub fn eligible_colors(&self) -> Vec<ColorId> {
        self.colors
            .iter()
            .enumerate()
            .filter(|(_, s)| s.eligible)
            .map(|(i, _)| ColorId(i as u32))
            .collect()
    }

    /// The original all-color drop phase.
    pub fn drop_phase(&mut self, round: Round, cached: &dyn Fn(ColorId) -> bool) {
        for (i, s) in self.colors.iter_mut().enumerate() {
            if round.is_multiple_of(s.delay_bound) && s.eligible && !cached(ColorId(i as u32)) {
                s.eligible = false;
                s.cnt = 0;
            }
        }
    }

    /// The original all-color arrival phase with the interleaved sparse
    /// arrival cursor.
    pub fn arrival_phase(&mut self, round: Round, arrivals: &[(ColorId, u64)]) {
        let mut arr_iter = arrivals.iter().peekable();
        for (i, s) in self.colors.iter_mut().enumerate() {
            let id = ColorId(i as u32);
            let mut count = 0;
            while let Some(&&(c, k)) = arr_iter.peek() {
                if c < id {
                    arr_iter.next();
                } else {
                    if c == id {
                        count = k;
                    }
                    break;
                }
            }
            if !round.is_multiple_of(s.delay_bound) {
                if count > 0 {
                    s.cnt += count;
                    if s.cnt >= self.delta {
                        s.cnt %= self.delta;
                        s.last_wrap = Some(round);
                        s.eligible = true;
                    }
                }
                continue;
            }
            if let Some(w) = s.last_wrap {
                if w < round && s.timestamp != w {
                    s.timestamp = w;
                }
            }
            s.deadline = round + s.delay_bound;
            s.cnt += count;
            if s.cnt >= self.delta {
                s.cnt %= self.delta;
                s.last_wrap = Some(round);
                s.eligible = true;
            }
        }
    }
}

/// The original EDF rank key computation (identical to
/// [`crate::ranking::rank_key`], over the frozen state).
fn ref_rank_key(
    state: &RefBatchState,
    pending: &PendingJobs,
    color: ColorId,
) -> (bool, Round, u64, ColorId) {
    let s = state.color(color);
    (pending.is_idle(color), s.deadline, s.delay_bound, color)
}

/// Pre-optimization ΔLRU: full recency re-sort every mini-round.
#[derive(Debug, Clone)]
pub struct RefDlru {
    state: RefBatchState,
    cached: BTreeSet<ColorId>,
    n: usize,
    replication: u32,
}

impl RefDlru {
    /// Creates the reference ΔLRU (see [`crate::Dlru::with_replication`]).
    pub fn new(table: &ColorTable, n: usize, delta: u64, replication: u32) -> Result<Self> {
        if n == 0 || replication == 0 || !n.is_multiple_of(replication as usize) {
            return Err(Error::InvalidParameter(format!(
                "ΔLRU needs n divisible by the replication factor; got n={n}, r={replication}"
            )));
        }
        Ok(RefDlru {
            state: RefBatchState::new(table, delta),
            cached: BTreeSet::new(),
            n,
            replication,
        })
    }
}

impl Policy for RefDlru {
    fn name(&self) -> String {
        format!("ΔLRU(r={})", self.replication)
    }

    fn on_drop_phase(&mut self, round: Round, _dropped: &[(ColorId, u64)], _view: &EngineView) {
        let cached = &self.cached;
        self.state.drop_phase(round, &|c| cached.contains(&c));
    }

    fn on_arrival_phase(&mut self, round: Round, arrivals: &[(ColorId, u64)], _view: &EngineView) {
        self.state.arrival_phase(round, arrivals);
    }

    fn reconfigure(&mut self, _round: Round, _mini: u32, _view: &EngineView) -> CacheTarget {
        let mut eligible = self.state.eligible_colors();
        eligible.sort_by_key(|&c| {
            (
                std::cmp::Reverse(self.state.color(c).timestamp),
                !self.cached.contains(&c),
                c,
            )
        });
        eligible.truncate(self.n / self.replication as usize);
        self.cached = eligible.into_iter().collect();
        CacheTarget::replicated(self.cached.iter().copied(), self.replication)
    }
}

/// Pre-optimization ΔLRU-K: all-color history fold plus full re-sort.
#[derive(Debug, Clone)]
pub struct RefDlruK {
    state: RefBatchState,
    cached: BTreeSet<ColorId>,
    history: Vec<VecDeque<Round>>,
    folded: Vec<Option<Round>>,
    n: usize,
    k: usize,
}

impl RefDlruK {
    /// Creates the reference ΔLRU-K (see [`crate::DlruK::new`]).
    pub fn new(table: &ColorTable, n: usize, delta: u64, k: usize) -> Result<Self> {
        if n == 0 || !n.is_multiple_of(2) {
            return Err(Error::InvalidParameter(format!(
                "ΔLRU-K needs even positive n; got {n}"
            )));
        }
        if k == 0 {
            return Err(Error::InvalidParameter("K must be at least 1".into()));
        }
        Ok(RefDlruK {
            state: RefBatchState::new(table, delta),
            cached: BTreeSet::new(),
            history: vec![VecDeque::new(); table.len()],
            folded: vec![None; table.len()],
            n,
            k,
        })
    }

    fn kth_timestamp(&self, color: ColorId) -> Round {
        let h = &self.history[color.index()];
        if h.len() < self.k {
            0
        } else {
            h[self.k - 1]
        }
    }
}

impl Policy for RefDlruK {
    fn name(&self) -> String {
        format!("ΔLRU-{}", self.k)
    }

    fn on_drop_phase(&mut self, round: Round, _dropped: &[(ColorId, u64)], _view: &EngineView) {
        let cached = &self.cached;
        self.state.drop_phase(round, &|c| cached.contains(&c));
    }

    fn on_arrival_phase(&mut self, round: Round, arrivals: &[(ColorId, u64)], _view: &EngineView) {
        self.state.arrival_phase(round, arrivals);
        for i in 0..self.history.len() {
            let c = ColorId(i as u32);
            let ts = self.state.color(c).timestamp;
            if ts > 0 && self.folded[i] != Some(ts) {
                self.folded[i] = Some(ts);
                self.history[i].push_front(ts);
                self.history[i].truncate(self.k);
            }
        }
    }

    fn reconfigure(&mut self, _round: Round, _mini: u32, _view: &EngineView) -> CacheTarget {
        let mut eligible = self.state.eligible_colors();
        eligible.sort_by_key(|&c| {
            (
                std::cmp::Reverse(self.kth_timestamp(c)),
                !self.cached.contains(&c),
                c,
            )
        });
        eligible.truncate(self.n / 2);
        self.cached = eligible.into_iter().collect();
        CacheTarget::replicated(self.cached.iter().copied(), 2)
    }
}

/// Pre-optimization EDF: full rank re-sort every mini-round.
#[derive(Debug, Clone)]
pub struct RefEdf {
    state: RefBatchState,
    cached: BTreeSet<ColorId>,
    n: usize,
    replication: u32,
}

impl RefEdf {
    /// Creates the reference EDF (see [`crate::Edf::with_replication`]).
    pub fn new(table: &ColorTable, n: usize, delta: u64, replication: u32) -> Result<Self> {
        if n == 0 || replication == 0 || !n.is_multiple_of(replication as usize) {
            return Err(Error::InvalidParameter(format!(
                "EDF needs n divisible by the replication factor; got n={n}, r={replication}"
            )));
        }
        Ok(RefEdf {
            state: RefBatchState::new(table, delta),
            cached: BTreeSet::new(),
            n,
            replication,
        })
    }
}

impl Policy for RefEdf {
    fn name(&self) -> String {
        if self.replication == 1 {
            "Seq-EDF".to_string()
        } else {
            format!("EDF(r={})", self.replication)
        }
    }

    fn on_drop_phase(&mut self, round: Round, _dropped: &[(ColorId, u64)], _view: &EngineView) {
        let cached = &self.cached;
        self.state.drop_phase(round, &|c| cached.contains(&c));
    }

    fn on_arrival_phase(&mut self, round: Round, arrivals: &[(ColorId, u64)], _view: &EngineView) {
        self.state.arrival_phase(round, arrivals);
    }

    fn reconfigure(&mut self, _round: Round, _mini: u32, view: &EngineView) -> CacheTarget {
        let mut eligible = self.state.eligible_colors();
        eligible.sort_by_key(|&c| ref_rank_key(&self.state, view.pending, c));
        let quota = self.n / self.replication as usize;
        for &c in eligible.iter().take(quota) {
            if !view.pending.is_idle(c) {
                self.cached.insert(c);
            }
        }
        while self.cached.len() > quota {
            let worst = eligible
                .iter()
                .rev()
                .find(|c| self.cached.contains(c))
                .copied()
                .expect("cached colors are always eligible");
            self.cached.remove(&worst);
        }
        CacheTarget::replicated(self.cached.iter().copied(), self.replication)
    }
}

/// Pre-optimization ΔLRU-EDF: two full re-sorts every mini-round.
#[derive(Debug, Clone)]
pub struct RefDlruEdf {
    state: RefBatchState,
    cached: BTreeSet<ColorId>,
    lru_set: BTreeSet<ColorId>,
    n: usize,
    config: DlruEdfConfig,
}

impl RefDlruEdf {
    /// Creates the reference ΔLRU-EDF (see [`crate::DlruEdf::with_config`]).
    pub fn new(table: &ColorTable, n: usize, delta: u64, config: DlruEdfConfig) -> Result<Self> {
        if n == 0 || !n.is_multiple_of(4) {
            return Err(Error::InvalidParameter(format!(
                "ΔLRU-EDF needs n to be a positive multiple of 4; got n={n}"
            )));
        }
        Ok(RefDlruEdf {
            state: RefBatchState::new(table, delta),
            cached: BTreeSet::new(),
            lru_set: BTreeSet::new(),
            n,
            config,
        })
    }
}

impl Policy for RefDlruEdf {
    fn name(&self) -> String {
        let d = DlruEdfConfig::default();
        if self.config.lru_quarters == d.lru_quarters
            && self.config.edf_quarters == d.edf_quarters
            && self.config.replication == d.replication
        {
            "ΔLRU-EDF".to_string()
        } else {
            format!(
                "ΔLRU-EDF(lru={}/4,edf={}/4,r={})",
                self.config.lru_quarters, self.config.edf_quarters, self.config.replication
            )
        }
    }

    fn on_drop_phase(&mut self, round: Round, _dropped: &[(ColorId, u64)], _view: &EngineView) {
        let cached = &self.cached;
        self.state.drop_phase(round, &|c| cached.contains(&c));
    }

    fn on_arrival_phase(&mut self, round: Round, arrivals: &[(ColorId, u64)], _view: &EngineView) {
        self.state.arrival_phase(round, arrivals);
    }

    fn reconfigure(&mut self, _round: Round, _mini: u32, view: &EngineView) -> CacheTarget {
        let eligible = self.state.eligible_colors();

        let mut by_ts = eligible.clone();
        by_ts.sort_by_key(|&c| {
            (
                std::cmp::Reverse(self.state.color(c).timestamp),
                !self.cached.contains(&c),
                c,
            )
        });
        by_ts.truncate(self.n / 4 * self.config.lru_quarters as usize);
        self.lru_set = by_ts.into_iter().collect();
        for &c in &self.lru_set {
            self.cached.insert(c);
        }

        let mut non_lru: Vec<ColorId> = eligible
            .iter()
            .copied()
            .filter(|c| !self.lru_set.contains(c))
            .collect();
        non_lru.sort_by_key(|&c| ref_rank_key(&self.state, view.pending, c));
        for &c in non_lru.iter().take(self.n / 4 * self.config.edf_quarters as usize) {
            if !view.pending.is_idle(c) {
                self.cached.insert(c);
            }
        }

        while self.cached.len() > self.n / self.config.replication as usize {
            let worst = non_lru
                .iter()
                .rev()
                .find(|c| self.cached.contains(c))
                .copied()
                .expect("over capacity implies a cached non-LRU color exists");
            self.cached.remove(&worst);
        }

        CacheTarget::replicated(self.cached.iter().copied(), self.config.replication)
    }
}

/// Pre-optimization adaptive ΔLRU-EDF.
#[derive(Debug, Clone)]
pub struct RefAdaptiveDlruEdf {
    state: RefBatchState,
    cached: BTreeSet<ColorId>,
    lru_set: BTreeSet<ColorId>,
    n: usize,
    lru_quota: usize,
    evicted_at: BTreeMap<ColorId, Round>,
    window: Round,
}

impl RefAdaptiveDlruEdf {
    /// Creates the reference adaptive policy (see
    /// [`crate::AdaptiveDlruEdf::new`]).
    pub fn new(table: &ColorTable, n: usize, delta: u64) -> Result<Self> {
        if n == 0 || !n.is_multiple_of(4) {
            return Err(Error::InvalidParameter(format!(
                "adaptive ΔLRU-EDF needs n to be a positive multiple of 4; got {n}"
            )));
        }
        Ok(RefAdaptiveDlruEdf {
            state: RefBatchState::new(table, delta),
            cached: BTreeSet::new(),
            lru_set: BTreeSet::new(),
            n,
            lru_quota: n / 4,
            evicted_at: BTreeMap::new(),
            window: table.max_delay_bound().max(4),
        })
    }

    fn capacity(&self) -> usize {
        self.n / 2
    }
}

impl Policy for RefAdaptiveDlruEdf {
    fn name(&self) -> String {
        "Adaptive-ΔLRU-EDF".into()
    }

    fn on_drop_phase(&mut self, round: Round, dropped: &[(ColorId, u64)], _view: &EngineView) {
        for &(c, _) in dropped {
            if self.state.color(c).eligible && !self.cached.contains(&c) && self.lru_quota > 1 {
                self.lru_quota -= 1;
            }
        }
        let cached = &self.cached;
        self.state.drop_phase(round, &|c| cached.contains(&c));
    }

    fn on_arrival_phase(&mut self, round: Round, arrivals: &[(ColorId, u64)], _view: &EngineView) {
        self.state.arrival_phase(round, arrivals);
    }

    fn reconfigure(&mut self, round: Round, _mini: u32, view: &EngineView) -> CacheTarget {
        let eligible = self.state.eligible_colors();
        let capacity = self.capacity();
        let lru_quota = self.lru_quota.min(capacity - 1).max(1);

        let mut by_ts = eligible.clone();
        by_ts.sort_by_key(|&c| {
            (
                std::cmp::Reverse(self.state.color(c).timestamp),
                !self.cached.contains(&c),
                c,
            )
        });
        by_ts.truncate(lru_quota);
        self.lru_set = by_ts.into_iter().collect();
        for &c in &self.lru_set {
            if self.cached.insert(c) {
                if let Some(&t) = self.evicted_at.get(&c) {
                    if round.saturating_sub(t) <= self.window && self.lru_quota < capacity - 1 {
                        self.lru_quota += 1;
                    }
                }
            }
        }

        let edf_quota = capacity - lru_quota;
        let mut non_lru: Vec<ColorId> = eligible
            .iter()
            .copied()
            .filter(|c| !self.lru_set.contains(c))
            .collect();
        non_lru.sort_by_key(|&c| ref_rank_key(&self.state, view.pending, c));
        for &c in non_lru.iter().take(edf_quota) {
            if !view.pending.is_idle(c) && self.cached.insert(c) {
                if let Some(&t) = self.evicted_at.get(&c) {
                    if round.saturating_sub(t) <= self.window && self.lru_quota < capacity - 1 {
                        self.lru_quota += 1;
                    }
                }
            }
        }

        while self.cached.len() > capacity {
            let worst = non_lru
                .iter()
                .rev()
                .find(|c| self.cached.contains(c))
                .copied()
                .expect("over capacity implies a cached non-LRU color");
            self.cached.remove(&worst);
            self.evicted_at.insert(worst, round);
        }

        CacheTarget::replicated(self.cached.iter().copied(), 2)
    }
}

/// Pre-optimization greedy baseline: re-collect and re-sort the nonidle colors
/// every round.
#[derive(Debug, Clone, Default)]
pub struct RefGreedyPending;

impl Policy for RefGreedyPending {
    fn name(&self) -> String {
        "GreedyPending".into()
    }

    fn reconfigure(&mut self, _round: Round, _mini: u32, view: &EngineView) -> CacheTarget {
        let mut colors = colors_by_pending(view.pending);
        colors.truncate(view.n);
        let mut target = CacheTarget::empty();
        if colors.is_empty() {
            return target;
        }
        let mut remaining: Vec<(ColorId, u64)> =
            colors.iter().map(|&c| (c, view.pending.count(c))).collect();
        let mut slots = view.n;
        while slots > 0 {
            let mut progressed = false;
            for (c, left) in remaining.iter_mut() {
                if slots == 0 {
                    break;
                }
                if *left > 0 {
                    target.add(*c, 1);
                    *left -= 1;
                    slots -= 1;
                    progressed = true;
                }
            }
            if !progressed {
                break;
            }
        }
        target
    }
}
