//! The EDF reconfiguration scheme (paper §3.1.2) and Seq-EDF (§3.3).
//!
//! EDF ranks the eligible colors — nonidle first, then earliest deadline,
//! breaking ties by delay bound and color order — and caches every nonidle
//! eligible color ranked in the top `n/2`, evicting the lowest-ranked cached
//! color when full.
//!
//! EDF is **not** resource competitive (paper Appendix B): alternating idleness
//! of a short-delay color makes EDF repeatedly evict and re-cache long-delay
//! colors, thrashing on reconfigurations. The Appendix B adversary in
//! `rrs-workloads` exhibits this.
//!
//! [`Edf::seq_edf`] builds the analysis variant Seq-EDF (paper §3.3): identical
//! ranking but no replication, all locations caching distinct colors. Running it
//! on a double-speed engine gives DS-Seq-EDF.

use crate::ranking::{rank_key, GroupRankIndex};
use crate::state::BatchState;
use rrs_core::prelude::*;
use std::collections::BTreeSet;

/// The EDF policy family (EDF and Seq-EDF).
#[derive(Debug, Clone)]
pub struct Edf {
    state: BatchState,
    cached: BTreeSet<ColorId>,
    /// Eligible colors in EDF rank order. Deadlines are uniform per
    /// delay-bound group in the batched setting, so the group index tracks
    /// only eligibility/idleness changes and derives deadlines analytically —
    /// the at-multiple deadline refreshes that dominated the flat
    /// [`crate::ranking::RankIndex`]'s maintenance cost nothing here.
    rank: GroupRankIndex,
    n: usize,
    replication: u32,
}

impl Edf {
    /// Creates the paper's EDF: `n/2` distinct colors, each cached twice.
    pub fn new(table: &ColorTable, n: usize, delta: u64) -> Result<Self> {
        Self::with_replication(table, n, delta, 2)
    }

    /// Creates Seq-EDF (paper §3.3): all `m` locations cache distinct colors.
    /// Run on a double-speed engine to obtain DS-Seq-EDF.
    pub fn seq_edf(table: &ColorTable, m: usize, delta: u64) -> Result<Self> {
        Self::with_replication(table, m, delta, 1)
    }

    /// Creates EDF with a custom replication factor.
    pub fn with_replication(
        table: &ColorTable,
        n: usize,
        delta: u64,
        replication: u32,
    ) -> Result<Self> {
        if n == 0 || replication == 0 || !n.is_multiple_of(replication as usize) {
            return Err(Error::InvalidParameter(format!(
                "EDF needs n divisible by the replication factor; got n={n}, r={replication}"
            )));
        }
        Ok(Edf {
            state: BatchState::new(table, delta),
            cached: BTreeSet::new(),
            rank: GroupRankIndex::new(table),
            n,
            replication,
        })
    }

    fn quota(&self) -> usize {
        self.n / self.replication as usize
    }

    /// Instrumented per-color state.
    pub fn state(&self) -> &BatchState {
        &self.state
    }

    /// Mutable access to the instrumented state (to enable super-epoch
    /// tracking before a run).
    pub fn state_mut(&mut self) -> &mut BatchState {
        &mut self.state
    }

    /// Colors currently cached.
    pub fn cached_colors(&self) -> impl Iterator<Item = ColorId> + '_ {
        self.cached.iter().copied()
    }
}

impl Policy for Edf {
    fn name(&self) -> String {
        if self.replication == 1 {
            "Seq-EDF".to_string()
        } else {
            format!("EDF(r={})", self.replication)
        }
    }

    fn on_drop_phase(&mut self, round: Round, dropped: &[(ColorId, u64)], view: &EngineView) {
        let cached = &self.cached;
        self.state
            .drop_phase(round, dropped, &|c| cached.contains(&c));
        // Touched colors changed eligibility; dropped colors may have flipped
        // their idle bit without an eligibility change.
        let (state, rank) = (&self.state, &mut self.rank);
        rank.refresh_many(state, view.pending, state.touched().iter().copied());
        rank.refresh_many(state, view.pending, dropped.iter().map(|&(c, _)| c));
    }

    fn on_arrival_phase(&mut self, round: Round, arrivals: &[(ColorId, u64)], view: &EngineView) {
        self.state.arrival_phase(round, arrivals);
        // The phase's `touched()` delta is dominated by at-multiple colors
        // whose only change is the group-uniform deadline refresh, which the
        // index derives analytically. Only the arrival colors can change
        // eligibility (a counter wrap needs arrivals) or idleness here.
        let (state, rank) = (&self.state, &mut self.rank);
        rank.refresh_many(state, view.pending, arrivals.iter().map(|&(c, _)| c));
    }

    fn reconfigure(&mut self, round: Round, _mini: u32, view: &EngineView) -> CacheTarget {
        debug_assert_eq!(view.n, self.n, "engine and policy disagree on n");
        // Execution drains cached colors' queues without a policy hook, so
        // their rank (idle bit) may be stale: re-derive before selecting.
        self.rank
            .refresh_many(&self.state, view.pending, self.cached.iter().copied());
        self.rank.prepare(round);

        // Bring in every nonidle eligible color ranked in the top `quota` that
        // is not yet cached.
        let quota = self.quota();
        let (rank, cached) = (&self.rank, &mut self.cached);
        for c in rank.iter().take(quota) {
            if !view.pending.is_idle(c) {
                cached.insert(c);
            }
        }
        // Evict lowest-ranked cached colors while over capacity. Every cached
        // color is eligible (ineligibility only strikes uncached colors) with
        // an accurate stored deadline, so the worst cached color is simply the
        // maximum rank key over the (small) cached set — no reverse scan of
        // the whole index needed.
        while self.cached.len() > quota {
            let worst = self
                .cached
                .iter()
                .copied()
                .max_by_key(|&c| rank_key(&self.state, view.pending, c))
                .expect("cached set is non-empty while over quota");
            self.cached.remove(&worst);
        }
        CacheTarget::replicated(self.cached.iter().copied(), self.replication)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rrs_core::engine::run_policy;
    use rrs_core::{CostModel, Engine, EngineOptions, Speed};

    fn c(i: u32) -> ColorId {
        ColorId(i)
    }

    #[test]
    fn rejects_bad_geometry() {
        let t = ColorTable::from_delay_bounds(&[4]);
        assert!(Edf::new(&t, 3, 1).is_err());
        assert!(Edf::seq_edf(&t, 3, 1).is_ok(), "no replication: any m works");
    }

    #[test]
    fn serves_eligible_nonidle_color() {
        let trace = TraceBuilder::with_delay_bounds(&[4])
            .batched_jobs(0, 4, 0, 32)
            .build();
        let mut p = Edf::new(trace.colors(), 4, 2).unwrap();
        let r = run_policy(&trace, &mut p, 4, 2).unwrap();
        assert_eq!(r.cost.drop, 0, "Δ=2 wraps on the first batch of 4");
    }

    #[test]
    fn prefers_earlier_deadlines() {
        // One slot (n=2, replication 2). Color 0 (D=4) and color 1 (D=8) both
        // eligible and nonidle; EDF must serve the earlier-deadline color 0.
        let trace = TraceBuilder::with_delay_bounds(&[4, 8])
            .batched_jobs(0, 2, 0, 8)
            .jobs(0, 1, 2)
            .build();
        let mut p = Edf::new(trace.colors(), 2, 1).unwrap();
        let r = run_policy(&trace, &mut p, 2, 1).unwrap();
        assert_eq!(r.drops_by_color[0], 0, "short-deadline color fully served");
    }

    #[test]
    fn idle_colors_are_evicted_under_pressure() {
        // Capacity one slot. Color 0 becomes idle after its batch is served;
        // color 1 (longer deadline) must then get the slot.
        let trace = TraceBuilder::with_delay_bounds(&[4, 16])
            .jobs(0, 0, 2)
            .jobs(0, 1, 8)
            .build();
        let mut p = Edf::new(trace.colors(), 2, 1).unwrap();
        let r = run_policy(&trace, &mut p, 2, 1).unwrap();
        // Color 0: 2 jobs in rounds 0-1 (2 copies -> both at round 0).
        // Color 1: 8 jobs, 16-round window, 2 copies: all served after round 0.
        assert_eq!(r.cost.drop, 0, "drops: {:?}", r.drops_by_color);
        let cached: Vec<ColorId> = p.cached_colors().collect();
        assert_eq!(cached, vec![c(1)]);
    }

    #[test]
    fn seq_edf_uses_distinct_colors() {
        let trace = TraceBuilder::with_delay_bounds(&[4, 4])
            .jobs(0, 0, 1)
            .jobs(0, 1, 1)
            .build();
        let mut p = Edf::seq_edf(trace.colors(), 2, 1).unwrap();
        let r = run_policy(&trace, &mut p, 2, 1).unwrap();
        assert_eq!(r.cost.drop, 0);
        assert_eq!(p.cached_colors().count(), 2);
    }

    #[test]
    fn double_speed_seq_edf_executes_twice_per_round() {
        // 8 jobs, D=4, one resource: uni-speed Seq-EDF can do 4, DS-Seq-EDF 8.
        let trace = TraceBuilder::with_delay_bounds(&[4]).jobs(0, 0, 8).build();
        let mut uni = Edf::seq_edf(trace.colors(), 1, 1).unwrap();
        let r_uni = run_policy(&trace, &mut uni, 1, 1).unwrap();
        assert_eq!(r_uni.cost.drop, 4);

        let mut ds = Edf::seq_edf(trace.colors(), 1, 1).unwrap();
        let engine = Engine::with_options(EngineOptions {
            speed: Speed::Double,
            record_schedule: false,
            track_latency: false,
            track_perf: false,
        });
        let r_ds = engine.run(&trace, &mut ds, 1, CostModel::new(1)).unwrap();
        assert_eq!(r_ds.cost.drop, 0);
    }
}
