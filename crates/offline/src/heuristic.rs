//! A hindsight greedy heuristic: an OPT *upper-bound* proxy for instances too
//! large for the exact DP.
//!
//! Any feasible schedule's cost upper-bounds OPT, so on large instances we
//! report competitive ratios against both `max(lower bounds)` (sound, possibly
//! loose) and this heuristic (a concrete schedule a reasonable offline planner
//! would produce). The heuristic knows the full trace (it is offline) and
//! plans with a lookahead window:
//!
//! * a color's *claim* is the work it can usefully consume within the window —
//!   `min(pending + upcoming arrivals, window length)`;
//! * slots are assigned to the colors with the largest claims, but an occupied
//!   slot is handed over only when the newcomer's claim exceeds the
//!   incumbent's claim by more than Δ (the reconfiguration must pay for
//!   itself in avoided drops).

use rrs_core::prelude::*;
use std::collections::BTreeMap;

/// The hindsight greedy policy. Implemented as an engine [`Policy`] that owns
/// a copy of the trace (offline knowledge).
#[derive(Debug, Clone)]
pub struct HindsightGreedy {
    trace: Trace,
    /// Lookahead window in rounds.
    lookahead: u64,
    /// Current slot assignment (multiset of colors, ≤ n entries).
    slots: Vec<ColorId>,
}

impl HindsightGreedy {
    /// Creates the heuristic with a copy of the trace it will be run on and a
    /// lookahead window (a few times the median delay bound works well).
    pub fn new(trace: Trace, lookahead: u64) -> Self {
        HindsightGreedy {
            trace,
            lookahead: lookahead.max(1),
            slots: Vec::new(),
        }
    }

    /// Claim of `color` at `round`: executable work in the lookahead window.
    fn claim(&self, view: &EngineView, round: Round, color: ColorId) -> u64 {
        let pending = view.pending.count(color);
        let mut upcoming = 0u64;
        for r in round + 1..round + self.lookahead {
            for (c, k) in self.trace.arrivals_at(r) {
                if c == color {
                    upcoming += k;
                }
            }
        }
        (pending + upcoming).min(self.lookahead)
    }
}

impl Policy for HindsightGreedy {
    fn name(&self) -> String {
        format!("HindsightGreedy(w={})", self.lookahead)
    }

    fn reconfigure(&mut self, round: Round, _mini: u32, view: &EngineView) -> CacheTarget {
        // Claims of all colors with any work in the window.
        let mut claims: BTreeMap<ColorId, u64> = BTreeMap::new();
        for c in view.colors.ids() {
            let cl = self.claim(view, round, c);
            if cl > 0 {
                claims.insert(c, cl);
            }
        }
        // Grow to n slots while unclaimed work exists.
        while self.slots.len() < view.n {
            // Pick the color with the largest residual claim (claim minus
            // slots already assigned to it).
            let best = claims
                .iter()
                .map(|(&c, &cl)| {
                    let assigned = self.slots.iter().filter(|&&s| s == c).count() as u64;
                    (cl.saturating_sub(assigned * self.lookahead), c)
                })
                .max_by_key(|&(residual, c)| (residual, std::cmp::Reverse(c)))
                .filter(|&(residual, _)| residual > 0);
            match best {
                Some((_, c)) => self.slots.push(c),
                None => break,
            }
        }
        // Handover: replace the weakest incumbent with the strongest outsider
        // when the gain clears Δ.
        while let Some((weak_idx, weak_claim)) = self
            .slots
            .iter()
            .enumerate()
            .map(|(i, &c)| (i, claims.get(&c).copied().unwrap_or(0)))
            .min_by_key(|&(_, cl)| cl)
        {
            let outsider = claims
                .iter()
                .filter(|(c, _)| !self.slots.contains(c))
                .max_by_key(|(&c, &cl)| (cl, std::cmp::Reverse(c)))
                .map(|(&c, &cl)| (c, cl));
            match outsider {
                Some((c, cl)) if cl > weak_claim + view.delta => {
                    self.slots[weak_idx] = c;
                }
                _ => break,
            }
        }
        let mut target = CacheTarget::empty();
        for &c in &self.slots {
            target.add(c, 1);
        }
        target
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bounds::combined_bound;
    use rrs_core::engine::run_policy;

    #[test]
    fn serves_a_single_color_perfectly() {
        let trace = TraceBuilder::with_delay_bounds(&[8])
            .batched_jobs(0, 4, 0, 64)
            .build();
        let mut p = HindsightGreedy::new(trace.clone(), 16);
        let r = run_policy(&trace, &mut p, 1, 4).unwrap();
        assert_eq!(r.cost.drop, 0);
        assert_eq!(r.reconfig_events, 1);
    }

    #[test]
    fn lookahead_preconfigures_for_future_bursts() {
        // Nothing pending at rounds 0–3, burst at round 4. With lookahead the
        // slot is configured before the burst; cost stays Δ with no drops.
        let trace = TraceBuilder::with_delay_bounds(&[4]).jobs(4, 0, 4).build();
        let mut p = HindsightGreedy::new(trace.clone(), 8);
        let r = run_policy(&trace, &mut p, 1, 2).unwrap();
        assert_eq!(r.cost.drop, 0);
    }

    #[test]
    fn handover_requires_clearing_delta() {
        // Two colors alternate small bursts; with a huge Δ the heuristic
        // must not thrash between them.
        let mut b = TraceBuilder::with_delay_bounds(&[4, 4]);
        for i in 0..8 {
            b = b.jobs(i * 4, (i % 2) as u32, 2);
        }
        let trace = b.build();
        let mut p = HindsightGreedy::new(trace.clone(), 4);
        let r = run_policy(&trace, &mut p, 1, 100).unwrap();
        assert!(
            r.reconfig_events <= 2,
            "no thrashing under huge Δ: {} events",
            r.reconfig_events
        );
    }

    #[test]
    fn cost_is_above_the_lower_bound() {
        let trace = TraceBuilder::with_delay_bounds(&[4, 16])
            .batched_jobs(0, 3, 0, 64)
            .jobs(0, 1, 10)
            .build();
        let mut p = HindsightGreedy::new(trace.clone(), 16);
        let r = run_policy(&trace, &mut p, 2, 3).unwrap();
        assert!(r.cost.total() >= combined_bound(&trace, 2, 3));
    }
}
