//! # rrs-offline — offline optimum, lower bounds and hindsight heuristics
//!
//! Tools for estimating the optimal offline cost `OPT(σ, m)` that competitive
//! ratios are measured against:
//!
//! * [`opt::optimal`] — an exact dynamic program for small instances,
//!   producing a replayable optimal schedule;
//! * [`bounds`] — sound combinatorial lower bounds (per-color `min(Δ, jobs)`,
//!   Par-EDF drops, raw capacity) for instances beyond the DP's reach;
//! * [`heuristic::HindsightGreedy`] — a feasible offline schedule (upper-bound
//!   proxy) built with full-trace lookahead.
//!
//! The sandwich `lower bound ≤ OPT ≤ heuristic` brackets the denominator of
//! every reported ratio; experiment E9 uses the exact DP to remove the slack
//! on small instances.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bounds;
pub mod exhaustive;
pub mod heuristic;
pub mod improve;
pub mod opt;

pub use bounds::{capacity_bound, combined_bound, par_edf_drop_bound, per_color_bound};
pub use exhaustive::exhaustive_optimal;
pub use heuristic::HindsightGreedy;
pub use improve::{improve_schedule, ImproveResult};
pub use opt::{optimal, OptConfig, OptResult};

/// Convenience re-exports.
pub mod prelude {
    pub use crate::bounds::combined_bound;
    pub use crate::heuristic::HindsightGreedy;
    pub use crate::opt::{optimal, OptConfig, OptResult};
}
