//! A brute-force optimal-cost search, independent of the DP in [`crate::opt`].
//!
//! Plain depth-first enumeration over per-round cache configurations with no
//! memoization and no candidate filtering (every multiset over *all* colors is
//! tried, not just pending ones). Exponentially slower than the DP — usable
//! only for micro instances — but it shares no pruning logic with it, so
//! agreement between the two is strong evidence that the DP's reductions
//! (canonical execution, candidate filtering, memoization) are sound. The
//! differential tests in `tests/` and this module exercise exactly that.

use rrs_core::prelude::*;

/// Hard caps keeping the search finite.
const MAX_COLORS: usize = 4;
const MAX_M: usize = 3;
const MAX_HORIZON: u64 = 16;

type Pending = Vec<Vec<(Round, u64)>>;

fn total_pending(p: &Pending) -> u64 {
    p.iter().flat_map(|runs| runs.iter().map(|&(_, k)| k)).sum()
}

/// All multisets of exactly size ≤ m over colors `0..ncolors`, as sorted vecs.
fn all_configs(ncolors: usize, m: usize) -> Vec<Vec<u32>> {
    let mut out = vec![vec![]];
    fn rec(ncolors: u32, start: u32, left: usize, cur: &mut Vec<u32>, out: &mut Vec<Vec<u32>>) {
        if left == 0 {
            return;
        }
        for c in start..ncolors {
            cur.push(c);
            out.push(cur.clone());
            rec(ncolors, c, left - 1, cur, out);
            cur.pop();
        }
    }
    rec(ncolors as u32, 0, m, &mut Vec::new(), &mut out);
    out
}

fn gained(old: &[u32], new: &[u32]) -> u64 {
    let mut g = 0;
    let mut i = 0;
    for &c in new {
        while i < old.len() && old[i] < c {
            i += 1;
        }
        if i < old.len() && old[i] == c {
            i += 1;
        } else {
            g += 1;
        }
    }
    g
}

/// Immutable context threaded through the search.
struct Ctx<'a> {
    trace: &'a Trace,
    horizon: Round,
    configs: &'a [Vec<u32>],
    delta: u64,
    drop_costs: Vec<u64>,
}

fn search(
    ctx: &Ctx<'_>,
    round: Round,
    cache: &[u32],
    pending: &Pending,
    cost_so_far: u64,
    best: &mut u64,
) {
    let (trace, horizon, configs, delta) = (ctx.trace, ctx.horizon, ctx.configs, ctx.delta);
    if cost_so_far >= *best {
        return; // branch-and-bound on the running best
    }
    if round > horizon {
        *best = (*best).min(cost_so_far);
        return;
    }
    // Drop phase (weighted by per-color drop costs).
    let mut pending = pending.clone();
    let mut cost = cost_so_far;
    for (c, runs) in pending.iter_mut().enumerate() {
        let before: u64 = runs.iter().map(|&(_, k)| k).sum();
        runs.retain(|&(d, _)| d > round);
        let after: u64 = runs.iter().map(|&(_, k)| k).sum();
        cost += (before - after) * ctx.drop_costs[c];
    }
    if cost >= *best {
        return;
    }
    // Arrival phase.
    for (c, k) in trace.arrivals_at(round) {
        let d = round + trace.colors().delay_bound(c);
        pending[c.index()].push((d, k));
    }
    // Branch over every configuration.
    for config in configs {
        let mut cost2 = cost + gained(cache, config) * delta;
        if cost2 >= *best {
            continue;
        }
        let mut pending2 = pending.clone();
        for &c in config {
            let runs = &mut pending2[c as usize];
            if let Some(first) = runs.first_mut() {
                first.1 -= 1;
                if first.1 == 0 {
                    runs.remove(0);
                }
            }
        }
        // Admissible pruning: remaining cost is at least 0; additionally if no
        // jobs remain, the tail cost is 0 and we can close out immediately.
        if total_pending(&pending2) == 0 && trace.iter().all(|a| a.round <= round) {
            *best = (*best).min(cost2);
            continue;
        }
        let _ = &mut cost2;
        search(ctx, round + 1, config, &pending2, cost2, best);
    }
}

/// Computes the optimal cost by unpruned enumeration.
///
/// # Errors
/// Rejects instances beyond the hard caps (4 colors, m ≤ 3, horizon ≤ 16).
pub fn exhaustive_optimal(trace: &Trace, m: usize, delta: u64) -> Result<u64> {
    if m == 0 || m > MAX_M {
        return Err(Error::InvalidParameter(format!("need 1 <= m <= {MAX_M}")));
    }
    if trace.colors().len() > MAX_COLORS {
        return Err(Error::InvalidParameter(format!(
            "exhaustive search caps at {MAX_COLORS} colors"
        )));
    }
    if trace.horizon() > MAX_HORIZON {
        return Err(Error::InvalidParameter(format!(
            "exhaustive search caps at horizon {MAX_HORIZON}"
        )));
    }
    let configs = all_configs(trace.colors().len(), m);
    let ctx = Ctx {
        trace,
        horizon: trace.horizon(),
        configs: &configs,
        delta,
        drop_costs: trace.colors().ids().map(|c| trace.colors().drop_cost(c)).collect(),
    };
    let mut best = u64::MAX;
    search(&ctx, 0, &[], &vec![Vec::new(); trace.colors().len()], 0, &mut best);
    // Dropping everything is always feasible, at total weighted drop cost.
    let drop_all: u64 = trace
        .colors()
        .ids()
        .map(|c| trace.jobs_of_color(c) * trace.colors().drop_cost(c))
        .sum();
    Ok(best.min(drop_all))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::opt::{optimal, OptConfig};

    fn both(trace: &Trace, m: usize, delta: u64) -> (u64, u64) {
        let dp = optimal(trace, OptConfig::new(m, delta)).unwrap().cost;
        let bf = exhaustive_optimal(trace, m, delta).unwrap();
        (dp, bf)
    }

    #[test]
    fn agrees_on_hand_instances() {
        let t = TraceBuilder::with_delay_bounds(&[4]).jobs(0, 0, 2).build();
        assert_eq!(both(&t, 1, 5), (2, 2));
        assert_eq!(both(&t, 1, 1), (1, 1));
        let t = TraceBuilder::with_delay_bounds(&[4]).jobs(0, 0, 6).build();
        assert_eq!(both(&t, 1, 1), (3, 3));
        let t = TraceBuilder::with_delay_bounds(&[4, 4])
            .jobs(0, 0, 4)
            .jobs(8, 1, 4)
            .build();
        assert_eq!(both(&t, 1, 1), (2, 2));
    }

    #[test]
    fn agrees_on_seeded_random_micro_instances() {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        for seed in 0..25u64 {
            let mut rng = StdRng::seed_from_u64(seed);
            let bounds: Vec<u64> = (0..rng.gen_range(1..=3))
                .map(|_| 1u64 << rng.gen_range(0..3))
                .collect();
            let mut t = Trace::new(ColorTable::from_delay_bounds(&bounds));
            for _ in 0..rng.gen_range(1..6) {
                let c = rng.gen_range(0..bounds.len()) as u32;
                let r = rng.gen_range(0..8u64);
                let k = rng.gen_range(1..5u64);
                t.add(r, ColorId(c), k).unwrap();
            }
            let m = rng.gen_range(1..=2);
            let delta = rng.gen_range(1..4u64);
            let (dp, bf) = both(&t, m, delta);
            assert_eq!(dp, bf, "seed {seed}: DP {dp} != brute force {bf}");
        }
    }

    #[test]
    fn agrees_on_weighted_instances() {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        use rrs_core::color::ColorInfo;
        for seed in 100..115u64 {
            let mut rng = StdRng::seed_from_u64(seed);
            let mut table = ColorTable::new();
            for _ in 0..rng.gen_range(1..=3) {
                table.push(ColorInfo::with_drop_cost(
                    1u64 << rng.gen_range(0..3),
                    rng.gen_range(1..5),
                ));
            }
            let ncolors = table.len();
            let mut t = Trace::new(table);
            for _ in 0..rng.gen_range(1..5) {
                let c = rng.gen_range(0..ncolors) as u32;
                let r = rng.gen_range(0..8u64);
                let k = rng.gen_range(1..4u64);
                t.add(r, ColorId(c), k).unwrap();
            }
            let m = rng.gen_range(1..=2);
            let delta = rng.gen_range(1..5u64);
            let (dp, bf) = both(&t, m, delta);
            assert_eq!(dp, bf, "seed {seed}: weighted DP {dp} != brute force {bf}");
        }
    }

    #[test]
    fn rejects_oversized_instances() {
        let t = TraceBuilder::with_delay_bounds(&[2, 2, 2, 2, 2]).build();
        assert!(exhaustive_optimal(&t, 1, 1).is_err());
        let t = TraceBuilder::with_delay_bounds(&[32]).jobs(0, 0, 1).build();
        assert!(exhaustive_optimal(&t, 1, 1).is_err(), "horizon too long");
        let t = TraceBuilder::with_delay_bounds(&[2]).build();
        assert!(exhaustive_optimal(&t, 0, 1).is_err());
    }

    #[test]
    fn empty_trace_is_free() {
        let t = Trace::new(ColorTable::from_delay_bounds(&[2]));
        assert_eq!(exhaustive_optimal(&t, 1, 3).unwrap(), 0);
    }
}
