//! Local-search improvement of offline schedules.
//!
//! The hindsight greedy gives a feasible schedule (an OPT upper bound); this
//! module tightens it by hill-climbing over per-round configuration
//! sequences with four seeded move kinds:
//!
//! * **extend** — copy a round's configuration onto a neighbour (lengthening
//!   a configuration run, removing a reconfiguration);
//! * **retract** — replace a round's configuration with its predecessor's
//!   (merging boundaries);
//! * **swap** — recolor one slot over a short range to a color with pending
//!   work there;
//! * **drop-slot** — vacate one slot over a range (reconfigurations that
//!   never paid for themselves disappear).
//!
//! Executions are derived canonically (earliest-deadline per configured
//! slot), so a configuration sequence fully determines a feasible schedule —
//! the same reduction the exact DP uses, which makes every candidate
//! evaluable in `O(rounds · m)`. Moves that don't reduce cost are rejected;
//! the result's cost is therefore monotonically nonincreasing and remains a
//! sound OPT upper bound.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rrs_core::prelude::*;
use rrs_core::schedule::{ExplicitSchedule, ScheduleStep};

/// Configuration sequence: one sorted color multiset per round.
type Configs = Vec<Vec<u32>>;

fn gained(old: &[u32], new: &[u32]) -> u64 {
    let mut g = 0;
    let mut i = 0;
    for &c in new {
        while i < old.len() && old[i] < c {
            i += 1;
        }
        if i < old.len() && old[i] == c {
            i += 1;
        } else {
            g += 1;
        }
    }
    g
}

/// Evaluates a configuration sequence: replay drops/arrivals/executions.
fn evaluate(trace: &Trace, configs: &Configs, delta: u64) -> u64 {
    let colors = trace.colors();
    let ncolors = colors.len();
    let mut pending: Vec<Vec<(Round, u64)>> = vec![Vec::new(); ncolors];
    let mut cost = 0u64;
    let mut prev: &[u32] = &[];
    for (round, config) in configs.iter().enumerate() {
        let round = round as Round;
        for (c, runs) in pending.iter_mut().enumerate() {
            let before: u64 = runs.iter().map(|&(_, k)| k).sum();
            runs.retain(|&(d, _)| d > round);
            let after: u64 = runs.iter().map(|&(_, k)| k).sum();
            cost += (before - after) * colors.drop_cost(ColorId(c as u32));
        }
        for (c, k) in trace.arrivals_at(round) {
            let d = round + colors.delay_bound(c);
            let runs = &mut pending[c.index()];
            match runs.last_mut() {
                Some(last) if last.0 == d => last.1 += k,
                _ => runs.push((d, k)),
            }
        }
        cost += gained(prev, config) * delta;
        for &c in config {
            let runs = &mut pending[c as usize];
            if let Some(first) = runs.first_mut() {
                first.1 -= 1;
                if first.1 == 0 {
                    runs.remove(0);
                }
            }
        }
        prev = config;
    }
    cost
}

/// Result of a local-search run.
#[derive(Debug, Clone)]
pub struct ImproveResult {
    /// Final cost (≤ the initial schedule's cost).
    pub cost: u64,
    /// Initial cost, for reporting.
    pub initial_cost: u64,
    /// Accepted moves.
    pub accepted: u64,
    /// The improved schedule.
    pub schedule: ExplicitSchedule,
}

/// Improves `initial` (a uni-speed schedule for `trace` with `m` resources)
/// by `iterations` seeded local moves.
///
/// # Errors
/// Rejects double-speed inputs.
pub fn improve_schedule(
    trace: &Trace,
    initial: &ExplicitSchedule,
    delta: u64,
    iterations: u64,
    seed: u64,
) -> Result<ImproveResult> {
    if initial.speed != Speed::Uni {
        return Err(Error::InvalidParameter(
            "local search expects a uni-speed schedule".into(),
        ));
    }
    let m = initial.n;
    let rounds = (trace.horizon() + 1) as usize;
    let ncolors = trace.colors().len() as u32;
    // Materialize the config sequence (missing steps = empty config;
    // copy-on-change steps carry the last explicit content forward).
    let mut configs: Configs = vec![Vec::new(); rounds];
    let mut carry: Vec<u32> = Vec::new();
    for step in &initial.steps {
        let cfg = match &step.cache {
            Some(target) => {
                let mut cfg: Vec<u32> = target
                    .iter()
                    .flat_map(|(c, copies)| std::iter::repeat_n(c.0, copies as usize))
                    .collect();
                cfg.sort_unstable();
                cfg.truncate(m);
                carry = cfg.clone();
                cfg
            }
            None => carry.clone(),
        };
        configs[step.round as usize] = cfg;
    }
    let mut cost = evaluate(trace, &configs, delta);
    let initial_cost = cost;
    let mut rng = StdRng::seed_from_u64(seed);
    let mut accepted = 0;

    for _ in 0..iterations {
        if rounds == 0 || ncolors == 0 {
            break;
        }
        let r = rng.gen_range(0..rounds);
        let mut candidate = configs.clone();
        match rng.gen_range(0..4u8) {
            0 => {
                // Extend r's config onto a neighbour.
                let target = if rng.gen_bool(0.5) && r + 1 < rounds {
                    r + 1
                } else {
                    r.saturating_sub(1)
                };
                candidate[target] = candidate[r].clone();
            }
            1 => {
                // Retract: copy predecessor onto r.
                if r > 0 {
                    candidate[r] = candidate[r - 1].clone();
                } else {
                    candidate[r].clear();
                }
            }
            2 => {
                // Swap one slot to a random color over a short range.
                let color = rng.gen_range(0..ncolors);
                let len = rng.gen_range(1..=8usize);
                for cfg in candidate.iter_mut().skip(r).take(len) {
                    if cfg.len() == m && !cfg.is_empty() {
                        let victim = rng.gen_range(0..cfg.len());
                        cfg[victim] = color;
                    } else if cfg.len() < m {
                        cfg.push(color);
                    }
                    cfg.sort_unstable();
                }
            }
            _ => {
                // Drop one slot over a range.
                let len = rng.gen_range(1..=8usize);
                for cfg in candidate.iter_mut().skip(r).take(len) {
                    if !cfg.is_empty() {
                        let victim = rng.gen_range(0..cfg.len());
                        cfg.remove(victim);
                    }
                }
            }
        }
        let new_cost = evaluate(trace, &candidate, delta);
        if new_cost < cost {
            cost = new_cost;
            configs = candidate;
            accepted += 1;
        }
    }

    // Materialize the final schedule with canonical executions.
    let colors = trace.colors();
    let mut pending: Vec<Vec<(Round, u64)>> = vec![Vec::new(); colors.len()];
    let mut schedule = ExplicitSchedule::new(m, Speed::Uni);
    for (round, config) in configs.iter().enumerate() {
        let round = round as Round;
        for runs in pending.iter_mut() {
            runs.retain(|&(d, _)| d > round);
        }
        for (c, k) in trace.arrivals_at(round) {
            let d = round + colors.delay_bound(c);
            let runs = &mut pending[c.index()];
            match runs.last_mut() {
                Some(last) if last.0 == d => last.1 += k,
                _ => runs.push((d, k)),
            }
        }
        let mut executed = Vec::new();
        let mut cache = CacheTarget::empty();
        for &c in config {
            cache.add(ColorId(c), 1);
            let runs = &mut pending[c as usize];
            if let Some(first) = runs.first_mut() {
                first.1 -= 1;
                if first.1 == 0 {
                    runs.remove(0);
                }
                executed.push(ColorId(c));
            }
        }
        schedule.steps.push(ScheduleStep::new(round, 0, cache, executed));
    }
    Ok(ImproveResult {
        cost,
        initial_cost,
        accepted,
        schedule,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::opt::{optimal, OptConfig};
    use rrs_core::{check_schedule, CostModel};

    fn bad_schedule(trace: &Trace, m: usize) -> ExplicitSchedule {
        // A deliberately wasteful schedule: alternate configurations between
        // color 0 and nothing every round.
        let mut s = ExplicitSchedule::new(m, Speed::Uni);
        for round in 0..=trace.horizon() {
            let cache = if round % 2 == 0 {
                CacheTarget::singles([ColorId(0)])
            } else {
                CacheTarget::empty()
            };
            s.steps.push(ScheduleStep::new(round, 0, cache, vec![]));
        }
        s
    }

    #[test]
    fn never_worse_and_usually_better() {
        let trace = TraceBuilder::with_delay_bounds(&[4, 8])
            .batched_jobs(0, 3, 0, 32)
            .jobs(0, 1, 6)
            .build();
        let initial = bad_schedule(&trace, 1);
        let improved = improve_schedule(&trace, &initial, 3, 800, 7).unwrap();
        assert!(improved.cost <= improved.initial_cost);
        assert!(improved.accepted > 0, "bad schedules get improved");
        // The result replays to exactly its claimed cost.
        let replayed = check_schedule(&trace, &improved.schedule, CostModel::new(3)).unwrap();
        assert_eq!(replayed.total(), improved.cost);
    }

    #[test]
    fn approaches_the_exact_optimum_on_small_instances() {
        let trace = TraceBuilder::with_delay_bounds(&[4, 4])
            .jobs(0, 0, 4)
            .jobs(8, 1, 4)
            .build();
        let opt = optimal(&trace, OptConfig::new(1, 1)).unwrap().cost;
        let initial = bad_schedule(&trace, 1);
        let improved = improve_schedule(&trace, &initial, 1, 3000, 11).unwrap();
        assert!(
            improved.cost <= opt + 1,
            "local search gets close: {} vs OPT {opt}",
            improved.cost
        );
        assert!(improved.cost >= opt, "never beats the true optimum");
    }

    #[test]
    fn rejects_double_speed() {
        let trace = TraceBuilder::with_delay_bounds(&[2]).build();
        let s = ExplicitSchedule::new(1, Speed::Double);
        assert!(improve_schedule(&trace, &s, 1, 10, 0).is_err());
    }

    #[test]
    fn zero_iterations_is_identity_cost() {
        let trace = TraceBuilder::with_delay_bounds(&[4]).jobs(0, 0, 2).build();
        let initial = bad_schedule(&trace, 1);
        let improved = improve_schedule(&trace, &initial, 2, 0, 0).unwrap();
        assert_eq!(improved.cost, improved.initial_cost);
        assert_eq!(improved.accepted, 0);
    }
}
