//! Exact optimal offline schedules for small instances.
//!
//! A forward dynamic program over states `(round, cache multiset, pending
//! profile)`. Two reductions keep it exact yet tractable:
//!
//! * **Execution is canonical.** Given a cache configuration, executing one
//!   *earliest-deadline* pending job per cached location is without loss of
//!   generality (an exchange argument: swapping a later-deadline execution of
//!   the same color for an earlier-deadline one never invalidates a schedule,
//!   and executing fewer jobs never helps under unit drop costs). The DP
//!   therefore only branches over cache configurations.
//! * **Configurations are multisets.** Resources are interchangeable, so a
//!   configuration is a multiset of colors of size ≤ m, and the reconfiguration
//!   cost between multisets is Δ × (copies gained).
//!
//! The state space is exponential in general; [`OptConfig::max_states`] guards
//! against blow-up, returning an error instead of thrashing. Intended for
//! instances with ≤ ~6 colors, m ≤ 3 and horizons of a few dozen rounds — the
//! regime used by experiment E9 to measure true competitive ratios.

use rrs_core::prelude::*;
use rrs_core::schedule::{ExplicitSchedule, ScheduleStep};
use std::collections::HashMap;

/// Parameters of an exact-OPT computation.
#[derive(Debug, Clone, Copy)]
pub struct OptConfig {
    /// Number of offline resources `m`.
    pub m: usize,
    /// Reconfiguration cost Δ.
    pub delta: u64,
    /// Abort if the per-round frontier ever exceeds this many states.
    pub max_states: usize,
}

impl OptConfig {
    /// Sensible defaults: guard at one million frontier states.
    pub fn new(m: usize, delta: u64) -> Self {
        OptConfig {
            m,
            delta,
            max_states: 1_000_000,
        }
    }
}

/// Result of an exact-OPT computation.
#[derive(Debug, Clone)]
pub struct OptResult {
    /// The optimal total cost.
    pub cost: u64,
    /// Peak frontier size (diagnostic).
    pub peak_states: usize,
    /// An optimal schedule (replayable through
    /// [`rrs_core::schedule::check_schedule`]).
    pub schedule: ExplicitSchedule,
}

/// Pending profile: per color, deadline-ordered `(deadline, count)` runs.
type PendingProfile = Vec<Vec<(Round, u64)>>;

#[derive(Debug, Clone, PartialEq, Eq, Hash)]
struct StateKey {
    /// Sorted multiset of configured colors.
    cache: Vec<u32>,
    /// Canonical pending profile.
    pending: Vec<(u32, Round, u64)>,
}

fn canon_pending(p: &PendingProfile) -> Vec<(u32, Round, u64)> {
    let mut out = Vec::new();
    for (c, runs) in p.iter().enumerate() {
        for &(d, k) in runs {
            out.push((c as u32, d, k));
        }
    }
    out
}

/// Drops expired jobs; returns the weighted drop cost (`drop_costs[c]` per
/// color-`c` job).
fn drop_expired(p: &mut PendingProfile, round: Round, drop_costs: &[u64]) -> u64 {
    let mut dropped = 0;
    for (c, runs) in p.iter_mut().enumerate() {
        let before: u64 = runs.iter().map(|&(_, k)| k).sum();
        runs.retain(|&(d, _)| d > round);
        let after: u64 = runs.iter().map(|&(_, k)| k).sum();
        dropped += (before - after) * drop_costs[c];
    }
    dropped
}

fn execute_config(p: &mut PendingProfile, config: &[u32]) -> Vec<u32> {
    let mut executed = Vec::new();
    for &c in config {
        let runs = &mut p[c as usize];
        if let Some(first) = runs.first_mut() {
            first.1 -= 1;
            if first.1 == 0 {
                runs.remove(0);
            }
            executed.push(c);
        }
    }
    executed
}

/// Enumerates all multisets (sorted vectors) of size ≤ m over `candidates`.
fn enumerate_configs(candidates: &[u32], m: usize) -> Vec<Vec<u32>> {
    let mut out = vec![vec![]];
    let mut current = Vec::new();
    fn rec(cands: &[u32], start: usize, left: usize, current: &mut Vec<u32>, out: &mut Vec<Vec<u32>>) {
        if left == 0 {
            return;
        }
        for i in start..cands.len() {
            current.push(cands[i]);
            out.push(current.clone());
            rec(cands, i, left - 1, current, out);
            current.pop();
        }
    }
    rec(candidates, 0, m, &mut current, &mut out);
    out
}

fn recolor_cost(old: &[u32], new: &[u32], delta: u64) -> u64 {
    // Both sorted; count copies in `new` not covered by `old`.
    let mut gained = 0u64;
    let mut i = 0;
    let mut j = 0;
    while j < new.len() {
        if i < old.len() && old[i] == new[j] {
            i += 1;
            j += 1;
        } else if i < old.len() && old[i] < new[j] {
            i += 1;
        } else {
            gained += 1;
            j += 1;
        }
    }
    gained * delta
}

/// Computes an optimal offline schedule for `trace` with `cfg.m` resources.
///
/// ```
/// use rrs_core::prelude::*;
/// use rrs_offline::{optimal, OptConfig};
///
/// // 2 jobs vs Δ = 5: dropping (cost 2) beats configuring (cost 5).
/// let trace = TraceBuilder::with_delay_bounds(&[4]).jobs(0, 0, 2).build();
/// assert_eq!(optimal(&trace, OptConfig::new(1, 5))?.cost, 2);
/// assert_eq!(optimal(&trace, OptConfig::new(1, 1))?.cost, 1);
/// # Ok::<(), rrs_core::Error>(())
/// ```
///
/// # Errors
/// Returns [`Error::InvalidParameter`] if `m == 0` or the state-space guard
/// trips.
pub fn optimal(trace: &Trace, cfg: OptConfig) -> Result<OptResult> {
    if cfg.m == 0 {
        return Err(Error::InvalidParameter("OPT needs m >= 1".into()));
    }
    let colors = trace.colors();
    let ncolors = colors.len();
    let horizon = trace.horizon();
    let drop_costs: Vec<u64> = colors.ids().map(|c| colors.drop_cost(c)).collect();

    // Arena of (parent, config) for schedule reconstruction.
    let mut arena: Vec<(Option<usize>, Vec<u32>)> = vec![(None, vec![])];
    let init = StateKey {
        cache: vec![],
        pending: vec![],
    };
    let mut frontier: HashMap<StateKey, (u64, usize)> = HashMap::new();
    frontier.insert(init, (0, 0));
    let mut peak_states = 1;

    for round in 0..=horizon {
        let arrivals = trace.arrivals_at(round);
        let mut next: HashMap<StateKey, (u64, usize)> = HashMap::new();
        for (key, (mut cost, parent)) in frontier.drain() {
            // Rebuild the pending profile.
            let mut pending: PendingProfile = vec![Vec::new(); ncolors];
            for &(c, d, k) in &key.pending {
                pending[c as usize].push((d, k));
            }
            // Phase 1: drop.
            cost += drop_expired(&mut pending, round, &drop_costs);
            // Phase 2: arrivals.
            for &(c, k) in &arrivals {
                let d = round + colors.delay_bound(c);
                let runs = &mut pending[c.index()];
                match runs.last_mut() {
                    Some(last) if last.0 == d => last.1 += k,
                    _ => runs.push((d, k)),
                }
            }
            // Candidate colors: anything pending or currently configured.
            let mut candidates: Vec<u32> = (0..ncolors as u32)
                .filter(|&c| !pending[c as usize].is_empty())
                .collect();
            for &c in &key.cache {
                if !candidates.contains(&c) {
                    candidates.push(c);
                }
            }
            candidates.sort_unstable();

            for config in enumerate_configs(&candidates, cfg.m) {
                let mut cost2 = cost + recolor_cost(&key.cache, &config, cfg.delta);
                let mut pending2 = pending.clone();
                execute_config(&mut pending2, &config);
                let _ = &mut cost2; // cost unchanged by execution
                let new_key = StateKey {
                    cache: config.clone(),
                    pending: canon_pending(&pending2),
                };
                match next.get_mut(&new_key) {
                    Some(entry) if entry.0 <= cost2 => {}
                    Some(entry) => {
                        arena.push((Some(parent), config.clone()));
                        *entry = (cost2, arena.len() - 1);
                    }
                    None => {
                        arena.push((Some(parent), config.clone()));
                        next.insert(new_key, (cost2, arena.len() - 1));
                    }
                }
            }
        }
        peak_states = peak_states.max(next.len());
        if next.len() > cfg.max_states {
            return Err(Error::InvalidParameter(format!(
                "OPT state space exceeded {} states at round {round}",
                cfg.max_states
            )));
        }
        frontier = next;
    }

    let (best_cost, best_arena) = frontier
        .values()
        .min_by_key(|&&(cost, _)| cost)
        .copied()
        .ok_or_else(|| Error::InvalidParameter("empty frontier".into()))?;

    // Reconstruct the per-round configs.
    let mut configs: Vec<Vec<u32>> = Vec::new();
    let mut cursor = Some(best_arena);
    while let Some(idx) = cursor {
        let (parent, config) = &arena[idx];
        if parent.is_some() {
            configs.push(config.clone());
        }
        cursor = *parent;
    }
    configs.reverse();
    debug_assert_eq!(configs.len() as u64, horizon + 1);

    // Replay deterministically to materialize executions.
    let mut pending: PendingProfile = vec![Vec::new(); ncolors];
    let mut schedule = ExplicitSchedule::new(cfg.m, Speed::Uni);
    for (round, config) in configs.iter().enumerate() {
        let round = round as Round;
        drop_expired(&mut pending, round, &drop_costs);
        for (c, k) in trace.arrivals_at(round) {
            let d = round + colors.delay_bound(c);
            let runs = &mut pending[c.index()];
            match runs.last_mut() {
                Some(last) if last.0 == d => last.1 += k,
                _ => runs.push((d, k)),
            }
        }
        let executed = execute_config(&mut pending, config);
        schedule.steps.push(ScheduleStep::new(
            round,
            0,
            CacheTarget::singles(config.iter().map(|&c| ColorId(c))),
            executed.into_iter().map(ColorId).collect(),
        ));
    }

    Ok(OptResult {
        cost: best_cost,
        peak_states,
        schedule,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use rrs_core::schedule::check_schedule;

    fn opt_cost(trace: &Trace, m: usize, delta: u64) -> u64 {
        optimal(trace, OptConfig::new(m, delta)).unwrap().cost
    }

    #[test]
    fn empty_trace_costs_nothing() {
        let t = Trace::new(ColorTable::from_delay_bounds(&[4]));
        assert_eq!(opt_cost(&t, 1, 5), 0);
    }

    #[test]
    fn single_small_batch_drops_when_delta_large() {
        // 2 jobs vs Δ=5: dropping (cost 2) beats configuring (cost 5).
        let t = TraceBuilder::with_delay_bounds(&[4]).jobs(0, 0, 2).build();
        assert_eq!(opt_cost(&t, 1, 5), 2);
        // Δ=1: configuring wins.
        assert_eq!(opt_cost(&t, 1, 1), 1);
    }

    #[test]
    fn capacity_forces_drops() {
        // 6 jobs in a 4-round window, one resource: 2 inevitable drops + Δ.
        let t = TraceBuilder::with_delay_bounds(&[4]).jobs(0, 0, 6).build();
        assert_eq!(opt_cost(&t, 1, 1), 3);
        assert_eq!(opt_cost(&t, 2, 1), 2, "two resources, two recolorings");
    }

    #[test]
    fn two_colors_one_resource_chooses_the_cheaper_victim() {
        // Color 0: 10 jobs (window 8); color 1: 2 jobs (window 8). Δ=4.
        // Serving c0 (8 of 10 in window) and dropping c1 entirely:
        // Δ + 2 drops + 2 overflow drops = 8. Serving both: 2Δ + overflow...
        let t = TraceBuilder::with_delay_bounds(&[8, 8])
            .jobs(0, 0, 10)
            .jobs(0, 1, 2)
            .build();
        let cost = opt_cost(&t, 1, 4);
        assert_eq!(cost, 8);
    }

    #[test]
    fn reconfiguring_midway_when_it_pays() {
        // Color 0 active early, color 1 active late; Δ=1 cheap: reconfigure.
        let t = TraceBuilder::with_delay_bounds(&[4, 4])
            .jobs(0, 0, 4)
            .jobs(8, 1, 4)
            .build();
        assert_eq!(opt_cost(&t, 1, 1), 2, "two recolorings, zero drops");
    }

    #[test]
    fn schedule_replays_to_the_claimed_cost() {
        let t = TraceBuilder::with_delay_bounds(&[4, 8])
            .jobs(0, 0, 3)
            .jobs(2, 1, 5)
            .jobs(8, 0, 2)
            .build();
        let r = optimal(&t, OptConfig::new(2, 2)).unwrap();
        let replayed = check_schedule(&t, &r.schedule, CostModel::new(2)).unwrap();
        assert_eq!(replayed.total(), r.cost);
    }

    #[test]
    fn opt_never_exceeds_simple_feasible_schedules() {
        // Sanity: OPT <= cost of the "configure everything once" schedule.
        let t = TraceBuilder::with_delay_bounds(&[8, 8])
            .jobs(0, 0, 4)
            .jobs(0, 1, 4)
            .build();
        // Feasible: 2 resources, configure each color once: cost 2Δ = 6.
        assert!(opt_cost(&t, 2, 3) <= 6);
    }

    #[test]
    fn state_guard_trips_gracefully() {
        let g = OptConfig {
            m: 2,
            delta: 1,
            max_states: 2,
        };
        let t = TraceBuilder::with_delay_bounds(&[4, 4, 4])
            .jobs(0, 0, 3)
            .jobs(0, 1, 3)
            .jobs(0, 2, 3)
            .build();
        assert!(optimal(&t, g).is_err());
    }

    #[test]
    fn zero_resources_rejected() {
        let t = Trace::new(ColorTable::from_delay_bounds(&[4]));
        assert!(optimal(&t, OptConfig::new(0, 1)).is_err());
    }

    #[test]
    fn matches_lower_bounds_on_small_instances() {
        use crate::bounds::combined_bound;
        let t = TraceBuilder::with_delay_bounds(&[4, 8])
            .jobs(0, 0, 5)
            .jobs(4, 1, 3)
            .build();
        let opt = opt_cost(&t, 1, 2);
        assert!(opt >= combined_bound(&t, 1, 2));
    }
}
