//! Combinatorial lower bounds on the optimal offline cost.
//!
//! Competitive ratios on instances too large for the exact DP are reported
//! against `max` of these bounds, which keeps the reported ratio an *upper
//! bound* on the true competitive ratio (the denominator never exceeds OPT):
//!
//! * **Per-color bound** (the argument of Lemma 3.1 / Corollary 3.3): any
//!   schedule either configures color ℓ at least once (cost ≥ Δ) or drops all
//!   of ℓ's jobs (cost ≥ `jobs_ℓ`), so
//!   `OPT ≥ Σ_ℓ min(Δ, jobs_ℓ)`.
//! * **Par-EDF drop bound** (Lemma 3.7): Par-EDF with `m` resources drops no
//!   more jobs than any `m`-resource schedule, so `OPT ≥ DropCost_ParEDF(σ)`.
//! * **Capacity bound**: at most `m` executions per round regardless of
//!   configuration, so jobs in excess of `m · (horizon+1)` must drop. (Implied
//!   by the Par-EDF bound; kept as a cheap sanity check.)

use rrs_algorithms::par_edf::par_edf;
use rrs_core::prelude::*;

/// `Σ_ℓ min(Δ, c_ℓ · jobs_ℓ)` over colors with at least one job: any schedule
/// either configures ℓ at least once or drops everything of ℓ.
pub fn per_color_bound(trace: &Trace, delta: u64) -> u64 {
    trace
        .colors()
        .ids()
        .map(|c| (trace.jobs_of_color(c) * trace.colors().drop_cost(c)).min(delta))
        .sum()
}

/// The Par-EDF drop count with `m` resources (a lower bound on any
/// `m`-resource schedule's drop count, hence — scaled by the minimum drop
/// cost — on OPT's total cost; exact for the paper's unit drop costs).
pub fn par_edf_drop_bound(trace: &Trace, m: usize) -> u64 {
    if trace.total_jobs() == 0 {
        return 0;
    }
    par_edf(trace, m).dropped * trace.colors().min_drop_cost().max(1)
}

/// Jobs exceeding the raw execution capacity `m × (horizon + 1)`, scaled by
/// the minimum drop cost.
pub fn capacity_bound(trace: &Trace, m: usize) -> u64 {
    let capacity = (m as u64).saturating_mul(trace.horizon() + 1);
    trace.total_jobs().saturating_sub(capacity) * trace.colors().min_drop_cost().max(1)
}

/// The best (largest) of all lower bounds for an `m`-resource offline
/// schedule with reconfiguration cost `delta`.
pub fn combined_bound(trace: &Trace, m: usize, delta: u64) -> u64 {
    per_color_bound(trace, delta)
        .max(par_edf_drop_bound(trace, m))
        .max(capacity_bound(trace, m))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn per_color_caps_at_delta() {
        let t = TraceBuilder::with_delay_bounds(&[4, 4, 4])
            .jobs(0, 0, 100) // min(5, 100) = 5
            .jobs(0, 1, 3) // min(5, 3) = 3
            .build();
        assert_eq!(per_color_bound(&t, 5), 8);
    }

    #[test]
    fn par_edf_bound_counts_inevitable_drops() {
        // 6 jobs in a 4-round window on 1 resource: >= 2 drops for anyone.
        let t = TraceBuilder::with_delay_bounds(&[4]).jobs(0, 0, 6).build();
        assert_eq!(par_edf_drop_bound(&t, 1), 2);
        assert_eq!(par_edf_drop_bound(&t, 2), 0);
    }

    #[test]
    fn capacity_bound_is_weaker_than_par_edf() {
        let t = TraceBuilder::with_delay_bounds(&[4]).jobs(0, 0, 6).build();
        assert!(capacity_bound(&t, 1) <= par_edf_drop_bound(&t, 1));
    }

    #[test]
    fn combined_takes_the_max() {
        let t = TraceBuilder::with_delay_bounds(&[2]).jobs(0, 0, 10).build();
        let lb = combined_bound(&t, 1, 3);
        // Par-EDF drops 8 (2 executions in window); per-color gives 3.
        assert_eq!(lb, 8);
    }

    #[test]
    fn empty_trace_bounds_are_zero() {
        let t = Trace::new(ColorTable::from_delay_bounds(&[4]));
        assert_eq!(combined_bound(&t, 1, 5), 0);
    }
}
