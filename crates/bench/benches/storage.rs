//! E14 — durable storage tier: the same supervised multi-tenant load driven
//! on the in-memory backend vs the on-disk WAL + checkpoint store (with and
//! without fsync), plus cold-start recovery and the coalescing file cache's
//! hit path.
//!
//! Before timing anything, the harness asserts storage conformance: the
//! disk backend must produce final per-tenant results bit-identical to the
//! in-memory run — durability must be invisible to scheduling.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use rrs_core::{ColorId, ColorTable};
use rrs_service::{
    DiskBackend, DiskConfig, FaultPlan, FileCache, IngestMode, MemoryBackend, PolicySpec,
    StorageBackend, Supervisor, SupervisorConfig, TenantSpec,
};
use std::hint::black_box;
use std::path::PathBuf;

const TENANTS: u64 = 8;
const SHARDS: usize = 2;
const ROUNDS: u64 = 96;
const SUBMITS: u64 = 4;

fn scratch(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!("rrs-bench-store-{tag}-{}", std::process::id()))
}

fn arrivals(tenant: u64, round: u64, part: u64) -> Vec<(ColorId, u64)> {
    let mix = tenant
        .wrapping_mul(31)
        .wrapping_add(round.wrapping_mul(17))
        .wrapping_add(part.wrapping_mul(13));
    vec![(ColorId((mix % 3) as u32), 1 + mix % 3)]
}

fn total_jobs() -> u64 {
    (0..ROUNDS)
        .flat_map(|r| (0..SUBMITS).flat_map(move |p| (0..TENANTS).map(move |t| (t, r, p))))
        .map(|(t, r, p)| arrivals(t, r, p).iter().map(|&(_, k)| k).sum::<u64>())
        .sum()
}

/// Drives the whole load on `backend`; returns final results tenant-ordered.
fn drive(backend: Box<dyn StorageBackend>) -> Vec<rrs_core::RunResult> {
    let config = SupervisorConfig {
        shards: SHARDS,
        checkpoint_every: 24,
        ingest: IngestMode::Batched,
        ..SupervisorConfig::default()
    };
    let mut sup =
        Supervisor::with_storage(config, &FaultPlan::none(), backend).expect("supervisor start");
    for id in 0..TENANTS {
        let spec = TenantSpec::new(
            PolicySpec::DlruEdf,
            ColorTable::from_delay_bounds(&[2, 4, 8]),
            4,
            2,
        );
        sup.add_tenant(id, spec).expect("add tenant");
    }
    for round in 0..ROUNDS {
        for part in 0..SUBMITS {
            for id in 0..TENANTS {
                sup.submit(id, arrivals(id, round, part)).expect("submit");
            }
        }
        sup.tick().expect("tick");
    }
    let results = sup.finish().expect("finish");
    (0..TENANTS).map(|t| results[&t].clone()).collect()
}

fn disk_config(dir: &PathBuf, fsync: bool) -> DiskConfig {
    let _ = std::fs::remove_dir_all(dir);
    let mut cfg = DiskConfig::new(dir);
    cfg.fsync = fsync;
    cfg
}

fn bench_backends(c: &mut Criterion) {
    // Conformance gate before any timing.
    let dir = scratch("conformance");
    let reference = drive(Box::new(MemoryBackend::new()));
    let disk = drive(Box::new(DiskBackend::new(disk_config(&dir, true))));
    assert_eq!(disk, reference, "disk backend changed scheduling results");
    let _ = std::fs::remove_dir_all(&dir);
    println!(
        "storage: backend conformance OK ({TENANTS} tenants, {} jobs)",
        total_jobs()
    );

    let mut group = c.benchmark_group("storage-backend");
    group.sample_size(10);
    group.throughput(Throughput::Elements(total_jobs()));
    group.bench_function(BenchmarkId::new("memory", TENANTS), |b| {
        b.iter(|| black_box(drive(Box::new(MemoryBackend::new()))).len());
    });
    let dir = scratch("fsync");
    group.bench_function(BenchmarkId::new("disk-fsync", TENANTS), |b| {
        b.iter(|| black_box(drive(Box::new(DiskBackend::new(disk_config(&dir, true))))).len());
    });
    group.bench_function(BenchmarkId::new("disk-nofsync", TENANTS), |b| {
        b.iter(|| black_box(drive(Box::new(DiskBackend::new(disk_config(&dir, false))))).len());
    });
    let _ = std::fs::remove_dir_all(&dir);
    group.finish();
}

fn bench_cold_start(c: &mut Criterion) {
    // Write one durable run, then repeatedly cold-start supervisors over it.
    let dir = scratch("coldstart");
    drive(Box::new(DiskBackend::new(disk_config(&dir, false))));
    let config = SupervisorConfig {
        shards: SHARDS,
        checkpoint_every: 24,
        ingest: IngestMode::Batched,
        ..SupervisorConfig::default()
    };
    let mut group = c.benchmark_group("storage-cold-start");
    group.sample_size(10);
    group.bench_function(BenchmarkId::new("recover", ROUNDS), |b| {
        b.iter(|| {
            let mut cfg = DiskConfig::new(&dir);
            cfg.fsync = false;
            let sup = Supervisor::with_storage(
                config,
                &FaultPlan::none(),
                Box::new(DiskBackend::new(cfg)),
            )
            .expect("cold start");
            let ticks = sup.shard_ticks(0).expect("ticks");
            assert_eq!(ticks, ROUNDS);
            black_box(ticks)
        });
    });
    group.finish();
    let _ = std::fs::remove_dir_all(&dir);
}

fn bench_file_cache(c: &mut Criterion) {
    // The single-flight cache's steady-state hit path vs a raw read.
    let dir = scratch("cache");
    std::fs::create_dir_all(&dir).expect("scratch dir");
    let path = dir.join("blob");
    std::fs::write(&path, vec![7u8; 64 * 1024]).expect("write blob");
    let cache = FileCache::new(8 * 1024 * 1024);
    let mut group = c.benchmark_group("storage-file-cache");
    group.throughput(Throughput::Bytes(64 * 1024));
    group.bench_function("hit", |b| {
        b.iter(|| {
            let bytes = cache
                .get_or_load(&path, || Ok(std::fs::read(&path).expect("read")))
                .expect("cache get");
            black_box(bytes.len())
        });
    });
    group.bench_function("raw-read", |b| {
        b.iter(|| black_box(std::fs::read(&path).expect("read")).len());
    });
    group.finish();
    assert!(cache.stats().hits > 0, "hit path never exercised");
    let _ = std::fs::remove_dir_all(&dir);
}

criterion_group!(benches, bench_backends, bench_cold_start, bench_file_cache);
criterion_main!(benches);
