//! E12e — offline oracle costs: the exact DP's runtime growth and the price
//! of the lower bounds, which determine how large E9-style experiments can go.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rrs_bench::bench_trace;
use rrs_offline::{combined_bound, optimal, OptConfig};
use rrs_workloads::RandomBatched;

fn bench_offline(c: &mut Criterion) {
    let mut group = c.benchmark_group("offline");
    group.sample_size(10);
    for &horizon in &[16u64, 32] {
        let trace = RandomBatched {
            delay_bounds: vec![2, 4, 8],
            load: 0.7,
            activity: 0.8,
            horizon,
            rate_limited: true,
        }
        .generate(5);
        group.bench_with_input(BenchmarkId::new("exact_dp_m1", horizon), &trace, |b, t| {
            b.iter(|| optimal(t, OptConfig::new(1, 2)).unwrap())
        });
    }
    let big = bench_trace(16, 4096, 6);
    group.bench_function("combined_bound_big", |b| {
        b.iter(|| combined_bound(&big, 2, 4))
    });
    group.finish();
}

criterion_group!(benches, bench_offline);
criterion_main!(benches);
