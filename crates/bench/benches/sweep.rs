//! E12f — sweep executor throughput: the same policy × Δ × n grid executed
//! serially and on the work-stealing pool, plus the effect of the bound
//! cache on repeated OPT lower-bound queries.
//!
//! On a multi-core machine the `parallel/auto` rows should come in well under
//! the `serial` rows (the acceptance target is ≥2× on 4+ cores); on a
//! single-core container they degrade gracefully to serial speed.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use rrs_analysis::cache::BoundCache;
use rrs_analysis::runner::{run_cells, GridSpec, PolicyKind};
use rrs_analysis::sweep::ParallelRunner;
use rrs_bench::bench_trace;
use rrs_offline::bounds;
use std::hint::black_box;

fn grid_traces() -> Vec<rrs_core::Trace> {
    (0..2).map(|s| bench_trace(8, 512, s)).collect()
}

fn bench_sweep_executor(c: &mut Criterion) {
    let mut group = c.benchmark_group("sweep");
    let traces = grid_traces();
    let spec = GridSpec {
        kinds: PolicyKind::comparison_set(),
        traces: &traces,
        ns: &[8, 16],
        deltas: &[2, 8],
    };
    let cells = spec.cells().len() as u64;
    group.sample_size(10);
    group.throughput(Throughput::Elements(cells));
    for (label, threads) in [("serial", 1usize), ("parallel/auto", 0)] {
        group.bench_function(BenchmarkId::new(label, cells), |b| {
            b.iter(|| black_box(run_cells(&spec, threads)).rows.len());
        });
    }
    group.finish();
}

fn bench_runner_overhead(c: &mut Criterion) {
    // Pure scheduling overhead: near-empty cells expose the cost of the
    // deques, channel and merge relative to a plain serial loop.
    let mut group = c.benchmark_group("sweep-overhead");
    let items: Vec<u64> = (0..4096).collect();
    group.throughput(Throughput::Elements(items.len() as u64));
    for (label, threads) in [("serial", 1usize), ("parallel/auto", 0)] {
        group.bench_function(label, |b| {
            b.iter(|| {
                ParallelRunner::new(threads)
                    .run(items.clone(), |&x| x.wrapping_mul(0x9E37_79B9))
                    .results
                    .len()
            });
        });
    }
    group.finish();
}

fn bench_bound_cache(c: &mut Criterion) {
    let mut group = c.benchmark_group("bound-cache");
    let trace = bench_trace(8, 2048, 7);
    group.bench_function("combined_bound/uncached", |b| {
        b.iter(|| bounds::combined_bound(black_box(&trace), 4, 4));
    });
    group.bench_function("combined_bound/cached", |b| {
        let cache = BoundCache::new();
        cache.par_edf(&trace, 4); // warm the (trace, m) entry
        b.iter(|| cache.combined_bound(black_box(&trace), 4, 4));
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_sweep_executor,
    bench_runner_overhead,
    bench_bound_cache
);
criterion_main!(benches);
