//! E12a — engine throughput: rounds simulated per second as colors and
//! resources scale, with a trivial policy (isolates the engine itself), plus
//! the incremental-index policies against their rebuild-and-sort reference
//! twins (isolates the hot-path optimization; `rrs-cli bench-engine` tracks
//! the same ratio against a committed baseline).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use rrs_algorithms::prelude::*;
use rrs_algorithms::reference::{RefDlru, RefDlruEdf};
use rrs_bench::bench_trace;
use rrs_core::engine::run_policy;
use rrs_core::prelude::*;

/// A minimal policy: cache the first `n` colors forever.
struct Fixed(CacheTarget);
impl Policy for Fixed {
    fn name(&self) -> String {
        "fixed".into()
    }
    fn reconfigure(&mut self, _r: Round, _m: u32, _v: &EngineView) -> CacheTarget {
        self.0.clone()
    }
}

fn bench_engine(c: &mut Criterion) {
    let mut group = c.benchmark_group("engine");
    for &ncolors in &[4usize, 16, 64] {
        let horizon = 4096;
        let trace = bench_trace(ncolors, horizon, 1);
        group.throughput(Throughput::Elements(horizon));
        group.bench_with_input(
            BenchmarkId::new("rounds", ncolors),
            &trace,
            |b, trace| {
                let target =
                    CacheTarget::singles(trace.colors().ids().take(4));
                b.iter(|| {
                    let mut p = Fixed(target.clone());
                    run_policy(trace, &mut p, 8, 4).unwrap()
                });
            },
        );
    }
    group.finish();
}

/// Optimized (incremental-index) policies vs their frozen reference twins on
/// the standard rate-limited workload: the gap is the hot-path win.
fn bench_hot_path(c: &mut Criterion) {
    let mut group = c.benchmark_group("engine_hot_path");
    for &ncolors in &[64usize, 512] {
        let horizon = 512;
        let trace = bench_trace(ncolors, horizon, 1);
        let (n, delta) = (16usize, 4u64);
        group.throughput(Throughput::Elements(horizon));
        group.bench_with_input(
            BenchmarkId::new("dlru_edf", ncolors),
            &trace,
            |b, trace| {
                b.iter(|| {
                    let mut p = DlruEdf::new(trace.colors(), n, delta).unwrap();
                    run_policy(trace, &mut p, n, delta).unwrap()
                });
            },
        );
        group.bench_with_input(
            BenchmarkId::new("dlru_edf_reference", ncolors),
            &trace,
            |b, trace| {
                b.iter(|| {
                    let mut p =
                        RefDlruEdf::new(trace.colors(), n, delta, DlruEdfConfig::default())
                            .unwrap();
                    run_policy(trace, &mut p, n, delta).unwrap()
                });
            },
        );
        group.bench_with_input(BenchmarkId::new("dlru", ncolors), &trace, |b, trace| {
            b.iter(|| {
                let mut p = Dlru::with_replication(trace.colors(), n, delta, 2).unwrap();
                run_policy(trace, &mut p, n, delta).unwrap()
            });
        });
        group.bench_with_input(
            BenchmarkId::new("dlru_reference", ncolors),
            &trace,
            |b, trace| {
                b.iter(|| {
                    let mut p = RefDlru::new(trace.colors(), n, delta, 2).unwrap();
                    run_policy(trace, &mut p, n, delta).unwrap()
                });
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_engine, bench_hot_path);
criterion_main!(benches);
