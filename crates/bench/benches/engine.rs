//! E12a — engine throughput: rounds simulated per second as colors and
//! resources scale, with a trivial policy (isolates the engine itself).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use rrs_bench::bench_trace;
use rrs_core::engine::run_policy;
use rrs_core::prelude::*;

/// A minimal policy: cache the first `n` colors forever.
struct Fixed(CacheTarget);
impl Policy for Fixed {
    fn name(&self) -> String {
        "fixed".into()
    }
    fn reconfigure(&mut self, _r: Round, _m: u32, _v: &EngineView) -> CacheTarget {
        self.0.clone()
    }
}

fn bench_engine(c: &mut Criterion) {
    let mut group = c.benchmark_group("engine");
    for &ncolors in &[4usize, 16, 64] {
        let horizon = 4096;
        let trace = bench_trace(ncolors, horizon, 1);
        group.throughput(Throughput::Elements(horizon));
        group.bench_with_input(
            BenchmarkId::new("rounds", ncolors),
            &trace,
            |b, trace| {
                let target =
                    CacheTarget::singles(trace.colors().ids().take(4));
                b.iter(|| {
                    let mut p = Fixed(target.clone());
                    run_policy(trace, &mut p, 8, 4).unwrap()
                });
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_engine);
criterion_main!(benches);
