//! E12g — service shard scaling: the same multi-tenant open-loop load driven
//! through `rrs-service` at 1, 2, 4 and 8 shards, with and without a mid-run
//! shard kill/restore.
//!
//! On a multi-core machine throughput should grow with the shard count until
//! tenants-per-shard stops amortizing the command queue; on a single-core
//! container the curves collapse to the 1-shard line plus queue overhead.
//! Before timing anything, the harness asserts kill/restore conformance:
//! every shard count (with a kill/restore in the middle) must produce final
//! per-tenant results identical to the 1-shard uninterrupted run.
//!
//! E13b — supervised recovery and overload shedding: the same load through a
//! [`Supervisor`], steady vs a fault plan that kills every shard's worker
//! once (the steady/faulted gap is the checkpoint + WAL recovery cost), and
//! a 4× overload drive with and without an inbox watermark (the shedding
//! fast-path vs buffering everything). Both are gated on bit-identical
//! results against the unsupervised reference before timing.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use rrs_service::{
    FaultPlan, PolicySpec, RetryPolicy, Service, ServiceConfig, ShedConfig, Supervisor,
    SupervisorConfig, TenantSpec,
};
use rrs_workloads::{MultiTenantLoad, OpenLoopDriver, RandomBatched, WorkloadSpec};
use std::hint::black_box;

const TENANTS: u64 = 16;
const N: usize = 8;
const DELTA: u64 = 4;

fn bench_load(horizon: u64) -> MultiTenantLoad {
    MultiTenantLoad::new(
        WorkloadSpec::RandomBatched(RandomBatched {
            delay_bounds: vec![4, 8, 16, 32],
            load: 0.6,
            activity: 0.8,
            horizon,
            rate_limited: true,
        }),
        TENANTS,
        12,
    )
}

/// Drives the whole load through a service; optionally kills and restores
/// one shard halfway. Returns the final per-tenant results (tenant order).
fn drive(driver: &OpenLoopDriver, shards: usize, kill_mid_run: bool) -> Vec<rrs_core::RunResult> {
    let mut svc = Service::new(ServiceConfig { shards, queue_capacity: 64 }).expect("service start");
    for t in 0..driver.tenants() {
        let spec = TenantSpec::new(
            PolicySpec::DlruEdf,
            driver.trace(t).colors().clone(),
            N,
            DELTA,
        );
        svc.add_tenant(t, spec).expect("add tenant");
    }
    let horizon = driver.horizon();
    for round in 0..=horizon {
        for t in 0..driver.tenants() {
            let arrivals = driver.arrivals(t, round);
            if !arrivals.is_empty() {
                svc.submit(t, arrivals).expect("submit");
            }
        }
        svc.tick().expect("tick");
        if kill_mid_run && round == horizon / 2 {
            let victim = 0;
            let snap = svc.snapshot_shard(victim).expect("snapshot");
            assert!(snap.conserves_jobs(), "conservation before kill");
            svc.kill_shard(victim).expect("kill");
            svc.restore_shard(snap).expect("restore");
        }
    }
    let results = svc.finish().expect("finish");
    (0..driver.tenants()).map(|t| results[&t].clone()).collect()
}

fn bench_shard_scaling(c: &mut Criterion) {
    let load = bench_load(256);
    let driver = OpenLoopDriver::new(&load);
    let jobs: u64 = (0..TENANTS).map(|t| driver.trace(t).total_jobs()).sum();

    // Kill/restore conformance gate: all shard counts, kill or not, must
    // agree with the 1-shard uninterrupted reference bit for bit.
    let reference = drive(&driver, 1, false);
    for shards in [1usize, 2, 4, 8] {
        let with_kill = drive(&driver, shards, true);
        assert_eq!(
            with_kill, reference,
            "kill/restore at {shards} shards changed results"
        );
    }
    println!(
        "service: kill/restore conformance OK at 1/2/4/8 shards \
         ({TENANTS} tenants, {jobs} jobs)"
    );

    let mut group = c.benchmark_group("service-shard-scaling");
    group.sample_size(10);
    group.throughput(Throughput::Elements(jobs));
    for shards in [1usize, 2, 4, 8] {
        group.bench_function(BenchmarkId::new("steady", shards), |b| {
            b.iter(|| black_box(drive(&driver, shards, false)).len());
        });
        group.bench_function(BenchmarkId::new("kill-restore", shards), |b| {
            b.iter(|| black_box(drive(&driver, shards, true)).len());
        });
    }
    group.finish();
}

fn bench_snapshot_restore(c: &mut Criterion) {
    // Cost of the snapshot and of the replay-based restore as the run gets
    // longer (restore replays the whole arrival log).
    let mut group = c.benchmark_group("service-snapshot");
    for horizon in [64u64, 256] {
        let load = bench_load(horizon);
        let driver = OpenLoopDriver::new(&load);
        let mut svc = Service::new(ServiceConfig { shards: 2, queue_capacity: 64 }).expect("service start");
        for t in 0..driver.tenants() {
            let spec = TenantSpec::new(
                PolicySpec::DlruEdf,
                driver.trace(t).colors().clone(),
                N,
                DELTA,
            );
            svc.add_tenant(t, spec).expect("add tenant");
        }
        for round in 0..=driver.horizon() {
            for t in 0..driver.tenants() {
                let arrivals = driver.arrivals(t, round);
                if !arrivals.is_empty() {
                    svc.submit(t, arrivals).expect("submit");
                }
            }
            svc.tick().expect("tick");
        }
        group.bench_function(BenchmarkId::new("snapshot", horizon), |b| {
            b.iter(|| black_box(svc.snapshot_shard(0).expect("snapshot")));
        });
        let snap = svc.snapshot_shard(0).expect("snapshot");
        group.bench_function(BenchmarkId::new("restore-replay", horizon), |b| {
            b.iter(|| {
                rrs_service::restore_tenants(black_box(snap.clone())).expect("restore").len()
            });
        });
        svc.finish().expect("finish");
    }
    group.finish();
}

/// Drives the whole load through a supervisor under a fault plan. Returns
/// the final per-tenant results (tenant order).
fn drive_supervised(
    driver: &OpenLoopDriver,
    shards: usize,
    plan: &FaultPlan,
    shed: ShedConfig,
) -> Vec<rrs_core::RunResult> {
    let config = SupervisorConfig {
        shards,
        queue_capacity: 64,
        checkpoint_every: 32,
        retry: RetryPolicy::default(),
        shed,
        ingest: rrs_service::IngestMode::Batched,
    };
    let mut sup = Supervisor::with_faults(config, plan).expect("supervisor start");
    for t in 0..driver.tenants() {
        let spec = TenantSpec::new(
            PolicySpec::DlruEdf,
            driver.trace(t).colors().clone(),
            N,
            DELTA,
        );
        sup.add_tenant(t, spec).expect("add tenant");
    }
    for round in 0..=driver.horizon() {
        for t in 0..driver.tenants() {
            sup.submit(t, driver.arrivals(t, round)).expect("submit");
        }
        sup.tick().expect("tick");
    }
    let results = sup.finish().expect("finish");
    (0..driver.tenants()).map(|t| results[&t].clone()).collect()
}

/// Injected panics are expected during the recovery bench; keep them quiet.
fn quiet_injected_panics() {
    let default_hook = std::panic::take_hook();
    std::panic::set_hook(Box::new(move |info| {
        let injected = info
            .payload()
            .downcast_ref::<String>()
            .map(|s| s.contains("injected fault"))
            .or_else(|| info.payload().downcast_ref::<&str>().map(|s| s.contains("injected fault")))
            .unwrap_or(false);
        if !injected {
            default_hook(info);
        }
    }));
}

fn bench_supervised_recovery(c: &mut Criterion) {
    quiet_injected_panics();
    let load = bench_load(192);
    let driver = OpenLoopDriver::new(&load);
    let jobs: u64 = (0..TENANTS).map(|t| driver.trace(t).total_jobs()).sum();
    let no_shed = ShedConfig::default();

    // Conformance gate: supervised steady and supervised-with-kills must both
    // match the unsupervised reference bit for bit.
    let reference = drive(&driver, 2, false);
    for shards in [2usize, 4] {
        let plan = FaultPlan::kill_each_shard_once(shards, driver.horizon() + 1, 7);
        assert_eq!(
            drive_supervised(&driver, shards, &FaultPlan::none(), no_shed),
            reference,
            "supervised steady run diverged at {shards} shards"
        );
        assert_eq!(
            drive_supervised(&driver, shards, &plan, no_shed),
            reference,
            "recovery at {shards} shards changed results"
        );
    }
    println!("service: supervised recovery conformance OK at 2/4 shards");

    let mut group = c.benchmark_group("service-recovery");
    group.sample_size(10);
    group.throughput(Throughput::Elements(jobs));
    for shards in [2usize, 4] {
        let plan = FaultPlan::kill_each_shard_once(shards, driver.horizon() + 1, 7);
        group.bench_function(BenchmarkId::new("supervised-steady", shards), |b| {
            b.iter(|| {
                black_box(drive_supervised(&driver, shards, &FaultPlan::none(), no_shed)).len()
            });
        });
        group.bench_function(BenchmarkId::new("kill-each-shard", shards), |b| {
            b.iter(|| black_box(drive_supervised(&driver, shards, &plan, no_shed)).len());
        });
    }
    group.finish();
}

fn bench_shedding_throughput(c: &mut Criterion) {
    // A 4× overload drive: every tenant submits a fixed burst per round that
    // is four times the inbox watermark. With shedding on, excess jobs take
    // the counted fast-path; with shedding off they all buffer and tick.
    const ROUNDS: u64 = 128;
    const WATERMARK: u64 = 8;
    const BURST: u64 = 4 * WATERMARK;
    let drive_overload = |shed: ShedConfig| {
        let config = SupervisorConfig {
            shards: 2,
            queue_capacity: 64,
            checkpoint_every: 32,
            retry: RetryPolicy::default(),
            shed,
            ingest: rrs_service::IngestMode::Batched,
        };
        let mut sup = Supervisor::new(config).expect("supervisor start");
        let colors = rrs_core::ColorTable::from_delay_bounds(&[4, 8, 16, 32]);
        for t in 0..TENANTS {
            sup.add_tenant(t, TenantSpec::new(PolicySpec::DlruEdf, colors.clone(), N, DELTA))
                .expect("add tenant");
        }
        for _ in 0..ROUNDS {
            for t in 0..TENANTS {
                sup.submit(t, vec![(rrs_core::ColorId(0), BURST)]).expect("submit");
            }
            sup.tick().expect("tick");
        }
        let stats = sup.stats().expect("stats");
        sup.finish().expect("finish");
        stats
    };

    // Gate: under overload the watermark sheds exactly the excess.
    let stats = drive_overload(ShedConfig {
        inbox_watermark: Some(WATERMARK),
        queue_watermark: None,
    });
    assert_eq!(
        stats.shed(),
        TENANTS * ROUNDS * (BURST - WATERMARK),
        "inbox watermark must shed exactly the per-round excess"
    );
    println!("service: overload shedding accounts for the excess exactly");

    let mut group = c.benchmark_group("service-shedding");
    group.sample_size(10);
    group.throughput(Throughput::Elements(TENANTS * ROUNDS * BURST));
    group.bench_function("overload-no-shed", |b| {
        b.iter(|| black_box(drive_overload(ShedConfig::default())).shed());
    });
    group.bench_function("overload-inbox-watermark", |b| {
        b.iter(|| {
            black_box(drive_overload(ShedConfig {
                inbox_watermark: Some(WATERMARK),
                queue_watermark: None,
            }))
            .shed()
        });
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_shard_scaling,
    bench_snapshot_restore,
    bench_supervised_recovery,
    bench_shedding_throughput
);
criterion_main!(benches);
