//! E12f — uniform-variant benches: block simulator vs round-level engine
//! throughput, the weighted-caching DP, and Landlord.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rrs_core::engine::run_policy;
use rrs_uniform::filecache::{run_policy as run_cache, Landlord, WeightedCachingInstance};
use rrs_uniform::problem::run_block_policy;
use rrs_uniform::{BlockAdapter, UniformWorkload, WeightedDlru};

fn bench_uniform(c: &mut Criterion) {
    let mut group = c.benchmark_group("uniform");
    for &blocks in &[128usize, 512] {
        let inst = UniformWorkload {
            blocks,
            ..UniformWorkload::default()
        }
        .generate(1);
        group.bench_with_input(BenchmarkId::new("block_model", blocks), &inst, |b, inst| {
            b.iter(|| {
                let mut p = WeightedDlru::new(inst, 4, 8);
                run_block_policy(inst, &mut p, 4, 8).unwrap()
            })
        });
        group.bench_with_input(BenchmarkId::new("round_model", blocks), &inst, |b, inst| {
            let trace = inst.to_round_trace();
            b.iter(|| {
                let mut p = BlockAdapter::new(WeightedDlru::new(inst, 4, 8), inst.d);
                run_policy(&trace, &mut p, 4, 8).unwrap()
            })
        });
    }
    // Landlord over a long weighted request stream.
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};
    let mut rng = StdRng::seed_from_u64(2);
    let costs: Vec<u64> = (0..64).map(|_| rng.gen_range(1..32)).collect();
    let reqs: Vec<u32> = (0..50_000).map(|_| rng.gen_range(0..64)).collect();
    let inst = WeightedCachingInstance::new(costs, reqs).unwrap();
    group.bench_function("landlord_50k", |b| {
        b.iter(|| run_cache(&inst, &mut Landlord::new(&inst.costs), 16))
    });
    group.finish();
}

criterion_group!(benches, bench_uniform);
criterion_main!(benches);
