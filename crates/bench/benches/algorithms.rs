//! E12b — per-algorithm throughput: full runs of ΔLRU-EDF, ΔLRU, EDF and the
//! baselines over the same workload, scaling the color count.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use rrs_analysis::runner::{run_kind, PolicyKind};
use rrs_bench::bench_trace;

fn bench_algorithms(c: &mut Criterion) {
    let mut group = c.benchmark_group("algorithms");
    let horizon = 2048;
    for &ncolors in &[8usize, 32] {
        let trace = bench_trace(ncolors, horizon, 2);
        group.throughput(Throughput::Elements(horizon));
        for kind in [
            PolicyKind::DlruEdf,
            PolicyKind::Dlru,
            PolicyKind::Edf,
            PolicyKind::GreedyPending,
        ] {
            group.bench_with_input(
                BenchmarkId::new(kind.name(), ncolors),
                &trace,
                |b, trace| {
                    b.iter(|| run_kind(kind, trace, 8, 4).unwrap());
                },
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench_algorithms);
criterion_main!(benches);
