//! E12c — reduction overhead: the cost of the split / delay / project layers
//! relative to running ΔLRU-EDF directly.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use rrs_analysis::runner::{run_kind, PolicyKind};
use rrs_bench::bursty_trace;
use rrs_reductions::{delay_to_batches, split_trace};

fn bench_reductions(c: &mut Criterion) {
    let horizon = 2048;
    let trace = bursty_trace(8, horizon, 3);
    let mut group = c.benchmark_group("reductions");
    group.throughput(Throughput::Elements(horizon));
    group.bench_function("split_trace", |b| b.iter(|| split_trace(&trace)));
    group.bench_function("delay_to_batches", |b| b.iter(|| delay_to_batches(&trace)));
    group.bench_function("dlru_edf_direct", |b| {
        b.iter(|| run_kind(PolicyKind::DlruEdf, &trace, 8, 4).unwrap())
    });
    group.bench_function("distribute_pipeline", |b| {
        b.iter(|| run_kind(PolicyKind::Distribute, &trace, 8, 4).unwrap())
    });
    group.bench_function("varbatch_pipeline", |b| {
        b.iter(|| run_kind(PolicyKind::VarBatch, &trace, 8, 4).unwrap())
    });
    group.finish();
}

criterion_group!(benches, bench_reductions);
criterion_main!(benches);
