//! E12d — runtime on the Appendix A/B adversarial constructions (whose cost
//! behaviour is experiment E1/E2; here we measure wall-clock as the
//! constructions grow).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rrs_analysis::runner::{run_kind, PolicyKind};
use rrs_workloads::{DlruAdversary, EdfAdversary};

fn bench_adversaries(c: &mut Criterion) {
    let mut group = c.benchmark_group("adversaries");
    for &j in &[6u32, 8] {
        let adv = DlruAdversary {
            n: 8,
            delta: 2,
            j,
            k: j + 2,
        };
        let trace = adv.generate();
        group.bench_with_input(BenchmarkId::new("appendixA/dlru_edf", j), &trace, |b, t| {
            b.iter(|| run_kind(PolicyKind::DlruEdf, t, 8, 2).unwrap())
        });
    }
    for &k in &[6u32, 8] {
        let adv = EdfAdversary {
            n: 4,
            delta: 6,
            j: 3,
            k,
        };
        let trace = adv.generate();
        group.bench_with_input(BenchmarkId::new("appendixB/edf", k), &trace, |b, t| {
            b.iter(|| run_kind(PolicyKind::Edf, t, 4, 6).unwrap())
        });
    }
    group.finish();
}

criterion_group!(benches, bench_adversaries);
criterion_main!(benches);
