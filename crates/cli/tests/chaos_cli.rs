//! End-to-end smokes for `rrs chaos` and the typed data-dir validation:
//! the quick lattice passes all oracles, two sweeps from the same seed are
//! byte-identical, and an unusable `--data-dir` is rejected with exit
//! code 2 instead of a panic — for both `chaos` and `serve-sim`.

use std::process::{Command, Output};

fn rrs(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_rrs"))
        .args(args)
        .output()
        .expect("spawn rrs")
}

fn stderr(out: &Output) -> String {
    String::from_utf8_lossy(&out.stderr).into_owned()
}

fn temp_path(tag: &str) -> std::path::PathBuf {
    std::env::temp_dir().join(format!("rrs-chaos-cli-{tag}-{}", std::process::id()))
}

#[test]
fn quick_lattice_passes_and_is_deterministic() {
    let dir_a = temp_path("sweep-a");
    let dir_b = temp_path("sweep-b");
    let a = rrs(&["chaos", "--quick", "--json", "--data-dir", dir_a.to_str().unwrap()]);
    assert!(a.status.success(), "sweep failed: {}", stderr(&a));
    let b = rrs(&["chaos", "--quick", "--json", "--data-dir", dir_b.to_str().unwrap()]);
    assert!(b.status.success(), "rerun failed: {}", stderr(&b));
    assert_eq!(
        a.stdout, b.stdout,
        "two sweeps of the same lattice must be byte-identical"
    );
    let doc = serde_json::parse(&String::from_utf8_lossy(&a.stdout)).expect("valid JSON");
    assert_eq!(
        doc.get_field("report"),
        Some(&serde_json::Value::Str("chaos-lattice".into()))
    );
    let total = doc.get_field("cells_total").expect("cells_total");
    let passed = doc.get_field("cells_passed").expect("cells_passed");
    assert_eq!(total, passed, "every cell must pass its oracles");
    assert_eq!(
        doc.get_field("failures"),
        Some(&serde_json::Value::Array(Vec::new()))
    );
}

#[test]
fn written_report_matches_stdout_report() {
    let out_path = temp_path("report.json");
    let dir = temp_path("sweep-out");
    let run = rrs(&[
        "chaos",
        "--quick",
        "--json",
        "--out",
        out_path.to_str().unwrap(),
        "--data-dir",
        dir.to_str().unwrap(),
    ]);
    assert!(run.status.success(), "sweep failed: {}", stderr(&run));
    let written = std::fs::read_to_string(&out_path).expect("report written");
    assert_eq!(
        written.trim_end(),
        String::from_utf8_lossy(&run.stdout).trim_end(),
        "--out must write exactly the printed report"
    );
    let _ = std::fs::remove_file(&out_path);
}

#[test]
fn chaos_rejects_a_non_directory_data_dir_with_exit_2() {
    let file = temp_path("notadir-chaos");
    std::fs::write(&file, b"plain file").unwrap();
    let out = rrs(&["chaos", "--quick", "--data-dir", file.to_str().unwrap()]);
    assert_eq!(out.status.code(), Some(2));
    let err = stderr(&out);
    assert!(err.contains("invalid data dir"), "stderr: {err}");
    assert!(!err.contains("panicked"), "must fail cleanly, got: {err}");
    let _ = std::fs::remove_file(&file);
}

#[test]
fn serve_sim_rejects_a_non_directory_data_dir_with_exit_2() {
    let file = temp_path("notadir-serve");
    std::fs::write(&file, b"plain file").unwrap();
    let out = rrs(&[
        "serve-sim",
        "--tenants",
        "2",
        "--rounds",
        "3",
        "--storage",
        "disk",
        "--data-dir",
        file.to_str().unwrap(),
    ]);
    assert_eq!(out.status.code(), Some(2));
    let err = stderr(&out);
    assert!(err.contains("invalid data dir"), "stderr: {err}");
    assert!(!err.contains("panicked"), "must fail cleanly, got: {err}");
    let _ = std::fs::remove_file(&file);
}
