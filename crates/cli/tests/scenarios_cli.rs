//! End-to-end smokes for `rrs scenarios`: determinism from a fixed seed,
//! schema conformance of the JSON report, the adversarial separation gate,
//! and clean (panic-free, exit-code-2) rejection of invalid specs.

use std::process::{Command, Output};

fn rrs(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_rrs"))
        .args(args)
        .output()
        .expect("spawn rrs")
}

fn stderr(out: &Output) -> String {
    String::from_utf8_lossy(&out.stderr).into_owned()
}

/// Small axes so the smoke stays fast: 3 policies x 4 workloads x 2 shard
/// counts — still wide enough for the schema's minimums.
const QUICK: &[&str] = &[
    "scenarios",
    "--quick",
    "--policies",
    "dlru-edf,dlru,edf",
    "--workloads",
    "dlru-adversary,edf-adversary,drifting,bursty",
    "--shard-list",
    "1,2",
];

#[test]
fn quick_sweep_is_deterministic_and_passes_separation() {
    let args: Vec<&str> = QUICK.iter().chain(&["--json", "--require-separation"]).copied().collect();
    let first = rrs(&args);
    assert!(first.status.success(), "sweep failed: {}", stderr(&first));
    let second = rrs(&args);
    assert!(second.status.success());
    assert_eq!(
        first.stdout, second.stdout,
        "two sweeps from the same seed must be byte-identical"
    );
    // The report parses and the separation verdict is affirmative.
    let doc = serde_json::parse(&String::from_utf8_lossy(&first.stdout)).expect("valid JSON");
    let sep = doc.get_field("separation").expect("separation object");
    assert_eq!(
        sep.get_field("all_separated"),
        Some(&serde_json::Value::Bool(true))
    );
}

#[test]
fn written_report_passes_the_schema_check() {
    let out_path = std::env::temp_dir().join(format!("rrs-scen-cli-{}.json", std::process::id()));
    let out_str = out_path.to_str().unwrap();
    let args: Vec<&str> = QUICK.iter().chain(&["--out", out_str]).copied().collect();
    let run = rrs(&args);
    assert!(run.status.success(), "sweep failed: {}", stderr(&run));
    let check = rrs(&["scenarios", "--check-schema", out_str]);
    assert!(check.status.success(), "schema check failed: {}", stderr(&check));
    let _ = std::fs::remove_file(&out_path);
}

#[test]
fn schema_check_rejects_a_malformed_report() {
    let out_path = std::env::temp_dir().join(format!("rrs-scen-bad-{}.json", std::process::id()));
    std::fs::write(&out_path, "{\"report\": \"scenarios\", \"cells\": []}").unwrap();
    let check = rrs(&["scenarios", "--check-schema", out_path.to_str().unwrap()]);
    assert!(!check.status.success());
    assert!(stderr(&check).contains("schema"), "stderr: {}", stderr(&check));
    let _ = std::fs::remove_file(&out_path);
}

#[test]
fn invalid_specs_are_rejected_cleanly() {
    // Overflowing adversary size: validate() catches the 2^k overflow before
    // any generator can panic on a shift.
    let bad_size = rrs(&["scenarios", "--quick", "--size", "70"]);
    assert_eq!(bad_size.status.code(), Some(2));
    let err = stderr(&bad_size);
    assert!(err.contains("invalid"), "stderr: {err}");
    assert!(!err.contains("panicked"), "must fail cleanly, got: {err}");

    // Unknown axis entries.
    for args in [
        &["scenarios", "--quick", "--policies", "dlru-edf,hindsight"][..],
        &["scenarios", "--quick", "--workloads", "dlru-adversary,zeta"][..],
        &["scenarios", "--quick", "--size", "not-a-number"][..],
    ] {
        let out = rrs(args);
        assert_eq!(out.status.code(), Some(2), "args {args:?}");
        assert!(!stderr(&out).contains("panicked"), "args {args:?}");
    }

    // Unreadable schema-check target.
    let missing = rrs(&["scenarios", "--check-schema", "/nonexistent/nope.json"]);
    assert_eq!(missing.status.code(), Some(2));
}
