//! `rrs chaos` — the deterministic chaos-lattice sweep.
//!
//! Enumerates a seeded lattice of fault combinations — worker faults
//! (panics, stalls, dropped replies, corrupt snapshots) crossed with
//! storage IO faults (transient errors, slow IO, error bursts, disk-full,
//! torn writes, CRC flips) — across **both** storage backends and **both**
//! ingest modes. Every cell drives the same deterministic multi-tenant
//! workload through a supervised service and is held to three oracles:
//!
//! * **zero panics** — every injected fault is absorbed by the supervisor
//!   or the self-healing storage layer; any surfaced error fails the cell;
//! * **job conservation** — `arrived == executed + dropped + shed + queued`
//!   on the live run and again on the cold-start recovery;
//! * **bit-identical final state** — the faulted run's per-tenant
//!   [`RunResult`]s must equal a fault-free oracle run, and a disk cell's
//!   cold start must recover a consistent *prefix* of the live run: every
//!   recovered shard epoch `<=` the live epoch, recovered per-tenant
//!   progress `<=` live progress, and when every shard recovered its full
//!   epoch the recovered results must be bit-identical too.
//!
//! The sweep is a pure function of `(--seed, --quick)`: the JSON report
//! carries no clocks, paths or machine state, so two runs of the same
//! command are byte-identical — the CI chaos-lattice gate checks exactly
//! that with `cmp`.

use rrs_core::{ColorId, ColorTable, RunResult};
use rrs_service::{
    BreakerConfig, DiskBackend, DiskConfig, Fault, FaultKind, FaultPlan, IngestMode,
    MemoryBackend, PolicySpec, RetryPolicy, ShedConfig, StorageBackend, Supervisor,
    SupervisorConfig, TenantSpec,
};
use serde_json::Value;
use std::collections::BTreeMap;
use std::path::{Path, PathBuf};
use std::process::ExitCode;
use std::time::Duration;

const DELAY_BOUNDS: &[u64] = &[2, 4, 8];
const TENANTS: u64 = 4;
const ROUNDS: u64 = 12;

/// Worker-fault counts along the lattice's first axis.
const WORKER_LEVELS: &[usize] = &[0, 2, 4];
/// Storage IO-fault counts along the lattice's second axis.
const IO_LEVELS: &[usize] = &[0, 2, 4];
/// Base seeds for the full sweep; `--quick` keeps only the first two.
const BASE_SEEDS: &[u64] = &[1, 2, 3, 4, 5, 6];

fn flag(args: &[String], name: &str) -> bool {
    args.iter().any(|a| a == name)
}

fn opt_value<'a>(args: &'a [String], name: &str) -> Option<&'a str> {
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1))
        .map(String::as_str)
}

fn splitmix(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

fn spec(policy: PolicySpec) -> TenantSpec {
    TenantSpec::new(policy, ColorTable::from_delay_bounds(DELAY_BOUNDS), 4, 2)
}

fn policy_for(id: u64) -> PolicySpec {
    let all = PolicySpec::all();
    all[(id as usize) % all.len()]
}

/// Deterministic per-cell arrivals: keyed by `(base_seed, tenant, round)`
/// so every base seed exercises a different traffic pattern while all
/// cells sharing a base seed face the *same* workload as their oracle.
fn arrivals(base_seed: u64, tenant: u64, round: u64) -> Vec<(ColorId, u64)> {
    let mut out = Vec::new();
    for c in 0..DELAY_BOUNDS.len() as u64 {
        let mix = base_seed
            .wrapping_mul(101)
            .wrapping_add(tenant.wrapping_mul(31))
            .wrapping_add(round.wrapping_mul(17))
            .wrapping_add(c.wrapping_mul(7));
        if mix % 3 != 0 {
            out.push((ColorId(c as u32), 1 + mix % 4));
        }
    }
    out
}

fn shards_for(base_seed: u64) -> usize {
    1 + (base_seed % 3) as usize
}

fn config(shards: usize, ingest: IngestMode) -> SupervisorConfig {
    SupervisorConfig {
        shards,
        queue_capacity: 8,
        checkpoint_every: 4,
        retry: RetryPolicy {
            attempts: 4,
            op_timeout: Duration::from_millis(250),
            backoff: Duration::from_millis(2),
        },
        shed: ShedConfig::default(),
        ingest,
    }
}

fn disk_backend(dir: &Path) -> Box<DiskBackend> {
    let mut cfg = DiskConfig::new(dir);
    cfg.io_backoff = Duration::from_micros(50); // keep injected retries fast
    Box::new(DiskBackend::new(cfg))
}

fn ingest_name(ingest: IngestMode) -> &'static str {
    match ingest {
        IngestMode::Batched => "batched",
        IngestMode::PerCommand => "per-command",
    }
}

/// Drives the standard workload through `sup`, checking conservation
/// before finishing. Returns the final results plus per-shard tick epochs
/// and the storage counters observed before shutdown.
#[allow(clippy::type_complexity)]
fn drive(
    mut sup: Supervisor,
    base_seed: u64,
    shards: usize,
) -> Result<(BTreeMap<u64, RunResult>, Vec<u64>, rrs_service::StorageStats), String> {
    for id in 0..TENANTS {
        sup.add_tenant(id, spec(policy_for(id)))
            .map_err(|e| format!("add_tenant {id}: {e}"))?;
    }
    for round in 0..ROUNDS {
        for id in 0..TENANTS {
            sup.submit(id, arrivals(base_seed, id, round))
                .map_err(|e| format!("submit t{id} r{round}: {e}"))?;
        }
        sup.tick().map_err(|e| format!("tick {round}: {e}"))?;
    }
    let stats = sup.stats().map_err(|e| format!("stats: {e}"))?;
    if !stats.conserves_jobs() {
        return Err("live run broke job conservation".into());
    }
    let storage = stats.storage.clone();
    let ticks: Vec<u64> = (0..shards)
        .map(|s| sup.shard_ticks(s).unwrap_or(0))
        .collect();
    let results = sup.finish().map_err(|e| format!("finish: {e}"))?;
    Ok((results, ticks, storage))
}

/// The fault-free oracle for one `(base_seed, ingest)` pair: the same
/// workload, memory-backed, no faults.
fn oracle(base_seed: u64, ingest: IngestMode) -> Result<BTreeMap<u64, RunResult>, String> {
    let shards = shards_for(base_seed);
    let sup = Supervisor::with_faults(config(shards, ingest), &FaultPlan::none())
        .map_err(|e| format!("oracle start: {e}"))?;
    drive(sup, base_seed, shards).map(|(r, _, _)| r)
}

/// One lattice cell's verdict, as deterministic JSON fields.
struct CellReport {
    key: String,
    recovery: &'static str, // "full" | "prefix" | "n/a"
    degraded: u64,
    healed: u64,
    retries: u64,
    quarantines: u64,
}

/// Runs one lattice cell: the faulted run, the bit-identical comparison
/// against the oracle, and (disk cells) the cold-start prefix oracle.
fn run_cell(
    base_seed: u64,
    worker_faults: usize,
    io_faults: usize,
    backend_name: &str,
    ingest: IngestMode,
    root: &Path,
    clean: &BTreeMap<u64, RunResult>,
) -> Result<CellReport, String> {
    let shards = shards_for(base_seed);
    let key = format!(
        "s{base_seed}-w{worker_faults}-i{io_faults}-{backend_name}-{}",
        ingest_name(ingest)
    );
    let mut cell_seed = base_seed
        .wrapping_mul(0x0105_1965)
        .wrapping_add((worker_faults * 7 + io_faults * 13) as u64);
    let worker_seed = splitmix(&mut cell_seed);
    let io_seed = splitmix(&mut cell_seed);
    let mut plan = FaultPlan::random(worker_seed, shards, ROUNDS, worker_faults);
    plan.faults
        .extend(FaultPlan::random_io(io_seed, shards, ROUNDS, io_faults).faults);

    let dir = root.join(&key);
    let backend: Box<dyn StorageBackend> = if backend_name == "disk" {
        let _ = std::fs::remove_dir_all(&dir);
        disk_backend(&dir)
    } else {
        Box::new(MemoryBackend::new())
    };
    let sup = Supervisor::with_storage(config(shards, ingest), &plan, backend)
        .map_err(|e| format!("{key}: start: {e}"))?;
    let (results, live_ticks, storage) =
        drive(sup, base_seed, shards).map_err(|e| format!("{key}: {e}"))?;
    if &results != clean {
        return Err(format!("{key}: faulted results diverge from the unfailed oracle"));
    }

    // Disk cells: the cold-start prefix-consistency oracle.
    let mut recovery = "n/a";
    if backend_name == "disk" {
        let sup = Supervisor::with_storage(
            config(shards, ingest),
            &FaultPlan::none(),
            disk_backend(&dir),
        )
        .map_err(|e| format!("{key}: cold start: {e}"))?;
        let mut full = true;
        for (s, &live) in live_ticks.iter().enumerate() {
            let rec = sup
                .shard_ticks(s)
                .map_err(|e| format!("{key}: recovered shard_ticks({s}): {e}"))?;
            if rec > live {
                return Err(format!(
                    "{key}: shard {s} recovered {rec} epochs, beyond the live run's {live}"
                ));
            }
            full &= rec == live;
        }
        let (recovered, _, _) =
            drive_recovered(sup, shards).map_err(|e| format!("{key}: cold start: {e}"))?;
        for (id, live_r) in &results {
            if let Some(rec_r) = recovered.get(id) {
                if rec_r.executed > live_r.executed || rec_r.rounds > live_r.rounds {
                    return Err(format!(
                        "{key}: tenant {id} recovered past the live run \
                         ({} > {} executed)",
                        rec_r.executed, live_r.executed
                    ));
                }
            }
        }
        if full {
            if recovered != results {
                return Err(format!(
                    "{key}: full-epoch recovery is not bit-identical to the live run"
                ));
            }
            recovery = "full";
        } else {
            recovery = "prefix";
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    Ok(CellReport {
        key,
        recovery,
        degraded: storage.degraded_commits,
        healed: storage.heal_events,
        retries: storage.retries,
        quarantines: storage.quarantines,
    })
}

/// Drains a cold-started supervisor without driving new traffic: checks
/// conservation of the recovered state, then finishes.
#[allow(clippy::type_complexity)]
fn drive_recovered(
    mut sup: Supervisor,
    shards: usize,
) -> Result<(BTreeMap<u64, RunResult>, Vec<u64>, rrs_service::StorageStats), String> {
    let stats = sup.stats().map_err(|e| format!("stats: {e}"))?;
    if !stats.conserves_jobs() {
        return Err("recovered state broke job conservation".into());
    }
    let storage = stats.storage.clone();
    let ticks: Vec<u64> = (0..shards)
        .map(|s| sup.shard_ticks(s).unwrap_or(0))
        .collect();
    let results = sup.finish().map_err(|e| format!("finish: {e}"))?;
    Ok((results, ticks, storage))
}

/// The breaker probe: a persistent panic storm on shard 0 with the circuit
/// breaker installed must trip exactly once, bound the respawn count, shed
/// the tripped shard's traffic with full accounting, and still conserve
/// jobs end to end.
fn breaker_probe(backend_name: &str, root: &Path) -> Result<Value, String> {
    let shards = 2;
    let base_seed = 9;
    let plan = FaultPlan {
        faults: (1..=ROUNDS)
            .map(|t| Fault { shard: 0, at_tick: t, kind: FaultKind::Panic })
            .collect(),
    };
    let dir = root.join(format!("breaker-{backend_name}"));
    let backend: Box<dyn StorageBackend> = if backend_name == "disk" {
        let _ = std::fs::remove_dir_all(&dir);
        disk_backend(&dir)
    } else {
        Box::new(MemoryBackend::new())
    };
    let mut sup = Supervisor::with_storage(config(shards, IngestMode::Batched), &plan, backend)
        .map_err(|e| format!("breaker/{backend_name}: start: {e}"))?;
    sup.set_breaker(BreakerConfig {
        trip_after: 3,
        window: 32,
        cooldown: 10_000,
        probes: 2,
    });
    for id in 0..TENANTS {
        sup.add_tenant(id, spec(policy_for(id)))
            .map_err(|e| format!("breaker/{backend_name}: add_tenant {id}: {e}"))?;
    }
    for round in 0..ROUNDS {
        for id in 0..TENANTS {
            sup.submit(id, arrivals(base_seed, id, round))
                .map_err(|e| format!("breaker/{backend_name}: submit t{id}: {e}"))?;
        }
        sup.tick()
            .map_err(|e| format!("breaker/{backend_name}: tick {round}: {e}"))?;
    }
    let trips = sup.breaker_trips();
    let respawns = sup.recoveries();
    let stats = sup.stats().map_err(|e| format!("breaker/{backend_name}: stats: {e}"))?;
    let conserved = stats.conserves_jobs();
    let shed: u64 = stats.tenants.iter().map(|(_, p)| p.shed).sum();
    sup.finish()
        .map_err(|e| format!("breaker/{backend_name}: finish: {e}"))?;
    if backend_name == "disk" {
        let _ = std::fs::remove_dir_all(&dir);
    }
    if trips != 1 {
        return Err(format!("breaker/{backend_name}: expected exactly 1 trip, saw {trips}"));
    }
    // trip_after - 1 storm rebuilds plus at most a handful of forced probes.
    if respawns > 6 {
        return Err(format!(
            "breaker/{backend_name}: breaker failed to bound the storm: {respawns} respawns"
        ));
    }
    if !conserved {
        return Err(format!("breaker/{backend_name}: shed losses were not accounted"));
    }
    if shed == 0 {
        return Err(format!(
            "breaker/{backend_name}: the tripped shard shed nothing — storm never bit"
        ));
    }
    Ok(Value::Object(vec![
        ("backend".into(), Value::Str(backend_name.into())),
        ("trips".into(), Value::U64(trips)),
        ("respawns_bounded".into(), Value::Bool(true)),
        ("shed_jobs_accounted".into(), Value::Bool(true)),
        ("conserved".into(), Value::Bool(conserved)),
    ]))
}

/// Entry point for `rrs chaos`.
pub fn cmd_chaos(args: &[String]) -> ExitCode {
    let quick = flag(args, "--quick");
    let seed: u64 = match opt_value(args, "--seed").map(str::parse) {
        None => 0,
        Some(Ok(s)) => s,
        Some(Err(e)) => {
            eprintln!("chaos: --seed: {e}");
            return ExitCode::from(2);
        }
    };
    let root: PathBuf = match opt_value(args, "--data-dir") {
        Some(dir) => PathBuf::from(dir),
        None => std::env::temp_dir().join(format!("rrs-chaos-{}", std::process::id())),
    };
    let root_cfg = DiskConfig::new(&root);
    if let Err(e) = root_cfg.validate() {
        eprintln!("chaos: {e}");
        return ExitCode::from(2);
    }
    crate::suppress_injected_panic_output();

    let base_seeds: Vec<u64> = if quick {
        BASE_SEEDS.iter().take(2).map(|s| s ^ seed).collect()
    } else {
        BASE_SEEDS.iter().map(|s| s ^ seed).collect()
    };
    let backends = ["memory", "disk"];
    let ingests = [IngestMode::Batched, IngestMode::PerCommand];

    let mut oracles: BTreeMap<(u64, &'static str), BTreeMap<u64, RunResult>> = BTreeMap::new();
    let mut cells: Vec<CellReport> = Vec::new();
    let mut failures: Vec<String> = Vec::new();

    for &base_seed in &base_seeds {
        for ingest in ingests {
            let clean = match oracles.entry((base_seed, ingest_name(ingest))) {
                std::collections::btree_map::Entry::Occupied(e) => e.into_mut(),
                std::collections::btree_map::Entry::Vacant(e) => match oracle(base_seed, ingest) {
                    Ok(r) => e.insert(r),
                    Err(err) => {
                        eprintln!("chaos: oracle s{base_seed}/{}: {err}", ingest_name(ingest));
                        return ExitCode::FAILURE;
                    }
                },
            };
            for &wf in WORKER_LEVELS {
                for &io in IO_LEVELS {
                    for backend in backends {
                        match run_cell(base_seed, wf, io, backend, ingest, &root, clean) {
                            Ok(cell) => cells.push(cell),
                            Err(e) => failures.push(e),
                        }
                    }
                }
            }
        }
    }

    let mut breaker_rows = Vec::new();
    for backend in backends {
        match breaker_probe(backend, &root) {
            Ok(v) => breaker_rows.push(v),
            Err(e) => failures.push(e),
        }
    }
    let _ = std::fs::remove_dir_all(&root);

    let total = cells.len() + failures.len();
    let full_recovery = cells.iter().filter(|c| c.recovery == "full").count();
    let prefix_recovery = cells.iter().filter(|c| c.recovery == "prefix").count();
    let degraded_cells = cells.iter().filter(|c| c.degraded > 0).count();
    let healed_cells = cells.iter().filter(|c| c.healed > 0).count();
    let retries: u64 = cells.iter().map(|c| c.retries).sum();
    let quarantines: u64 = cells.iter().map(|c| c.quarantines).sum();

    let cell_rows: Vec<Value> = cells
        .iter()
        .map(|c| {
            Value::Object(vec![
                ("cell".into(), Value::Str(c.key.clone())),
                ("recovery".into(), Value::Str(c.recovery.into())),
                ("degraded_commits".into(), Value::U64(c.degraded)),
                ("heal_events".into(), Value::U64(c.healed)),
                ("io_retries".into(), Value::U64(c.retries)),
                ("quarantines".into(), Value::U64(c.quarantines)),
            ])
        })
        .collect();
    let doc = Value::Object(vec![
        ("report".into(), Value::Str("chaos-lattice".into())),
        ("seed".into(), Value::U64(seed)),
        ("quick".into(), Value::Bool(quick)),
        ("tenants".into(), Value::U64(TENANTS)),
        ("rounds".into(), Value::U64(ROUNDS)),
        ("cells_total".into(), Value::U64(total as u64)),
        ("cells_passed".into(), Value::U64(cells.len() as u64)),
        ("full_recovery_cells".into(), Value::U64(full_recovery as u64)),
        ("prefix_recovery_cells".into(), Value::U64(prefix_recovery as u64)),
        ("degraded_cells".into(), Value::U64(degraded_cells as u64)),
        ("healed_cells".into(), Value::U64(healed_cells as u64)),
        ("io_retries".into(), Value::U64(retries)),
        ("quarantines".into(), Value::U64(quarantines)),
        ("breaker".into(), Value::Array(breaker_rows)),
        (
            "failures".into(),
            Value::Array(failures.iter().map(|f| Value::Str(f.clone())).collect()),
        ),
        ("cells".into(), Value::Array(cell_rows)),
    ]);
    let body = serde_json::to_string_pretty(&doc).expect("render report");

    if let Some(path) = opt_value(args, "--out") {
        if let Err(e) = std::fs::write(path, body.clone() + "\n") {
            eprintln!("chaos: cannot write {path}: {e}");
            return ExitCode::from(2);
        }
    }
    if flag(args, "--json") {
        println!("{body}");
    } else {
        println!(
            "chaos: {}/{} cells passed ({} full-recovery, {} prefix-recovery, \
             {} degraded, {} healed; {} io retries, {} quarantines)",
            cells.len(),
            total,
            full_recovery,
            prefix_recovery,
            degraded_cells,
            healed_cells,
            retries,
            quarantines
        );
    }
    if failures.is_empty() {
        ExitCode::SUCCESS
    } else {
        for f in &failures {
            eprintln!("chaos: FAIL {f}");
        }
        ExitCode::FAILURE
    }
}
