//! `rrs` — experiment driver for the reconfigurable resource scheduling
//! reproduction.
//!
//! ```text
//! rrs exp <id|all> [--quick] [--threads N] [--seed S] [--csv|--md]
//! rrs run --workload <name> [--policy <name>] [--n N] [--delta D] [--seed S]
//! rrs gen --workload <name> --out <path> [--seed S] [--json]
//! rrs stats --workload <name> [--seed S]
//! rrs timeline --workload <name> --policy <name> [--n N] [--delta D] [--width W]
//! rrs sweep --workload <name> --policy <name> [--n-list 4,8,16]
//!           [--delta-list 2,4,8] [--seeds K] [--threads N] [--csv]
//! rrs serve-sim --tenants T [--shards S] [--rounds R] [--workload <name>]
//!               [--policy <name>] [--n N] [--delta D] [--seed S]
//!               [--queue-cap C] [--kill-round R [--kill-shard I]]
//!               [--supervised] [--fault-plan SPEC] [--checkpoint-every K]
//!               [--shed-watermark W] [--shed-queue Q] [--ingest batched|per-command]
//!               [--storage memory|disk] [--data-dir PATH] [--codec binary|json]
//! rrs serve [--addr HOST:PORT] [--shards S] [--queue-cap C] [--checkpoint-every K]
//!           [--storage memory|disk] [--data-dir PATH] [--codec binary|json]
//! rrs bench-net [--clients C] [--tenants T] [--shards S] [--rounds R] [--parts P]
//!               [--colors K] [--open-inflight W] [--compress] [--codec binary|json]
//!               [--quick] [--out <path>] [--check] [--tolerance PCT]
//! rrs scenarios [--quick] [--seed S] [--tenants T] [--size N] [--horizon H]
//!               [--policies p1,p2,..] [--workloads w1,w2,..] [--shard-list 1,4]
//!               [--json] [--out <path>] [--require-separation] [--check-schema <path>]
//! rrs chaos [--quick] [--seed S] [--json] [--out <path>] [--data-dir PATH]
//! rrs opt --workload <name>|--trace <path> [--m M] [--delta D] [--exact] [--improve I]
//! rrs bench-engine [--colors N] [--rounds R] [--n N] [--delta D] [--seed S] [--quick]
//!                  [--out <path>] [--check] [--tolerance PCT]
//! rrs bench-service [--tenants T] [--shards S] [--rounds R] [--submits K] [--seed S]
//!                   [--quick] [--out <path>] [--check] [--tolerance PCT]
//! rrs bench-storage [--tenants T] [--shards S] [--rounds R] [--submits K] [--seed S]
//!                   [--checkpoint-every K] [--no-fsync] [--codec binary|json] [--quick]
//!                   [--out <path>] [--check] [--tolerance PCT]
//! rrs list
//! ```

mod chaos;
mod net;
mod scenarios;

use rrs_analysis::experiments::{run_experiment, ExpOptions, ALL_IDS};
use rrs_analysis::runner::{run_kind, PolicyKind};
use rrs_analysis::table::Table;
use rrs_workloads::prelude::*;
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("exp") => cmd_exp(&args[1..]),
        Some("run") => cmd_run(&args[1..]),
        Some("gen") => cmd_gen(&args[1..]),
        Some("stats") => cmd_stats(&args[1..]),
        Some("timeline") => cmd_timeline(&args[1..]),
        Some("sweep") => cmd_sweep(&args[1..]),
        Some("serve-sim") => cmd_serve_sim(&args[1..]),
        Some("serve") => net::cmd_serve(&args[1..]),
        Some("bench-net") => net::cmd_bench_net(&args[1..]),
        Some("scenarios") => scenarios::cmd_scenarios(&args[1..]),
        Some("chaos") => chaos::cmd_chaos(&args[1..]),
        Some("opt") => cmd_opt(&args[1..]),
        Some("bench-engine") => cmd_bench_engine(&args[1..]),
        Some("bench-service") => cmd_bench_service(&args[1..]),
        Some("bench-storage") => cmd_bench_storage(&args[1..]),
        Some("list") => {
            cmd_list();
            ExitCode::SUCCESS
        }
        _ => {
            eprintln!(
                "usage:\n  rrs exp <id|all> [--quick] [--threads N] [--seed S] [--csv|--md]\n  \
                 rrs run --workload <name> [--policy <name>] [--n N] [--delta D] [--seed S]\n  \
                 rrs gen --workload <name> --out <path> [--seed S] [--json]\n  \
                 rrs stats --workload <name> [--seed S]\n  \
                 rrs timeline --workload <name> --policy <name> [--n N] [--delta D] [--width W]\n  \
                 rrs sweep --workload <name> --policy <name> [--n-list ..] [--delta-list ..] [--seeds K] [--threads N] [--csv]\n  \
                 rrs serve-sim --tenants T [--shards S] [--rounds R] [--workload <name>] [--policy <name>]\n  \
                               [--n N] [--delta D] [--seed S] [--queue-cap C] [--kill-round R [--kill-shard I]]\n  \
                               [--supervised] [--fault-plan SPEC] [--checkpoint-every K] [--shed-watermark W] [--shed-queue Q]\n  \
                               [--ingest batched|per-command] [--storage memory|disk] [--data-dir PATH] [--codec binary|json]\n  \
                 rrs serve [--addr HOST:PORT] [--shards S] [--queue-cap C] [--checkpoint-every K]\n  \
                           [--storage memory|disk] [--data-dir PATH] [--codec binary|json]\n  \
                 rrs bench-net [--clients C] [--tenants T] [--shards S] [--rounds R] [--parts P] [--colors K]\n  \
                               [--open-inflight W] [--compress] [--codec binary|json] [--quick] [--out <path>] [--check] [--tolerance PCT]\n  \
                 rrs scenarios [--quick] [--seed S] [--tenants T] [--size N] [--horizon H] [--policies ..] [--workloads ..]\n  \
                               [--shard-list 1,4] [--json] [--out <path>] [--require-separation] [--check-schema <path>]\n  \
                 rrs chaos [--quick] [--seed S] [--json] [--out <path>] [--data-dir PATH]\n  \
                 rrs opt --workload <name>|--trace <path> [--m M] [--delta D] [--exact] [--improve I]\n  \
                 rrs bench-engine [--colors N] [--rounds R] [--n N] [--delta D] [--seed S] [--quick]\n  \
                                  [--out <path>] [--check] [--tolerance PCT]\n  \
                 rrs bench-service [--tenants T] [--shards S] [--rounds R] [--submits K] [--seed S] [--quick]\n  \
                                   [--out <path>] [--check] [--tolerance PCT]\n  \
                 rrs bench-storage [--tenants T] [--shards S] [--rounds R] [--submits K] [--seed S] [--quick]\n  \
                                   [--checkpoint-every K] [--no-fsync] [--codec binary|json] [--out <path>] [--check] [--tolerance PCT]\n  \
                 rrs list"
            );
            ExitCode::from(2)
        }
    }
}

pub(crate) fn flag(args: &[String], name: &str) -> bool {
    args.iter().any(|a| a == name)
}

pub(crate) fn opt_value<'a>(args: &'a [String], name: &str) -> Option<&'a str> {
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1))
        .map(String::as_str)
}

fn cmd_exp(args: &[String]) -> ExitCode {
    let Some(id) = args.first() else {
        eprintln!("exp: missing experiment id (try `rrs list`)");
        return ExitCode::from(2);
    };
    let opts = ExpOptions {
        quick: flag(args, "--quick"),
        threads: opt_value(args, "--threads")
            .and_then(|v| v.parse().ok())
            .unwrap_or(0),
        seed: opt_value(args, "--seed")
            .and_then(|v| v.parse().ok())
            .unwrap_or(0xC0FFEE),
    };
    let csv = flag(args, "--csv");
    let md = flag(args, "--md");
    let ids: Vec<&str> = if id == "all" {
        ALL_IDS.to_vec()
    } else {
        vec![id.as_str()]
    };
    let mut all_pass = true;
    for id in ids {
        match run_experiment(id, opts) {
            Some(report) => {
                if csv {
                    print!("{}", report.table.to_csv());
                } else if md {
                    println!("{}", report.render_markdown());
                } else {
                    println!("{}", report.render());
                }
                if report.pass == Some(false) {
                    all_pass = false;
                }
            }
            None => {
                eprintln!("unknown experiment id '{id}' (try `rrs list`)");
                return ExitCode::from(2);
            }
        }
    }
    if all_pass {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

fn parse_workload(name: &str, seed: u64) -> Option<rrs_core::Trace> {
    parse_workload_spec(name).map(|spec| spec.generate(seed))
}

fn parse_workload_spec(name: &str) -> Option<WorkloadSpec> {
    let spec = match name {
        "datacenter" => WorkloadSpec::Datacenter(Datacenter::default()),
        "router" => WorkloadSpec::Router(Router::default()),
        "background" => WorkloadSpec::BackgroundMix(BackgroundMix::default()),
        "dlru-adversary" => WorkloadSpec::DlruAdversary(DlruAdversary {
            n: 8,
            delta: 2,
            j: 8,
            k: 10,
        }),
        "edf-adversary" => WorkloadSpec::EdfAdversary(EdfAdversary {
            n: 4,
            delta: 6,
            j: 3,
            k: 9,
        }),
        "random-batched" => WorkloadSpec::RandomBatched(RandomBatched {
            delay_bounds: vec![2, 4, 4, 8, 16, 32],
            load: 0.6,
            activity: 0.8,
            horizon: 2048,
            rate_limited: true,
        }),
        "random-general" => WorkloadSpec::RandomGeneral(RandomGeneral {
            delay_bounds: vec![4, 8, 16, 64],
            rates: vec![0.5, 0.4, 0.3, 0.2],
            horizon: 2048,
        }),
        "bursty" => WorkloadSpec::Bursty(Bursty {
            delay_bounds: vec![4, 8, 16, 32],
            on_load: 0.9,
            p_on: 0.3,
            p_off: 0.3,
            horizon: 2048,
            rate_limited: true,
        }),
        _ => return None,
    };
    Some(spec)
}

const WORKLOAD_NAMES: &[&str] = &[
    "datacenter",
    "router",
    "background",
    "dlru-adversary",
    "edf-adversary",
    "random-batched",
    "random-general",
    "bursty",
];

fn parse_policy(name: &str) -> Option<PolicyKind> {
    Some(match name {
        "dlru-edf" => PolicyKind::DlruEdf,
        "dlru" => PolicyKind::Dlru,
        "edf" => PolicyKind::Edf,
        "seq-edf" => PolicyKind::SeqEdf,
        "ds-seq-edf" => PolicyKind::DsSeqEdf,
        "distribute" => PolicyKind::Distribute,
        "varbatch" => PolicyKind::VarBatch,
        "static" => PolicyKind::StaticPartition,
        "never" => PolicyKind::NeverReconfigure,
        "greedy" => PolicyKind::GreedyPending,
        "hindsight" => PolicyKind::HindsightGreedy,
        "adaptive" => PolicyKind::AdaptiveDlruEdf,
        "dlru-2" => PolicyKind::DlruK2,
        _ => return None,
    })
}

const POLICY_NAMES: &[&str] = &[
    "dlru-edf",
    "dlru",
    "edf",
    "seq-edf",
    "ds-seq-edf",
    "distribute",
    "varbatch",
    "static",
    "never",
    "greedy",
    "hindsight",
    "adaptive",
    "dlru-2",
];

fn cmd_run(args: &[String]) -> ExitCode {
    let seed = opt_value(args, "--seed")
        .and_then(|v| v.parse().ok())
        .unwrap_or(1u64);
    let n: usize = opt_value(args, "--n")
        .and_then(|v| v.parse().ok())
        .unwrap_or(8);
    let delta: u64 = opt_value(args, "--delta")
        .and_then(|v| v.parse().ok())
        .unwrap_or(4);
    let _ = seed;
    let trace = match load_trace(args) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("run: {e}");
            return ExitCode::from(2);
        }
    };
    let wname = opt_value(args, "--workload")
        .or(opt_value(args, "--trace"))
        .unwrap_or("trace");
    let kinds: Vec<PolicyKind> = match opt_value(args, "--policy") {
        Some(p) => match parse_policy(p) {
            Some(k) => vec![k],
            None => {
                eprintln!("unknown policy '{p}'; options: {POLICY_NAMES:?}");
                return ExitCode::from(2);
            }
        },
        None => PolicyKind::comparison_set().to_vec(),
    };
    println!(
        "workload {wname}: {} jobs, {} colors, horizon {}, class {:?}\n",
        trace.total_jobs(),
        trace.colors().len(),
        trace.horizon(),
        trace.batch_class()
    );
    let mut table = Table::new(["policy", "total", "reconfig", "drops", "completion %"]);
    for kind in kinds {
        match run_kind(kind, &trace, n, delta) {
            Ok(s) => {
                let total = s.executed + s.cost.drop;
                let completion = if total == 0 {
                    100.0
                } else {
                    100.0 * s.executed as f64 / total as f64
                };
                table.row([
                    kind.name().to_string(),
                    s.cost.total().to_string(),
                    s.cost.reconfig.to_string(),
                    s.cost.drop.to_string(),
                    format!("{completion:.1}"),
                ]);
            }
            Err(e) => {
                table.row([
                    kind.name().to_string(),
                    format!("error: {e}"),
                    String::new(),
                    String::new(),
                    String::new(),
                ]);
            }
        }
    }
    print!("{}", table.render());
    ExitCode::SUCCESS
}

fn cmd_gen(args: &[String]) -> ExitCode {
    let seed = opt_value(args, "--seed")
        .and_then(|v| v.parse().ok())
        .unwrap_or(1u64);
    let Some(wname) = opt_value(args, "--workload") else {
        eprintln!("gen: --workload is required; options: {WORKLOAD_NAMES:?}");
        return ExitCode::from(2);
    };
    let Some(out) = opt_value(args, "--out") else {
        eprintln!("gen: --out <path> is required");
        return ExitCode::from(2);
    };
    let Some(trace) = parse_workload(wname, seed) else {
        eprintln!("unknown workload '{wname}'");
        return ExitCode::from(2);
    };
    let result = if flag(args, "--json") {
        serde_json::to_vec_pretty(&trace)
            .map_err(|e| e.to_string())
            .and_then(|bytes| std::fs::write(out, bytes).map_err(|e| e.to_string()))
    } else {
        std::fs::write(out, trace.to_bytes()).map_err(|e| e.to_string())
    };
    match result {
        Ok(()) => {
            println!(
                "wrote {wname} (seed {seed}): {} jobs, {} colors -> {out}",
                trace.total_jobs(),
                trace.colors().len()
            );
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("gen failed: {e}");
            ExitCode::FAILURE
        }
    }
}

/// Loads a trace either from `--trace <path>` (binary, or JSON with
/// `--json`) or from `--workload <name>` + `--seed`.
fn load_trace(args: &[String]) -> Result<rrs_core::Trace, String> {
    if let Some(path) = opt_value(args, "--trace") {
        let bytes = std::fs::read(path).map_err(|e| format!("read {path}: {e}"))?;
        if flag(args, "--json") {
            serde_json::from_slice(&bytes).map_err(|e| format!("parse {path}: {e}"))
        } else {
            rrs_core::Trace::from_bytes(bytes.into()).map_err(|e| format!("decode {path}: {e}"))
        }
    } else {
        let seed = opt_value(args, "--seed")
            .and_then(|v| v.parse().ok())
            .unwrap_or(1u64);
        let wname = opt_value(args, "--workload")
            .ok_or_else(|| format!("--workload or --trace required; workloads: {WORKLOAD_NAMES:?}"))?;
        parse_workload(wname, seed).ok_or_else(|| format!("unknown workload '{wname}'"))
    }
}

fn cmd_stats(args: &[String]) -> ExitCode {
    let seed = opt_value(args, "--seed")
        .and_then(|v| v.parse().ok())
        .unwrap_or(1u64);
    let trace = match load_trace(args) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("stats: {e}");
            return ExitCode::from(2);
        }
    };
    let wname = opt_value(args, "--workload")
        .or(opt_value(args, "--trace"))
        .unwrap_or("trace");
    let stats = rrs_analysis::trace_stats(&trace);
    if opt_value(args, "--trace").is_some() {
        println!("workload {wname} (class {:?})", trace.batch_class());
    } else {
        println!("workload {wname} (seed {seed}, class {:?})", trace.batch_class());
    }
    print!("{}", stats.render(trace.colors()));
    ExitCode::SUCCESS
}

fn cmd_timeline(args: &[String]) -> ExitCode {
    let seed = opt_value(args, "--seed")
        .and_then(|v| v.parse().ok())
        .unwrap_or(1u64);
    let n: usize = opt_value(args, "--n")
        .and_then(|v| v.parse().ok())
        .unwrap_or(8);
    let delta: u64 = opt_value(args, "--delta")
        .and_then(|v| v.parse().ok())
        .unwrap_or(4);
    let width: usize = opt_value(args, "--width")
        .and_then(|v| v.parse().ok())
        .unwrap_or(100);
    let Some(wname) = opt_value(args, "--workload") else {
        eprintln!("timeline: --workload is required");
        return ExitCode::from(2);
    };
    let Some(trace) = parse_workload(wname, seed) else {
        eprintln!("unknown workload '{wname}'");
        return ExitCode::from(2);
    };
    let pname = opt_value(args, "--policy").unwrap_or("dlru-edf");
    // Timelines need a recorded schedule, so drive the engine directly for
    // the plain policies.
    use rrs_core::{CostModel, Engine, EngineOptions, Speed};
    let engine = Engine::with_options(EngineOptions {
        speed: Speed::Uni,
        record_schedule: true,
        track_latency: false,
        track_perf: false,
    });
    let mut policy: Box<dyn rrs_core::Policy> = match pname {
        "dlru-edf" => match rrs_algorithms::DlruEdf::new(trace.colors(), n, delta) {
            Ok(p) => Box::new(p),
            Err(e) => {
                eprintln!("{e}");
                return ExitCode::from(2);
            }
        },
        "dlru" => Box::new(rrs_algorithms::Dlru::new(trace.colors(), n, delta).unwrap()),
        "edf" => Box::new(rrs_algorithms::Edf::new(trace.colors(), n, delta).unwrap()),
        "greedy" => Box::new(rrs_algorithms::GreedyPending::new()),
        "static" => Box::new(rrs_algorithms::StaticPartition::new(trace.colors(), n)),
        other => {
            eprintln!("timeline supports dlru-edf|dlru|edf|greedy|static; got '{other}'");
            return ExitCode::from(2);
        }
    };
    match engine.run(&trace, policy.as_mut(), n, CostModel::new(delta)) {
        Ok(r) => {
            println!(
                "{} on {wname}: cost {} (reconfig {}, drops {})\n",
                policy.name(),
                r.cost.total(),
                r.cost.reconfig,
                r.cost.drop
            );
            let schedule = r.schedule.as_ref().expect("recording enabled");
            print!("{}", rrs_analysis::render_timeline(schedule, trace.colors(), width));
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("run failed: {e}");
            ExitCode::FAILURE
        }
    }
}

fn parse_list(args: &[String], name: &str, default: &[u64]) -> Vec<u64> {
    opt_value(args, name)
        .map(|v| v.split(',').filter_map(|x| x.parse().ok()).collect())
        .filter(|v: &Vec<u64>| !v.is_empty())
        .unwrap_or_else(|| default.to_vec())
}

fn cmd_sweep(args: &[String]) -> ExitCode {
    let Some(wname) = opt_value(args, "--workload") else {
        eprintln!("sweep: --workload is required; options: {WORKLOAD_NAMES:?}");
        return ExitCode::from(2);
    };
    let pname = opt_value(args, "--policy").unwrap_or("dlru-edf");
    let Some(kind) = parse_policy(pname) else {
        eprintln!("unknown policy '{pname}'; options: {POLICY_NAMES:?}");
        return ExitCode::from(2);
    };
    let ns: Vec<usize> = parse_list(args, "--n-list", &[4, 8, 16])
        .into_iter()
        .map(|n| n as usize)
        .collect();
    let deltas = parse_list(args, "--delta-list", &[2, 4, 8]);
    let seeds: u64 = opt_value(args, "--seeds")
        .and_then(|v| v.parse().ok())
        .unwrap_or(3);
    let threads: usize = opt_value(args, "--threads")
        .and_then(|v| v.parse().ok())
        .unwrap_or(0);
    // Pre-generate the traces (one per seed).
    let traces: Vec<rrs_core::Trace> = (0..seeds)
        .filter_map(|s| parse_workload(wname, s))
        .collect();
    if traces.is_empty() {
        eprintln!("unknown workload '{wname}'");
        return ExitCode::from(2);
    }
    let spec = rrs_analysis::GridSpec {
        kinds: &[kind],
        traces: &traces,
        ns: &ns,
        deltas: &deltas,
    };
    let out = rrs_analysis::run_cells(&spec, threads);
    // Aggregate over seeds with summary statistics and a bootstrap CI.
    type Sample = (u64, u64, u64, u64); // (total, reconfig, drop, opt lower)
    let mut agg: std::collections::BTreeMap<(usize, u64), Vec<Sample>> = Default::default();
    for row in &out.rows {
        let (n, delta) = (row.cell.n, row.cell.delta);
        match &row.summary {
            Ok(s) => agg
                .entry((n, delta))
                .or_default()
                .push((s.cost.total(), s.cost.reconfig, s.cost.drop, row.opt_lower)),
            Err(e) => eprintln!("n={n} Δ={delta}: {e}"),
        }
    }
    let mut table = Table::new([
        "n",
        "Δ",
        "total mean±95%CI",
        "stddev",
        "mean reconfig",
        "mean drops",
        "mean ratio≤",
        "runs",
    ]);
    for ((n, delta), samples) in &agg {
        let totals: Vec<f64> = samples.iter().map(|&(t, _, _, _)| t as f64).collect();
        let summary = rrs_analysis::summarize(&totals);
        let ci = rrs_analysis::bootstrap_ci(&totals, 0.95, 400, 0);
        let k = samples.len() as f64;
        let reconfig: f64 = samples.iter().map(|&(_, r, _, _)| r as f64).sum::<f64>() / k;
        let drops: f64 = samples.iter().map(|&(_, _, d, _)| d as f64).sum::<f64>() / k;
        let mean_ratio: f64 = samples
            .iter()
            .map(|&(t, _, _, lo)| rrs_analysis::ratio(t, lo))
            .sum::<f64>()
            / k;
        table.row([
            n.to_string(),
            delta.to_string(),
            format!("{:.1} [{:.1}, {:.1}]", summary.mean, ci.lo, ci.hi),
            format!("{:.1}", summary.stddev),
            format!("{reconfig:.1}"),
            format!("{drops:.1}"),
            if mean_ratio.is_finite() {
                format!("{mean_ratio:.2}")
            } else {
                "∞".into()
            },
            samples.len().to_string(),
        ]);
    }
    println!("sweep: {} on {wname} over {} seeds", kind.name(), seeds);
    println!("  {}", out.stats.summary());
    println!("  {}\n", out.cache.summary());
    if flag(args, "--csv") {
        print!("{}", table.to_csv());
    } else {
        print!("{}", table.render());
    }
    ExitCode::SUCCESS
}

fn cmd_serve_sim(args: &[String]) -> ExitCode {
    use rrs_service::{
        DiskBackend, DiskConfig, FaultPlan, IngestMode, MemoryBackend, PolicySpec, RetryPolicy,
        Service, ServiceConfig, ShedConfig, StorageBackend, Supervisor, SupervisorConfig,
        TenantSpec,
    };
    use rrs_workloads::{MultiTenantLoad, OpenLoopDriver};

    let tenants: u64 = opt_value(args, "--tenants")
        .and_then(|v| v.parse().ok())
        .unwrap_or(8);
    let shards: usize = opt_value(args, "--shards")
        .and_then(|v| v.parse().ok())
        .unwrap_or(4);
    let n: usize = opt_value(args, "--n")
        .and_then(|v| v.parse().ok())
        .unwrap_or(8);
    let delta: u64 = opt_value(args, "--delta")
        .and_then(|v| v.parse().ok())
        .unwrap_or(4);
    let seed: u64 = opt_value(args, "--seed")
        .and_then(|v| v.parse().ok())
        .unwrap_or(1);
    let queue_cap: usize = opt_value(args, "--queue-cap")
        .and_then(|v| v.parse().ok())
        .unwrap_or(128);
    let kill_round: Option<u64> = opt_value(args, "--kill-round").and_then(|v| v.parse().ok());
    let kill_shard: Option<usize> = opt_value(args, "--kill-shard").and_then(|v| v.parse().ok());
    let shed_watermark: Option<u64> =
        opt_value(args, "--shed-watermark").and_then(|v| v.parse().ok());
    let shed_queue: Option<usize> = opt_value(args, "--shed-queue").and_then(|v| v.parse().ok());
    let checkpoint_every: u64 = opt_value(args, "--checkpoint-every")
        .and_then(|v| v.parse().ok())
        .unwrap_or(32);
    let ingest = match opt_value(args, "--ingest") {
        None | Some("batched") => IngestMode::Batched,
        Some("per-command") => IngestMode::PerCommand,
        Some(other) => {
            eprintln!("serve-sim: unknown ingest mode '{other}' (batched|per-command)");
            return ExitCode::from(2);
        }
    };
    let storage = opt_value(args, "--storage").unwrap_or("memory");
    if !matches!(storage, "memory" | "disk") {
        eprintln!("serve-sim: unknown storage backend '{storage}' (memory|disk)");
        return ExitCode::from(2);
    }
    let codec = match opt_value(args, "--codec") {
        None => rrs_service::Codec::default(),
        Some(name) => match rrs_service::Codec::parse(name) {
            Some(c) => c,
            None => {
                eprintln!("serve-sim: unknown codec '{name}' (binary|json)");
                return ExitCode::from(2);
            }
        },
    };
    let data_dir = opt_value(args, "--data-dir").unwrap_or("rrs-data");
    let fault_spec = opt_value(args, "--fault-plan");
    // Durable storage only exists on the supervised path: the bare service
    // keeps no WAL at all, so `--storage disk` implies `--supervised`.
    let supervised = flag(args, "--supervised")
        || storage == "disk"
        || fault_spec.is_some()
        || shed_watermark.is_some()
        || shed_queue.is_some();
    let wname = opt_value(args, "--workload").unwrap_or("random-batched");
    let pname = opt_value(args, "--policy").unwrap_or("dlru-edf");
    let Some(policy) = PolicySpec::parse(pname) else {
        eprintln!("serve-sim: unknown or non-streamable policy '{pname}'");
        return ExitCode::from(2);
    };
    let Some(wspec) = parse_workload_spec(wname) else {
        eprintln!("serve-sim: unknown workload '{wname}'; options: {WORKLOAD_NAMES:?}");
        return ExitCode::from(2);
    };

    let load = MultiTenantLoad::new(wspec, tenants, seed);
    let driver = OpenLoopDriver::new(&load);
    let horizon = opt_value(args, "--rounds")
        .and_then(|v| v.parse().ok())
        .map(|r: u64| r.min(driver.horizon()))
        .unwrap_or_else(|| driver.horizon());

    println!(
        "serve-sim: {tenants} tenants x {} ({wname}, seed {seed}) on {shards} shards, \
         {} rounds, n={n} Δ={delta}, queue {queue_cap}{}",
        policy.name(),
        horizon + 1,
        match (supervised, ingest) {
            (false, _) => "",
            (true, IngestMode::Batched) => " [supervised, batched ingest]",
            (true, IngestMode::PerCommand) => " [supervised, per-command ingest]",
        }
    );

    let specs: Vec<TenantSpec> = (0..tenants)
        .map(|t| TenantSpec::new(policy, driver.trace(t).colors().clone(), n, delta))
        .collect();

    let (stats, results, elapsed) = if supervised {
        let plan = match fault_spec {
            Some(spec) => match FaultPlan::parse(spec, shards, horizon + 1) {
                Ok(p) => p,
                Err(e) => {
                    eprintln!("serve-sim: --fault-plan: {e}");
                    return ExitCode::from(2);
                }
            },
            None => FaultPlan::none(),
        };
        if !plan.faults.is_empty() {
            println!("  fault plan: {} scheduled faults", plan.faults.len());
            suppress_injected_panic_output();
        }
        let config = SupervisorConfig {
            shards,
            queue_capacity: queue_cap,
            checkpoint_every,
            retry: RetryPolicy::default(),
            shed: ShedConfig { queue_watermark: shed_queue, inbox_watermark: shed_watermark },
            ingest,
        };
        let backend: Box<dyn StorageBackend> = if storage == "disk" {
            let mut disk_cfg = DiskConfig::new(data_dir);
            disk_cfg.codec = codec;
            if let Err(e) = disk_cfg.validate() {
                eprintln!("serve-sim: {e}");
                return ExitCode::from(2);
            }
            println!(
                "  durable storage: {data_dir}/ (WAL + checkpoints, pipelined group fsync, \
                 {codec} codec)"
            );
            Box::new(DiskBackend::new(disk_cfg))
        } else {
            Box::new(MemoryBackend::new())
        };
        let mut sup = match Supervisor::with_storage(config, &plan, backend) {
            Ok(s) => s,
            Err(e) => {
                eprintln!("serve-sim: supervisor start failed: {e}");
                return ExitCode::FAILURE;
            }
        };
        for (t, spec) in specs.into_iter().enumerate() {
            match sup.add_tenant(t as u64, spec) {
                Ok(()) => {}
                // A disk-backed run resumed over an existing data directory
                // restores its tenants during cold start; re-registration is
                // expected to collide.
                Err(rrs_service::ServiceError::DuplicateTenant(_)) if storage == "disk" => {}
                Err(e) => {
                    eprintln!("serve-sim: tenant {t}: {e}");
                    return ExitCode::from(2);
                }
            }
        }
        let started = std::time::Instant::now();
        for round in 0..=horizon {
            for t in 0..tenants {
                let arrivals = driver.arrivals(t, round);
                if !arrivals.is_empty() {
                    if let Err(e) = sup.submit(t, arrivals) {
                        eprintln!("serve-sim: submit to tenant {t} failed: {e}");
                        return ExitCode::FAILURE;
                    }
                }
            }
            if let Err(e) = sup.tick() {
                eprintln!("serve-sim: tick {round} failed: {e}");
                return ExitCode::FAILURE;
            }
        }
        let stats = match sup.stats() {
            Ok(s) => s,
            Err(e) => {
                eprintln!("serve-sim: stats failed: {e}");
                return ExitCode::FAILURE;
            }
        };
        for ev in sup.recovery_events() {
            println!(
                "  shard {} recovered ({} WAL records replayed): {}",
                ev.shard, ev.replayed, ev.cause
            );
        }
        let results = match sup.finish() {
            Ok(r) => r,
            Err(e) => {
                eprintln!("serve-sim: finish failed: {e}");
                return ExitCode::FAILURE;
            }
        };
        (stats, results, started.elapsed())
    } else {
        let mut svc = match Service::new(ServiceConfig { shards, queue_capacity: queue_cap }) {
            Ok(s) => s,
            Err(e) => {
                eprintln!("serve-sim: service start failed: {e}");
                return ExitCode::FAILURE;
            }
        };
        for (t, spec) in specs.into_iter().enumerate() {
            if let Err(e) = svc.add_tenant(t as u64, spec) {
                eprintln!("serve-sim: tenant {t}: {e}");
                return ExitCode::from(2);
            }
        }
        let started = std::time::Instant::now();
        for round in 0..=horizon {
            for t in 0..tenants {
                let arrivals = driver.arrivals(t, round);
                if !arrivals.is_empty() {
                    if let Err(e) = svc.submit(t, arrivals) {
                        eprintln!("serve-sim: submit to tenant {t} failed: {e}");
                        return ExitCode::FAILURE;
                    }
                }
            }
            if let Err(e) = svc.tick() {
                eprintln!("serve-sim: tick {round} failed: {e}");
                return ExitCode::FAILURE;
            }
            if kill_round == Some(round) {
                let victim = kill_shard.unwrap_or(0).min(shards - 1);
                let outcome = svc.snapshot_shard(victim).and_then(|snap| {
                    svc.kill_shard(victim)?;
                    svc.restore_shard(snap)
                });
                match outcome {
                    Ok(()) => println!("  killed and restored shard {victim} after round {round}"),
                    Err(e) => {
                        eprintln!("serve-sim: kill/restore shard {victim} failed: {e}");
                        return ExitCode::FAILURE;
                    }
                }
            }
        }
        let stats = match svc.stats() {
            Ok(s) => s,
            Err(e) => {
                eprintln!("serve-sim: stats failed: {e}");
                return ExitCode::FAILURE;
            }
        };
        let results = match svc.finish() {
            Ok(r) => r,
            Err(e) => {
                eprintln!("serve-sim: finish failed: {e}");
                return ExitCode::FAILURE;
            }
        };
        (stats, results, started.elapsed())
    };

    let mut table = Table::new([
        "tenant", "shard", "rounds", "arrived", "executed", "dropped", "shed", "reconfig",
        "total cost",
    ]);
    let progress: std::collections::BTreeMap<u64, _> = stats.tenants.iter().cloned().collect();
    for (id, r) in &results {
        let p = progress.get(id);
        table.row([
            id.to_string(),
            rrs_service::shard_for(*id, shards).to_string(),
            r.rounds.to_string(),
            p.map(|p| p.arrived).unwrap_or(0).to_string(),
            r.executed.to_string(),
            r.dropped_jobs.to_string(),
            p.map(|p| p.shed).unwrap_or(0).to_string(),
            r.cost.reconfig.to_string(),
            r.cost.total().to_string(),
        ]);
    }
    print!("{}", table.render());
    println!();
    for s in &stats.shards {
        println!("{s}");
    }
    if stats.storage.backend != "memory" {
        println!("{}", stats.storage);
    }
    let lat = stats.step_latency();
    println!(
        "drove {} rounds in {elapsed:?}: {} executed, {} dropped, {} shed, \
         {} recoveries, step p50 {}ns p99 {}ns",
        horizon + 1,
        stats.executed(),
        stats.dropped(),
        stats.shed(),
        stats.recoveries(),
        lat.p50(),
        lat.p99()
    );
    ExitCode::SUCCESS
}

/// Keeps expected injected-fault panics off stderr while letting real panics
/// through to the default hook.
pub(crate) fn suppress_injected_panic_output() {
    let default_hook = std::panic::take_hook();
    std::panic::set_hook(Box::new(move |info| {
        let injected = info
            .payload()
            .downcast_ref::<String>()
            .map(|s| s.contains("injected fault"))
            .or_else(|| info.payload().downcast_ref::<&str>().map(|s| s.contains("injected fault")))
            .unwrap_or(false);
        if !injected {
            default_hook(info);
        }
    }));
}

fn cmd_opt(args: &[String]) -> ExitCode {
    let trace = match load_trace(args) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("opt: {e}");
            return ExitCode::from(2);
        }
    };
    let m: usize = opt_value(args, "--m")
        .and_then(|v| v.parse().ok())
        .unwrap_or(1);
    let delta: u64 = opt_value(args, "--delta")
        .and_then(|v| v.parse().ok())
        .unwrap_or(4);
    let opts = rrs_analysis::EstimateOptions {
        try_exact: flag(args, "--exact"),
        improve_iterations: opt_value(args, "--improve")
            .and_then(|v| v.parse().ok())
            .unwrap_or(0),
        ..Default::default()
    };
    let est = rrs_analysis::estimate_opt(&trace, m, delta, opts);
    println!(
        "OPT(m = {m}, Δ = {delta}) for {} jobs over {} rounds:",
        trace.total_jobs(),
        trace.horizon() + 1
    );
    println!("  lower bound: {}", est.lower);
    match est.exact {
        Some(x) => println!("  exact (DP):  {x}"),
        None if opts.try_exact => println!("  exact (DP):  state space too large"),
        None => println!("  exact (DP):  not attempted (pass --exact)"),
    }
    println!("  upper bound: {}", est.upper);
    ExitCode::SUCCESS
}

/// `rrs bench-engine`: the tracked single-thread engine throughput baseline.
///
/// Runs each optimized policy and its frozen pre-optimization twin
/// ([`rrs_algorithms::reference`]) over the same rate-limited trace and
/// reports wall-clock rounds/sec for both plus the speedup ratio. Because
/// both sides run back-to-back in the same process, the *ratio* is
/// machine-normalized; it is the quantity recorded in `BENCH_engine.json`
/// and guarded by CI: `--check` fails when any policy's speedup falls more
/// than `--tolerance` percent (default 25) below the committed baseline.
fn cmd_bench_engine(args: &[String]) -> ExitCode {
    use rrs_algorithms::reference::{RefDlru, RefDlruEdf, RefEdf, RefGreedyPending};
    use rrs_core::{CostModel, Engine};
    use serde_json::Value;
    use std::time::Instant;

    fn num(v: &Value) -> Option<f64> {
        match v {
            Value::F64(x) => Some(*x),
            Value::U64(x) => Some(*x as f64),
            Value::I64(x) => Some(*x as f64),
            _ => None,
        }
    }

    /// A benched pairing: name, optimized policy, reference twin.
    type PolicyPair = (&'static str, Box<dyn rrs_core::Policy>, Box<dyn rrs_core::Policy>);

    let quick = flag(args, "--quick");
    let colors: usize = opt_value(args, "--colors")
        .and_then(|v| v.parse().ok())
        .unwrap_or(if quick { 2_000 } else { 10_000 });
    let rounds: u64 = opt_value(args, "--rounds")
        .and_then(|v| v.parse().ok())
        .unwrap_or(if quick { 384 } else { 1_536 });
    let n: usize = opt_value(args, "--n")
        .and_then(|v| v.parse().ok())
        .unwrap_or(64);
    let delta: u64 = opt_value(args, "--delta")
        .and_then(|v| v.parse().ok())
        .unwrap_or(8);
    let seed: u64 = opt_value(args, "--seed")
        .and_then(|v| v.parse().ok())
        .unwrap_or(42);
    let tolerance: f64 = opt_value(args, "--tolerance")
        .and_then(|v| v.parse().ok())
        .unwrap_or(25.0);
    let out = opt_value(args, "--out").unwrap_or("BENCH_engine.json");
    let check = flag(args, "--check");

    let bounds: Vec<u64> = (0..colors).map(|i| 1u64 << (2 + (i % 4) as u32)).collect();
    let trace = RandomBatched {
        delay_bounds: bounds,
        load: 0.6,
        activity: 0.8,
        horizon: rounds,
        rate_limited: true,
    }
    .generate(seed);
    let table = trace.colors();
    eprintln!(
        "bench-engine: {} colors, {} rounds, {} jobs, n={n}, Δ={delta}, seed={seed}",
        colors,
        rounds,
        trace.total_jobs()
    );

    let time_run = |policy: &mut dyn rrs_core::Policy| -> (f64, u64) {
        let start = Instant::now();
        let r = Engine::new()
            .run(&trace, policy, n, CostModel::new(delta))
            .expect("bench run failed");
        let secs = start.elapsed().as_secs_f64().max(1e-9);
        (r.rounds as f64 / secs, r.cost.total())
    };

    let pairs: Vec<PolicyPair> = vec![
        (
            "dlru-edf",
            Box::new(rrs_algorithms::DlruEdf::new(table, n, delta).unwrap()),
            Box::new(RefDlruEdf::new(table, n, delta, Default::default()).unwrap()),
        ),
        (
            "dlru",
            Box::new(rrs_algorithms::Dlru::new(table, n, delta).unwrap()),
            Box::new(RefDlru::new(table, n, delta, 2).unwrap()),
        ),
        (
            "edf",
            Box::new(rrs_algorithms::Edf::new(table, n, delta).unwrap()),
            Box::new(RefEdf::new(table, n, delta, 2).unwrap()),
        ),
        (
            "greedy",
            Box::new(rrs_algorithms::GreedyPending::new()),
            Box::new(RefGreedyPending),
        ),
    ];

    let mut results = Vec::new();
    let mut report = Table::new(["policy", "optimized r/s", "reference r/s", "speedup"]);
    for (name, mut opt_p, mut ref_p) in pairs {
        let (ref_rps, ref_cost) = time_run(ref_p.as_mut());
        let (opt_rps, opt_cost) = time_run(opt_p.as_mut());
        // The bench doubles as a coarse differential check: both sides must
        // agree on total cost or the speedup is meaningless.
        assert_eq!(
            opt_cost, ref_cost,
            "optimized and reference disagree on {name}"
        );
        let speedup = opt_rps / ref_rps;
        report.row([
            name.to_string(),
            format!("{opt_rps:.0}"),
            format!("{ref_rps:.0}"),
            format!("{speedup:.2}x"),
        ]);
        results.push((name, opt_rps, ref_rps, speedup));
    }
    print!("{}", report.render());

    if check {
        let baseline: Value = match std::fs::read_to_string(out)
            .map_err(|e| e.to_string())
            .and_then(|s| serde_json::parse(&s).map_err(|e| e.to_string()))
        {
            Ok(v) => v,
            Err(e) => {
                eprintln!("bench-engine: cannot read baseline {out}: {e}");
                return ExitCode::from(2);
            }
        };
        let empty = Vec::new();
        let base_results = baseline
            .get_field("results")
            .and_then(|v| v.as_array())
            .unwrap_or(&empty);
        let mut failed = false;
        for &(name, _, _, speedup) in &results {
            let Some(base) = base_results
                .iter()
                .find(|b| {
                    b.get_field("policy")
                        .is_some_and(|p| matches!(p, Value::Str(s) if s == name))
                })
                .and_then(|b| b.get_field("speedup"))
                .and_then(num)
            else {
                eprintln!("bench-engine: no baseline entry for {name}, skipping");
                continue;
            };
            let floor = base * (1.0 - tolerance / 100.0);
            if speedup < floor {
                eprintln!(
                    "bench-engine: REGRESSION in {name}: speedup {speedup:.2}x < \
                     floor {floor:.2}x (baseline {base:.2}x − {tolerance}%)"
                );
                failed = true;
            } else {
                eprintln!(
                    "bench-engine: {name} ok ({speedup:.2}x vs baseline {base:.2}x, \
                     floor {floor:.2}x)"
                );
            }
        }
        if failed {
            return ExitCode::FAILURE;
        }
    } else {
        let result_values: Vec<Value> = results
            .iter()
            .map(|&(name, opt_rps, ref_rps, speedup)| {
                Value::Object(vec![
                    ("policy".into(), Value::Str(name.into())),
                    ("optimized_rounds_per_sec".into(), Value::F64(opt_rps)),
                    ("reference_rounds_per_sec".into(), Value::F64(ref_rps)),
                    ("speedup".into(), Value::F64(speedup)),
                ])
            })
            .collect();
        let doc = Value::Object(vec![
            ("bench".into(), Value::Str("engine-throughput".into())),
            (
                "workload".into(),
                Value::Object(vec![
                    ("colors".into(), Value::U64(colors as u64)),
                    ("rounds".into(), Value::U64(rounds)),
                    ("n".into(), Value::U64(n as u64)),
                    ("delta".into(), Value::U64(delta)),
                    ("seed".into(), Value::U64(seed)),
                    ("quick".into(), Value::Bool(quick)),
                ]),
            ),
            ("tolerance_pct".into(), Value::F64(tolerance)),
            ("results".into(), Value::Array(result_values)),
        ]);
        let body = serde_json::to_string_pretty(&doc).expect("serialize bench result");
        if let Err(e) = std::fs::write(out, body + "\n") {
            eprintln!("bench-engine: cannot write {out}: {e}");
            return ExitCode::FAILURE;
        }
        eprintln!("bench-engine: wrote {out}");
    }
    ExitCode::SUCCESS
}

/// `rrs bench-service`: the tracked supervisor ingestion-throughput baseline.
///
/// Drives the same submit-heavy multi-tenant workload through a supervised
/// service twice in one process — once under [`IngestMode::PerCommand`] (the
/// pre-batching transport: one WAL append and one queue command per submit)
/// and once under [`IngestMode::Batched`] (one group commit per shard per
/// tick epoch, epoch-sequence acks, parallel tick fan-out) — and reports
/// end-to-end ingested jobs/sec and ticks/sec for both, plus the batched
/// speedup ratio. The timed window runs from the first submit through a
/// final `stats()` round trip, so every journaled command has been applied
/// by the workers when the clock stops; both modes finish afterwards and
/// their per-tenant results must agree bit-for-bit (a differential check —
/// a transport must never change what the service computes).
///
/// Because both modes run back-to-back on the same machine, the *ratio* is
/// machine-normalized; it is the quantity recorded in `BENCH_service.json`
/// and guarded by CI: `--check` fails when the jobs/sec speedup falls more
/// than `--tolerance` percent (default 25) below the committed baseline.
fn cmd_bench_service(args: &[String]) -> ExitCode {
    use rrs_core::{ColorId, ColorTable, RunResult};
    use rrs_service::{IngestMode, PolicySpec, Supervisor, SupervisorConfig, TenantSpec};
    use serde_json::Value;
    use std::collections::BTreeMap;
    use std::time::Instant;

    const DELAY_BOUNDS: &[u64] = &[2, 4, 8];

    let quick = flag(args, "--quick");
    let tenants: u64 = opt_value(args, "--tenants")
        .and_then(|v| v.parse().ok())
        .unwrap_or(if quick { 16 } else { 32 });
    let shards: usize = opt_value(args, "--shards")
        .and_then(|v| v.parse().ok())
        .unwrap_or(4);
    let rounds: u64 = opt_value(args, "--rounds")
        .and_then(|v| v.parse().ok())
        .unwrap_or(if quick { 128 } else { 512 });
    let submits: u64 = opt_value(args, "--submits")
        .and_then(|v| v.parse().ok())
        .unwrap_or(16);
    let seed: u64 = opt_value(args, "--seed")
        .and_then(|v| v.parse().ok())
        .unwrap_or(42);
    let tolerance: f64 = opt_value(args, "--tolerance")
        .and_then(|v| v.parse().ok())
        .unwrap_or(25.0);
    let out = opt_value(args, "--out").unwrap_or("BENCH_service.json");
    let check = flag(args, "--check");

    let n = 4;
    let delta = 2;
    // Deterministic submit-heavy arrivals: a pure function of
    // `(tenant, round, part, seed)`, so both transports see the same jobs.
    let arrivals = |tenant: u64, round: u64, part: u64| -> Vec<(ColorId, u64)> {
        let mix = tenant
            .wrapping_mul(31)
            .wrapping_add(round.wrapping_mul(17))
            .wrapping_add(part.wrapping_mul(13))
            .wrapping_add(seed.wrapping_mul(41));
        vec![(ColorId((mix % DELAY_BOUNDS.len() as u64) as u32), 1 + mix % 3)]
    };
    let total_jobs: u64 = (0..rounds)
        .flat_map(|r| (0..submits).flat_map(move |p| (0..tenants).map(move |t| (t, r, p))))
        .map(|(t, r, p)| arrivals(t, r, p).iter().map(|&(_, k)| k).sum::<u64>())
        .sum();
    eprintln!(
        "bench-service: {tenants} tenants on {shards} shards, {rounds} rounds x \
         {submits} submits/tenant, {total_jobs} jobs, seed={seed}"
    );

    let run = |ingest: IngestMode| -> (f64, f64, BTreeMap<u64, RunResult>) {
        let config = SupervisorConfig {
            shards,
            ingest,
            ..SupervisorConfig::default()
        };
        let mut sup = Supervisor::new(config).expect("supervisor start");
        for id in 0..tenants {
            sup.add_tenant(
                id,
                TenantSpec::new(
                    PolicySpec::DlruEdf,
                    ColorTable::from_delay_bounds(DELAY_BOUNDS),
                    n,
                    delta,
                ),
            )
            .expect("add tenant");
        }
        let started = Instant::now();
        for round in 0..rounds {
            for part in 0..submits {
                for id in 0..tenants {
                    sup.submit(id, arrivals(id, round, part)).expect("submit");
                }
            }
            sup.tick().expect("tick");
        }
        // The stats round trip drains every shard queue: the clock stops
        // only once all journaled commands have actually been applied.
        sup.stats().expect("stats");
        let secs = started.elapsed().as_secs_f64().max(1e-9);
        (total_jobs as f64 / secs, rounds as f64 / secs, sup.finish().expect("finish"))
    };

    let (ref_jps, ref_tps, ref_results) = run(IngestMode::PerCommand);
    let (bat_jps, bat_tps, bat_results) = run(IngestMode::Batched);
    // The bench doubles as a conformance check: the transports must agree
    // on every tenant's final result or the speedup is meaningless.
    assert_eq!(bat_results, ref_results, "batched and per-command ingestion disagree");
    let speedup_jobs = bat_jps / ref_jps;
    let speedup_ticks = bat_tps / ref_tps;

    let mut report = Table::new(["ingest", "jobs/sec", "ticks/sec"]);
    report.row(["per-command".into(), format!("{ref_jps:.0}"), format!("{ref_tps:.0}")]);
    report.row(["batched".into(), format!("{bat_jps:.0}"), format!("{bat_tps:.0}")]);
    report.row(["speedup".into(), format!("{speedup_jobs:.2}x"), format!("{speedup_ticks:.2}x")]);
    print!("{}", report.render());

    if check {
        let baseline: Value = match std::fs::read_to_string(out)
            .map_err(|e| e.to_string())
            .and_then(|s| serde_json::parse(&s).map_err(|e| e.to_string()))
        {
            Ok(v) => v,
            Err(e) => {
                eprintln!("bench-service: cannot read baseline {out}: {e}");
                return ExitCode::from(2);
            }
        };
        let base = baseline.get_field("jobs_per_sec_speedup").and_then(|v| match v {
            Value::F64(x) => Some(*x),
            Value::U64(x) => Some(*x as f64),
            Value::I64(x) => Some(*x as f64),
            _ => None,
        });
        let Some(base) = base else {
            eprintln!("bench-service: baseline {out} has no jobs_per_sec_speedup");
            return ExitCode::from(2);
        };
        let floor = base * (1.0 - tolerance / 100.0);
        if speedup_jobs < floor {
            eprintln!(
                "bench-service: REGRESSION: jobs/sec speedup {speedup_jobs:.2}x < \
                 floor {floor:.2}x (baseline {base:.2}x − {tolerance}%)"
            );
            return ExitCode::FAILURE;
        }
        eprintln!(
            "bench-service: ok ({speedup_jobs:.2}x vs baseline {base:.2}x, floor {floor:.2}x)"
        );
    } else {
        let doc = Value::Object(vec![
            ("bench".into(), Value::Str("service-ingestion".into())),
            (
                "workload".into(),
                Value::Object(vec![
                    ("tenants".into(), Value::U64(tenants)),
                    ("shards".into(), Value::U64(shards as u64)),
                    ("rounds".into(), Value::U64(rounds)),
                    ("submits_per_tenant_per_round".into(), Value::U64(submits)),
                    ("total_jobs".into(), Value::U64(total_jobs)),
                    ("n".into(), Value::U64(n as u64)),
                    ("delta".into(), Value::U64(delta)),
                    ("seed".into(), Value::U64(seed)),
                    ("quick".into(), Value::Bool(quick)),
                ]),
            ),
            ("tolerance_pct".into(), Value::F64(tolerance)),
            ("per_command_jobs_per_sec".into(), Value::F64(ref_jps)),
            ("batched_jobs_per_sec".into(), Value::F64(bat_jps)),
            ("per_command_ticks_per_sec".into(), Value::F64(ref_tps)),
            ("batched_ticks_per_sec".into(), Value::F64(bat_tps)),
            ("jobs_per_sec_speedup".into(), Value::F64(speedup_jobs)),
            ("ticks_per_sec_speedup".into(), Value::F64(speedup_ticks)),
        ]);
        let body = serde_json::to_string_pretty(&doc).expect("serialize bench result");
        if let Err(e) = std::fs::write(out, body + "\n") {
            eprintln!("bench-service: cannot write {out}: {e}");
            return ExitCode::FAILURE;
        }
        eprintln!("bench-service: wrote {out}");
    }
    ExitCode::SUCCESS
}

/// `rrs bench-storage`: the tracked durable-storage overhead baseline.
///
/// Drives the same deterministic submit-heavy workload through a supervised
/// service twice in one process — once on the in-memory backend and once on
/// the on-disk WAL + checkpoint store (group fsync per tick epoch) — then
/// cold-starts a third supervisor from the written data directory to time
/// recovery. Both runs must agree bit-for-bit on every tenant's final
/// result (durability must be invisible to scheduling) before anything is
/// timed.
///
/// Because both backends run back-to-back on the same machine, the tracked
/// quantity is the machine-normalized *overhead ratio* (memory ticks/sec ÷
/// disk ticks/sec, ≥ 1 in practice). It is recorded in
/// `BENCH_storage.json` and guarded by CI: `--check` fails when the
/// overhead grows more than `--tolerance` percent (default 50 — disk
/// latency is noisier than compute) above the committed baseline.
fn cmd_bench_storage(args: &[String]) -> ExitCode {
    use rrs_core::{ColorId, ColorTable, RunResult};
    use rrs_service::{
        DiskBackend, DiskConfig, FaultPlan, IngestMode, MemoryBackend, PolicySpec,
        StorageBackend, StorageStats, Supervisor, SupervisorConfig, TenantSpec,
    };
    use serde_json::Value;
    use std::collections::BTreeMap;
    use std::time::Instant;

    const DELAY_BOUNDS: &[u64] = &[2, 4, 8];

    let quick = flag(args, "--quick");
    let tenants: u64 = opt_value(args, "--tenants")
        .and_then(|v| v.parse().ok())
        .unwrap_or(if quick { 8 } else { 16 });
    let shards: usize = opt_value(args, "--shards")
        .and_then(|v| v.parse().ok())
        .unwrap_or(4);
    let rounds: u64 = opt_value(args, "--rounds")
        .and_then(|v| v.parse().ok())
        .unwrap_or(if quick { 96 } else { 384 });
    let submits: u64 = opt_value(args, "--submits")
        .and_then(|v| v.parse().ok())
        .unwrap_or(8);
    let seed: u64 = opt_value(args, "--seed")
        .and_then(|v| v.parse().ok())
        .unwrap_or(42);
    let checkpoint_every: u64 = opt_value(args, "--checkpoint-every")
        .and_then(|v| v.parse().ok())
        .unwrap_or(32);
    let fsync = !flag(args, "--no-fsync");
    let codec = match opt_value(args, "--codec") {
        None => rrs_service::Codec::default(),
        Some(name) => match rrs_service::Codec::parse(name) {
            Some(c) => c,
            None => {
                eprintln!("bench-storage: unknown codec '{name}' (binary|json)");
                return ExitCode::from(2);
            }
        },
    };
    let tolerance: f64 = opt_value(args, "--tolerance")
        .and_then(|v| v.parse().ok())
        .unwrap_or(50.0);
    let out = opt_value(args, "--out").unwrap_or("BENCH_storage.json");
    let check = flag(args, "--check");

    let n = 4;
    let delta = 2;
    let arrivals = |tenant: u64, round: u64, part: u64| -> Vec<(ColorId, u64)> {
        let mix = tenant
            .wrapping_mul(31)
            .wrapping_add(round.wrapping_mul(17))
            .wrapping_add(part.wrapping_mul(13))
            .wrapping_add(seed.wrapping_mul(41));
        vec![(ColorId((mix % DELAY_BOUNDS.len() as u64) as u32), 1 + mix % 3)]
    };
    let total_jobs: u64 = (0..rounds)
        .flat_map(|r| (0..submits).flat_map(move |p| (0..tenants).map(move |t| (t, r, p))))
        .map(|(t, r, p)| arrivals(t, r, p).iter().map(|&(_, k)| k).sum::<u64>())
        .sum();
    eprintln!(
        "bench-storage: {tenants} tenants on {shards} shards, {rounds} rounds x \
         {submits} submits/tenant, {total_jobs} jobs, checkpoint every \
         {checkpoint_every}, fsync={fsync}, codec={codec}, seed={seed}"
    );

    let config = SupervisorConfig {
        shards,
        checkpoint_every,
        ingest: IngestMode::Batched,
        ..SupervisorConfig::default()
    };
    let run = |backend: Box<dyn StorageBackend>| -> (f64, f64, BTreeMap<u64, RunResult>, StorageStats) {
        let mut sup =
            Supervisor::with_storage(config, &FaultPlan::none(), backend).expect("supervisor start");
        for id in 0..tenants {
            sup.add_tenant(
                id,
                TenantSpec::new(
                    PolicySpec::DlruEdf,
                    ColorTable::from_delay_bounds(DELAY_BOUNDS),
                    n,
                    delta,
                ),
            )
            .expect("add tenant");
        }
        let started = Instant::now();
        for round in 0..rounds {
            for part in 0..submits {
                for id in 0..tenants {
                    sup.submit(id, arrivals(id, round, part)).expect("submit");
                }
            }
            sup.tick().expect("tick");
        }
        // The stats round trip drains every shard queue, so the clock stops
        // only after the last group commit and its fan-out have landed.
        let stats = sup.stats().expect("stats");
        let secs = started.elapsed().as_secs_f64().max(1e-9);
        (
            total_jobs as f64 / secs,
            rounds as f64 / secs,
            sup.finish().expect("finish"),
            stats.storage,
        )
    };

    let data_dir = std::env::temp_dir().join(format!("rrs-bench-storage-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&data_dir);
    let mut disk_config = DiskConfig::new(&data_dir);
    disk_config.fsync = fsync;
    disk_config.codec = codec;

    let (mem_jps, mem_tps, mem_results, _) = run(Box::new(MemoryBackend::new()));
    let (disk_jps, disk_tps, disk_results, storage) =
        run(Box::new(DiskBackend::new(disk_config.clone())));
    // The bench doubles as a conformance check: durability must never change
    // what the service computes.
    assert_eq!(disk_results, mem_results, "disk and memory backends disagree");
    let overhead = mem_tps / disk_tps;

    // Cold-start recovery from the directory the disk run just wrote.
    let recovery_started = Instant::now();
    let recovered =
        Supervisor::with_storage(config, &FaultPlan::none(), Box::new(DiskBackend::new(disk_config)))
            .expect("cold start");
    let recovery_secs = recovery_started.elapsed().as_secs_f64();
    for shard in 0..shards {
        let ticks = recovered.shard_ticks(shard).expect("shard ticks");
        assert_eq!(ticks, rounds, "shard {shard} recovered {ticks}/{rounds} epochs");
    }
    drop(recovered);
    let _ = std::fs::remove_dir_all(&data_dir);

    let mut report = Table::new(["backend", "jobs/sec", "ticks/sec"]);
    report.row(["memory".into(), format!("{mem_jps:.0}"), format!("{mem_tps:.0}")]);
    report.row(["disk".into(), format!("{disk_jps:.0}"), format!("{disk_tps:.0}")]);
    report.row(["overhead".into(), format!("{:.2}x", mem_jps / disk_jps), format!("{overhead:.2}x")]);
    print!("{}", report.render());
    eprintln!(
        "bench-storage: {} commits, {} fsyncs, {} bytes written ({} payload), \
         {} segments, {} checkpoints; cold start {:.1} ms",
        storage.commits,
        storage.fsyncs,
        storage.bytes_written,
        storage.payload_bytes,
        storage.segments_created,
        storage.checkpoints_written,
        recovery_secs * 1e3
    );

    if check {
        let baseline: Value = match std::fs::read_to_string(out)
            .map_err(|e| e.to_string())
            .and_then(|s| serde_json::parse(&s).map_err(|e| e.to_string()))
        {
            Ok(v) => v,
            Err(e) => {
                eprintln!("bench-storage: cannot read baseline {out}: {e}");
                return ExitCode::from(2);
            }
        };
        let base = baseline.get_field("disk_overhead").and_then(|v| match v {
            Value::F64(x) => Some(*x),
            Value::U64(x) => Some(*x as f64),
            Value::I64(x) => Some(*x as f64),
            _ => None,
        });
        let Some(base) = base else {
            eprintln!("bench-storage: baseline {out} has no disk_overhead");
            return ExitCode::from(2);
        };
        let ceiling = base * (1.0 + tolerance / 100.0);
        if overhead > ceiling {
            eprintln!(
                "bench-storage: REGRESSION: disk overhead {overhead:.2}x > \
                 ceiling {ceiling:.2}x (baseline {base:.2}x + {tolerance}%)"
            );
            return ExitCode::FAILURE;
        }
        eprintln!(
            "bench-storage: ok ({overhead:.2}x vs baseline {base:.2}x, ceiling {ceiling:.2}x)"
        );
    } else {
        // Round-trip the storage counters through the serializer so the
        // whole stats block lands in the report verbatim.
        let storage_doc = serde_json::parse(
            &serde_json::to_string(&storage).expect("serialize storage stats"),
        )
        .expect("reparse storage stats");
        let doc = Value::Object(vec![
            ("bench".into(), Value::Str("storage-durability".into())),
            (
                "workload".into(),
                Value::Object(vec![
                    ("tenants".into(), Value::U64(tenants)),
                    ("shards".into(), Value::U64(shards as u64)),
                    ("rounds".into(), Value::U64(rounds)),
                    ("submits_per_tenant_per_round".into(), Value::U64(submits)),
                    ("total_jobs".into(), Value::U64(total_jobs)),
                    ("checkpoint_every".into(), Value::U64(checkpoint_every)),
                    ("fsync".into(), Value::Bool(fsync)),
                    ("codec".into(), Value::Str(codec.name().into())),
                    ("n".into(), Value::U64(n as u64)),
                    ("delta".into(), Value::U64(delta)),
                    ("seed".into(), Value::U64(seed)),
                    ("quick".into(), Value::Bool(quick)),
                ]),
            ),
            ("tolerance_pct".into(), Value::F64(tolerance)),
            ("memory_jobs_per_sec".into(), Value::F64(mem_jps)),
            ("disk_jobs_per_sec".into(), Value::F64(disk_jps)),
            ("memory_ticks_per_sec".into(), Value::F64(mem_tps)),
            ("disk_ticks_per_sec".into(), Value::F64(disk_tps)),
            ("disk_overhead".into(), Value::F64(overhead)),
            ("cold_start_ms".into(), Value::F64(recovery_secs * 1e3)),
            ("storage".into(), storage_doc),
        ]);
        let body = serde_json::to_string_pretty(&doc).expect("serialize bench result");
        if let Err(e) = std::fs::write(out, body + "\n") {
            eprintln!("bench-storage: cannot write {out}: {e}");
            return ExitCode::FAILURE;
        }
        eprintln!("bench-storage: wrote {out}");
    }
    ExitCode::SUCCESS
}

fn cmd_list() {
    println!("experiments (rrs exp <id>):");
    for id in ALL_IDS {
        println!("  {id}");
    }
    println!("\nworkloads (rrs run --workload <name>):");
    for w in WORKLOAD_NAMES {
        println!("  {w}");
    }
    println!("\npolicies (rrs run --policy <name>):");
    for p in POLICY_NAMES {
        println!("  {p}");
    }
}
