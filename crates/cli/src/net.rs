//! `rrs serve` and `rrs bench-net`: the service on the wire.
//!
//! `serve` binds a TCP listener, hands a supervised service to
//! [`rrs_service::NetServer`], and blocks until some client drives the run
//! to `finish` — the whole submit/tick/stats/snapshot surface is then
//! reachable from other processes through [`rrs_service::NetSink`].
//!
//! `bench-net` is the socket-level load generator: it runs the same
//! deterministic [`SyntheticLoad`] three ways in one process — in-process
//! batched (the oracle and the normalizer), closed-loop over loopback
//! sockets (one epoch in flight per client), and open-loop (pipelined
//! epochs) — asserts all three agree bit-for-bit on every tenant's final
//! result, and reports jobs/sec, ack-latency quantiles and bytes/job. The
//! tracked, machine-normalized gate is `net_open_vs_inproc`: open-loop
//! socket throughput as a fraction of in-process throughput.

use crate::{flag, opt_value};
use rrs_analysis::table::Table;
use rrs_core::{ColorTable, RunResult};
use rrs_service::{
    Codec, DiskBackend, DiskConfig, IngestMode, LatencyHistogramNs, MemoryBackend, NetCounters,
    NetServer, NetSink, PolicySpec, RetryPolicy, ServiceError, SinkConfig, StorageBackend,
    Supervisor, SupervisorConfig, TenantSpec,
};
use rrs_workloads::loadgen::{EpochSink, SyntheticLoad};
use serde_json::Value;
use std::collections::BTreeMap;
use std::process::ExitCode;
use std::time::{Duration, Instant};

const DELAY_BOUNDS: &[u64] = &[2, 4, 8];

fn spec(policy: PolicySpec, n: usize, delta: u64) -> TenantSpec {
    TenantSpec::new(policy, ColorTable::from_delay_bounds(DELAY_BOUNDS), n, delta)
}

fn policy_for(id: u64) -> PolicySpec {
    let all = PolicySpec::all();
    all[(id as usize) % all.len()]
}

/// In-process driver adapter: the supervisor as an [`EpochSink`].
struct SupSink<'a>(&'a mut Supervisor);

impl EpochSink for SupSink<'_> {
    type Error = ServiceError;

    fn submit(
        &mut self,
        tenant: u64,
        arrivals: Vec<(rrs_core::ColorId, u64)>,
    ) -> Result<(), ServiceError> {
        self.0.submit(tenant, arrivals)
    }

    fn tick(&mut self) -> Result<(), ServiceError> {
        self.0.tick()
    }
}

/// Network driver adapter (orphan rules keep this impl out of the
/// library crates).
struct WireSink<'a>(&'a mut NetSink);

impl EpochSink for WireSink<'_> {
    type Error = ServiceError;

    fn submit(
        &mut self,
        tenant: u64,
        arrivals: Vec<(rrs_core::ColorId, u64)>,
    ) -> Result<(), ServiceError> {
        self.0.submit(tenant, arrivals);
        Ok(())
    }

    fn tick(&mut self) -> Result<(), ServiceError> {
        self.0.tick()
    }
}

/// `rrs serve`: expose a supervised service over TCP until a client
/// finishes the run.
pub fn cmd_serve(args: &[String]) -> ExitCode {
    let addr = opt_value(args, "--addr").unwrap_or("127.0.0.1:4650");
    let shards: usize = opt_value(args, "--shards").and_then(|v| v.parse().ok()).unwrap_or(4);
    let queue_cap: usize =
        opt_value(args, "--queue-cap").and_then(|v| v.parse().ok()).unwrap_or(64);
    let checkpoint_every: u64 =
        opt_value(args, "--checkpoint-every").and_then(|v| v.parse().ok()).unwrap_or(32);
    let storage = opt_value(args, "--storage").unwrap_or("memory");
    let data_dir = opt_value(args, "--data-dir").unwrap_or("rrs-data");
    let codec = match opt_value(args, "--codec") {
        None => Codec::default(),
        Some(name) => match Codec::parse(name) {
            Some(c) => c,
            None => {
                eprintln!("serve: unknown codec '{name}' (binary|json)");
                return ExitCode::from(2);
            }
        },
    };
    if shards == 0 {
        eprintln!("serve: --shards must be positive");
        return ExitCode::from(2);
    }

    // The network front-end *is* the batched ingestion path: one socket
    // batch per shard per epoch becomes one WAL group commit.
    let config = SupervisorConfig {
        shards,
        queue_capacity: queue_cap,
        checkpoint_every,
        retry: RetryPolicy::default(),
        shed: Default::default(),
        ingest: IngestMode::Batched,
    };
    let backend: Box<dyn StorageBackend> = if storage == "disk" {
        let mut disk_cfg = DiskConfig::new(data_dir);
        disk_cfg.codec = codec;
        if let Err(e) = disk_cfg.validate() {
            eprintln!("serve: {e}");
            return ExitCode::from(2);
        }
        println!(
            "serve: durable storage at {data_dir}/ (WAL + checkpoints, group fsync, \
             {codec} codec)"
        );
        Box::new(DiskBackend::new(disk_cfg))
    } else if storage == "memory" {
        Box::new(MemoryBackend::new())
    } else {
        eprintln!("serve: unknown --storage {storage} (memory|disk)");
        return ExitCode::from(2);
    };
    let sup = match Supervisor::with_storage(config, &rrs_service::FaultPlan::none(), backend) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("serve: supervisor start failed: {e}");
            return ExitCode::FAILURE;
        }
    };
    let mut server = match NetServer::start(sup, addr) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("serve: {e}");
            return ExitCode::FAILURE;
        }
    };
    println!(
        "serve: listening on {} ({shards} shards, batched ingestion); \
         waiting for a client to finish the run",
        server.addr()
    );
    let results = match server.wait_finished() {
        Ok(r) => r,
        Err(e) => {
            eprintln!("serve: {e}");
            return ExitCode::FAILURE;
        }
    };
    let mut table = Table::new(["tenant", "policy", "executed", "dropped", "cost"]);
    for (id, result) in &results {
        table.row([
            id.to_string(),
            result.policy.clone(),
            result.executed.to_string(),
            result.dropped_jobs.to_string(),
            result.cost.total().to_string(),
        ]);
    }
    print!("{}", table.render());
    println!("serve: run finished ({} tenants); shutting down", results.len());
    server.shutdown();
    ExitCode::SUCCESS
}

/// One timed socket-driven run: `clients` threads over loopback, each
/// driving its tenant slice through its own connection and the shared
/// tick barrier. Returns (elapsed, per-tenant results, counters,
/// merged ack-latency histogram).
#[allow(clippy::type_complexity)]
fn net_mode_run(
    config: &SupervisorConfig,
    workload: &SyntheticLoad,
    clients: u64,
    sink_cfg: &SinkConfig,
    n: usize,
    delta: u64,
) -> Result<(Duration, BTreeMap<u64, RunResult>, NetCounters, LatencyHistogramNs), ServiceError> {
    let sup = Supervisor::new(*config)?;
    let mut server = NetServer::start(sup, "127.0.0.1:0")?;
    let addr = server.addr().to_string();

    // Registration rides a setup connection that never ticks, so it is
    // not a barrier party and stays out of the timed window.
    let mut setup = NetSink::connect(&addr, u64::MAX, sink_cfg.clone())?;
    for id in 0..workload.tenants {
        setup.add_tenant(id, spec(policy_for(id), n, delta))?;
    }

    let barrier = std::sync::Arc::new(std::sync::Barrier::new(clients as usize + 1));
    let mut handles = Vec::new();
    for client in 0..clients {
        let addr = addr.clone();
        let workload = *workload;
        let sink_cfg = sink_cfg.clone();
        let barrier = std::sync::Arc::clone(&barrier);
        handles.push(std::thread::spawn(
            move || -> Result<(NetCounters, LatencyHistogramNs), ServiceError> {
                let mut sink = NetSink::connect(&addr, client + 1, sink_cfg)?;
                barrier.wait();
                for round in 0..workload.rounds {
                    workload.drive_round(&mut WireSink(&mut sink), round, |t| {
                        t % clients == client
                    })?;
                    sink.tick()?;
                }
                sink.flush()?;
                Ok((sink.counters(), sink.ack_latency().clone()))
            },
        ));
    }
    let started = Instant::now();
    barrier.wait();
    let mut counters = NetCounters::default();
    let mut latency = LatencyHistogramNs::new();
    let mut failure = None;
    for handle in handles {
        match handle.join() {
            Ok(Ok((c, h))) => {
                counters.bytes_sent += c.bytes_sent;
                counters.bytes_received += c.bytes_received;
                counters.body_bytes_sent += c.body_bytes_sent;
                counters.body_bytes_received += c.body_bytes_received;
                counters.frames_sent += c.frames_sent;
                counters.reconnects += c.reconnects;
                counters.jobs_submitted += c.jobs_submitted;
                counters.epochs_acked += c.epochs_acked;
                latency.merge(&h);
            }
            Ok(Err(e)) => failure = Some(e),
            Err(_) => failure = Some(ServiceError::Net("client thread panicked".into())),
        }
    }
    // Every epoch acked and every client joined: the clock stops with all
    // submitted work durable and applied.
    let elapsed = started.elapsed();
    if let Some(e) = failure {
        return Err(e);
    }
    let results = setup.finish()?;
    server.shutdown();
    Ok((elapsed, results, counters, latency))
}

/// `rrs bench-net`: the tracked socket-ingestion throughput baseline.
pub fn cmd_bench_net(args: &[String]) -> ExitCode {
    let quick = flag(args, "--quick");
    let clients: u64 = opt_value(args, "--clients")
        .and_then(|v| v.parse().ok())
        .unwrap_or(if quick { 2 } else { 4 });
    let tenants: u64 = opt_value(args, "--tenants")
        .and_then(|v| v.parse().ok())
        .unwrap_or(if quick { 32 } else { 64 });
    let shards: usize = opt_value(args, "--shards").and_then(|v| v.parse().ok()).unwrap_or(4);
    let rounds: u64 = opt_value(args, "--rounds")
        .and_then(|v| v.parse().ok())
        .unwrap_or(if quick { 160 } else { 512 });
    let parts: u64 = opt_value(args, "--parts")
        .and_then(|v| v.parse().ok())
        .unwrap_or(if quick { 2 } else { 4 });
    let colors: u64 = opt_value(args, "--colors")
        .and_then(|v| v.parse().ok())
        .unwrap_or(DELAY_BOUNDS.len() as u64);
    let inflight: usize =
        opt_value(args, "--open-inflight").and_then(|v| v.parse().ok()).unwrap_or(8);
    let compress = flag(args, "--compress");
    let codec = match opt_value(args, "--codec") {
        None => Codec::default(),
        Some(name) => match Codec::parse(name) {
            Some(c) => c,
            None => {
                eprintln!("bench-net: unknown codec '{name}' (binary|json)");
                return ExitCode::from(2);
            }
        },
    };
    let tolerance: f64 =
        opt_value(args, "--tolerance").and_then(|v| v.parse().ok()).unwrap_or(25.0);
    let out = opt_value(args, "--out").unwrap_or("BENCH_net.json");
    let check = flag(args, "--check");
    if clients == 0 || tenants < clients {
        eprintln!("bench-net: need at least one client and one tenant per client");
        return ExitCode::from(2);
    }

    let n = 4;
    let delta = 2;
    let workload = SyntheticLoad { tenants, rounds, parts, colors };
    let total_jobs = workload.total_jobs(|_| true);
    eprintln!(
        "bench-net: {tenants} tenants on {shards} shards, {rounds} rounds x {parts} parts, \
         {total_jobs} jobs, {clients} clients over loopback TCP ({codec} codec)"
    );

    let config = SupervisorConfig {
        shards,
        ingest: IngestMode::Batched,
        ..SupervisorConfig::default()
    };
    let sink_cfg = |max_inflight: usize| SinkConfig {
        retry: RetryPolicy {
            attempts: 4,
            op_timeout: Duration::from_secs(30),
            backoff: Duration::from_millis(5),
        },
        seed: 1,
        compress,
        codec,
        parties: clients as u32,
        max_inflight,
    };

    // In-process batched reference: the oracle for correctness and the
    // normalizer for the machine-independent gate metric.
    let mut sup = Supervisor::new(config).expect("supervisor start");
    for id in 0..tenants {
        sup.add_tenant(id, spec(policy_for(id), n, delta)).expect("add tenant");
    }
    let started = Instant::now();
    workload.drive(&mut SupSink(&mut sup), |_| true).expect("in-process drive");
    sup.stats().expect("stats");
    let inproc_secs = started.elapsed().as_secs_f64().max(1e-9);
    let inproc_results = sup.finish().expect("finish");
    let inproc_jps = total_jobs as f64 / inproc_secs;

    let (closed_elapsed, closed_results, closed_counters, closed_latency) =
        match net_mode_run(&config, &workload, clients, &sink_cfg(1), n, delta) {
            Ok(r) => r,
            Err(e) => {
                eprintln!("bench-net: closed-loop run failed: {e}");
                return ExitCode::FAILURE;
            }
        };
    let (open_elapsed, open_results, open_counters, open_latency) =
        match net_mode_run(&config, &workload, clients, &sink_cfg(inflight), n, delta) {
            Ok(r) => r,
            Err(e) => {
                eprintln!("bench-net: open-loop run failed: {e}");
                return ExitCode::FAILURE;
            }
        };

    // The bench doubles as a conformance check: a socket transport that
    // changes any tenant's result has no business being fast.
    assert_eq!(closed_results, inproc_results, "closed-loop net run diverged from in-process");
    assert_eq!(open_results, inproc_results, "open-loop net run diverged from in-process");

    let closed_jps = total_jobs as f64 / closed_elapsed.as_secs_f64().max(1e-9);
    let open_jps = total_jobs as f64 / open_elapsed.as_secs_f64().max(1e-9);
    let ratio = open_jps / inproc_jps;
    let wire_bytes = |c: &NetCounters| c.bytes_sent + c.bytes_received;
    let bytes_per_job = |c: &NetCounters| wire_bytes(c) as f64 / total_jobs as f64;

    let mut table = Table::new(["mode", "jobs/sec", "ack p50", "ack p99", "bytes/job"]);
    table.row([
        "in-process".into(),
        format!("{inproc_jps:.0}"),
        "-".into(),
        "-".into(),
        "-".into(),
    ]);
    table.row([
        "net closed-loop".into(),
        format!("{closed_jps:.0}"),
        format!("{}ns", closed_latency.p50()),
        format!("{}ns", closed_latency.p99()),
        format!("{:.1}", bytes_per_job(&closed_counters)),
    ]);
    table.row([
        "net open-loop".into(),
        format!("{open_jps:.0}"),
        format!("{}ns", open_latency.p50()),
        format!("{}ns", open_latency.p99()),
        format!("{:.1}", bytes_per_job(&open_counters)),
    ]);
    table.row([
        "open vs in-proc".into(),
        format!("{ratio:.3}x"),
        "-".into(),
        "-".into(),
        "-".into(),
    ]);
    print!("{}", table.render());

    if check {
        let baseline: Value = match std::fs::read_to_string(out)
            .map_err(|e| e.to_string())
            .and_then(|s| serde_json::parse(&s).map_err(|e| e.to_string()))
        {
            Ok(v) => v,
            Err(e) => {
                eprintln!("bench-net: cannot read baseline {out}: {e}");
                return ExitCode::from(2);
            }
        };
        // Quick mode carries proportionally more barrier overhead per job
        // (fewer tenants x parts per epoch), so its ratio sits well below
        // the full-config one; gate against a quick-mode baseline instead
        // of comparing apples to oranges.
        let key = if quick { "net_open_vs_inproc_quick" } else { "net_open_vs_inproc" };
        let base = baseline.get_field(key).and_then(|v| match v {
            Value::F64(x) => Some(*x),
            Value::U64(x) => Some(*x as f64),
            Value::I64(x) => Some(*x as f64),
            _ => None,
        });
        let Some(base) = base else {
            eprintln!("bench-net: baseline {out} has no {key}");
            return ExitCode::from(2);
        };
        let floor = base * (1.0 - tolerance / 100.0);
        // Loopback throughput on a shared machine is noisy; a regression
        // verdict needs to survive re-measurement, not one bad slice of
        // scheduler time.
        let mut best = ratio;
        let mut attempt = 1;
        while best < floor && attempt < 3 {
            attempt += 1;
            eprintln!(
                "bench-net: ratio {best:.3} below floor {floor:.3}; \
                 re-measuring ({attempt}/3)"
            );
            let mut sup = match Supervisor::new(config) {
                Ok(s) => s,
                Err(e) => {
                    eprintln!("bench-net: re-measure failed: {e}");
                    return ExitCode::FAILURE;
                }
            };
            for id in 0..tenants {
                if let Err(e) = sup.add_tenant(id, spec(policy_for(id), n, delta)) {
                    eprintln!("bench-net: re-measure failed: {e}");
                    return ExitCode::FAILURE;
                }
            }
            let started = Instant::now();
            let retry = workload
                .drive(&mut SupSink(&mut sup), |_| true)
                .and_then(|_| sup.stats().map(drop))
                .map(|()| started.elapsed().as_secs_f64().max(1e-9))
                .and_then(|secs| sup.finish().map(|results| (secs, results)))
                .and_then(|(secs, results)| {
                    let run =
                        net_mode_run(&config, &workload, clients, &sink_cfg(inflight), n, delta)?;
                    assert_eq!(run.1, results, "open-loop net run diverged from in-process");
                    let open = total_jobs as f64 / run.0.as_secs_f64().max(1e-9);
                    Ok(open / (total_jobs as f64 / secs))
                });
            match retry {
                Ok(r) => best = best.max(r),
                Err(e) => {
                    eprintln!("bench-net: re-measure failed: {e}");
                    return ExitCode::FAILURE;
                }
            }
        }
        if best < floor {
            eprintln!(
                "bench-net: REGRESSION: open-loop/in-process ratio {best:.3} < \
                 floor {floor:.3} (baseline {base:.3} − {tolerance}%)"
            );
            return ExitCode::FAILURE;
        }
        eprintln!("bench-net: ok ({best:.3} vs baseline {base:.3}, floor {floor:.3})");
    } else {
        // Each mode owns its own ratio key; carry the other mode's key
        // over from any existing baseline so full and quick regeneration
        // don't clobber each other.
        let (ratio_key, other_key) = if quick {
            ("net_open_vs_inproc_quick", "net_open_vs_inproc")
        } else {
            ("net_open_vs_inproc", "net_open_vs_inproc_quick")
        };
        let carried = std::fs::read_to_string(out)
            .ok()
            .and_then(|s| serde_json::parse(&s).ok())
            .and_then(|v| v.get_field(other_key).cloned());
        let mut doc = Value::Object(vec![
            ("bench".into(), Value::Str("net-ingestion".into())),
            (
                "workload".into(),
                Value::Object(vec![
                    ("tenants".into(), Value::U64(tenants)),
                    ("shards".into(), Value::U64(shards as u64)),
                    ("rounds".into(), Value::U64(rounds)),
                    ("parts".into(), Value::U64(parts)),
                    ("colors".into(), Value::U64(colors)),
                    ("total_jobs".into(), Value::U64(total_jobs)),
                    ("clients".into(), Value::U64(clients)),
                    ("open_inflight".into(), Value::U64(inflight as u64)),
                    ("compress".into(), Value::Bool(compress)),
                    ("codec".into(), Value::Str(codec.name().into())),
                    ("n".into(), Value::U64(n as u64)),
                    ("delta".into(), Value::U64(delta)),
                    ("quick".into(), Value::Bool(quick)),
                ]),
            ),
            ("tolerance_pct".into(), Value::F64(tolerance)),
            ("inproc_jobs_per_sec".into(), Value::F64(inproc_jps)),
            ("net_closed_jobs_per_sec".into(), Value::F64(closed_jps)),
            ("net_open_jobs_per_sec".into(), Value::F64(open_jps)),
            (ratio_key.into(), Value::F64(ratio)),
            ("closed_ack_p50_ns".into(), Value::U64(closed_latency.p50())),
            ("closed_ack_p99_ns".into(), Value::U64(closed_latency.p99())),
            ("open_ack_p50_ns".into(), Value::U64(open_latency.p50())),
            ("open_ack_p99_ns".into(), Value::U64(open_latency.p99())),
            ("closed_bytes_per_job".into(), Value::F64(bytes_per_job(&closed_counters))),
            ("open_bytes_per_job".into(), Value::F64(bytes_per_job(&open_counters))),
            ("open_wire_bytes".into(), Value::U64(wire_bytes(&open_counters))),
            (
                "open_body_bytes_sent".into(),
                Value::U64(open_counters.body_bytes_sent),
            ),
            (
                "open_body_bytes_received".into(),
                Value::U64(open_counters.body_bytes_received),
            ),
            ("open_frames_sent".into(), Value::U64(open_counters.frames_sent)),
            ("reconnects".into(), Value::U64(open_counters.reconnects)),
        ]);
        if let (Value::Object(fields), Some(other)) = (&mut doc, carried) {
            fields.push((other_key.into(), other));
        }
        let body = serde_json::to_string_pretty(&doc).expect("serialize bench result");
        if let Err(e) = std::fs::write(out, body + "\n") {
            eprintln!("bench-net: cannot write {out}: {e}");
            return ExitCode::FAILURE;
        }
        eprintln!("bench-net: wrote {out}");
    }
    ExitCode::SUCCESS
}
