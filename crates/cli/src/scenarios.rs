//! `rrs scenarios` — the scenario matrix sweep.
//!
//! Sweeps policy × workload × shard count, driving every cell through the
//! live supervised service from *streaming* sources ([`ArrivalSource`]) and
//! computing the richer objectives (weighted flow, delay factor) from a
//! schedule-recording engine run over the same oracle trace. Each cell is
//! cross-checked: the service's cost/executed/dropped must match the
//! offline engine's bit for bit, so the table doubles as a conformance
//! sweep. Cells are grouped by (workload, shards); the cost spread across
//! policies tags the *discriminating* groups — the ones that actually
//! separate policies — and the Appendix A/B cells must reproduce the
//! paper's lower-bound separation (ΔLRU and EDF each beaten by ΔLRU-EDF on
//! their own adversary).
//!
//! The sweep is deterministic from `(axes, seed)`: the JSON report carries
//! no clocks or machine state, so two runs of the same command are
//! byte-identical — which is what the CI smoke checks with `cmp`.

use rrs_core::{CostModel, Engine, EngineOptions, ObjectiveMetrics, RunResult};
use rrs_service::{
    FaultPlan, IngestMode, MemoryBackend, PolicySpec, Supervisor, SupervisorConfig, TenantSpec,
};
use rrs_workloads::prelude::*;
use serde_json::Value;
use std::collections::BTreeMap;
use std::process::ExitCode;

fn flag(args: &[String], name: &str) -> bool {
    args.iter().any(|a| a == name)
}

fn opt_value<'a>(args: &'a [String], name: &str) -> Option<&'a str> {
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1))
        .map(String::as_str)
}

/// The workload axis. `size` scales the adversaries; `horizon` sizes the
/// stochastic generators.
fn workload_menu(size: u32, horizon: u64) -> Vec<(&'static str, WorkloadSpec)> {
    vec![
        (
            "dlru-adversary",
            WorkloadSpec::DlruAdversary(DlruAdversary::scaled(size)),
        ),
        (
            "edf-adversary",
            WorkloadSpec::EdfAdversary(EdfAdversary::scaled(size)),
        ),
        (
            "drifting",
            WorkloadSpec::Drifting(DriftingDemand {
                period: (horizon / 2).max(2),
                horizon,
                ..DriftingDemand::default()
            }),
        ),
        (
            "flash-crowd",
            WorkloadSpec::FlashCrowd(FlashCrowd {
                width: (horizon / 8).max(1),
                horizon,
                ..FlashCrowd::default()
            }),
        ),
        (
            "bursty",
            WorkloadSpec::Bursty(Bursty {
                delay_bounds: vec![2, 4, 8, 16],
                on_load: 0.7,
                p_on: 0.4,
                p_off: 0.4,
                horizon,
                rate_limited: true,
            }),
        ),
    ]
}

const DEFAULT_POLICIES: &[&str] = &["dlru-edf", "dlru", "edf", "greedy"];
const DEFAULT_WORKLOADS: &[&str] = &[
    "dlru-adversary",
    "edf-adversary",
    "drifting",
    "flash-crowd",
    "bursty",
];

/// One swept cell, fully evaluated.
struct Cell {
    policy: String,
    workload: String,
    shards: usize,
    n: usize,
    delta: u64,
    jobs: u64,
    cost: u64,
    reconfig: u64,
    drops: u64,
    metrics: ObjectiveMetrics,
}

/// The instance parameters a workload's cells run under: the adversaries
/// dictate their own `(n, Δ)`; everything else gets a fixed fleet shape.
fn instance_params(spec: &WorkloadSpec) -> (usize, u64) {
    match spec {
        WorkloadSpec::DlruAdversary(a) => (a.n, a.delta),
        WorkloadSpec::EdfAdversary(a) => (a.n, a.delta),
        _ => (4, 4),
    }
}

/// Offline reference for one tenant: a schedule-recording engine run over
/// the oracle trace, reduced to objective metrics.
fn batch_cell(
    trace: &rrs_core::Trace,
    policy: PolicySpec,
    n: usize,
    delta: u64,
) -> Result<(RunResult, ObjectiveMetrics), String> {
    let mut p = policy
        .build(trace.colors(), n, delta)
        .map_err(|e| e.to_string())?;
    let engine = Engine::with_options(EngineOptions {
        speed: policy.speed(),
        record_schedule: true,
        track_latency: false,
        track_perf: false,
    });
    let result = engine
        .run(trace, p.as_mut(), n, CostModel::new(delta))
        .map_err(|e| e.to_string())?;
    let metrics = rrs_core::run_objectives(trace, &result).map_err(|e| e.to_string())?;
    Ok((result, metrics))
}

/// Runs one (policy, workload, shards) cell through the live service.
fn service_cell(
    driver: &StreamingDriver,
    policy: PolicySpec,
    n: usize,
    delta: u64,
    shards: usize,
) -> Result<BTreeMap<u64, RunResult>, String> {
    let config = SupervisorConfig {
        shards,
        ingest: IngestMode::Batched,
        ..SupervisorConfig::default()
    };
    let mut sup = Supervisor::with_storage(config, &FaultPlan::none(), Box::new(MemoryBackend::new()))
        .map_err(|e| e.to_string())?;
    for t in 0..driver.tenants() {
        sup.add_tenant(t, TenantSpec::new(policy, driver.colors(t), n, delta))
            .map_err(|e| format!("tenant {t}: {e}"))?;
    }
    for round in 0..=driver.horizon() {
        for t in 0..driver.tenants() {
            let arrivals = driver.arrivals(t, round);
            if !arrivals.is_empty() {
                sup.submit(t, arrivals).map_err(|e| e.to_string())?;
            }
        }
        sup.tick().map_err(|e| e.to_string())?;
    }
    sup.finish().map_err(|e| e.to_string())
}

/// Validates the sweep report's shape: the axes the CI smoke relies on and
/// the objective columns every cell must carry.
pub fn check_schema(doc: &Value) -> Result<(), String> {
    let cells = doc
        .get_field("cells")
        .and_then(Value::as_array)
        .ok_or("missing cells array")?;
    if cells.is_empty() {
        return Err("cells array is empty".into());
    }
    let mut policies = std::collections::BTreeSet::new();
    let mut workloads = std::collections::BTreeSet::new();
    let mut shard_counts = std::collections::BTreeSet::new();
    for (i, cell) in cells.iter().enumerate() {
        let field = |name: &str| {
            cell.get_field(name)
                .ok_or(format!("cell {i}: missing field '{name}'"))
        };
        match field("policy")? {
            Value::Str(s) => policies.insert(s.clone()),
            other => return Err(format!("cell {i}: policy is {other:?}, not a string")),
        };
        match field("workload")? {
            Value::Str(s) => workloads.insert(s.clone()),
            other => return Err(format!("cell {i}: workload is {other:?}, not a string")),
        };
        match field("shards")? {
            Value::U64(s) => shard_counts.insert(*s),
            other => return Err(format!("cell {i}: shards is {other:?}, not a number")),
        };
        for name in ["cost", "reconfig", "drops", "executed", "jobs"] {
            if !matches!(field(name)?, Value::U64(_)) {
                return Err(format!("cell {i}: '{name}' is not an unsigned number"));
            }
        }
        for name in ["weighted_flow", "mean_flow", "mean_delay_factor", "max_delay_factor"] {
            if !matches!(field(name)?, Value::F64(_) | Value::U64(_)) {
                return Err(format!("cell {i}: '{name}' is not numeric"));
            }
        }
    }
    if policies.len() < 3 {
        return Err(format!("only {} policies swept; need >= 3", policies.len()));
    }
    if workloads.len() < 4 {
        return Err(format!("only {} workloads swept; need >= 4", workloads.len()));
    }
    if shard_counts.len() < 2 {
        return Err(format!(
            "only {} shard counts swept; need >= 2",
            shard_counts.len()
        ));
    }
    doc.get_field("groups")
        .and_then(Value::as_array)
        .ok_or("missing groups array")?;
    doc.get_field("separation")
        .and_then(Value::as_object)
        .ok_or("missing separation object")?;
    Ok(())
}

/// The separation verdicts from the adversarial cells: on each appendix
/// construction, the combined policy must beat the single-minded policy the
/// construction targets. Returns `(json, all_separated)`; adversaries or
/// policies absent from the axes yield a vacuous pass with `checked: false`.
fn separation_verdict(cells: &[Cell], first_shards: usize) -> (Value, bool) {
    let cost_of = |workload: &str, policy: &str| {
        cells
            .iter()
            .find(|c| c.workload == workload && c.policy == policy && c.shards == first_shards)
            .map(|c| c.cost)
    };
    let mut entries = Vec::new();
    let mut all = true;
    for (workload, rival) in [("dlru-adversary", "dlru"), ("edf-adversary", "edf")] {
        let pair = cost_of(workload, rival).zip(cost_of(workload, "dlru-edf"));
        let (checked, separated, rival_cost, combo_cost) = match pair {
            Some((r, c)) => (true, c < r, r, c),
            None => (false, true, 0, 0),
        };
        all &= separated;
        entries.push((
            workload.to_string(),
            Value::Object(vec![
                ("rival".into(), Value::Str(rival.into())),
                ("rival_cost".into(), Value::U64(rival_cost)),
                ("dlru_edf_cost".into(), Value::U64(combo_cost)),
                ("checked".into(), Value::Bool(checked)),
                ("separated".into(), Value::Bool(separated)),
            ]),
        ));
    }
    entries.push(("all_separated".into(), Value::Bool(all)));
    (Value::Object(entries), all)
}

/// Entry point for `rrs scenarios`.
pub fn cmd_scenarios(args: &[String]) -> ExitCode {
    // Standalone schema-check mode: validate an existing report and exit.
    if let Some(path) = opt_value(args, "--check-schema") {
        let doc = match std::fs::read_to_string(path)
            .map_err(|e| e.to_string())
            .and_then(|s| serde_json::parse(&s).map_err(|e| e.to_string()))
        {
            Ok(v) => v,
            Err(e) => {
                eprintln!("scenarios: cannot read {path}: {e}");
                return ExitCode::from(2);
            }
        };
        return match check_schema(&doc) {
            Ok(()) => {
                println!("scenarios: {path} conforms to the sweep schema");
                ExitCode::SUCCESS
            }
            Err(e) => {
                eprintln!("scenarios: {path} violates the sweep schema: {e}");
                ExitCode::FAILURE
            }
        };
    }

    let quick = flag(args, "--quick");
    let seed: u64 = opt_value(args, "--seed")
        .and_then(|v| v.parse().ok())
        .unwrap_or(42);
    let tenants: u64 = opt_value(args, "--tenants")
        .and_then(|v| v.parse().ok())
        .unwrap_or(if quick { 2 } else { 3 });
    let size: u32 = match opt_value(args, "--size").map(str::parse) {
        None => {
            if quick {
                1
            } else {
                2
            }
        }
        Some(Ok(s)) => s,
        Some(Err(e)) => {
            eprintln!("scenarios: --size: {e}");
            return ExitCode::from(2);
        }
    };
    let horizon: u64 = opt_value(args, "--horizon")
        .and_then(|v| v.parse().ok())
        .unwrap_or(if quick { 128 } else { 512 });
    let shard_list: Vec<usize> = opt_value(args, "--shard-list")
        .map(|v| v.split(',').filter_map(|x| x.parse().ok()).collect())
        .filter(|v: &Vec<usize>| !v.is_empty())
        .unwrap_or_else(|| vec![1, 4]);

    let menu = workload_menu(size, horizon);
    let workload_names: Vec<&str> = match opt_value(args, "--workloads") {
        Some(list) => {
            let mut names = Vec::new();
            for name in list.split(',') {
                match menu.iter().find(|(n, _)| *n == name) {
                    Some((n, _)) => names.push(*n),
                    None => {
                        eprintln!(
                            "scenarios: unknown workload '{name}'; options: {DEFAULT_WORKLOADS:?}"
                        );
                        return ExitCode::from(2);
                    }
                }
            }
            names
        }
        None => DEFAULT_WORKLOADS.to_vec(),
    };
    let policy_names: Vec<&str> = match opt_value(args, "--policies") {
        Some(list) => list.split(',').collect(),
        None => DEFAULT_POLICIES.to_vec(),
    };
    let mut policies = Vec::new();
    for name in &policy_names {
        match PolicySpec::parse(name) {
            Some(p) => policies.push((*name, p)),
            None => {
                eprintln!("scenarios: unknown or non-streamable policy '{name}'");
                return ExitCode::from(2);
            }
        }
    }

    // Evaluate the matrix. Per workload: one streaming driver; per policy:
    // one offline reference per tenant (shared across shard counts); per
    // shard count: one live service run, cross-checked against the offline
    // reference.
    let mut cells: Vec<Cell> = Vec::new();
    for wname in &workload_names {
        let spec = menu.iter().find(|(n, _)| n == wname).map(|(_, s)| s.clone()).unwrap();
        let (n, delta) = instance_params(&spec);
        let load = MultiTenantLoad::new(spec, tenants, seed);
        // Spec validation happens here: a bad construction (e.g. an
        // overflowing --size) is a clean diagnostic, not a panic.
        let driver = match StreamingDriver::from_load(&load) {
            Ok(d) => d,
            Err(e) => {
                eprintln!("scenarios: workload '{wname}' is invalid: {e}");
                return ExitCode::from(2);
            }
        };
        let jobs: u64 = (0..tenants).map(|t| driver.oracle(t).total_jobs()).sum();
        for (pname, policy) in &policies {
            let (pname, policy) = (*pname, *policy);
            let mut refs = Vec::new();
            let mut metrics = ObjectiveMetrics::default();
            for t in 0..tenants {
                match batch_cell(&driver.oracle(t), policy, n, delta) {
                    Ok((r, m)) => {
                        metrics.merge(&m);
                        refs.push(r);
                    }
                    Err(e) => {
                        eprintln!("scenarios: {pname} on {wname} (tenant {t}): {e}");
                        return ExitCode::from(2);
                    }
                }
            }
            for &shards in &shard_list {
                let results = match service_cell(&driver, policy, n, delta, shards) {
                    Ok(r) => r,
                    Err(e) => {
                        eprintln!("scenarios: {pname} on {wname} x{shards}: {e}");
                        return ExitCode::from(2);
                    }
                };
                let mut cost = 0;
                let mut reconfig = 0;
                let mut drops = 0;
                for t in 0..tenants {
                    let live = &results[&t];
                    let offline = &refs[t as usize];
                    if live.cost != offline.cost
                        || live.executed != offline.executed
                        || live.dropped_jobs != offline.dropped_jobs
                    {
                        eprintln!(
                            "scenarios: CONFORMANCE FAILURE: {pname} on {wname} x{shards} \
                             tenant {t}: live (cost {}, executed {}, dropped {}) != offline \
                             (cost {}, executed {}, dropped {})",
                            live.cost.total(),
                            live.executed,
                            live.dropped_jobs,
                            offline.cost.total(),
                            offline.executed,
                            offline.dropped_jobs,
                        );
                        return ExitCode::FAILURE;
                    }
                    cost += live.cost.total();
                    reconfig += live.cost.reconfig;
                    drops += live.cost.drop;
                }
                cells.push(Cell {
                    policy: pname.to_string(),
                    workload: wname.to_string(),
                    shards,
                    n,
                    delta,
                    jobs,
                    cost,
                    reconfig,
                    drops,
                    metrics: metrics.clone(),
                });
            }
        }
    }

    // Group verdicts: cost spread across policies within (workload, shards).
    let mut groups: Vec<(String, usize, u64, u64, String, f64)> = Vec::new();
    for wname in &workload_names {
        for &shards in &shard_list {
            let group: Vec<&Cell> = cells
                .iter()
                .filter(|c| c.workload == *wname && c.shards == shards)
                .collect();
            let min = group.iter().map(|c| c.cost).min().unwrap_or(0);
            let max = group.iter().map(|c| c.cost).max().unwrap_or(0);
            let best = group
                .iter()
                .min_by_key(|c| c.cost)
                .map(|c| c.policy.to_string())
                .unwrap_or_default();
            let spread = max as f64 / (min.max(1)) as f64;
            groups.push((wname.to_string(), shards, min, max, best, spread));
        }
    }
    let (separation, separated) = separation_verdict(&cells, shard_list[0]);

    let spread_of = |c: &Cell| {
        groups
            .iter()
            .find(|(w, s, ..)| *w == c.workload && *s == c.shards)
            .map(|&(.., spread)| spread)
            .unwrap_or(1.0)
    };
    const DISCRIMINATING_SPREAD: f64 = 1.5;

    // Render the table.
    let mut table = rrs_analysis::table::Table::new([
        "workload",
        "shards",
        "policy",
        "cost",
        "reconfig",
        "drops",
        "wflow",
        "mean df",
        "max df",
        "tag",
    ]);
    for c in &cells {
        let spread = spread_of(c);
        let best = groups
            .iter()
            .any(|(w, s, .., b, spread)| {
                *w == c.workload
                    && *s == c.shards
                    && *b == c.policy
                    && *spread >= DISCRIMINATING_SPREAD
            });
        table.row([
            c.workload.clone(),
            c.shards.to_string(),
            c.policy.to_string(),
            c.cost.to_string(),
            c.reconfig.to_string(),
            c.drops.to_string(),
            c.metrics.weighted_flow.to_string(),
            format!("{:.3}", c.metrics.mean_delay_factor()),
            format!("{:.3}", c.metrics.max_delay_factor),
            match (spread >= DISCRIMINATING_SPREAD, best) {
                (true, true) => "discriminating,best".into(),
                (true, false) => "discriminating".into(),
                _ => String::new(),
            },
        ]);
    }

    // Assemble the JSON report (no clocks: byte-identical across reruns).
    let cell_values: Vec<Value> = cells
        .iter()
        .map(|c| {
            Value::Object(vec![
                ("policy".into(), Value::Str(c.policy.clone())),
                ("workload".into(), Value::Str(c.workload.clone())),
                ("shards".into(), Value::U64(c.shards as u64)),
                ("n".into(), Value::U64(c.n as u64)),
                ("delta".into(), Value::U64(c.delta)),
                ("jobs".into(), Value::U64(c.jobs)),
                ("cost".into(), Value::U64(c.cost)),
                ("reconfig".into(), Value::U64(c.reconfig)),
                ("drops".into(), Value::U64(c.drops)),
                ("executed".into(), Value::U64(c.metrics.executed)),
                ("weighted_flow".into(), Value::U64(c.metrics.weighted_flow)),
                ("mean_flow".into(), Value::F64(c.metrics.mean_flow())),
                (
                    "mean_delay_factor".into(),
                    Value::F64(c.metrics.mean_delay_factor()),
                ),
                (
                    "max_delay_factor".into(),
                    Value::F64(c.metrics.max_delay_factor),
                ),
                (
                    "discriminating".into(),
                    Value::Bool(spread_of(c) >= DISCRIMINATING_SPREAD),
                ),
            ])
        })
        .collect();
    let group_values: Vec<Value> = groups
        .iter()
        .map(|(w, s, min, max, best, spread)| {
            Value::Object(vec![
                ("workload".into(), Value::Str(w.clone())),
                ("shards".into(), Value::U64(*s as u64)),
                ("min_cost".into(), Value::U64(*min)),
                ("max_cost".into(), Value::U64(*max)),
                ("best_policy".into(), Value::Str(best.clone())),
                ("cost_spread".into(), Value::F64(*spread)),
                (
                    "discriminating".into(),
                    Value::Bool(*spread >= DISCRIMINATING_SPREAD),
                ),
            ])
        })
        .collect();
    let doc = Value::Object(vec![
        ("report".into(), Value::Str("scenarios".into())),
        ("seed".into(), Value::U64(seed)),
        ("quick".into(), Value::Bool(quick)),
        ("tenants".into(), Value::U64(tenants)),
        ("adversary_size".into(), Value::U64(size as u64)),
        ("stochastic_horizon".into(), Value::U64(horizon)),
        (
            "axes".into(),
            Value::Object(vec![
                (
                    "policies".into(),
                    Value::Array(
                        policy_names
                            .iter()
                            .map(|p| Value::Str(p.to_string()))
                            .collect(),
                    ),
                ),
                (
                    "workloads".into(),
                    Value::Array(
                        workload_names
                            .iter()
                            .map(|w| Value::Str(w.to_string()))
                            .collect(),
                    ),
                ),
                (
                    "shards".into(),
                    Value::Array(shard_list.iter().map(|&s| Value::U64(s as u64)).collect()),
                ),
            ]),
        ),
        ("cells".into(), Value::Array(cell_values)),
        ("groups".into(), Value::Array(group_values)),
        ("separation".into(), separation),
    ]);

    if flag(args, "--json") {
        println!("{}", serde_json::to_string_pretty(&doc).expect("render report"));
    } else {
        println!(
            "scenarios: {} policies x {} workloads x {:?} shards, {tenants} tenants, seed {seed}",
            policies.len(),
            workload_names.len(),
            shard_list,
        );
        print!("{}", table.render());
        let discriminating = groups
            .iter()
            .filter(|&&(.., spread)| spread >= DISCRIMINATING_SPREAD)
            .count();
        println!(
            "\n{discriminating}/{} groups discriminate (cost spread >= {DISCRIMINATING_SPREAD}); \
             adversarial separation: {}",
            groups.len(),
            if separated { "confirmed" } else { "VIOLATED" },
        );
    }
    if let Some(path) = opt_value(args, "--out") {
        let body = serde_json::to_string_pretty(&doc).expect("render report");
        if let Err(e) = std::fs::write(path, body + "\n") {
            eprintln!("scenarios: cannot write {path}: {e}");
            return ExitCode::FAILURE;
        }
    }
    if flag(args, "--require-separation") && !separated {
        eprintln!(
            "scenarios: --require-separation: an adversarial cell failed to show \
             ΔLRU-EDF beating the targeted policy"
        );
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mini_doc() -> Value {
        let cell = |p: &str, w: &str, s: u64| {
            Value::Object(vec![
                ("policy".into(), Value::Str(p.into())),
                ("workload".into(), Value::Str(w.into())),
                ("shards".into(), Value::U64(s)),
                ("n".into(), Value::U64(4)),
                ("delta".into(), Value::U64(2)),
                ("jobs".into(), Value::U64(10)),
                ("cost".into(), Value::U64(7)),
                ("reconfig".into(), Value::U64(4)),
                ("drops".into(), Value::U64(3)),
                ("executed".into(), Value::U64(9)),
                ("weighted_flow".into(), Value::F64(12.0)),
                ("mean_flow".into(), Value::F64(1.3)),
                ("mean_delay_factor".into(), Value::F64(0.4)),
                ("max_delay_factor".into(), Value::F64(1.0)),
                ("discriminating".into(), Value::Bool(true)),
            ])
        };
        let mut cells = Vec::new();
        for p in ["dlru-edf", "dlru", "edf"] {
            for w in ["dlru-adversary", "edf-adversary", "drifting", "bursty"] {
                for s in [1, 4] {
                    cells.push(cell(p, w, s));
                }
            }
        }
        Value::Object(vec![
            ("report".into(), Value::Str("scenarios".into())),
            ("cells".into(), Value::Array(cells)),
            ("groups".into(), Value::Array(vec![])),
            ("separation".into(), Value::Object(vec![])),
        ])
    }

    #[test]
    fn schema_accepts_a_full_matrix() {
        check_schema(&mini_doc()).unwrap();
    }

    #[test]
    fn schema_rejects_thin_axes_and_missing_columns() {
        // Too few policies.
        let mut doc = mini_doc();
        if let Value::Object(fields) = &mut doc {
            if let Some((_, Value::Array(cells))) =
                fields.iter_mut().find(|(k, _)| k == "cells")
            {
                cells.retain(|c| {
                    !matches!(c.get_field("policy"), Some(Value::Str(s)) if s == "edf")
                });
            }
        }
        assert!(check_schema(&doc).unwrap_err().contains("policies"));

        // A cell missing an objective column.
        let mut doc = mini_doc();
        if let Value::Object(fields) = &mut doc {
            if let Some((_, Value::Array(cells))) =
                fields.iter_mut().find(|(k, _)| k == "cells")
            {
                if let Value::Object(cell) = &mut cells[0] {
                    cell.retain(|(k, _)| k != "weighted_flow");
                }
            }
        }
        assert!(check_schema(&doc).unwrap_err().contains("weighted_flow"));

        // No separation verdict.
        let mut doc = mini_doc();
        if let Value::Object(fields) = &mut doc {
            fields.retain(|(k, _)| k != "separation");
        }
        assert!(check_schema(&doc).unwrap_err().contains("separation"));
    }

    #[test]
    fn separation_verdict_reads_the_adversarial_cells() {
        let cell = |policy: &str, workload: &str, cost: u64| Cell {
            policy: policy.into(),
            workload: workload.into(),
            shards: 1,
            n: 4,
            delta: 2,
            jobs: 0,
            cost,
            reconfig: 0,
            drops: 0,
            metrics: ObjectiveMetrics::default(),
        };
        let cells = vec![
            cell("dlru", "dlru-adversary", 100),
            cell("dlru-edf", "dlru-adversary", 20),
            cell("edf", "edf-adversary", 90),
            cell("dlru-edf", "edf-adversary", 30),
        ];
        let (doc, all) = separation_verdict(&cells, 1);
        assert!(all);
        assert_eq!(doc.get_field("all_separated"), Some(&Value::Bool(true)));

        // Flip one: combo loses to ΔLRU on its own adversary.
        let cells = vec![
            cell("dlru", "dlru-adversary", 20),
            cell("dlru-edf", "dlru-adversary", 100),
        ];
        let (_, all) = separation_verdict(&cells, 1);
        assert!(!all);

        // Absent adversarial cells: vacuously separated but marked unchecked.
        let (doc, all) = separation_verdict(&[], 1);
        assert!(all);
        let entry = doc.get_field("dlru-adversary").unwrap();
        assert_eq!(entry.get_field("checked"), Some(&Value::Bool(false)));
    }
}
