//! Property suite for the streaming sources and stochastic generators:
//! job conservation between the streaming and offline views, deterministic
//! regeneration from seed, and drift/burst parameters staying within their
//! declared bounds.

use proptest::prelude::*;
use rrs_workloads::prelude::*;

/// Checks the full streaming contract of a source against its spec:
/// `to_trace == generate(seed)`, `horizon == trace.horizon()`, per-round
/// arrivals match, counts positive, colors ascending, and jobs conserved.
fn check_contract(spec: &WorkloadSpec, seed: u64) -> Result<(), String> {
    let src = spec
        .source(seed)
        .map_err(|e| format!("{}: source: {e}", spec.name()))?;
    let oracle = spec.generate(seed);
    if src.to_trace() != oracle {
        return Err(format!("{}: to_trace != generate", spec.name()));
    }
    if src.horizon() != oracle.horizon() {
        return Err(format!(
            "{}: horizon {} != trace horizon {}",
            spec.name(),
            src.horizon(),
            oracle.horizon()
        ));
    }
    let mut streamed_jobs = 0u64;
    for round in 0..=src.horizon() {
        let arrivals = src.arrivals_at(round);
        if arrivals != oracle.arrivals_at(round) {
            return Err(format!("{}: round {round} arrivals differ", spec.name()));
        }
        for window in arrivals.windows(2) {
            if window[0].0 >= window[1].0 {
                return Err(format!("{}: colors not ascending", spec.name()));
            }
        }
        for &(_, count) in &arrivals {
            if count == 0 {
                return Err(format!("{}: zero count streamed", spec.name()));
            }
            streamed_jobs += count;
        }
    }
    if streamed_jobs != oracle.total_jobs() {
        return Err(format!(
            "{}: streamed {streamed_jobs} jobs, trace holds {}",
            spec.name(),
            oracle.total_jobs()
        ));
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn adversaries_stream_their_traces(size in 0u32..3, seed in 0u64..1000) {
        let dlru = WorkloadSpec::DlruAdversary(DlruAdversary::scaled(size));
        check_contract(&dlru, seed).map_err(|e| e.to_string())?;
        let edf = WorkloadSpec::EdfAdversary(EdfAdversary::scaled(size));
        check_contract(&edf, seed).map_err(|e| e.to_string())?;
        // Deterministic adversaries ignore the seed entirely.
        prop_assert_eq!(dlru.generate(seed), dlru.generate(seed + 1));
    }

    #[test]
    fn drifting_contract_and_bounds(
        ncolors in 1usize..5,
        peak in 1u32..40,
        spread_tenths in 2u32..30,
        period in 16u64..200,
        horizon in 8u64..160,
        seed in 0u64..10_000,
    ) {
        let g = DriftingDemand {
            delay_bounds: (0..ncolors).map(|i| 1u64 << (2 + i)).collect(),
            peak_rate: peak as f64 / 10.0,
            spread: spread_tenths as f64 / 10.0,
            period,
            horizon,
        };
        prop_assert!(g.validate().is_ok());
        check_contract(&WorkloadSpec::Drifting(g.clone()), seed).map_err(|e| e.to_string())?;
        // Drift bound: every per-color rate stays within [0, peak_rate], and
        // the focus stays on the color-index spectrum.
        for round in 0..horizon {
            let f = g.focus(round);
            prop_assert!((0.0..=(ncolors as f64 - 1.0) + 1e-9).contains(&f));
            for c in 0..ncolors {
                let r = g.rate(c, round);
                prop_assert!(r >= 0.0 && r <= g.peak_rate + 1e-12, "rate {}", r);
            }
        }
        // Deterministic regeneration.
        prop_assert_eq!(g.generate(seed), g.generate(seed));
    }

    #[test]
    fn flash_crowd_contract_and_bounds(
        ncolors in 1usize..5,
        base in 0u32..20,
        spike in 0u32..80,
        crowds in 0u32..5,
        width in 1u64..40,
        extra in 0u64..160,
        seed in 0u64..10_000,
    ) {
        let g = FlashCrowd {
            delay_bounds: (0..ncolors).map(|i| 1u64 << (2 + i)).collect(),
            base_rate: base as f64 / 10.0,
            crowds,
            spike_rate: spike as f64 / 10.0,
            width,
            horizon: width + extra,
        };
        prop_assert!(g.validate().is_ok());
        check_contract(&WorkloadSpec::FlashCrowd(g.clone()), seed).map_err(|e| e.to_string())?;
        // Burst bound: rate within [base, base + crowds·spike]; windows lie
        // within the horizon.
        let hi = g.base_rate + g.crowds as f64 * g.spike_rate;
        for (start, color) in g.crowd_windows(seed) {
            prop_assert!(start < g.horizon);
            prop_assert!(color < ncolors);
        }
        for round in 0..g.horizon {
            for c in 0..ncolors {
                let r = g.rate(seed, c, round);
                prop_assert!(r >= g.base_rate - 1e-12 && r <= hi + 1e-12, "rate {}", r);
            }
        }
        prop_assert_eq!(g.generate(seed), g.generate(seed));
    }

    #[test]
    fn trace_backed_sources_conserve_jobs(seed in 0u64..10_000, horizon in 16u64..128) {
        let specs = [
            WorkloadSpec::RandomBatched(RandomBatched {
                delay_bounds: vec![4, 8, 16],
                load: 0.6,
                activity: 0.8,
                horizon,
                rate_limited: true,
            }),
            WorkloadSpec::Bursty(Bursty {
                delay_bounds: vec![4, 16],
                on_load: 0.7,
                p_on: 0.4,
                p_off: 0.4,
                horizon,
                rate_limited: true,
            }),
            WorkloadSpec::Datacenter(Datacenter {
                interactive_services: 2,
                batch_services: 1,
                period: 64,
                horizon,
                ..Datacenter::default()
            }),
        ];
        for spec in &specs {
            check_contract(spec, seed).map_err(|e| e.to_string())?;
        }
    }

    #[test]
    fn multi_tenant_streaming_matches_open_loop(tenants in 1u64..5, base_seed in 0u64..1000) {
        let load = MultiTenantLoad::new(
            WorkloadSpec::FlashCrowd(FlashCrowd {
                horizon: 96,
                width: 24,
                ..FlashCrowd::default()
            }),
            tenants,
            base_seed,
        );
        let open = OpenLoopDriver::new(&load);
        let streaming = StreamingDriver::from_load(&load).map_err(|e| e.to_string())?;
        prop_assert_eq!(streaming.horizon(), open.horizon());
        for t in 0..tenants {
            prop_assert_eq!(&streaming.oracle(t), open.trace(t));
            for r in 0..=open.horizon() {
                prop_assert_eq!(streaming.arrivals(t, r), open.arrivals(t, r));
            }
        }
    }
}
