//! Application scenarios from the paper's introduction.
//!
//! The paper motivates reconfigurable resource scheduling with shared data
//! centers and multi-service routers built on programmable multi-core network
//! processors, plus the "background vs. short-term jobs" thought experiment.
//! These generators synthesize those workloads (the paper has no traces of its
//! own — it is theory-only — so these are the closest synthetic equivalents;
//! see DESIGN.md for the substitution notes).

use crate::util::{pareto, poisson};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rrs_core::prelude::*;
use serde::{Deserialize, Serialize};

/// A shared data center hosting several services with diurnal load patterns
/// (paper §1, citing Chandra et al. and Chase et al.).
///
/// Services come in two delay classes — interactive (small `D`) and batch
/// (large `D`) — and each service's arrival rate follows a sinusoid with a
/// service-specific phase, so the workload composition shifts over time and
/// processor allocations must follow it.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Datacenter {
    /// Number of interactive services (delay bound `interactive_delay`).
    pub interactive_services: usize,
    /// Number of batch services (delay bound `batch_delay`).
    pub batch_services: usize,
    /// Delay bound of interactive services (power of two).
    pub interactive_delay: u64,
    /// Delay bound of batch services (power of two).
    pub batch_delay: u64,
    /// Mean arrivals per round per service at peak.
    pub peak_rate: f64,
    /// Diurnal period in rounds.
    pub period: u64,
    /// Number of rounds.
    pub horizon: Round,
}

impl Default for Datacenter {
    fn default() -> Self {
        Datacenter {
            interactive_services: 6,
            batch_services: 2,
            interactive_delay: 8,
            batch_delay: 256,
            peak_rate: 1.0,
            period: 512,
            horizon: 2048,
        }
    }
}

impl Datacenter {
    /// Checks the parameters.
    pub fn validate(&self) -> Result<()> {
        if self.interactive_services + self.batch_services == 0 {
            return Err(Error::InvalidParameter("no services".into()));
        }
        if self.interactive_delay == 0 || self.batch_delay == 0 {
            return Err(Error::InvalidParameter("delay bounds must be positive".into()));
        }
        if self.period == 0 {
            return Err(Error::InvalidParameter("period must be positive".into()));
        }
        crate::synthetic::check_rate("peak_rate", self.peak_rate)?;
        crate::synthetic::check_bounds_and_horizon(&[self.interactive_delay], self.horizon)
    }

    /// Generates the trace for `seed`.
    pub fn generate(&self, seed: u64) -> Trace {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut bounds = vec![self.interactive_delay; self.interactive_services];
        bounds.extend(std::iter::repeat_n(self.batch_delay, self.batch_services));
        let ncolors = bounds.len();
        let mut trace = Trace::new(ColorTable::from_delay_bounds(&bounds));
        let phases: Vec<f64> = (0..ncolors)
            .map(|i| i as f64 / ncolors as f64 * std::f64::consts::TAU)
            .collect();
        for r in 0..self.horizon {
            for (c, &phase) in phases.iter().enumerate() {
                let diurnal = 0.5
                    + 0.5
                        * ((std::f64::consts::TAU * r as f64 / self.period as f64 + phase).sin());
                let rate = self.peak_rate * diurnal;
                let count = poisson(&mut rng, rate);
                trace.add(r, ColorId(c as u32), count).expect("color exists");
            }
        }
        trace
    }
}

/// A multi-service router on a programmable network processor (paper §1,
/// citing Spalink et al., Srinivasan et al. and Kokku et al.).
///
/// Packet categories have per-category delay tolerances; traffic arrives as
/// Poisson *flowlets* whose sizes are heavy-tailed (Pareto), so load per
/// category fluctuates sharply and processor allocations must be reconfigured.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Router {
    /// Per-category delay tolerances (powers of two).
    pub delay_bounds: Vec<u64>,
    /// Mean flowlet arrivals per round per category.
    pub flowlet_rate: f64,
    /// Pareto shape of flowlet sizes (smaller = heavier tail).
    pub pareto_alpha: f64,
    /// Mean flowlet size scale.
    pub pareto_scale: f64,
    /// Flowlet size cap.
    pub max_flowlet: u64,
    /// Number of rounds.
    pub horizon: Round,
}

impl Default for Router {
    fn default() -> Self {
        Router {
            delay_bounds: vec![4, 8, 8, 16, 32, 64],
            flowlet_rate: 0.1,
            pareto_alpha: 1.5,
            pareto_scale: 3.0,
            max_flowlet: 64,
            horizon: 2048,
        }
    }
}

impl Router {
    /// Checks the parameters.
    pub fn validate(&self) -> Result<()> {
        crate::synthetic::check_bounds_and_horizon(&self.delay_bounds, self.horizon)?;
        crate::synthetic::check_rate("flowlet_rate", self.flowlet_rate)?;
        if !self.pareto_alpha.is_finite()
            || self.pareto_alpha <= 0.0
            || !self.pareto_scale.is_finite()
            || self.pareto_scale <= 0.0
        {
            return Err(Error::InvalidParameter(
                "Pareto shape and scale must be positive".into(),
            ));
        }
        if self.max_flowlet == 0 {
            return Err(Error::InvalidParameter("max_flowlet must be positive".into()));
        }
        Ok(())
    }

    /// Generates the trace for `seed`.
    pub fn generate(&self, seed: u64) -> Trace {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut trace = Trace::new(ColorTable::from_delay_bounds(&self.delay_bounds));
        for r in 0..self.horizon {
            for c in 0..self.delay_bounds.len() {
                let flowlets = poisson(&mut rng, self.flowlet_rate);
                let mut count = 0;
                for _ in 0..flowlets {
                    count += pareto(&mut rng, self.pareto_scale, self.pareto_alpha, self.max_flowlet);
                }
                trace.add(r, ColorId(c as u32), count).expect("color exists");
            }
        }
        trace
    }
}

/// The introduction's thought experiment: *background* jobs with deadlines far
/// in the future plus *short-term* jobs with small delay bounds arriving
/// intermittently. This is the scenario where both naive approaches (always
/// use idle cycles vs. wait for long idle periods) lose — thrashing or
/// underutilization respectively.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BackgroundMix {
    /// Number of short-term colors.
    pub short_colors: usize,
    /// Short-term delay bound (power of two).
    pub short_delay: u64,
    /// Background delay bound (power of two, far larger).
    pub background_delay: u64,
    /// Background backlog injected at round 0, as a fraction of
    /// `background_delay`.
    pub background_backlog: f64,
    /// Probability a short-term color bursts at a multiple of its delay bound.
    pub burst_prob: f64,
    /// Mean burst size as a fraction of `short_delay`.
    pub burst_load: f64,
    /// Number of rounds.
    pub horizon: Round,
}

impl Default for BackgroundMix {
    fn default() -> Self {
        BackgroundMix {
            short_colors: 3,
            short_delay: 8,
            background_delay: 1024,
            background_backlog: 0.9,
            burst_prob: 0.5,
            burst_load: 0.8,
            horizon: 2048,
        }
    }
}

impl BackgroundMix {
    /// Checks the parameters.
    pub fn validate(&self) -> Result<()> {
        if self.short_delay == 0 || self.background_delay == 0 {
            return Err(Error::InvalidParameter("delay bounds must be positive".into()));
        }
        crate::synthetic::check_rate("background_backlog", self.background_backlog)?;
        crate::synthetic::check_rate("burst_load", self.burst_load)?;
        crate::synthetic::check_unit_interval("burst_prob", self.burst_prob)?;
        crate::synthetic::check_bounds_and_horizon(&[self.short_delay], self.horizon)
    }

    /// Generates the trace for `seed`. Color ids `0..short_colors` are the
    /// short-term colors; the last color is the background color.
    pub fn generate(&self, seed: u64) -> Trace {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut bounds = vec![self.short_delay; self.short_colors];
        bounds.push(self.background_delay);
        let mut trace = Trace::new(ColorTable::from_delay_bounds(&bounds));
        let bg = ColorId(self.short_colors as u32);
        // Background backlog at every multiple of its delay bound.
        let backlog = (self.background_backlog * self.background_delay as f64) as u64;
        let mut r = 0;
        while r < self.horizon {
            trace.add(r, bg, backlog).expect("color exists");
            r += self.background_delay;
        }
        // Intermittent short-term bursts.
        for c in 0..self.short_colors {
            let mut r = 0;
            while r < self.horizon {
                if rng.gen::<f64>() < self.burst_prob {
                    let count = poisson(&mut rng, self.burst_load * self.short_delay as f64);
                    trace.add(r, ColorId(c as u32), count).expect("color exists");
                }
                r += self.short_delay;
            }
        }
        trace
    }

    /// The background color's id.
    pub fn background_color(&self) -> ColorId {
        ColorId(self.short_colors as u32)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn datacenter_default_generates_work() {
        let t = Datacenter::default().generate(1);
        assert!(t.total_jobs() > 500);
        assert_eq!(t.colors().len(), 8);
        assert_eq!(t.batch_class(), BatchClass::General);
    }

    #[test]
    fn datacenter_is_deterministic_per_seed() {
        let g = Datacenter::default();
        assert_eq!(g.generate(5), g.generate(5));
        assert_ne!(g.generate(5), g.generate(6));
    }

    #[test]
    fn datacenter_load_shifts_over_time() {
        // With antiphase services, per-service load must vary across the period.
        let g = Datacenter {
            interactive_services: 2,
            batch_services: 0,
            period: 128,
            horizon: 256,
            peak_rate: 4.0,
            ..Datacenter::default()
        };
        let t = g.generate(2);
        // Compare color 0's jobs in the first and second half-period.
        let mut first = 0u64;
        let mut second = 0u64;
        for a in t.iter() {
            if a.color == ColorId(0) {
                if a.round % 128 < 64 {
                    first += a.count;
                } else {
                    second += a.count;
                }
            }
        }
        assert!(
            (first as f64 - second as f64).abs() > 0.2 * (first + second) as f64,
            "diurnal skew visible: {first} vs {second}"
        );
    }

    #[test]
    fn router_bursts_are_heavy_tailed() {
        let t = Router::default().generate(3);
        assert!(t.total_jobs() > 0);
        let max_batch = t.iter().map(|a| a.count).max().unwrap();
        assert!(max_batch >= 8, "some large flowlets: {max_batch}");
    }

    #[test]
    fn validation_rejects_bad_parameters() {
        assert!(Datacenter::default().validate().is_ok());
        assert!(Datacenter {
            interactive_services: 0,
            batch_services: 0,
            ..Datacenter::default()
        }
        .validate()
        .is_err());
        assert!(Datacenter {
            period: 0,
            ..Datacenter::default()
        }
        .validate()
        .is_err());
        assert!(Router::default().validate().is_ok());
        assert!(Router {
            pareto_alpha: 0.0,
            ..Router::default()
        }
        .validate()
        .is_err());
        assert!(Router {
            max_flowlet: 0,
            ..Router::default()
        }
        .validate()
        .is_err());
        assert!(BackgroundMix::default().validate().is_ok());
        assert!(BackgroundMix {
            burst_prob: 2.0,
            ..BackgroundMix::default()
        }
        .validate()
        .is_err());
        assert!(BackgroundMix {
            background_delay: 0,
            ..BackgroundMix::default()
        }
        .validate()
        .is_err());
    }

    #[test]
    fn background_mix_shape() {
        let g = BackgroundMix::default();
        let t = g.generate(4);
        let bg = g.background_color();
        assert_eq!(t.colors().delay_bound(bg), 1024);
        assert!(t.jobs_of_color(bg) >= 900, "backlog present");
        assert!(
            (0..g.short_colors).any(|c| t.jobs_of_color(ColorId(c as u32)) > 0),
            "short-term bursts present"
        );
    }
}
