//! The paper's lower-bound constructions (Appendices A and B).
//!
//! These deterministic request sequences witness that neither ΔLRU nor EDF
//! alone is resource competitive:
//!
//! * **Appendix A** ([`DlruAdversary`]): `n/2` *short-term* colors with delay
//!   bound `2^j` receive Δ jobs at every multiple of `2^j`, while one
//!   *long-term* color with delay bound `2^k` receives `2^k` jobs at round 0,
//!   with `2^k > 2^{j+1} > nΔ`. ΔLRU pins the perpetually-recent short colors
//!   and starves the long color's backlog (cost ≥ `2^k` drops), while an
//!   offline schedule that parks one resource on the long color pays only
//!   `Δ + 2^{k-j-1}·n·Δ` — giving ratio `Ω(2^{j+1}/(nΔ))`.
//!
//! * **Appendix B** ([`EdfAdversary`]): one color with delay bound `2^j`
//!   receives Δ jobs per multiple of `2^j` until round `2^{k-1}`, plus `n/2`
//!   long colors with delay bounds `2^{k+p}` (`0 ≤ p < n/2`) each receiving
//!   `2^{k+p-1}` jobs at round 0, with `2^k > 2^j > Δ > n`. EDF's idleness-first
//!   ranking makes it repeatedly evict and re-cache long colors whenever the
//!   short color alternates between idle and nonidle, thrashing on
//!   reconfigurations (`≥ 2^{k-j-1}·Δ`), while an offline schedule pays only
//!   `(n/2 + 1)·Δ` — giving ratio `≥ 2^{k-j-1}/(n/2 + 1)`.

use rrs_core::prelude::*;
use serde::{Deserialize, Serialize};

/// Appendix A: the adversary against ΔLRU.
///
/// ```
/// use rrs_workloads::DlruAdversary;
///
/// let adv = DlruAdversary { n: 8, delta: 2, j: 6, k: 8 };
/// adv.validate().unwrap();
/// let trace = adv.generate();
/// assert_eq!(trace.jobs_of_color(adv.long_color()), 1 << 8);
/// assert!(adv.paper_ratio_bound() > 1.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DlruAdversary {
    /// Number of resources the online algorithm will be given (must be even).
    pub n: usize,
    /// Reconfiguration cost Δ.
    pub delta: u64,
    /// Short-term delay bound exponent: `D_short = 2^j`.
    pub j: u32,
    /// Long-term delay bound exponent: `D_long = 2^k`.
    pub k: u32,
}

impl DlruAdversary {
    /// Checks the construction's constraints `2^k > 2^{j+1} > nΔ` (plus
    /// `Δ ≥ 1` and a horizon-overflow guard).
    pub fn validate(&self) -> Result<()> {
        if self.n == 0 || !self.n.is_multiple_of(2) {
            return Err(Error::InvalidParameter("n must be positive and even".into()));
        }
        if self.delta == 0 {
            return Err(Error::InvalidParameter("Δ must be positive".into()));
        }
        if self.k <= self.j {
            return Err(Error::InvalidParameter("need k > j".into()));
        }
        if self.k >= 63 {
            return Err(Error::InvalidParameter(format!(
                "horizon 2^{} overflows: need k < 63",
                self.k
            )));
        }
        let n_delta = self.n as u64 * self.delta;
        if (1u64 << (self.j + 1)) <= n_delta {
            return Err(Error::InvalidParameter(format!(
                "need 2^(j+1) > nΔ: 2^{} <= {}",
                self.j + 1,
                n_delta
            )));
        }
        Ok(())
    }

    /// Builds the request sequence.
    ///
    /// # Panics
    /// Panics if the parameters are invalid; call [`DlruAdversary::validate`]
    /// first for a recoverable check.
    pub fn generate(&self) -> Trace {
        self.validate().expect("invalid Appendix A parameters");
        let d_short = 1u64 << self.j;
        let d_long = 1u64 << self.k;
        let num_short = self.n / 2;
        let mut bounds = vec![d_short; num_short];
        bounds.push(d_long);
        let mut b = TraceBuilder::with_delay_bounds(&bounds);
        // Δ jobs for each short color at every multiple of 2^j over 2^k rounds.
        for c in 0..num_short {
            b = b.batched_jobs(c as u32, self.delta, 0, d_long);
        }
        // 2^k jobs for the long color at the very beginning.
        b = b.jobs(0, num_short as u32, d_long);
        b.build()
    }

    /// Id of the long-term color in the generated trace.
    pub fn long_color(&self) -> ColorId {
        ColorId((self.n / 2) as u32)
    }

    /// The paper's lower bound on ΔLRU's competitive ratio for these
    /// parameters: `(nΔ + 2^k) / (Δ + 2^{k-j-1}·n·Δ)`.
    pub fn paper_ratio_bound(&self) -> f64 {
        let n = self.n as f64;
        let delta = self.delta as f64;
        let two_k = (1u64 << self.k) as f64;
        let dlru = n * delta + two_k;
        let off = delta + 2f64.powi((self.k - self.j - 1) as i32) * n * delta;
        dlru / off
    }

    /// Cost of the offline schedule described in Appendix A: one
    /// reconfiguration to park a resource on the long color, then `n/2`
    /// short colors recolored onto `n/2 - 1` resources every `2^j` rounds
    /// over `2^k` rounds — `Δ + 2^{k-j-1}·n·Δ` total, zero drops.
    pub fn offline_cost(&self) -> u64 {
        self.delta + (1u64 << (self.k - self.j - 1)) * self.n as u64 * self.delta
    }

    /// An adaptive instance scaled by `size`: the number of colors
    /// (`n = 4(⌊size/2⌋+1)`, kept a multiple of 4 so ΔLRU-EDF can run on the
    /// same input), the short-period slack `j − ⌈log2(nΔ)⌉`, and the horizon
    /// (`2^k`, `k = j + 2`) all grow with `size`. The slack is what drives
    /// the paper's bound `≈ 2^{j+1}/(nΔ)` up — each size step roughly doubles
    /// the competitive-ratio lower bound. `scaled(0)` is a 64-round toy.
    pub fn scaled(size: u32) -> Self {
        let n = 4 * (size as usize / 2 + 1);
        let delta = 2 + size as u64;
        let n_delta = n as u64 * delta;
        let j = (63 - n_delta.leading_zeros()) + 1 + size; // floor(log2 nΔ)+1+size
        DlruAdversary {
            n,
            delta,
            j,
            k: j + 2,
        }
    }
}

/// Appendix B: the adversary against EDF.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct EdfAdversary {
    /// Number of resources the online algorithm will be given (must be even).
    pub n: usize,
    /// Reconfiguration cost Δ.
    pub delta: u64,
    /// Short color delay bound exponent: `D_short = 2^j`.
    pub j: u32,
    /// Base long delay bound exponent: long color `p` has `D = 2^{k+p}`.
    pub k: u32,
}

impl EdfAdversary {
    /// Checks the construction's constraints `2^k > 2^j > Δ > n` (plus a
    /// horizon-overflow guard on `2^{k + n/2 - 1}`).
    pub fn validate(&self) -> Result<()> {
        if self.n == 0 || !self.n.is_multiple_of(2) {
            return Err(Error::InvalidParameter("n must be positive and even".into()));
        }
        if self.k <= self.j {
            return Err(Error::InvalidParameter("need k > j".into()));
        }
        if self.k as u64 + self.n as u64 / 2 >= 64 {
            return Err(Error::InvalidParameter(format!(
                "horizon 2^{{{} + {}/2 - 1}} overflows: need k + n/2 < 64",
                self.k, self.n
            )));
        }
        if (1u64 << self.j) <= self.delta {
            return Err(Error::InvalidParameter("need 2^j > Δ".into()));
        }
        if self.delta <= self.n as u64 {
            return Err(Error::InvalidParameter("need Δ > n".into()));
        }
        Ok(())
    }

    /// Builds the request sequence. The horizon is `2^{k + n/2 - 1}` rounds,
    /// so keep `n` and `k` modest.
    ///
    /// # Panics
    /// Panics if the parameters are invalid.
    pub fn generate(&self) -> Trace {
        self.validate().expect("invalid Appendix B parameters");
        let d_short = 1u64 << self.j;
        let half_n = (self.n / 2) as u32;
        let mut bounds = vec![d_short];
        for p in 0..half_n {
            bounds.push(1u64 << (self.k + p));
        }
        let mut b = TraceBuilder::with_delay_bounds(&bounds);
        // Short color: Δ jobs at each multiple of 2^j until round 2^{k-1}.
        b = b.batched_jobs(0, self.delta, 0, 1u64 << (self.k - 1));
        // Long color p: 2^{k+p-1} jobs at the very beginning.
        for p in 0..half_n {
            b = b.jobs(0, 1 + p, 1u64 << (self.k + p - 1));
        }
        b.build()
    }

    /// The paper's lower bound on EDF's competitive ratio for these parameters:
    /// `2^{k-j-1} / (n/2 + 1)`.
    pub fn paper_ratio_bound(&self) -> f64 {
        2f64.powi((self.k - self.j - 1) as i32) / (self.n as f64 / 2.0 + 1.0)
    }

    /// Cost of the offline schedule described in Appendix B:
    /// `(n/2 + 1)·Δ` reconfigurations, zero drops (with one resource).
    pub fn offline_cost(&self) -> u64 {
        (self.n as u64 / 2 + 1) * self.delta
    }

    /// An adaptive instance scaled by `size`: the base long exponent grows
    /// (`k = 5 + size`), doubling the `2^{k + n/2 - 1}` horizon — and the
    /// paper ratio bound — per step. `scaled(0)` is a 64-round toy.
    pub fn scaled(size: u32) -> Self {
        EdfAdversary {
            n: 4,
            delta: 6,
            j: 3,
            k: 5 + size,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dlru_adversary_shape() {
        let adv = DlruAdversary {
            n: 4,
            delta: 2,
            j: 4, // 2^5 = 32 > nΔ = 8
            k: 6,
        };
        adv.validate().unwrap();
        let t = adv.generate();
        assert_eq!(t.colors().len(), 3);
        assert_eq!(t.colors().delay_bound(ColorId(0)), 16);
        assert_eq!(t.colors().delay_bound(adv.long_color()), 64);
        // Short colors: Δ jobs at each of 64/16 = 4 multiples.
        assert_eq!(t.jobs_of_color(ColorId(0)), 2 * 4);
        assert_eq!(t.jobs_of_color(adv.long_color()), 64);
        assert_eq!(t.batch_class(), BatchClass::RateLimited);
    }

    #[test]
    fn dlru_adversary_validation() {
        // 2^(j+1) = 8 <= nΔ = 8: invalid.
        let adv = DlruAdversary {
            n: 4,
            delta: 2,
            j: 2,
            k: 6,
        };
        assert!(adv.validate().is_err());
        let adv = DlruAdversary {
            n: 3,
            delta: 1,
            j: 4,
            k: 6,
        };
        assert!(adv.validate().is_err(), "odd n rejected");
    }

    #[test]
    fn dlru_adversary_validation_edge_cases() {
        let good = DlruAdversary {
            n: 4,
            delta: 2,
            j: 4,
            k: 6,
        };
        assert!(good.validate().is_ok());
        assert!(DlruAdversary { n: 0, ..good }.validate().is_err(), "zero n");
        assert!(
            DlruAdversary { delta: 0, ..good }.validate().is_err(),
            "zero Δ"
        );
        assert!(
            DlruAdversary { j: 6, k: 6, ..good }.validate().is_err(),
            "k == j"
        );
        assert!(
            DlruAdversary { j: 7, k: 6, ..good }.validate().is_err(),
            "k < j"
        );
        assert!(
            DlruAdversary { j: 60, k: 63, ..good }.validate().is_err(),
            "horizon 2^63 overflows"
        );
    }

    #[test]
    fn dlru_offline_cost_matches_ratio_denominator() {
        let adv = DlruAdversary {
            n: 8,
            delta: 2,
            j: 7,
            k: 9,
        };
        adv.validate().unwrap();
        // paper_ratio_bound = (nΔ + 2^k) / offline_cost.
        let expected = (adv.n as f64 * adv.delta as f64 + (1u64 << adv.k) as f64)
            / adv.offline_cost() as f64;
        assert!((adv.paper_ratio_bound() - expected).abs() < 1e-12);
        assert_eq!(adv.offline_cost(), 2 + 2 * 8 * 2);
    }

    #[test]
    fn dlru_scaled_instances_are_valid_and_grow() {
        let mut prev_horizon = 0;
        let mut prev_bound = 0.0;
        for size in 0..5 {
            let adv = DlruAdversary::scaled(size);
            adv.validate().unwrap_or_else(|e| panic!("scaled({size}): {e}"));
            assert_eq!(adv.n % 4, 0, "ΔLRU-EDF-compatible resource count");
            assert_eq!(adv.n, 4 * (size as usize / 2 + 1), "colors scale");
            let horizon = 1u64 << adv.k;
            assert!(horizon > prev_horizon, "rounds scale");
            prev_horizon = horizon;
            // The ratio bound grows with size: the construction gets *worse*
            // for ΔLRU as it scales, which makes it an adaptive adversary.
            assert!(adv.paper_ratio_bound() > prev_bound, "bound scales");
            prev_bound = adv.paper_ratio_bound();
        }
        assert!(DlruAdversary::scaled(0).paper_ratio_bound() >= 2.0);
    }

    #[test]
    fn dlru_ratio_grows_with_j() {
        let mk = |j, k| DlruAdversary {
            n: 4,
            delta: 2,
            j,
            k,
        };
        // Growing j (with k = j + 2 fixed offset) increases the bound.
        let r1 = mk(4, 6).paper_ratio_bound();
        let r2 = mk(8, 10).paper_ratio_bound();
        let r3 = mk(12, 14).paper_ratio_bound();
        assert!(r1 < r2 && r2 < r3, "{r1} {r2} {r3}");
    }

    #[test]
    fn edf_adversary_shape() {
        let adv = EdfAdversary {
            n: 4,
            delta: 6,
            j: 3, // 2^3 = 8 > Δ = 6 > n = 4
            k: 5,
        };
        adv.validate().unwrap();
        let t = adv.generate();
        assert_eq!(t.colors().len(), 3); // short + n/2 long colors
        assert_eq!(t.colors().delay_bound(ColorId(1)), 32);
        assert_eq!(t.colors().delay_bound(ColorId(2)), 64);
        // Short color: Δ jobs at multiples of 8 in [0, 16): rounds 0 and 8.
        assert_eq!(t.jobs_of_color(ColorId(0)), 12);
        assert_eq!(t.jobs_of_color(ColorId(1)), 16); // 2^{k-1}
        assert_eq!(t.jobs_of_color(ColorId(2)), 32); // 2^k
        assert_eq!(t.batch_class(), BatchClass::RateLimited);
    }

    #[test]
    fn edf_adversary_validation() {
        let bad_delta = EdfAdversary {
            n: 4,
            delta: 4,
            j: 3,
            k: 5,
        };
        assert!(bad_delta.validate().is_err(), "needs Δ > n");
        let bad_j = EdfAdversary {
            n: 4,
            delta: 6,
            j: 2,
            k: 5,
        };
        assert!(bad_j.validate().is_err(), "needs 2^j > Δ");
    }

    #[test]
    fn edf_adversary_validation_edge_cases() {
        let good = EdfAdversary {
            n: 4,
            delta: 6,
            j: 3,
            k: 5,
        };
        assert!(good.validate().is_ok());
        assert!(EdfAdversary { n: 0, ..good }.validate().is_err(), "zero n");
        assert!(EdfAdversary { n: 5, ..good }.validate().is_err(), "odd n");
        assert!(
            EdfAdversary { j: 5, k: 5, ..good }.validate().is_err(),
            "k == j"
        );
        assert!(
            EdfAdversary { k: 62, ..good }.validate().is_err(),
            "horizon 2^{{k + n/2 - 1}} overflows"
        );
    }

    #[test]
    fn edf_scaled_instances_are_valid_and_grow() {
        let mut prev_bound = 0.0;
        for size in 0..5 {
            let adv = EdfAdversary::scaled(size);
            adv.validate().unwrap_or_else(|e| panic!("scaled({size}): {e}"));
            let bound = adv.paper_ratio_bound();
            assert!(bound > prev_bound, "ratio bound doubles per size step");
            prev_bound = bound;
        }
        assert_eq!(EdfAdversary::scaled(0).generate().horizon(), 64);
    }

    #[test]
    fn edf_ratio_grows_with_k_minus_j() {
        let mk = |k| EdfAdversary {
            n: 4,
            delta: 6,
            j: 3,
            k,
        };
        assert!(mk(6).paper_ratio_bound() > mk(5).paper_ratio_bound());
        assert_eq!(mk(5).offline_cost(), 18);
    }
}
