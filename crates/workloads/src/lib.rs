//! # rrs-workloads — seeded workload generators
//!
//! Request-sequence generators for the reconfigurable resource scheduling
//! experiments:
//!
//! * the paper's deterministic lower-bound constructions
//!   ([`DlruAdversary`] from Appendix A, [`EdfAdversary`] from Appendix B);
//! * random batched / rate-limited / general arrival processes
//!   ([`RandomBatched`], [`RandomGeneral`], [`Bursty`]);
//! * the introduction's application scenarios ([`Datacenter`], [`Router`],
//!   [`BackgroundMix`]);
//! * time-varying stochastic workloads ([`DriftingDemand`], [`FlashCrowd`]),
//!   sampled per round so they stream natively.
//!
//! Every generator is deterministic given `(parameters, seed)`, and
//! [`WorkloadSpec`] makes the whole family serializable for experiment
//! configs. The [`ArrivalSource`] trait is the streaming view of the same
//! workloads — one round's arrivals at a time, bit-identical to the
//! materialized [`rrs_core::Trace`] — which is how the live service consumes
//! them ([`StreamingDriver`]).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod adversary;
pub mod combinators;
pub mod fit;
pub mod loadgen;
pub mod multi_tenant;
pub mod scenarios;
pub mod source;
pub mod spec;
pub mod stochastic;
pub mod synthetic;
pub mod util;

pub use adversary::{DlruAdversary, EdfAdversary};
pub use combinators::{concat, flash_crowd, merge, scale_counts, shift};
pub use fit::{fit, ArrivalModel, ColorModel};
pub use loadgen::{EpochSink, SyntheticLoad};
pub use multi_tenant::{MultiTenantLoad, OpenLoopDriver, StreamingDriver};
pub use scenarios::{BackgroundMix, Datacenter, Router};
pub use source::{ArrivalSource, Seeded, TraceSource};
pub use spec::WorkloadSpec;
pub use stochastic::{DriftingDemand, FlashCrowd};
pub use synthetic::{Bursty, RandomBatched, RandomGeneral};

/// Convenience re-exports.
pub mod prelude {
    pub use crate::adversary::{DlruAdversary, EdfAdversary};
    pub use crate::multi_tenant::{MultiTenantLoad, OpenLoopDriver, StreamingDriver};
    pub use crate::scenarios::{BackgroundMix, Datacenter, Router};
    pub use crate::source::{ArrivalSource, Seeded, TraceSource};
    pub use crate::spec::WorkloadSpec;
    pub use crate::stochastic::{DriftingDemand, FlashCrowd};
    pub use crate::synthetic::{Bursty, RandomBatched, RandomGeneral};
}
