//! Open-loop multi-tenant traffic.
//!
//! [`MultiTenantLoad`] derives one independent trace per tenant from a single
//! [`WorkloadSpec`] and a base seed: tenant `t` gets seed
//! `split(base_seed, t)`, so the whole fleet's traffic is reproducible from
//! `(spec, base_seed, tenants)` alone, and any single tenant's trace can be
//! regenerated without materializing the others — which is how the service
//! conformance tests rebuild a per-tenant reference run.
//!
//! The traffic is *open loop*: arrivals for round `r` are a function of the
//! round number only, never of how far the service has gotten. A slow shard
//! therefore sees queue growth and backpressure rather than a conveniently
//! slowed-down workload.

use crate::source::ArrivalSource;
use crate::spec::WorkloadSpec;
use rrs_core::{ColorId, ColorTable, Round, Trace};
use serde::{Deserialize, Serialize};

/// An open-loop load over a fleet of identical-distribution tenants.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MultiTenantLoad {
    /// The per-tenant workload distribution.
    pub workload: WorkloadSpec,
    /// Number of tenants.
    pub tenants: u64,
    /// Base seed; each tenant's seed is derived from it.
    pub base_seed: u64,
}

impl MultiTenantLoad {
    /// Creates a load description.
    pub fn new(workload: WorkloadSpec, tenants: u64, base_seed: u64) -> Self {
        MultiTenantLoad { workload, tenants, base_seed }
    }

    /// The derived seed for one tenant (SplitMix64 finalizer over
    /// `base_seed + tenant`, so nearby tenant ids get uncorrelated streams).
    pub fn tenant_seed(&self, tenant: u64) -> u64 {
        let mut z = self
            .base_seed
            .wrapping_add(tenant.wrapping_mul(0x9E37_79B9_7F4A_7C15));
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Generates one tenant's full trace.
    pub fn trace_for(&self, tenant: u64) -> Trace {
        self.workload.generate(self.tenant_seed(tenant))
    }

    /// Materializes every tenant's trace, in tenant order.
    pub fn traces(&self) -> Vec<Trace> {
        (0..self.tenants).map(|t| self.trace_for(t)).collect()
    }
}

/// Pre-generated open-loop traffic, ready to feed a service round by round.
pub struct OpenLoopDriver {
    traces: Vec<Trace>,
    horizon: Round,
}

impl OpenLoopDriver {
    /// Materializes the load's traces.
    pub fn new(load: &MultiTenantLoad) -> Self {
        let traces = load.traces();
        let horizon = traces.iter().map(Trace::horizon).max().unwrap_or(0);
        OpenLoopDriver { traces, horizon }
    }

    /// Number of tenants.
    pub fn tenants(&self) -> u64 {
        self.traces.len() as u64
    }

    /// The max deadline over all tenants: driving rounds `0..=horizon()`
    /// gives every generated job a chance to execute or drop.
    pub fn horizon(&self) -> Round {
        self.horizon
    }

    /// One tenant's trace.
    pub fn trace(&self, tenant: u64) -> &Trace {
        &self.traces[tenant as usize]
    }

    /// Arrivals for `(tenant, round)` in color order (empty when idle).
    pub fn arrivals(&self, tenant: u64, round: Round) -> Vec<(ColorId, u64)> {
        self.traces[tenant as usize].arrivals_at(round)
    }
}

/// Open-loop traffic served *without* materializing traces up front: one
/// [`ArrivalSource`] per tenant, queried round by round. For natively
/// streaming sources (the adversaries, the per-round-seeded stochastic
/// generators) nothing is ever materialized; [`StreamingDriver::oracle`]
/// builds a tenant's offline reference trace on demand.
pub struct StreamingDriver {
    sources: Vec<Box<dyn ArrivalSource>>,
    horizon: Round,
}

impl StreamingDriver {
    /// Wraps one source per tenant (tenant ids are the vector indices).
    pub fn new(sources: Vec<Box<dyn ArrivalSource>>) -> Self {
        let horizon = sources.iter().map(|s| s.horizon()).max().unwrap_or(0);
        StreamingDriver { sources, horizon }
    }

    /// Builds the streaming equivalent of [`OpenLoopDriver::new`]: tenant
    /// `t` streams `load.workload` under seed `load.tenant_seed(t)`, after
    /// validating the spec once.
    pub fn from_load(load: &MultiTenantLoad) -> rrs_core::Result<Self> {
        let sources = (0..load.tenants)
            .map(|t| load.workload.source(load.tenant_seed(t)))
            .collect::<rrs_core::Result<Vec<_>>>()?;
        Ok(StreamingDriver::new(sources))
    }

    /// Number of tenants.
    pub fn tenants(&self) -> u64 {
        self.sources.len() as u64
    }

    /// The max deadline over all tenants — same contract as
    /// [`OpenLoopDriver::horizon`].
    pub fn horizon(&self) -> Round {
        self.horizon
    }

    /// One tenant's source.
    pub fn source(&self, tenant: u64) -> &dyn ArrivalSource {
        self.sources[tenant as usize].as_ref()
    }

    /// One tenant's color table.
    pub fn colors(&self, tenant: u64) -> ColorTable {
        self.sources[tenant as usize].colors()
    }

    /// Arrivals for `(tenant, round)` in color order (empty when idle).
    pub fn arrivals(&self, tenant: u64, round: Round) -> Vec<(ColorId, u64)> {
        self.sources[tenant as usize].arrivals_at(round)
    }

    /// Materializes one tenant's offline oracle trace.
    pub fn oracle(&self, tenant: u64) -> Trace {
        self.sources[tenant as usize].to_trace()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::adversary::DlruAdversary;
    use crate::synthetic::RandomBatched;

    fn load(tenants: u64) -> MultiTenantLoad {
        MultiTenantLoad::new(
            WorkloadSpec::RandomBatched(RandomBatched {
                delay_bounds: vec![4, 8],
                load: 0.5,
                activity: 1.0,
                horizon: 32,
                rate_limited: true,
            }),
            tenants,
            7,
        )
    }

    #[test]
    fn tenants_get_distinct_but_reproducible_traffic() {
        let l = load(4);
        assert_eq!(l.trace_for(2), l.trace_for(2), "deterministic per tenant");
        assert_ne!(l.tenant_seed(0), l.tenant_seed(1));
        // Independent streams: at least one pair of tenants differs.
        let traces = l.traces();
        assert!(traces.iter().any(|t| t != &traces[0]));
    }

    #[test]
    fn driver_serves_the_same_arrivals_as_the_trace() {
        let l = load(3);
        let d = OpenLoopDriver::new(&l);
        assert_eq!(d.tenants(), 3);
        for t in 0..3 {
            for r in 0..=d.horizon() {
                assert_eq!(d.arrivals(t, r), l.trace_for(t).arrivals_at(r));
            }
        }
    }

    #[test]
    fn horizon_covers_every_tenant() {
        let l = load(5);
        let d = OpenLoopDriver::new(&l);
        let max = (0..5).map(|t| l.trace_for(t).horizon()).max().unwrap();
        assert_eq!(d.horizon(), max);
    }

    #[test]
    fn streaming_driver_matches_open_loop_driver() {
        let l = load(3);
        let open = OpenLoopDriver::new(&l);
        let streaming = StreamingDriver::from_load(&l).unwrap();
        assert_eq!(streaming.tenants(), open.tenants());
        assert_eq!(streaming.horizon(), open.horizon());
        for t in 0..3 {
            assert_eq!(&streaming.oracle(t), open.trace(t));
            assert_eq!(streaming.colors(t), *open.trace(t).colors());
            for r in 0..=open.horizon() {
                assert_eq!(streaming.arrivals(t, r), open.arrivals(t, r));
            }
        }
    }

    #[test]
    fn streaming_driver_streams_adversaries_natively() {
        let adv = DlruAdversary { n: 4, delta: 2, j: 4, k: 6 };
        let l = MultiTenantLoad::new(WorkloadSpec::DlruAdversary(adv), 2, 1);
        let d = StreamingDriver::from_load(&l).unwrap();
        assert_eq!(d.horizon(), 64);
        // Deterministic adversaries ignore tenant seeds: all tenants stream
        // the identical sequence.
        for r in 0..=d.horizon() {
            assert_eq!(d.arrivals(0, r), d.arrivals(1, r));
        }
        assert_eq!(d.oracle(0), adv.generate());
    }

    #[test]
    fn streaming_driver_rejects_invalid_specs() {
        let bad = MultiTenantLoad::new(
            WorkloadSpec::DlruAdversary(DlruAdversary { n: 3, delta: 2, j: 4, k: 6 }),
            2,
            1,
        );
        assert!(StreamingDriver::from_load(&bad).is_err());
    }
}
