//! Fitting an arrival model to a trace and generating synthetic twins.
//!
//! Given any request sequence (e.g. one captured from a real system via
//! `Trace::from_bytes`), [`fit`] estimates a simple per-color arrival model —
//! batch rate, mean batch size and squared coefficient of variation — and
//! [`ArrivalModel::synthesize`] regenerates statistically similar traffic
//! with fresh randomness: the standard workflow for turning one captured
//! trace into an unlimited family of test inputs.

use crate::util::poisson;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rrs_core::prelude::*;
use serde::{Deserialize, Serialize};

/// Fitted per-color arrival statistics.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ColorModel {
    /// Delay bound (copied from the source trace).
    pub delay_bound: u64,
    /// Drop cost (copied from the source trace).
    pub drop_cost: u64,
    /// Fraction of rounds with at least one arrival of this color.
    pub arrival_rate: f64,
    /// Mean batch size conditional on arrival.
    pub mean_batch: f64,
    /// Squared coefficient of variation of batch sizes (0 = deterministic,
    /// 1 ≈ exponential/Poisson-like, >1 bursty).
    pub batch_scv: f64,
}

/// A fitted arrival model for a whole trace.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ArrivalModel {
    /// Per-color statistics.
    pub colors: Vec<ColorModel>,
    /// Number of rounds the source trace spanned.
    pub horizon: Round,
}

/// Fits an [`ArrivalModel`] to `trace`.
pub fn fit(trace: &Trace) -> ArrivalModel {
    let span = trace.last_arrival_round().map(|r| r + 1).unwrap_or(1);
    let colors = trace
        .colors()
        .iter()
        .map(|(c, info)| {
            let batches: Vec<u64> = trace
                .iter()
                .filter(|a| a.color == c)
                .map(|a| a.count)
                .collect();
            let k = batches.len();
            let mean = if k == 0 {
                0.0
            } else {
                batches.iter().sum::<u64>() as f64 / k as f64
            };
            let var = if k < 2 {
                0.0
            } else {
                batches
                    .iter()
                    .map(|&b| (b as f64 - mean).powi(2))
                    .sum::<f64>()
                    / (k - 1) as f64
            };
            ColorModel {
                delay_bound: info.delay_bound,
                drop_cost: info.drop_cost,
                arrival_rate: k as f64 / span as f64,
                mean_batch: mean,
                batch_scv: if mean > 0.0 { var / (mean * mean) } else { 0.0 },
            }
        })
        .collect();
    ArrivalModel {
        colors,
        horizon: span,
    }
}

impl ArrivalModel {
    /// Generates a synthetic twin of the fitted trace: per round, each color
    /// arrives with its fitted probability; batch sizes are Poisson at the
    /// fitted mean, with an extra geometric multiplier when the fitted SCV
    /// indicates burstiness (> 1).
    pub fn synthesize(&self, horizon: Round, seed: u64) -> Trace {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut table = ColorTable::new();
        for m in &self.colors {
            table.push(ColorInfo::with_drop_cost(m.delay_bound, m.drop_cost));
        }
        let mut trace = Trace::new(table);
        for round in 0..horizon {
            for (i, m) in self.colors.iter().enumerate() {
                if m.arrival_rate <= 0.0 || rng.gen::<f64>() >= m.arrival_rate {
                    continue;
                }
                let mut count = if m.batch_scv > 1.0 {
                    // Over-dispersed: geometric number of Poisson clumps.
                    let clumps = 1 + (rng.gen::<f64>().ln()
                        / (1.0 - 1.0 / m.batch_scv.max(1.001)).ln())
                    .floor() as u64;
                    let per = (m.mean_batch / m.batch_scv.max(1.0)).max(0.1);
                    (0..clumps.min(64)).map(|_| poisson(&mut rng, per)).sum()
                } else {
                    poisson(&mut rng, m.mean_batch)
                };
                if count == 0 {
                    count = 1; // conditional-on-arrival batches are nonempty
                }
                trace.add(round, ColorId(i as u32), count).expect("color");
            }
        }
        trace
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::synthetic::RandomGeneral;

    #[test]
    fn fit_recovers_rates_and_sizes() {
        let src = RandomGeneral {
            delay_bounds: vec![8, 8],
            rates: vec![0.8, 0.2],
            horizon: 4000,
        }
        .generate(3);
        let model = fit(&src);
        // Poisson(0.8): P(arrival) = 1 - e^{-0.8} ≈ 0.55.
        assert!(
            (model.colors[0].arrival_rate - 0.55).abs() < 0.05,
            "{}",
            model.colors[0].arrival_rate
        );
        assert!(model.colors[1].arrival_rate < model.colors[0].arrival_rate);
        assert!(model.colors[0].mean_batch >= 1.0);
        assert_eq!(model.colors[0].delay_bound, 8);
    }

    #[test]
    fn twin_matches_source_volume_roughly() {
        let src = RandomGeneral {
            delay_bounds: vec![4, 16],
            rates: vec![0.5, 0.3],
            horizon: 2000,
        }
        .generate(9);
        let model = fit(&src);
        let twin = model.synthesize(2000, 42);
        let ratio = twin.total_jobs() as f64 / src.total_jobs() as f64;
        assert!(
            (0.7..1.3).contains(&ratio),
            "twin volume ratio {ratio} (src {}, twin {})",
            src.total_jobs(),
            twin.total_jobs()
        );
        assert_eq!(twin.colors().len(), src.colors().len());
    }

    #[test]
    fn twin_is_seeded() {
        let src = RandomGeneral {
            delay_bounds: vec![4],
            rates: vec![0.4],
            horizon: 200,
        }
        .generate(1);
        let model = fit(&src);
        assert_eq!(model.synthesize(200, 5), model.synthesize(200, 5));
        assert_ne!(model.synthesize(200, 5), model.synthesize(200, 6));
    }

    #[test]
    fn empty_trace_fits_and_synthesizes_empty() {
        let src = Trace::new(ColorTable::from_delay_bounds(&[4]));
        let model = fit(&src);
        assert_eq!(model.colors[0].arrival_rate, 0.0);
        assert_eq!(model.synthesize(100, 0).total_jobs(), 0);
    }

    #[test]
    fn preserves_drop_costs() {
        let mut table = ColorTable::new();
        table.push(ColorInfo::with_drop_cost(4, 7));
        let mut src = Trace::new(table);
        src.add(0, ColorId(0), 3).unwrap();
        let model = fit(&src);
        assert_eq!(model.colors[0].drop_cost, 7);
        let twin = model.synthesize(10, 0);
        assert_eq!(twin.colors().drop_cost(ColorId(0)), 7);
    }
}
