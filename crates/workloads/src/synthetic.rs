//! Seeded random workload generators.
//!
//! Three families:
//!
//! * [`RandomBatched`] — batched arrivals (`[Δ|1|D_ℓ|D_ℓ]`), optionally clamped
//!   to the rate-limited regime of paper §3;
//! * [`RandomGeneral`] — Poisson arrivals at arbitrary rounds
//!   (`[Δ|1|D_ℓ|1]`, the main problem of paper §5);
//! * [`Bursty`] — per-color on/off Markov modulation, the "intermittent
//!   short-term jobs" pattern from the paper's introduction.

use crate::util::poisson;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rrs_core::prelude::*;
use serde::{Deserialize, Serialize};

/// Random batched workload: every color ℓ receives a Poisson-distributed batch
/// at each multiple of `D_ℓ`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RandomBatched {
    /// Per-color delay bounds (use powers of two for the §3/§4 algorithms).
    pub delay_bounds: Vec<u64>,
    /// Expected batch size as a fraction of `D_ℓ` (1.0 = a full window's worth
    /// of work per batch for a dedicated resource).
    pub load: f64,
    /// Probability that a color is active at a given multiple (inactivity
    /// creates the idle/nonidle alternation that stresses EDF).
    pub activity: f64,
    /// Number of rounds to generate.
    pub horizon: Round,
    /// Clamp batch sizes to `D_ℓ` (the rate-limited regime of §3).
    pub rate_limited: bool,
}

/// Shared parameter checks: a non-empty, positive delay-bound list plus a
/// positive horizon.
pub(crate) fn check_bounds_and_horizon(delay_bounds: &[u64], horizon: Round) -> Result<()> {
    if delay_bounds.is_empty() || delay_bounds.contains(&0) {
        return Err(Error::InvalidParameter(
            "delay_bounds must be non-empty and positive".into(),
        ));
    }
    if horizon == 0 {
        return Err(Error::InvalidParameter("horizon must be positive".into()));
    }
    Ok(())
}

/// Checks a probability-like parameter.
pub(crate) fn check_unit_interval(name: &str, p: f64) -> Result<()> {
    if !p.is_finite() || !(0.0..=1.0).contains(&p) {
        return Err(Error::InvalidParameter(format!("{name} must be in [0, 1]")));
    }
    Ok(())
}

/// Checks a non-negative finite rate/load parameter.
pub(crate) fn check_rate(name: &str, r: f64) -> Result<()> {
    if !r.is_finite() || r < 0.0 {
        return Err(Error::InvalidParameter(format!(
            "{name} must be finite and non-negative"
        )));
    }
    Ok(())
}

impl RandomBatched {
    /// Checks the parameters.
    pub fn validate(&self) -> Result<()> {
        check_bounds_and_horizon(&self.delay_bounds, self.horizon)?;
        check_rate("load", self.load)?;
        check_unit_interval("activity", self.activity)
    }

    /// Generates the trace for `seed`.
    pub fn generate(&self, seed: u64) -> Trace {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut trace = Trace::new(ColorTable::from_delay_bounds(&self.delay_bounds));
        for (c, &d) in self.delay_bounds.iter().enumerate() {
            let mut r = 0;
            while r < self.horizon {
                if rng.gen::<f64>() < self.activity {
                    let mut count = poisson(&mut rng, self.load * d as f64);
                    if self.rate_limited {
                        count = count.min(d);
                    }
                    trace.add(r, ColorId(c as u32), count).expect("color exists");
                }
                r += d;
            }
        }
        trace
    }
}

/// Random general workload: per-round Poisson arrivals per color.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RandomGeneral {
    /// Per-color delay bounds.
    pub delay_bounds: Vec<u64>,
    /// Per-color mean arrivals per round.
    pub rates: Vec<f64>,
    /// Number of rounds to generate.
    pub horizon: Round,
}

impl RandomGeneral {
    /// Checks the parameters.
    pub fn validate(&self) -> Result<()> {
        check_bounds_and_horizon(&self.delay_bounds, self.horizon)?;
        if self.rates.len() != self.delay_bounds.len() {
            return Err(Error::InvalidParameter(format!(
                "{} rates for {} colors: need one rate per color",
                self.rates.len(),
                self.delay_bounds.len()
            )));
        }
        for &r in &self.rates {
            check_rate("rate", r)?;
        }
        Ok(())
    }

    /// Generates the trace for `seed`.
    ///
    /// # Panics
    /// Panics if `rates.len() != delay_bounds.len()`.
    pub fn generate(&self, seed: u64) -> Trace {
        assert_eq!(
            self.rates.len(),
            self.delay_bounds.len(),
            "one rate per color"
        );
        let mut rng = StdRng::seed_from_u64(seed);
        let mut trace = Trace::new(ColorTable::from_delay_bounds(&self.delay_bounds));
        for r in 0..self.horizon {
            for (c, &rate) in self.rates.iter().enumerate() {
                let count = poisson(&mut rng, rate);
                trace.add(r, ColorId(c as u32), count).expect("color exists");
            }
        }
        trace
    }
}

/// On/off Markov-modulated batched workload: each color alternates between an
/// *on* state (busy batches) and an *off* state (silence), switching state at
/// each multiple of its delay bound.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Bursty {
    /// Per-color delay bounds.
    pub delay_bounds: Vec<u64>,
    /// Mean batch size while on, as a fraction of `D_ℓ`.
    pub on_load: f64,
    /// Probability of switching off→on at a multiple.
    pub p_on: f64,
    /// Probability of switching on→off at a multiple.
    pub p_off: f64,
    /// Number of rounds.
    pub horizon: Round,
    /// Clamp to the rate-limited regime.
    pub rate_limited: bool,
}

impl Bursty {
    /// Checks the parameters.
    pub fn validate(&self) -> Result<()> {
        check_bounds_and_horizon(&self.delay_bounds, self.horizon)?;
        check_rate("on_load", self.on_load)?;
        check_unit_interval("p_on", self.p_on)?;
        check_unit_interval("p_off", self.p_off)
    }

    /// Generates the trace for `seed`.
    pub fn generate(&self, seed: u64) -> Trace {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut trace = Trace::new(ColorTable::from_delay_bounds(&self.delay_bounds));
        for (c, &d) in self.delay_bounds.iter().enumerate() {
            let mut on = rng.gen::<f64>() < 0.5;
            let mut r = 0;
            while r < self.horizon {
                if on {
                    let mut count = poisson(&mut rng, self.on_load * d as f64).max(1);
                    if self.rate_limited {
                        count = count.min(d);
                    }
                    trace.add(r, ColorId(c as u32), count).expect("color exists");
                }
                let flip = if on { self.p_off } else { self.p_on };
                if rng.gen::<f64>() < flip {
                    on = !on;
                }
                r += d;
            }
        }
        trace
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn random_batched_is_batched_and_seeded() {
        let g = RandomBatched {
            delay_bounds: vec![4, 8, 16],
            load: 0.5,
            activity: 0.8,
            horizon: 256,
            rate_limited: true,
        };
        let t1 = g.generate(7);
        let t2 = g.generate(7);
        assert_eq!(t1, t2, "same seed, same trace");
        assert_ne!(t1, g.generate(8), "different seed, different trace");
        assert_eq!(t1.batch_class(), BatchClass::RateLimited);
        assert!(t1.total_jobs() > 0);
    }

    #[test]
    fn rate_limit_clamps_batches() {
        let g = RandomBatched {
            delay_bounds: vec![2],
            load: 10.0, // mean batch 20 >> D = 2
            activity: 1.0,
            horizon: 64,
            rate_limited: true,
        };
        let t = g.generate(1);
        for a in t.iter() {
            assert!(a.count <= 2);
        }
        let unclamped = RandomBatched {
            rate_limited: false,
            ..g
        };
        let t = unclamped.generate(1);
        assert!(t.iter().any(|a| a.count > 2));
        assert_eq!(t.batch_class(), BatchClass::Batched);
    }

    #[test]
    fn random_general_spreads_arrivals() {
        let g = RandomGeneral {
            delay_bounds: vec![8, 8],
            rates: vec![0.7, 0.3],
            horizon: 200,
        };
        let t = g.generate(3);
        assert_eq!(t.batch_class(), BatchClass::General);
        // Rate 0.7 over 200 rounds ≈ 140 jobs.
        let c0 = t.jobs_of_color(ColorId(0)) as f64;
        assert!((100.0..190.0).contains(&c0), "c0 jobs = {c0}");
    }

    #[test]
    fn validation_rejects_bad_parameters() {
        let good = RandomBatched {
            delay_bounds: vec![4, 8],
            load: 0.5,
            activity: 1.0,
            horizon: 64,
            rate_limited: true,
        };
        assert!(good.validate().is_ok());
        assert!(RandomBatched {
            delay_bounds: vec![],
            ..good.clone()
        }
        .validate()
        .is_err());
        assert!(RandomBatched {
            delay_bounds: vec![4, 0],
            ..good.clone()
        }
        .validate()
        .is_err());
        assert!(RandomBatched {
            activity: 1.5,
            ..good.clone()
        }
        .validate()
        .is_err());
        assert!(RandomBatched {
            load: f64::INFINITY,
            ..good.clone()
        }
        .validate()
        .is_err());
        assert!(RandomBatched { horizon: 0, ..good }.validate().is_err());

        let mismatched = RandomGeneral {
            delay_bounds: vec![8, 8],
            rates: vec![0.5],
            horizon: 64,
        };
        assert!(mismatched.validate().is_err(), "one rate per color");
        assert!(RandomGeneral {
            rates: vec![0.5, -0.1],
            ..mismatched.clone()
        }
        .validate()
        .is_err());

        let bad_p = Bursty {
            delay_bounds: vec![4],
            on_load: 1.0,
            p_on: -0.5,
            p_off: 0.5,
            horizon: 64,
            rate_limited: true,
        };
        assert!(bad_p.validate().is_err());
        assert!(Bursty { p_on: 0.5, ..bad_p }.validate().is_ok());
    }

    #[test]
    fn bursty_alternates() {
        let g = Bursty {
            delay_bounds: vec![4],
            on_load: 1.0,
            p_on: 0.5,
            p_off: 0.5,
            horizon: 400,
            rate_limited: true,
        };
        let t = g.generate(11);
        let active_multiples = t.iter().count() as u64;
        let total_multiples = 100;
        assert!(active_multiples > 10, "some on periods");
        assert!(active_multiples < total_multiples, "some off periods");
    }
}
