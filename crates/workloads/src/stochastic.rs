//! Time-varying stochastic workloads (drift and flash crowds).
//!
//! Both generators here follow the stochastic time-varying resource profile
//! model of Hong–Xie–Wang (arXiv:2209.04123): a tenant's demand is a
//! per-round random draw around a *time-varying* mean. The engine's color
//! table is immutable within a run, so "delay bounds drift over time" is
//! modeled as the demand *focus* drifting across a fixed spectrum of delay
//! classes — the active delay bound changes even though the table does not,
//! which is precisely what forces reconfiguration churn.
//!
//! Unlike the sequential-RNG generators in [`crate::synthetic`], every round
//! here is sampled from its own RNG derived from `(seed, round)` via a
//! SplitMix64 finalizer. That makes `arrivals_at(seed, round)` a pure
//! function with random round access, so the streaming view
//! ([`crate::source::Seeded`]) and the offline trace are identical by
//! construction rather than by replaying a cursor.

use crate::util::poisson;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rrs_core::prelude::*;
use serde::{Deserialize, Serialize};

/// An RNG for one `(seed, round)` cell: SplitMix64-finalized so nearby
/// rounds get uncorrelated streams.
fn round_rng(seed: u64, round: u64) -> StdRng {
    let mut z = seed ^ round.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    StdRng::seed_from_u64(z ^ (z >> 31))
}

/// Demand that drifts across the delay-class spectrum.
///
/// `delay_bounds` is an ordered spectrum of delay classes. At round `r` a
/// Gaussian demand window of width [`DriftingDemand::spread`] is centered on
/// class index `focus(r)`, which sweeps the spectrum sinusoidally with period
/// [`DriftingDemand::period`]; each color then draws Poisson arrivals with
/// mean [`DriftingDemand::rate`]. Early in the period the load is all
/// short-delay-bound traffic, half a period later it is all long — a policy
/// that pins either end of the spectrum pays for it.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DriftingDemand {
    /// Ordered spectrum of delay classes (short → long, powers of two).
    pub delay_bounds: Vec<u64>,
    /// Mean arrivals per round for the color at the focus.
    pub peak_rate: f64,
    /// Gaussian width of the demand window, in color-index units.
    pub spread: f64,
    /// Rounds per full sweep of the spectrum.
    pub period: u64,
    /// Number of rounds to generate.
    pub horizon: Round,
}

impl Default for DriftingDemand {
    fn default() -> Self {
        DriftingDemand {
            delay_bounds: vec![4, 8, 16, 32, 64, 128],
            peak_rate: 2.0,
            spread: 1.0,
            period: 256,
            horizon: 1024,
        }
    }
}

impl DriftingDemand {
    /// Checks the parameters.
    pub fn validate(&self) -> Result<()> {
        if self.delay_bounds.is_empty() || self.delay_bounds.contains(&0) {
            return Err(Error::InvalidParameter(
                "delay_bounds must be non-empty and positive".into(),
            ));
        }
        if !self.peak_rate.is_finite() || self.peak_rate < 0.0 {
            return Err(Error::InvalidParameter(
                "peak_rate must be finite and non-negative".into(),
            ));
        }
        if !self.spread.is_finite() || self.spread <= 0.0 {
            return Err(Error::InvalidParameter("spread must be positive".into()));
        }
        if self.period == 0 {
            return Err(Error::InvalidParameter("period must be positive".into()));
        }
        if self.horizon == 0 {
            return Err(Error::InvalidParameter("horizon must be positive".into()));
        }
        Ok(())
    }

    /// The focus of the demand window at `round`: a color index in
    /// `[0, len-1]` sweeping the spectrum sinusoidally.
    pub fn focus(&self, round: Round) -> f64 {
        let last = (self.delay_bounds.len() - 1) as f64;
        let phase = std::f64::consts::TAU * round as f64 / self.period as f64;
        last * 0.5 * (1.0 - phase.cos())
    }

    /// The mean arrival rate of color index `color` at `round` — always in
    /// `[0, peak_rate]`, the declared drift bound.
    pub fn rate(&self, color: usize, round: Round) -> f64 {
        let d = color as f64 - self.focus(round);
        self.peak_rate * (-d * d / (2.0 * self.spread * self.spread)).exp()
    }

    /// One round's arrivals as a pure function of `(parameters, seed, round)`.
    pub fn arrivals_at(&self, seed: u64, round: Round) -> Vec<(ColorId, u64)> {
        if round >= self.horizon {
            return Vec::new();
        }
        let mut rng = round_rng(seed, round);
        let mut out = Vec::new();
        for color in 0..self.delay_bounds.len() {
            let count = poisson(&mut rng, self.rate(color, round));
            if count > 0 {
                out.push((ColorId(color as u32), count));
            }
        }
        out
    }

    /// Generates the full trace for `seed` (identical to streaming every
    /// round through [`DriftingDemand::arrivals_at`]).
    pub fn generate(&self, seed: u64) -> Trace {
        let mut trace = Trace::new(ColorTable::from_delay_bounds(&self.delay_bounds));
        for round in 0..self.horizon {
            for (color, count) in self.arrivals_at(seed, round) {
                trace.add(round, color, count).expect("color exists");
            }
        }
        trace
    }
}

/// Base load plus seed-placed flash crowds.
///
/// Every color draws Poisson arrivals at [`FlashCrowd::base_rate`]. On top,
/// [`FlashCrowd::crowds`] crowd windows are placed at seed-derived rounds,
/// each targeting one seed-derived color: inside a window of
/// [`FlashCrowd::width`] rounds the target's rate ramps triangularly up to
/// `base_rate + spike_rate` at the window's center and back down.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FlashCrowd {
    /// Per-color delay bounds.
    pub delay_bounds: Vec<u64>,
    /// Mean arrivals per round per color outside crowds.
    pub base_rate: f64,
    /// Number of flash-crowd windows.
    pub crowds: u32,
    /// Extra rate at a crowd's peak.
    pub spike_rate: f64,
    /// Width of each crowd window, in rounds.
    pub width: u64,
    /// Number of rounds to generate.
    pub horizon: Round,
}

impl Default for FlashCrowd {
    fn default() -> Self {
        FlashCrowd {
            delay_bounds: vec![8, 8, 16, 32],
            base_rate: 0.3,
            crowds: 3,
            spike_rate: 6.0,
            width: 64,
            horizon: 1024,
        }
    }
}

impl FlashCrowd {
    /// Checks the parameters.
    pub fn validate(&self) -> Result<()> {
        if self.delay_bounds.is_empty() || self.delay_bounds.contains(&0) {
            return Err(Error::InvalidParameter(
                "delay_bounds must be non-empty and positive".into(),
            ));
        }
        for (name, rate) in [("base_rate", self.base_rate), ("spike_rate", self.spike_rate)] {
            if !rate.is_finite() || rate < 0.0 {
                return Err(Error::InvalidParameter(format!(
                    "{name} must be finite and non-negative"
                )));
            }
        }
        if self.width == 0 {
            return Err(Error::InvalidParameter("width must be positive".into()));
        }
        if self.horizon < self.width {
            return Err(Error::InvalidParameter(format!(
                "horizon {} shorter than crowd width {}",
                self.horizon, self.width
            )));
        }
        Ok(())
    }

    /// The seed-derived crowd windows as `(start_round, target_color)` pairs.
    pub fn crowd_windows(&self, seed: u64) -> Vec<(Round, usize)> {
        // A dedicated round-rng cell (tag = horizon, outside 0..horizon)
        // keeps window placement independent of every round's sampling.
        let mut rng = round_rng(seed ^ 0xF1A5_4C80_3D00_75E1, self.horizon);
        let span = self.horizon.saturating_sub(self.width).max(1);
        (0..self.crowds)
            .map(|_| {
                (
                    rng.gen_range(0..span),
                    rng.gen_range(0..self.delay_bounds.len()),
                )
            })
            .collect()
    }

    /// The mean arrival rate of color index `color` at `round` — always in
    /// `[base_rate, base_rate + crowds·spike_rate]` (windows may overlap),
    /// the declared burst bound.
    pub fn rate(&self, seed: u64, color: usize, round: Round) -> f64 {
        let mut rate = self.base_rate;
        let half = self.width as f64 / 2.0;
        for (start, target) in self.crowd_windows(seed) {
            if target != color || round < start || round >= start + self.width {
                continue;
            }
            // Triangular ramp peaking at the window center; the +0.5 centers
            // single-round windows on full amplitude.
            let pos = (round - start) as f64 + 0.5;
            rate += self.spike_rate * (1.0 - (pos - half).abs() / half).max(0.0);
        }
        rate
    }

    /// One round's arrivals as a pure function of `(parameters, seed, round)`.
    pub fn arrivals_at(&self, seed: u64, round: Round) -> Vec<(ColorId, u64)> {
        if round >= self.horizon {
            return Vec::new();
        }
        let mut rng = round_rng(seed, round);
        let mut out = Vec::new();
        for color in 0..self.delay_bounds.len() {
            let count = poisson(&mut rng, self.rate(seed, color, round));
            if count > 0 {
                out.push((ColorId(color as u32), count));
            }
        }
        out
    }

    /// Generates the full trace for `seed` (identical to streaming every
    /// round through [`FlashCrowd::arrivals_at`]).
    pub fn generate(&self, seed: u64) -> Trace {
        let mut trace = Trace::new(ColorTable::from_delay_bounds(&self.delay_bounds));
        for round in 0..self.horizon {
            for (color, count) in self.arrivals_at(seed, round) {
                trace.add(round, color, count).expect("color exists");
            }
        }
        trace
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn drifting_focus_sweeps_the_spectrum() {
        let g = DriftingDemand::default();
        assert!(g.focus(0) < 0.01, "starts at the short end");
        let mid = g.focus(g.period / 2);
        assert!((mid - 5.0).abs() < 0.01, "reaches the long end: {mid}");
        assert!((g.focus(g.period) - 0.0).abs() < 0.01, "returns");
    }

    #[test]
    fn drifting_rate_within_bounds_and_demand_moves() {
        let g = DriftingDemand::default();
        for round in [0, 31, 64, 128, 200] {
            for c in 0..g.delay_bounds.len() {
                let r = g.rate(c, round);
                assert!((0.0..=g.peak_rate).contains(&r), "rate {r}");
            }
        }
        let t = g.generate(5);
        // At round 0 the focus is color 0; half a period later it is the
        // last color. Compare per-color mass in the two quarters.
        let first_quarter: u64 = t
            .iter()
            .filter(|a| a.color == ColorId(0) && a.round % g.period < g.period / 4)
            .map(|a| a.count)
            .sum();
        let last_color = ColorId(g.delay_bounds.len() as u32 - 1);
        let opposite: u64 = t
            .iter()
            .filter(|a| {
                a.color == last_color
                    && (g.period / 4..g.period / 2).contains(&(a.round % g.period))
            })
            .map(|a| a.count)
            .sum();
        assert!(first_quarter > 0 && opposite > 0, "demand visits both ends");
    }

    #[test]
    fn drifting_streaming_equals_generate() {
        let g = DriftingDemand {
            horizon: 128,
            ..DriftingDemand::default()
        };
        let t = g.generate(9);
        for r in 0..=t.horizon() {
            assert_eq!(g.arrivals_at(9, r), t.arrivals_at(r), "round {r}");
        }
        assert_eq!(g.generate(9), t, "deterministic");
        assert_ne!(g.generate(10), t, "seed-sensitive");
    }

    #[test]
    fn flash_crowd_spikes_at_windows() {
        let g = FlashCrowd::default();
        let seed = 3;
        let windows = g.crowd_windows(seed);
        assert_eq!(windows.len(), 3);
        for &(start, color) in &windows {
            assert!(start + g.width <= g.horizon || start < g.horizon);
            assert!(color < g.delay_bounds.len());
            // Rate at the window center clearly exceeds base.
            let mid = start + g.width / 2;
            assert!(g.rate(seed, color, mid) > g.base_rate + 0.5 * g.spike_rate);
        }
        // Outside every window the rate is exactly the base rate.
        let quiet = (0..g.horizon)
            .find(|&r| windows.iter().all(|&(s, _)| r < s || r >= s + g.width))
            .expect("some quiet round");
        for c in 0..g.delay_bounds.len() {
            assert_eq!(g.rate(seed, c, quiet), g.base_rate);
        }
    }

    #[test]
    fn flash_crowd_rate_within_declared_bounds() {
        let g = FlashCrowd::default();
        let hi = g.base_rate + g.crowds as f64 * g.spike_rate;
        for round in (0..g.horizon).step_by(17) {
            for c in 0..g.delay_bounds.len() {
                let r = g.rate(11, c, round);
                assert!(r >= g.base_rate - 1e-12 && r <= hi + 1e-12, "rate {r}");
            }
        }
    }

    #[test]
    fn flash_crowd_streaming_equals_generate() {
        let g = FlashCrowd {
            horizon: 128,
            width: 32,
            ..FlashCrowd::default()
        };
        let t = g.generate(21);
        for r in 0..=t.horizon() {
            assert_eq!(g.arrivals_at(21, r), t.arrivals_at(r), "round {r}");
        }
    }

    #[test]
    fn validation_rejects_bad_parameters() {
        assert!(DriftingDemand {
            delay_bounds: vec![],
            ..DriftingDemand::default()
        }
        .validate()
        .is_err());
        assert!(DriftingDemand {
            spread: 0.0,
            ..DriftingDemand::default()
        }
        .validate()
        .is_err());
        assert!(DriftingDemand {
            peak_rate: f64::NAN,
            ..DriftingDemand::default()
        }
        .validate()
        .is_err());
        assert!(DriftingDemand {
            period: 0,
            ..DriftingDemand::default()
        }
        .validate()
        .is_err());
        assert!(FlashCrowd {
            width: 0,
            ..FlashCrowd::default()
        }
        .validate()
        .is_err());
        assert!(FlashCrowd {
            horizon: 10,
            width: 64,
            ..FlashCrowd::default()
        }
        .validate()
        .is_err());
        assert!(FlashCrowd {
            spike_rate: -1.0,
            ..FlashCrowd::default()
        }
        .validate()
        .is_err());
        assert!(DriftingDemand::default().validate().is_ok());
        assert!(FlashCrowd::default().validate().is_ok());
    }
}
