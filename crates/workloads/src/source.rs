//! Streaming arrival sources.
//!
//! An [`ArrivalSource`] yields one round's arrivals at a time, which is how
//! the live service consumes traffic: the supervisor submits round `r`'s
//! batches, ticks, and moves on, without ever materializing a whole
//! [`Trace`]. The contract ties streaming and offline together:
//!
//! * `arrivals_at(r)` is a pure function of the source (random round access,
//!   no internal cursor), returns `(color, count)` pairs in ascending color
//!   order with every `count > 0` — exactly [`Trace::arrivals_at`]'s shape;
//! * [`ArrivalSource::to_trace`] materializes the offline oracle, and
//!   [`ArrivalSource::horizon`] equals that trace's [`Trace::horizon`] (the
//!   max job deadline), so a driver running rounds `0..=horizon()` gives
//!   every streamed job the chance to execute or drop that the batch engine
//!   gives it.
//!
//! Three kinds of implementation:
//!
//! * the Appendix A/B adversaries implement the trait *natively* — their
//!   request sequences are closed-form arithmetic in the round number, so
//!   they stream without ever building the trace (this is what lets them
//!   scale: an adversary with a `2^20`-round horizon costs nothing to hold);
//! * per-round-seeded stochastic generators ([`crate::stochastic`]) stream
//!   through [`Seeded`], which binds a generator to its seed;
//! * any legacy whole-trace generator streams through [`TraceSource`], which
//!   wraps its materialized trace.

use crate::adversary::{DlruAdversary, EdfAdversary};
use crate::stochastic::{DriftingDemand, FlashCrowd};
use rrs_core::prelude::*;

/// A workload that can be consumed one round at a time.
pub trait ArrivalSource: Send {
    /// Short name for reports.
    fn name(&self) -> String;

    /// The color table every round's arrivals refer to.
    fn colors(&self) -> ColorTable;

    /// Exclusive upper bound on rounds that may contain arrivals.
    fn arrival_bound(&self) -> Round;

    /// Arrivals of `round`, in ascending color order, all counts positive.
    fn arrivals_at(&self, round: Round) -> Vec<(ColorId, u64)>;

    /// The max job deadline — identical to [`Trace::horizon`] of
    /// [`ArrivalSource::to_trace`]. The default scans every round; closed-form
    /// sources override it.
    fn horizon(&self) -> Round {
        let colors = self.colors();
        let mut horizon = 0;
        for round in 0..self.arrival_bound() {
            for (color, count) in self.arrivals_at(round) {
                if count > 0 {
                    horizon = horizon.max(round + colors.delay_bound(color));
                }
            }
        }
        horizon
    }

    /// Materializes the offline oracle trace.
    fn to_trace(&self) -> Trace {
        let mut trace = Trace::new(self.colors());
        for round in 0..self.arrival_bound() {
            for (color, count) in self.arrivals_at(round) {
                trace
                    .add(round, color, count)
                    .expect("source yields colors from its own table");
            }
        }
        trace
    }
}

/// Streams a pre-materialized [`Trace`] — the adapter for generators whose
/// sampling is inherently sequential (Markov-modulated bursts, shared-RNG
/// scans).
pub struct TraceSource {
    name: String,
    trace: Trace,
}

impl TraceSource {
    /// Wraps a trace under a report name.
    pub fn new(name: impl Into<String>, trace: Trace) -> Self {
        TraceSource {
            name: name.into(),
            trace,
        }
    }

    /// The wrapped trace.
    pub fn trace(&self) -> &Trace {
        &self.trace
    }
}

impl ArrivalSource for TraceSource {
    fn name(&self) -> String {
        self.name.clone()
    }
    fn colors(&self) -> ColorTable {
        self.trace.colors().clone()
    }
    fn arrival_bound(&self) -> Round {
        self.trace.last_arrival_round().map_or(0, |r| r + 1)
    }
    fn arrivals_at(&self, round: Round) -> Vec<(ColorId, u64)> {
        self.trace.arrivals_at(round)
    }
    fn horizon(&self) -> Round {
        self.trace.horizon()
    }
    fn to_trace(&self) -> Trace {
        self.trace.clone()
    }
}

/// Binds a per-round-seeded stochastic generator to its seed, making it an
/// [`ArrivalSource`]. The generator's `arrivals_at(seed, round)` must be a
/// pure function of `(parameters, seed, round)`.
#[derive(Debug, Clone)]
pub struct Seeded<G> {
    /// The generator.
    pub generator: G,
    /// Its seed.
    pub seed: u64,
}

impl ArrivalSource for Seeded<DriftingDemand> {
    fn name(&self) -> String {
        "drifting".into()
    }
    fn colors(&self) -> ColorTable {
        ColorTable::from_delay_bounds(&self.generator.delay_bounds)
    }
    fn arrival_bound(&self) -> Round {
        self.generator.horizon
    }
    fn arrivals_at(&self, round: Round) -> Vec<(ColorId, u64)> {
        self.generator.arrivals_at(self.seed, round)
    }
}

impl ArrivalSource for Seeded<FlashCrowd> {
    fn name(&self) -> String {
        "flash-crowd".into()
    }
    fn colors(&self) -> ColorTable {
        ColorTable::from_delay_bounds(&self.generator.delay_bounds)
    }
    fn arrival_bound(&self) -> Round {
        self.generator.horizon
    }
    fn arrivals_at(&self, round: Round) -> Vec<(ColorId, u64)> {
        self.generator.arrivals_at(self.seed, round)
    }
}

// The Appendix A adversary streams in closed form: round `r` carries Δ jobs
// for every short color when `r` is a multiple of `2^j` below `2^k`, and the
// long color's `2^k`-job backlog at round 0. Parameters are assumed valid
// (`WorkloadSpec::source` validates before streaming).
impl ArrivalSource for DlruAdversary {
    fn name(&self) -> String {
        "dlru-adversary".into()
    }
    fn colors(&self) -> ColorTable {
        let mut bounds = vec![1u64 << self.j; self.n / 2];
        bounds.push(1u64 << self.k);
        ColorTable::from_delay_bounds(&bounds)
    }
    fn arrival_bound(&self) -> Round {
        1u64 << self.k
    }
    fn arrivals_at(&self, round: Round) -> Vec<(ColorId, u64)> {
        let mut out = Vec::new();
        let d_long = 1u64 << self.k;
        if self.delta > 0 && round < d_long && round.is_multiple_of(1u64 << self.j) {
            out.extend((0..self.n / 2).map(|c| (ColorId(c as u32), self.delta)));
        }
        if round == 0 {
            out.push((ColorId((self.n / 2) as u32), d_long));
        }
        out
    }
    fn horizon(&self) -> Round {
        // Long color: arrival 0 + D = 2^k. The last short arrival at
        // 2^k - 2^j has the same deadline.
        1u64 << self.k
    }
}

// The Appendix B adversary: Δ jobs of the short color at every multiple of
// `2^j` below `2^{k-1}`, plus long color `p`'s `2^{k+p-1}`-job backlog at
// round 0.
impl ArrivalSource for EdfAdversary {
    fn name(&self) -> String {
        "edf-adversary".into()
    }
    fn colors(&self) -> ColorTable {
        let mut bounds = vec![1u64 << self.j];
        bounds.extend((0..self.n as u32 / 2).map(|p| 1u64 << (self.k + p)));
        ColorTable::from_delay_bounds(&bounds)
    }
    fn arrival_bound(&self) -> Round {
        1u64 << (self.k - 1)
    }
    fn arrivals_at(&self, round: Round) -> Vec<(ColorId, u64)> {
        let mut out = Vec::new();
        if self.delta > 0 && round < 1u64 << (self.k - 1) && round.is_multiple_of(1u64 << self.j) {
            out.push((ColorId(0), self.delta));
        }
        if round == 0 {
            out.extend(
                (0..self.n as u32 / 2).map(|p| (ColorId(1 + p), 1u64 << (self.k + p - 1))),
            );
        }
        out
    }
    fn horizon(&self) -> Round {
        // The largest long color (p = n/2 - 1) arrives at round 0 with
        // D = 2^{k + n/2 - 1}, dominating every other deadline.
        1u64 << (self.k + self.n as u32 / 2 - 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trace_source_round_trips() {
        let trace = TraceBuilder::with_delay_bounds(&[4, 8])
            .jobs(0, 0, 2)
            .jobs(5, 1, 3)
            .build();
        let src = TraceSource::new("wrapped", trace.clone());
        assert_eq!(src.name(), "wrapped");
        assert_eq!(src.to_trace(), trace);
        assert_eq!(src.horizon(), trace.horizon());
        assert_eq!(src.arrival_bound(), 6);
        for r in 0..=src.horizon() {
            assert_eq!(src.arrivals_at(r), trace.arrivals_at(r));
        }
    }

    #[test]
    fn dlru_adversary_streams_its_own_trace() {
        let adv = DlruAdversary { n: 4, delta: 2, j: 4, k: 6 };
        adv.validate().unwrap();
        let offline = adv.generate();
        assert_eq!(adv.to_trace(), offline, "streaming == offline oracle");
        assert_eq!(adv.horizon(), offline.horizon());
        assert_eq!(ArrivalSource::colors(&adv), *offline.colors());
        // Round 0 carries short batches plus the long backlog, in color order.
        assert_eq!(
            adv.arrivals_at(0),
            vec![(ColorId(0), 2), (ColorId(1), 2), (ColorId(2), 64)]
        );
        assert_eq!(adv.arrivals_at(1), vec![]);
        assert_eq!(adv.arrivals_at(16), vec![(ColorId(0), 2), (ColorId(1), 2)]);
        assert_eq!(adv.arrivals_at(64), vec![], "no arrivals at the horizon");
    }

    #[test]
    fn edf_adversary_streams_its_own_trace() {
        let adv = EdfAdversary { n: 4, delta: 6, j: 3, k: 5 };
        adv.validate().unwrap();
        let offline = adv.generate();
        assert_eq!(adv.to_trace(), offline, "streaming == offline oracle");
        assert_eq!(adv.horizon(), offline.horizon());
        assert_eq!(adv.horizon(), 64, "2^{{k + n/2 - 1}} = 2^6");
        assert_eq!(
            adv.arrivals_at(0),
            vec![(ColorId(0), 6), (ColorId(1), 16), (ColorId(2), 32)]
        );
        assert_eq!(adv.arrivals_at(8), vec![(ColorId(0), 6)]);
        assert_eq!(adv.arrivals_at(16), vec![], "short stops at 2^{{k-1}}");
    }

    #[test]
    fn default_horizon_matches_trace_horizon() {
        // TraceSource overrides horizon(); check the default scan agrees by
        // wrapping a source that does not override it.
        struct Tiny;
        impl ArrivalSource for Tiny {
            fn name(&self) -> String {
                "tiny".into()
            }
            fn colors(&self) -> ColorTable {
                ColorTable::from_delay_bounds(&[4, 16])
            }
            fn arrival_bound(&self) -> Round {
                10
            }
            fn arrivals_at(&self, round: Round) -> Vec<(ColorId, u64)> {
                match round {
                    0 => vec![(ColorId(1), 2)],
                    7 => vec![(ColorId(0), 1)],
                    _ => vec![],
                }
            }
        }
        assert_eq!(Tiny.horizon(), 16); // max(0 + 16, 7 + 4)
        assert_eq!(Tiny.horizon(), Tiny.to_trace().horizon());
    }
}
