//! Trace combinators: building composite workloads out of simpler ones.
//!
//! Real evaluations mix traffic classes — a diurnal base load plus a flash
//! crowd, two tenants sharing a pool, a warmup prefix before an adversary.
//! These functions compose [`Trace`]s structurally:
//!
//! * [`merge`] — union of several traces over a combined color table;
//! * [`shift`] — delay every arrival by a fixed offset;
//! * [`scale_counts`] — multiply every batch size (load scaling);
//! * [`concat`] — play one trace after another (gap-separated);
//! * [`flash_crowd`] — inject a burst spike into an existing trace.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rrs_core::prelude::*;

/// Merges traces over a combined color table (colors are renumbered in input
/// order). Returns the merged trace plus, per input trace, the id offset its
/// colors were shifted by.
pub fn merge(traces: &[&Trace]) -> (Trace, Vec<u32>) {
    let mut table = ColorTable::new();
    let mut offsets = Vec::with_capacity(traces.len());
    for t in traces {
        offsets.push(table.len() as u32);
        for (_, info) in t.colors().iter() {
            table.push(info);
        }
    }
    let mut out = Trace::new(table);
    for (t, &off) in traces.iter().zip(&offsets) {
        for a in t.iter() {
            out.add(a.round, ColorId(a.color.0 + off), a.count)
                .expect("merged color exists");
        }
    }
    (out, offsets)
}

/// Shifts every arrival `offset` rounds into the future.
pub fn shift(trace: &Trace, offset: u64) -> Trace {
    let mut out = Trace::new(trace.colors().clone());
    for a in trace.iter() {
        out.add(a.round + offset, a.color, a.count).expect("same colors");
    }
    out
}

/// Multiplies every batch size by `num/den` (rounding down, minimum 1 for
/// nonzero batches when `num > 0`).
pub fn scale_counts(trace: &Trace, num: u64, den: u64) -> Trace {
    assert!(den > 0, "denominator must be positive");
    let mut out = Trace::new(trace.colors().clone());
    for a in trace.iter() {
        let scaled = (a.count * num) / den;
        let scaled = if num > 0 && scaled == 0 { 1 } else { scaled };
        out.add(a.round, a.color, scaled).expect("same colors");
    }
    out
}

/// Plays `b` after `a` finishes (starting at `a`'s horizon rounded up to the
/// next multiple of `gap_alignment`, which keeps batched traces batched when
/// it is a common multiple of the delay bounds).
pub fn concat(a: &Trace, b: &Trace, gap_alignment: u64) -> Trace {
    assert_eq!(
        a.colors(),
        b.colors(),
        "concat requires identical color tables"
    );
    let align = gap_alignment.max(1);
    let start = a.horizon().div_ceil(align) * align;
    let mut out = a.clone();
    for arr in b.iter() {
        out.add(start + arr.round, arr.color, arr.count)
            .expect("same colors");
    }
    out
}

/// Injects a flash crowd: at `at_round`, `spike` extra jobs of a random
/// existing color (seeded), spread over `width` consecutive multiples of that
/// color's delay bound.
pub fn flash_crowd(trace: &Trace, at_round: u64, spike: u64, width: u64, seed: u64) -> Trace {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut out = trace.clone();
    if trace.colors().is_empty() || spike == 0 {
        return out;
    }
    let color = ColorId(rng.gen_range(0..trace.colors().len() as u32));
    let d = trace.colors().delay_bound(color);
    let width = width.max(1);
    let per_burst = spike.div_ceil(width);
    let start = at_round.div_ceil(d) * d;
    let mut remaining = spike;
    for i in 0..width {
        let burst = per_burst.min(remaining);
        out.add(start + i * d, color, burst).expect("same colors");
        remaining -= burst;
        if remaining == 0 {
            break;
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t1() -> Trace {
        TraceBuilder::with_delay_bounds(&[4])
            .jobs(0, 0, 2)
            .jobs(4, 0, 3)
            .build()
    }

    fn t2() -> Trace {
        TraceBuilder::with_delay_bounds(&[8, 8])
            .jobs(0, 0, 1)
            .jobs(8, 1, 4)
            .build()
    }

    #[test]
    fn merge_renumbers_colors() {
        let (m, offsets) = merge(&[&t1(), &t2()]);
        assert_eq!(offsets, vec![0, 1]);
        assert_eq!(m.colors().len(), 3);
        assert_eq!(m.total_jobs(), 10);
        assert_eq!(m.jobs_of_color(ColorId(0)), 5); // t1's color
        assert_eq!(m.jobs_of_color(ColorId(2)), 4); // t2's second color
        assert_eq!(m.colors().delay_bound(ColorId(1)), 8);
    }

    #[test]
    fn shift_moves_arrivals() {
        let s = shift(&t1(), 10);
        assert_eq!(s.arrivals_at(10), vec![(ColorId(0), 2)]);
        assert_eq!(s.arrivals_at(14), vec![(ColorId(0), 3)]);
        assert_eq!(s.total_jobs(), 5);
    }

    #[test]
    fn scale_counts_scales_with_floor() {
        let s = scale_counts(&t1(), 3, 2);
        assert_eq!(s.arrivals_at(0), vec![(ColorId(0), 3)]); // 2*3/2
        assert_eq!(s.arrivals_at(4), vec![(ColorId(0), 4)]); // 3*3/2 floor
        let tiny = scale_counts(&t1(), 1, 10);
        assert_eq!(tiny.arrivals_at(0), vec![(ColorId(0), 1)], "min 1 kept");
    }

    #[test]
    fn concat_plays_sequentially_and_keeps_batching() {
        let a = TraceBuilder::with_delay_bounds(&[4]).batched_jobs(0, 2, 0, 8).build();
        let b = TraceBuilder::with_delay_bounds(&[4]).batched_jobs(0, 3, 0, 8).build();
        let c = concat(&a, &b, 4);
        // a's horizon is 12 -> aligned start 12.
        assert_eq!(c.arrivals_at(12), vec![(ColorId(0), 3)]);
        assert_eq!(c.total_jobs(), a.total_jobs() + b.total_jobs());
        assert_ne!(c.batch_class(), BatchClass::General, "alignment preserved");
    }

    #[test]
    #[should_panic(expected = "identical color tables")]
    fn concat_rejects_mismatched_tables() {
        concat(&t1(), &t2(), 4);
    }

    #[test]
    fn flash_crowd_injects_spike() {
        let base = t1();
        let spiked = flash_crowd(&base, 3, 20, 2, 7);
        assert_eq!(spiked.total_jobs(), base.total_jobs() + 20);
        // Spike lands on multiples of the color's delay bound.
        let extra: Vec<_> = spiked
            .iter()
            .filter(|a| {
                base.arrivals_at(a.round)
                    .iter()
                    .all(|&(c, k)| c != a.color || k != a.count)
            })
            .collect();
        assert!(!extra.is_empty());
        for a in extra {
            assert_eq!(a.round % spiked.colors().delay_bound(a.color), 0);
        }
    }

    #[test]
    fn flash_crowd_zero_spike_is_identity() {
        let base = t1();
        assert_eq!(flash_crowd(&base, 0, 0, 4, 1), base);
    }
}
