//! A serializable umbrella type over all workload generators.
//!
//! [`WorkloadSpec`] lets experiment drivers, sweep configurations and CLI
//! invocations name any workload + parameters as data (JSON-serializable), and
//! regenerate the identical trace from a seed. [`WorkloadSpec::source`] hands
//! out the streaming view of the same workload — [`crate::ArrivalSource`] —
//! with validation up front, so a live service can consume any spec round by
//! round while the materialized trace remains the conformance oracle.

use crate::adversary::{DlruAdversary, EdfAdversary};
use crate::scenarios::{BackgroundMix, Datacenter, Router};
use crate::source::{ArrivalSource, Seeded, TraceSource};
use crate::stochastic::{DriftingDemand, FlashCrowd};
use crate::synthetic::{Bursty, RandomBatched, RandomGeneral};
use rrs_core::prelude::*;
use serde::{Deserialize, Serialize};

/// Any workload this crate can generate.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum WorkloadSpec {
    /// Appendix A adversary (deterministic).
    DlruAdversary(DlruAdversary),
    /// Appendix B adversary (deterministic).
    EdfAdversary(EdfAdversary),
    /// Random batched arrivals.
    RandomBatched(RandomBatched),
    /// Random general (per-round Poisson) arrivals.
    RandomGeneral(RandomGeneral),
    /// On/off Markov-modulated batches.
    Bursty(Bursty),
    /// Shared data center scenario.
    Datacenter(Datacenter),
    /// Multi-service router scenario.
    Router(Router),
    /// Background + short-term mix from the introduction.
    BackgroundMix(BackgroundMix),
    /// Demand drifting across the delay-class spectrum.
    Drifting(DriftingDemand),
    /// Base load with seed-placed flash crowds.
    FlashCrowd(FlashCrowd),
}

impl WorkloadSpec {
    /// Generates the trace. Deterministic adversaries ignore `seed`.
    pub fn generate(&self, seed: u64) -> Trace {
        match self {
            WorkloadSpec::DlruAdversary(a) => a.generate(),
            WorkloadSpec::EdfAdversary(a) => a.generate(),
            WorkloadSpec::RandomBatched(g) => g.generate(seed),
            WorkloadSpec::RandomGeneral(g) => g.generate(seed),
            WorkloadSpec::Bursty(g) => g.generate(seed),
            WorkloadSpec::Datacenter(g) => g.generate(seed),
            WorkloadSpec::Router(g) => g.generate(seed),
            WorkloadSpec::BackgroundMix(g) => g.generate(seed),
            WorkloadSpec::Drifting(g) => g.generate(seed),
            WorkloadSpec::FlashCrowd(g) => g.generate(seed),
        }
    }

    /// Checks the generator's parameters without generating anything.
    pub fn validate(&self) -> Result<()> {
        match self {
            WorkloadSpec::DlruAdversary(a) => a.validate(),
            WorkloadSpec::EdfAdversary(a) => a.validate(),
            WorkloadSpec::RandomBatched(g) => g.validate(),
            WorkloadSpec::RandomGeneral(g) => g.validate(),
            WorkloadSpec::Bursty(g) => g.validate(),
            WorkloadSpec::Datacenter(g) => g.validate(),
            WorkloadSpec::Router(g) => g.validate(),
            WorkloadSpec::BackgroundMix(g) => g.validate(),
            WorkloadSpec::Drifting(g) => g.validate(),
            WorkloadSpec::FlashCrowd(g) => g.validate(),
        }
    }

    /// The streaming view of this workload: validates, then returns a source
    /// whose [`ArrivalSource::to_trace`] equals [`WorkloadSpec::generate`]
    /// for the same seed.
    ///
    /// Adversaries and the per-round-seeded stochastic generators stream
    /// natively (no trace is materialized); the sequential-RNG generators
    /// fall back to a [`TraceSource`] wrapping their generated trace.
    pub fn source(&self, seed: u64) -> Result<Box<dyn ArrivalSource>> {
        self.validate()?;
        Ok(match self {
            WorkloadSpec::DlruAdversary(a) => Box::new(*a),
            WorkloadSpec::EdfAdversary(a) => Box::new(*a),
            WorkloadSpec::Drifting(g) => Box::new(Seeded {
                generator: g.clone(),
                seed,
            }),
            WorkloadSpec::FlashCrowd(g) => Box::new(Seeded {
                generator: g.clone(),
                seed,
            }),
            other => Box::new(TraceSource::new(other.name(), other.generate(seed))),
        })
    }

    /// Short name for reports.
    pub fn name(&self) -> &'static str {
        match self {
            WorkloadSpec::DlruAdversary(_) => "dlru-adversary",
            WorkloadSpec::EdfAdversary(_) => "edf-adversary",
            WorkloadSpec::RandomBatched(_) => "random-batched",
            WorkloadSpec::RandomGeneral(_) => "random-general",
            WorkloadSpec::Bursty(_) => "bursty",
            WorkloadSpec::Datacenter(_) => "datacenter",
            WorkloadSpec::Router(_) => "router",
            WorkloadSpec::BackgroundMix(_) => "background-mix",
            WorkloadSpec::Drifting(_) => "drifting",
            WorkloadSpec::FlashCrowd(_) => "flash-crowd",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spec_generates_and_names() {
        let spec = WorkloadSpec::RandomBatched(RandomBatched {
            delay_bounds: vec![4, 8],
            load: 0.5,
            activity: 1.0,
            horizon: 64,
            rate_limited: true,
        });
        assert_eq!(spec.name(), "random-batched");
        assert_eq!(spec.generate(1), spec.generate(1));
    }

    #[test]
    fn spec_serde_roundtrip() {
        let spec = WorkloadSpec::Datacenter(Datacenter::default());
        let json = serde_json::to_string(&spec).unwrap();
        let back: WorkloadSpec = serde_json::from_str(&json).unwrap();
        assert_eq!(back, spec);
        assert_eq!(back.generate(3), spec.generate(3));
    }

    #[test]
    fn new_variants_serde_roundtrip() {
        for spec in [
            WorkloadSpec::Drifting(DriftingDemand::default()),
            WorkloadSpec::FlashCrowd(FlashCrowd::default()),
        ] {
            let json = serde_json::to_string(&spec).unwrap();
            let back: WorkloadSpec = serde_json::from_str(&json).unwrap();
            assert_eq!(back, spec);
            assert_eq!(back.generate(3), spec.generate(3));
        }
    }

    #[test]
    fn adversaries_ignore_seed() {
        let spec = WorkloadSpec::DlruAdversary(DlruAdversary {
            n: 4,
            delta: 2,
            j: 4,
            k: 6,
        });
        assert_eq!(spec.generate(1), spec.generate(99));
    }

    #[test]
    fn source_streams_the_generated_trace() {
        let specs = [
            WorkloadSpec::DlruAdversary(DlruAdversary { n: 4, delta: 2, j: 4, k: 6 }),
            WorkloadSpec::EdfAdversary(EdfAdversary { n: 4, delta: 6, j: 3, k: 5 }),
            WorkloadSpec::Bursty(Bursty {
                delay_bounds: vec![4, 8],
                on_load: 0.8,
                p_on: 0.5,
                p_off: 0.5,
                horizon: 64,
                rate_limited: true,
            }),
            WorkloadSpec::Drifting(DriftingDemand {
                horizon: 64,
                ..DriftingDemand::default()
            }),
            WorkloadSpec::FlashCrowd(FlashCrowd {
                horizon: 64,
                width: 16,
                ..FlashCrowd::default()
            }),
        ];
        for spec in specs {
            let src = spec.source(7).unwrap();
            let oracle = spec.generate(7);
            assert_eq!(src.to_trace(), oracle, "{}", spec.name());
            assert_eq!(src.horizon(), oracle.horizon(), "{}", spec.name());
            assert_eq!(src.name(), spec.name());
        }
    }

    #[test]
    fn source_rejects_invalid_specs() {
        let bad = WorkloadSpec::DlruAdversary(DlruAdversary {
            n: 3,
            delta: 2,
            j: 4,
            k: 6,
        });
        assert!(bad.validate().is_err());
        assert!(bad.source(1).is_err(), "source validates up front");
        let bad = WorkloadSpec::RandomGeneral(RandomGeneral {
            delay_bounds: vec![4, 8],
            rates: vec![0.5],
            horizon: 64,
        });
        assert!(bad.source(1).is_err(), "would panic in generate otherwise");
    }
}
