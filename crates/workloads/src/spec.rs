//! A serializable umbrella type over all workload generators.
//!
//! [`WorkloadSpec`] lets experiment drivers, sweep configurations and CLI
//! invocations name any workload + parameters as data (JSON-serializable), and
//! regenerate the identical trace from a seed.

use crate::adversary::{DlruAdversary, EdfAdversary};
use crate::scenarios::{BackgroundMix, Datacenter, Router};
use crate::synthetic::{Bursty, RandomBatched, RandomGeneral};
use rrs_core::prelude::*;
use serde::{Deserialize, Serialize};

/// Any workload this crate can generate.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum WorkloadSpec {
    /// Appendix A adversary (deterministic).
    DlruAdversary(DlruAdversary),
    /// Appendix B adversary (deterministic).
    EdfAdversary(EdfAdversary),
    /// Random batched arrivals.
    RandomBatched(RandomBatched),
    /// Random general (per-round Poisson) arrivals.
    RandomGeneral(RandomGeneral),
    /// On/off Markov-modulated batches.
    Bursty(Bursty),
    /// Shared data center scenario.
    Datacenter(Datacenter),
    /// Multi-service router scenario.
    Router(Router),
    /// Background + short-term mix from the introduction.
    BackgroundMix(BackgroundMix),
}

impl WorkloadSpec {
    /// Generates the trace. Deterministic adversaries ignore `seed`.
    pub fn generate(&self, seed: u64) -> Trace {
        match self {
            WorkloadSpec::DlruAdversary(a) => a.generate(),
            WorkloadSpec::EdfAdversary(a) => a.generate(),
            WorkloadSpec::RandomBatched(g) => g.generate(seed),
            WorkloadSpec::RandomGeneral(g) => g.generate(seed),
            WorkloadSpec::Bursty(g) => g.generate(seed),
            WorkloadSpec::Datacenter(g) => g.generate(seed),
            WorkloadSpec::Router(g) => g.generate(seed),
            WorkloadSpec::BackgroundMix(g) => g.generate(seed),
        }
    }

    /// Short name for reports.
    pub fn name(&self) -> &'static str {
        match self {
            WorkloadSpec::DlruAdversary(_) => "dlru-adversary",
            WorkloadSpec::EdfAdversary(_) => "edf-adversary",
            WorkloadSpec::RandomBatched(_) => "random-batched",
            WorkloadSpec::RandomGeneral(_) => "random-general",
            WorkloadSpec::Bursty(_) => "bursty",
            WorkloadSpec::Datacenter(_) => "datacenter",
            WorkloadSpec::Router(_) => "router",
            WorkloadSpec::BackgroundMix(_) => "background-mix",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spec_generates_and_names() {
        let spec = WorkloadSpec::RandomBatched(RandomBatched {
            delay_bounds: vec![4, 8],
            load: 0.5,
            activity: 1.0,
            horizon: 64,
            rate_limited: true,
        });
        assert_eq!(spec.name(), "random-batched");
        assert_eq!(spec.generate(1), spec.generate(1));
    }

    #[test]
    fn spec_serde_roundtrip() {
        let spec = WorkloadSpec::Datacenter(Datacenter::default());
        let json = serde_json::to_string(&spec).unwrap();
        let back: WorkloadSpec = serde_json::from_str(&json).unwrap();
        assert_eq!(back, spec);
        assert_eq!(back.generate(3), spec.generate(3));
    }

    #[test]
    fn adversaries_ignore_seed() {
        let spec = WorkloadSpec::DlruAdversary(DlruAdversary {
            n: 4,
            delta: 2,
            j: 4,
            k: 6,
        });
        assert_eq!(spec.generate(1), spec.generate(99));
    }
}
