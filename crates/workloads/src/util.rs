//! Sampling utilities shared by the generators.
//!
//! Only `rand` is available offline, so the handful of distributions we need
//! (Poisson, Pareto, normal) are implemented here directly with standard
//! textbook samplers.

use rand::Rng;

/// Samples a Poisson-distributed count with mean `lambda`.
///
/// Uses Knuth's product-of-uniforms method for small means and a normal
/// approximation (rounded, clamped at zero) for `lambda > 30`, which is more
/// than accurate enough for workload generation.
pub fn poisson<R: Rng + ?Sized>(rng: &mut R, lambda: f64) -> u64 {
    if lambda <= 0.0 {
        return 0;
    }
    if lambda > 30.0 {
        let x = lambda + lambda.sqrt() * standard_normal(rng);
        return x.round().max(0.0) as u64;
    }
    let l = (-lambda).exp();
    let mut k = 0u64;
    let mut p = 1.0;
    loop {
        p *= rng.gen::<f64>();
        if p <= l {
            return k;
        }
        k += 1;
        // Defensive cap: the loop terminates with probability 1, but a cap
        // keeps adversarial float inputs from spinning.
        if k > 10_000 {
            return k;
        }
    }
}

/// Samples a standard normal deviate via the Box–Muller transform.
pub fn standard_normal<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    let u1: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
    let u2: f64 = rng.gen::<f64>();
    (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
}

/// Samples a Pareto-distributed value with scale `xm > 0` and shape
/// `alpha > 0` (heavy-tailed burst sizes), truncated at `cap`.
pub fn pareto<R: Rng + ?Sized>(rng: &mut R, xm: f64, alpha: f64, cap: u64) -> u64 {
    assert!(xm > 0.0 && alpha > 0.0, "Pareto needs positive parameters");
    let u: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
    let x = xm / u.powf(1.0 / alpha);
    (x.round() as u64).clamp(1, cap.max(1))
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn poisson_mean_is_close() {
        let mut rng = StdRng::seed_from_u64(42);
        for &lambda in &[0.5, 3.0, 12.0, 100.0] {
            let n = 20_000;
            let sum: u64 = (0..n).map(|_| poisson(&mut rng, lambda)).sum();
            let mean = sum as f64 / n as f64;
            assert!(
                (mean - lambda).abs() < lambda.max(1.0) * 0.1,
                "lambda={lambda}, mean={mean}"
            );
        }
    }

    #[test]
    fn poisson_zero_lambda_is_zero() {
        let mut rng = StdRng::seed_from_u64(1);
        assert_eq!(poisson(&mut rng, 0.0), 0);
        assert_eq!(poisson(&mut rng, -1.0), 0);
    }

    #[test]
    fn normal_moments() {
        let mut rng = StdRng::seed_from_u64(7);
        let n = 50_000;
        let samples: Vec<f64> = (0..n).map(|_| standard_normal(&mut rng)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.05, "mean={mean}");
        assert!((var - 1.0).abs() < 0.1, "var={var}");
    }

    #[test]
    fn pareto_bounds() {
        let mut rng = StdRng::seed_from_u64(9);
        for _ in 0..1000 {
            let x = pareto(&mut rng, 2.0, 1.5, 100);
            assert!((1..=100).contains(&x));
        }
    }

    #[test]
    fn pareto_is_heavy_tailed() {
        let mut rng = StdRng::seed_from_u64(3);
        let big = (0..20_000)
            .filter(|_| pareto(&mut rng, 1.0, 1.1, 10_000) > 50)
            .count();
        assert!(big > 50, "tail mass present: {big}");
    }
}
