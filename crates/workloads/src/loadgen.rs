//! Transport-agnostic epoch-batched load generation.
//!
//! The service's batched ingestion (in-process or over the wire) consumes
//! work in *tick epochs*: any number of `submit` calls followed by one
//! `tick` that makes the whole batch durable and advances every tenant one
//! round. [`EpochSink`] abstracts exactly that surface, so one driver can
//! push the same deterministic workload into an in-process supervisor, a
//! network sink, or a test double — and the conformance suites can assert
//! the transports are interchangeable.
//!
//! [`SyntheticLoad`] is the shared arrival schedule: a cheap wrapping-
//! multiply hash mix (no RNG state to thread), fully determined by
//! `(tenant, round, part, color)`, so every driver in every process
//! generates bit-identical arrivals without coordination.

use rrs_core::ColorId;

/// A sink that accepts epoch-batched work: buffered submits punctuated by
/// ticks. Implemented by in-process supervisors and network clients alike.
pub trait EpochSink {
    /// The sink's failure type.
    type Error;

    /// Buffers arrivals for `tenant` into the current epoch.
    fn submit(&mut self, tenant: u64, arrivals: Vec<(ColorId, u64)>) -> Result<(), Self::Error>;

    /// Closes the current epoch: everything submitted since the previous
    /// tick becomes one durable batch and each tenant advances one round.
    fn tick(&mut self) -> Result<(), Self::Error>;
}

/// A deterministic multi-tenant arrival schedule, parameterized only by
/// shape — no seed state, so any subset of tenants can be generated
/// independently (each client of a multi-client run drives its own slice).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SyntheticLoad {
    /// Tenant ids are `0..tenants`.
    pub tenants: u64,
    /// Rounds (tick epochs) in the run.
    pub rounds: u64,
    /// Submit parts per round: each tenant submits up to `parts` separate
    /// arrival batches per epoch, exercising in-epoch coalescing.
    pub parts: u64,
    /// Colors in each tenant's palette.
    pub colors: u64,
}

impl SyntheticLoad {
    /// The arrivals for one `(tenant, round, part)` cell. Roughly two
    /// thirds of the colors contribute 1–4 jobs each.
    pub fn arrivals(&self, tenant: u64, round: u64, part: u64) -> Vec<(ColorId, u64)> {
        let mut out = Vec::new();
        for c in 0..self.colors {
            let mix = tenant
                .wrapping_mul(31)
                .wrapping_add(round.wrapping_mul(17))
                .wrapping_add(part.wrapping_mul(13))
                .wrapping_add(c.wrapping_mul(7));
            if mix % 3 != 0 {
                out.push((ColorId(c as u32), 1 + mix % 4));
            }
        }
        out
    }

    /// Total jobs the schedule produces for the tenants selected by
    /// `owns` — the conservation oracle for drivers.
    pub fn total_jobs(&self, owns: impl Fn(u64) -> bool) -> u64 {
        let mut total = 0;
        for tenant in (0..self.tenants).filter(|&t| owns(t)) {
            for round in 0..self.rounds {
                for part in 0..self.parts {
                    total += self
                        .arrivals(tenant, round, part)
                        .iter()
                        .map(|(_, n)| n)
                        .sum::<u64>();
                }
            }
        }
        total
    }

    /// Drives the full schedule into `sink` for the tenants selected by
    /// `owns`: `rounds` epochs, each submitting every owned tenant's
    /// `parts` batches then ticking once. Returns the jobs submitted.
    pub fn drive<S: EpochSink>(
        &self,
        sink: &mut S,
        owns: impl Fn(u64) -> bool,
    ) -> Result<u64, S::Error> {
        let mut jobs = 0;
        for round in 0..self.rounds {
            jobs += self.drive_round(sink, round, &owns)?;
            sink.tick()?;
        }
        Ok(jobs)
    }

    /// Submits one round's batches for the owned tenants without ticking
    /// (the caller owns the tick, e.g. to interleave faults or co-drivers).
    pub fn drive_round<S: EpochSink>(
        &self,
        sink: &mut S,
        round: u64,
        owns: impl Fn(u64) -> bool,
    ) -> Result<u64, S::Error> {
        let mut jobs = 0;
        for part in 0..self.parts {
            for tenant in (0..self.tenants).filter(|&t| owns(t)) {
                let arrivals = self.arrivals(tenant, round, part);
                if arrivals.is_empty() {
                    continue;
                }
                jobs += arrivals.iter().map(|(_, n)| n).sum::<u64>();
                sink.submit(tenant, arrivals)?;
            }
        }
        Ok(jobs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Recorder {
        submits: Vec<(u64, Vec<(ColorId, u64)>)>,
        ticks: u64,
    }

    impl EpochSink for Recorder {
        type Error = std::convert::Infallible;

        fn submit(
            &mut self,
            tenant: u64,
            arrivals: Vec<(ColorId, u64)>,
        ) -> Result<(), Self::Error> {
            self.submits.push((tenant, arrivals));
            Ok(())
        }

        fn tick(&mut self) -> Result<(), Self::Error> {
            self.ticks += 1;
            Ok(())
        }
    }

    fn load() -> SyntheticLoad {
        SyntheticLoad { tenants: 6, rounds: 5, parts: 2, colors: 4 }
    }

    #[test]
    fn drive_is_deterministic_and_conserves_jobs() {
        let mut a = Recorder { submits: Vec::new(), ticks: 0 };
        let mut b = Recorder { submits: Vec::new(), ticks: 0 };
        let ja = load().drive(&mut a, |_| true).unwrap();
        let jb = load().drive(&mut b, |_| true).unwrap();
        assert_eq!(a.submits, b.submits);
        assert_eq!(ja, jb);
        assert_eq!(a.ticks, 5);
        assert_eq!(ja, load().total_jobs(|_| true));
        let carried: u64 = a
            .submits
            .iter()
            .flat_map(|(_, arr)| arr.iter().map(|(_, n)| n))
            .sum();
        assert_eq!(carried, ja);
    }

    #[test]
    fn tenant_slices_partition_the_load() {
        let all = load().total_jobs(|_| true);
        let even = load().total_jobs(|t| t % 2 == 0);
        let odd = load().total_jobs(|t| t % 2 == 1);
        assert_eq!(even + odd, all);
        assert!(even > 0 && odd > 0);

        let mut sink = Recorder { submits: Vec::new(), ticks: 0 };
        let jobs = load().drive(&mut sink, |t| t % 2 == 0).unwrap();
        assert_eq!(jobs, even);
        assert!(sink.submits.iter().all(|(t, _)| t % 2 == 0));
    }
}
