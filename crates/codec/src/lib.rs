//! Compact binary codec for the shim-serde data model.
//!
//! The service's hot paths (WAL group commit, checkpoint bodies, the TCP
//! wire protocol) originally serialized every payload through text JSON.
//! This crate replaces that with a self-describing binary encoding over the
//! same [`Value`] data model, so any `#[derive(Serialize, Deserialize)]`
//! type moves between the two formats without schema changes: field order
//! and enum tagging are exactly what the derive produces for JSON.
//!
//! # Format
//!
//! One leading tag byte per node, msgpack-inspired but self-contained:
//!
//! | tag         | meaning                                              |
//! |-------------|------------------------------------------------------|
//! | `0x00–0x7F` | positive fixint (the tag byte IS the value)          |
//! | `0x80–0x8F` | fixmap, length = low nibble; pairs follow            |
//! | `0x90–0x9F` | fixarray, length = low nibble; elements follow       |
//! | `0xA0–0xBF` | fixstr, length = low 5 bits; UTF-8 bytes follow      |
//! | `0xC0`      | null                                                 |
//! | `0xC2`      | false                                                |
//! | `0xC3`      | true                                                 |
//! | `0xC4`      | u64, LEB128 varint follows                           |
//! | `0xC5`      | i64, zigzag LEB128 varint follows                    |
//! | `0xC6`      | f64, 8 little-endian bytes follow                    |
//! | `0xC7`      | str, varint byte length then UTF-8 bytes             |
//! | `0xC8`      | array, varint element count then elements            |
//! | `0xC9`      | map, varint pair count then `key (str node), value`  |
//! | `0xC1`, `0xCA–0xFF` | invalid — decode error                       |
//!
//! Map keys are encoded as string nodes (usually one fixstr byte of
//! overhead), which keeps the format self-describing: a decoder needs no
//! schema to reconstruct the [`Value`] tree.
//!
//! # Robustness
//!
//! Decoding is defensive — it is fed disk sectors and network frames that
//! may be torn or bit-flipped. Every length is sanity-checked against the
//! bytes actually remaining (an element costs at least one byte, a map pair
//! at least two), varints are capped at 10 bytes with overflow rejected,
//! nesting depth is capped at [`MAX_DEPTH`], and [`from_slice`] requires
//! the buffer to be fully consumed. A decode error never panics and never
//! over-reads.

use serde::{Deserialize, Emit, Serialize, Value};

/// Maximum nesting depth accepted by the decoder (arrays/maps).
pub const MAX_DEPTH: usize = 128;

const TAG_NULL: u8 = 0xC0;
const TAG_FALSE: u8 = 0xC2;
const TAG_TRUE: u8 = 0xC3;
const TAG_U64: u8 = 0xC4;
const TAG_I64: u8 = 0xC5;
const TAG_F64: u8 = 0xC6;
const TAG_STR: u8 = 0xC7;
const TAG_ARR: u8 = 0xC8;
const TAG_MAP: u8 = 0xC9;

const FIXMAP: u8 = 0x80;
const FIXARR: u8 = 0x90;
const FIXSTR: u8 = 0xA0;
const FIXSTR_MAX: usize = 31;
const FIX_CONTAINER_MAX: usize = 15;

/// Decode failure: offset into the buffer plus a static description.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error {
    /// Byte offset at which decoding failed.
    pub at: usize,
    /// What went wrong.
    pub msg: String,
}

impl Error {
    fn new(at: usize, msg: impl Into<String>) -> Self {
        Error {
            at,
            msg: msg.into(),
        }
    }
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "codec decode error at byte {}: {}", self.at, self.msg)
    }
}

impl std::error::Error for Error {}

// ---------------------------------------------------------------------------
// Encoding
// ---------------------------------------------------------------------------

/// [`Emit`] sink that appends the binary encoding to a byte buffer.
///
/// Container `len`s are known up front in the shim data model, so headers
/// are written immediately — no backpatching, single forward pass.
struct Writer<'a> {
    out: &'a mut Vec<u8>,
}

fn put_varint(out: &mut Vec<u8>, mut x: u64) {
    loop {
        let byte = (x & 0x7F) as u8;
        x >>= 7;
        if x == 0 {
            out.push(byte);
            return;
        }
        out.push(byte | 0x80);
    }
}

fn put_str(out: &mut Vec<u8>, s: &str) {
    if s.len() <= FIXSTR_MAX {
        out.push(FIXSTR | s.len() as u8);
    } else {
        out.push(TAG_STR);
        put_varint(out, s.len() as u64);
    }
    out.extend_from_slice(s.as_bytes());
}

impl Emit for Writer<'_> {
    fn null(&mut self) {
        self.out.push(TAG_NULL);
    }

    fn bool(&mut self, b: bool) {
        self.out.push(if b { TAG_TRUE } else { TAG_FALSE });
    }

    fn u64(&mut self, x: u64) {
        if x <= 0x7F {
            self.out.push(x as u8);
        } else {
            self.out.push(TAG_U64);
            put_varint(self.out, x);
        }
    }

    fn i64(&mut self, x: i64) {
        if x >= 0 {
            // The shim only routes negatives here, but accept anything.
            self.u64(x as u64);
        } else {
            self.out.push(TAG_I64);
            put_varint(self.out, zigzag(x));
        }
    }

    fn f64(&mut self, x: f64) {
        self.out.push(TAG_F64);
        self.out.extend_from_slice(&x.to_le_bytes());
    }

    fn str(&mut self, s: &str) {
        put_str(self.out, s);
    }

    fn seq(&mut self, len: usize) {
        if len <= FIX_CONTAINER_MAX {
            self.out.push(FIXARR | len as u8);
        } else {
            self.out.push(TAG_ARR);
            put_varint(self.out, len as u64);
        }
    }

    fn map(&mut self, len: usize) {
        if len <= FIX_CONTAINER_MAX {
            self.out.push(FIXMAP | len as u8);
        } else {
            self.out.push(TAG_MAP);
            put_varint(self.out, len as u64);
        }
    }

    fn key(&mut self, key: &str) {
        put_str(self.out, key);
    }
}

fn zigzag(x: i64) -> u64 {
    ((x << 1) ^ (x >> 63)) as u64
}

fn unzigzag(x: u64) -> i64 {
    ((x >> 1) as i64) ^ -((x & 1) as i64)
}

/// Appends the binary encoding of `value` to `out` (does not clear it —
/// callers stage multiple payloads into one scratch/commit buffer).
pub fn encode_into<T: Serialize + ?Sized>(value: &T, out: &mut Vec<u8>) {
    value.emit(&mut Writer { out });
}

/// Encodes `value` into a fresh buffer. Prefer [`encode_into`] on hot paths.
pub fn to_vec<T: Serialize + ?Sized>(value: &T) -> Vec<u8> {
    let mut out = Vec::new();
    encode_into(value, &mut out);
    out
}

// ---------------------------------------------------------------------------
// Decoding
// ---------------------------------------------------------------------------

struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    fn byte(&mut self) -> Result<u8, Error> {
        let b = *self
            .buf
            .get(self.pos)
            .ok_or_else(|| Error::new(self.pos, "unexpected end of input"))?;
        self.pos += 1;
        Ok(b)
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], Error> {
        if self.remaining() < n {
            return Err(Error::new(
                self.pos,
                format!("need {n} bytes, {} remain", self.remaining()),
            ));
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    fn varint(&mut self) -> Result<u64, Error> {
        let start = self.pos;
        let mut x: u64 = 0;
        for shift in (0..64).step_by(7) {
            let b = self.byte()?;
            let low = (b & 0x7F) as u64;
            // The 10th byte may only carry the single remaining bit.
            if shift == 63 && low > 1 {
                return Err(Error::new(start, "varint overflows u64"));
            }
            x |= low << shift;
            if b & 0x80 == 0 {
                return Ok(x);
            }
        }
        Err(Error::new(start, "varint longer than 10 bytes"))
    }

    fn str_body(&mut self, len: usize) -> Result<String, Error> {
        let at = self.pos;
        let bytes = self.take(len)?;
        std::str::from_utf8(bytes)
            .map(str::to_owned)
            .map_err(|_| Error::new(at, "string is not valid UTF-8"))
    }

    /// Reads a node that must be a string (map key position).
    fn key(&mut self) -> Result<String, Error> {
        let at = self.pos;
        let tag = self.byte()?;
        match tag {
            _ if tag & 0xE0 == FIXSTR => self.str_body((tag & 0x1F) as usize),
            TAG_STR => {
                let len = self.checked_len(at, 1)?;
                self.str_body(len)
            }
            _ => Err(Error::new(at, format!("expected map key string, tag {tag:#04x}"))),
        }
    }

    /// Reads a varint length and sanity-checks it against the bytes
    /// remaining, where each counted item occupies at least
    /// `min_item_bytes`. Defeats length-bomb frames before any allocation.
    fn checked_len(&mut self, at: usize, min_item_bytes: usize) -> Result<usize, Error> {
        let len = self.varint()?;
        let need = len.saturating_mul(min_item_bytes as u64);
        if need > self.remaining() as u64 {
            return Err(Error::new(
                at,
                format!("declared length {len} exceeds {} remaining bytes", self.remaining()),
            ));
        }
        Ok(len as usize)
    }

    fn check_fix_len(&self, at: usize, len: usize, min_item_bytes: usize) -> Result<(), Error> {
        if len * min_item_bytes > self.remaining() {
            return Err(Error::new(
                at,
                format!("declared length {len} exceeds {} remaining bytes", self.remaining()),
            ));
        }
        Ok(())
    }

    fn value(&mut self, depth: usize) -> Result<Value, Error> {
        if depth > MAX_DEPTH {
            return Err(Error::new(self.pos, "nesting depth limit exceeded"));
        }
        let at = self.pos;
        let tag = self.byte()?;
        match tag {
            0x00..=0x7F => Ok(Value::U64(tag as u64)),
            _ if tag & 0xF0 == FIXMAP => {
                let len = (tag & 0x0F) as usize;
                self.check_fix_len(at, len, 2)?;
                self.map_body(len, depth)
            }
            _ if tag & 0xF0 == FIXARR => {
                let len = (tag & 0x0F) as usize;
                self.check_fix_len(at, len, 1)?;
                self.arr_body(len, depth)
            }
            _ if tag & 0xE0 == FIXSTR => {
                self.str_body((tag & 0x1F) as usize).map(Value::Str)
            }
            TAG_NULL => Ok(Value::Null),
            TAG_FALSE => Ok(Value::Bool(false)),
            TAG_TRUE => Ok(Value::Bool(true)),
            TAG_U64 => self.varint().map(Value::U64),
            TAG_I64 => self.varint().map(|x| Value::I64(unzigzag(x))),
            TAG_F64 => {
                let bytes = self.take(8)?;
                let mut arr = [0u8; 8];
                arr.copy_from_slice(bytes);
                Ok(Value::F64(f64::from_le_bytes(arr)))
            }
            TAG_STR => {
                let len = self.checked_len(at, 1)?;
                self.str_body(len).map(Value::Str)
            }
            TAG_ARR => {
                let len = self.checked_len(at, 1)?;
                self.arr_body(len, depth)
            }
            TAG_MAP => {
                let len = self.checked_len(at, 2)?;
                self.map_body(len, depth)
            }
            other => Err(Error::new(at, format!("invalid tag byte {other:#04x}"))),
        }
    }

    fn arr_body(&mut self, len: usize, depth: usize) -> Result<Value, Error> {
        let mut items = Vec::with_capacity(len);
        for _ in 0..len {
            items.push(self.value(depth + 1)?);
        }
        Ok(Value::Array(items))
    }

    fn map_body(&mut self, len: usize, depth: usize) -> Result<Value, Error> {
        let mut pairs = Vec::with_capacity(len);
        for _ in 0..len {
            let k = self.key()?;
            let v = self.value(depth + 1)?;
            pairs.push((k, v));
        }
        Ok(Value::Object(pairs))
    }
}

/// Decodes one value from the front of `buf`; returns it and the number of
/// bytes consumed (trailing bytes are left for the caller).
pub fn decode_value(buf: &[u8]) -> Result<(Value, usize), Error> {
    let mut r = Reader { buf, pos: 0 };
    let v = r.value(0)?;
    Ok((v, r.pos))
}

/// Decodes a `T` from `buf`, requiring the entire buffer to be consumed.
pub fn from_slice<T: Deserialize>(buf: &[u8]) -> Result<T, Error> {
    let (v, used) = decode_value(buf)?;
    if used != buf.len() {
        return Err(Error::new(
            used,
            format!("{} trailing bytes after value", buf.len() - used),
        ));
    }
    T::from_value(&v).map_err(|e| Error::new(0, e.to_string()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn roundtrip(v: &Value) -> Value {
        let bytes = to_vec(v);
        let (back, used) = decode_value(&bytes).expect("decode");
        assert_eq!(used, bytes.len(), "full consumption");
        back
    }

    #[test]
    fn scalar_roundtrips() {
        for v in [
            Value::Null,
            Value::Bool(true),
            Value::Bool(false),
            Value::U64(0),
            Value::U64(0x7F),
            Value::U64(0x80),
            Value::U64(u64::MAX),
            Value::I64(-1),
            Value::I64(i64::MIN),
            Value::F64(0.0),
            Value::F64(-1.5),
            Value::F64(f64::MAX),
            Value::Str(String::new()),
            Value::Str("a".repeat(31)),
            Value::Str("a".repeat(32)),
            Value::Str("κόσμος".to_string()),
        ] {
            assert_eq!(roundtrip(&v), v);
        }
    }

    #[test]
    fn nonnegative_i64_encodes_as_u64() {
        // Mirrors the shim invariant: to_value maps non-negatives to U64.
        let bytes = to_vec(&5i64);
        assert_eq!(bytes, vec![5]);
        assert_eq!(decode_value(&bytes).unwrap().0, Value::U64(5));
    }

    #[test]
    fn container_roundtrips() {
        let small = Value::Array((0..15).map(Value::U64).collect());
        let large = Value::Array((0..1000).map(Value::U64).collect());
        let obj = Value::Object(vec![
            ("alpha".to_string(), Value::U64(1)),
            ("nested".to_string(), small.clone()),
            ("x".repeat(40), Value::Null),
        ]);
        for v in [small, large, obj] {
            assert_eq!(roundtrip(&v), v);
        }
    }

    #[test]
    fn varint_edges() {
        for x in [0u64, 1, 127, 128, 16383, 16384, u64::MAX - 1, u64::MAX] {
            let v = Value::U64(x);
            assert_eq!(roundtrip(&v), v);
        }
        for x in [i64::MIN, i64::MIN + 1, -2, -1] {
            let v = Value::I64(x);
            assert_eq!(roundtrip(&v), v);
        }
    }

    #[test]
    fn invalid_tags_rejected() {
        for tag in [0xC1u8, 0xCA, 0xD0, 0xE5, 0xFF] {
            assert!(decode_value(&[tag]).is_err(), "tag {tag:#04x} accepted");
        }
    }

    #[test]
    fn varint_overflow_rejected() {
        // 11 continuation bytes.
        let bytes = [TAG_U64, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0x01];
        assert!(decode_value(&bytes).is_err());
        // 10 bytes but top bits beyond bit 63 set.
        let bytes = [TAG_U64, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0x7F];
        assert!(decode_value(&bytes).is_err());
    }

    #[test]
    fn length_bombs_rejected() {
        // Array claiming 2^32 elements in a 3-byte buffer.
        let mut bytes = vec![TAG_ARR];
        put_varint(&mut bytes, 1 << 32);
        assert!(decode_value(&bytes).is_err());
        // Map claiming many pairs.
        let mut bytes = vec![TAG_MAP];
        put_varint(&mut bytes, u64::MAX);
        assert!(decode_value(&bytes).is_err());
        // String longer than the buffer.
        let mut bytes = vec![TAG_STR];
        put_varint(&mut bytes, 1000);
        bytes.push(b'a');
        assert!(decode_value(&bytes).is_err());
    }

    #[test]
    fn depth_limit_enforced() {
        // MAX_DEPTH+2 nested single-element arrays.
        let mut bytes = vec![FIXARR | 1; MAX_DEPTH + 2];
        bytes.push(TAG_NULL);
        assert!(decode_value(&bytes).is_err());
        // Just under the limit decodes fine.
        let mut ok = vec![FIXARR | 1; MAX_DEPTH - 1];
        ok.push(TAG_NULL);
        assert!(decode_value(&ok).is_ok());
    }

    #[test]
    fn truncation_always_errors() {
        let v = Value::Object(vec![
            ("k".to_string(), Value::Array(vec![Value::U64(300), Value::Str("hello".into())])),
            ("n".to_string(), Value::I64(-77)),
        ]);
        let bytes = to_vec(&v);
        for cut in 0..bytes.len() {
            assert!(
                decode_value(&bytes[..cut]).is_err(),
                "prefix of {cut} bytes decoded"
            );
        }
    }

    #[test]
    fn map_key_must_be_string() {
        // fixmap(1) with an integer where the key should be.
        let bytes = [FIXMAP | 1, 0x05, 0x06];
        assert!(decode_value(&bytes).is_err());
    }

    const CHARS: &[u8] = b"abcdefghijklmnopqrstuvwxyz_ABC0123456789";

    fn arb_string() -> impl Strategy<Value = String> {
        proptest::collection::vec(0usize..CHARS.len(), 0..40)
            .prop_map(|ix| ix.into_iter().map(|i| CHARS[i] as char).collect())
    }

    /// Value trees up to `depth` container levels deep. Floats stay small
    /// and fractional so the JSON oracle round-trips them as F64 (the JSON
    /// text form of a huge integral float is indistinguishable from an
    /// integer, which is a JSON limitation, not a codec one).
    fn arb_value(depth: u32) -> Box<dyn Strategy<Value = Value>> {
        let leaf = prop_oneof![
            Just(Value::Null),
            (0u8..2).prop_map(|b| Value::Bool(b == 1)),
            (0u64..=u64::MAX).prop_map(Value::U64),
            (i64::MIN..0i64).prop_map(Value::I64),
            (-(1i64 << 40)..(1i64 << 40)).prop_map(|x| Value::F64(x as f64 / 256.0)),
            arb_string().prop_map(Value::Str),
        ];
        if depth == 0 {
            return Box::new(leaf);
        }
        Box::new(prop_oneof![
            leaf,
            proptest::collection::vec(arb_value(depth - 1), 0..6).prop_map(Value::Array),
            proptest::collection::vec((arb_string(), arb_value(depth - 1)), 0..6)
                .prop_map(Value::Object),
        ])
    }

    proptest! {
        #[test]
        fn prop_roundtrip(v in arb_value(3)) {
            prop_assert_eq!(roundtrip(&v), v);
        }

        #[test]
        fn prop_matches_json_path(v in arb_value(3)) {
            // Binary decode must reconstruct exactly the tree the JSON
            // oracle sees: same Value in, same Value out of either codec.
            let json = serde_json::to_vec(&v).unwrap();
            let via_json: Value = serde_json::from_slice(&json).unwrap();
            prop_assert_eq!(roundtrip(&v), via_json);
        }

        #[test]
        fn prop_decode_never_panics(bytes in proptest::collection::vec(0u8..=255, 0..256)) {
            let _ = decode_value(&bytes);
        }
    }
}
