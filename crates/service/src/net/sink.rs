//! Client-side batching sink: buffers submits per tick epoch, frames them,
//! pipelines epochs without waiting for acks, and survives connection loss
//! by replaying unacknowledged frames.
//!
//! The sink mirrors the in-process [`crate::IngestMode::Batched`] path on
//! the wire: everything submitted between two `tick()` calls rides one
//! `SubmitBatch` frame, sent back-to-back with the `Tick` frame in a
//! single socket write — so one client epoch is one socket batch is one
//! WAL group commit on the server.
//!
//! ## Pipelining and the ack window
//!
//! `tick()` does not wait for the server. It records the epoch as
//! *in flight* (keeping the encoded frames for possible replay) and only
//! drains acks once more than `max_inflight` epochs are outstanding.
//! Because the server answers every request in order, draining is just
//! reading responses in the order the epochs were sent.
//!
//! ## Reconnects
//!
//! Any socket error flips the sink into recovery: it redials with the
//! seeded-jittered [`RetryPolicy`] backoff schedule (the exact policy the
//! supervisor uses for shard commands — no ad-hoc sleeps), re-greets, and
//! resends every in-flight epoch's frames. The server deduplicates
//! re-submitted batches and replays recorded ticks, so the WAL sees each
//! epoch exactly once no matter where the connection died.

use super::wire::{MsgStream, Request, Response, PROTO_VERSION};
use crate::error::{ServiceError, ServiceResult};
use crate::storage::frame::Codec;
use crate::shard::{ShardSnapshot, TenantId};
use crate::supervisor::RetryPolicy;
use crate::stats::{LatencyHistogramNs, ServiceStats};
use crate::tenant::TenantSpec;
use rrs_core::{ColorId, RunResult};
use std::collections::{BTreeMap, VecDeque};
use std::net::TcpStream;
use std::time::Instant;

/// Tuning for a [`NetSink`].
#[derive(Debug, Clone)]
pub struct SinkConfig {
    /// Reconnect/retry policy (attempts, per-op timeout, backoff base).
    /// Also sets the socket read/write timeouts.
    pub retry: RetryPolicy,
    /// Seed for the jittered backoff schedule: same seed, same schedule.
    pub seed: u64,
    /// PackBits-compress outgoing frames (when it shrinks them).
    pub compress: bool,
    /// Body codec for outgoing messages (`Binary` default; `Json` is the
    /// conformance oracle). The server answers in whatever codec each
    /// request used, so mixed-codec clients coexist on one listener.
    pub codec: Codec,
    /// Barrier width stamped on every `Tick` (concurrent driving clients).
    pub parties: u32,
    /// Epochs allowed in flight before `tick()` drains an ack.
    pub max_inflight: usize,
}

impl Default for SinkConfig {
    fn default() -> Self {
        SinkConfig {
            retry: RetryPolicy::default(),
            seed: 0,
            compress: false,
            codec: Codec::default(),
            parties: 1,
            max_inflight: 8,
        }
    }
}

/// Wire-level counters for one sink.
#[derive(Debug, Clone, Copy, Default)]
pub struct NetCounters {
    /// Bytes written to the socket.
    pub bytes_sent: u64,
    /// Bytes read from the socket.
    pub bytes_received: u64,
    /// Frames written (submit batches, ticks, and control requests).
    pub frames_sent: u64,
    /// Successful reconnects after a connection loss.
    pub reconnects: u64,
    /// Jobs carried by submitted batches.
    pub jobs_submitted: u64,
    /// Epochs acknowledged durable + applied.
    pub epochs_acked: u64,
    /// Uncompressed serialized body bytes sent (framing and PackBits
    /// excluded) — what the codec choice actually puts on the wire.
    pub body_bytes_sent: u64,
    /// Uncompressed body bytes received.
    pub body_bytes_received: u64,
}

/// One unacknowledged epoch: its encoded frames (for replay) and what
/// responses it still owes us.
#[derive(Debug)]
struct InFlight {
    epoch: u64,
    /// The epoch carried a `SubmitBatch`, so a `Queued` precedes its ack.
    expects_queued: bool,
    /// The `Queued` has been consumed (reset on reconnect: the replayed
    /// frames produce a fresh one).
    queued_received: bool,
    /// Encoded `SubmitBatch` + `Tick` frames, ready to resend verbatim.
    frames: Vec<u8>,
    sent_at: Instant,
}

/// The deterministic redial schedule for `policy` under `seed`: one sleep
/// per retry attempt after the first failure. Exposed so tests (and
/// operators) can see exactly how a client will back off.
pub fn reconnect_schedule(policy: &RetryPolicy, seed: u64) -> Vec<std::time::Duration> {
    (1..policy.attempts).map(|attempt| policy.backoff_for(attempt, seed)).collect()
}

/// A connected client for one `rrs serve` endpoint.
pub struct NetSink {
    addr: String,
    config: SinkConfig,
    client_id: u64,
    msgs: MsgStream,
    /// Shard count learned from the server's `Hello`.
    shards: usize,
    /// Submits buffered for the next `tick()`.
    pending: Vec<(TenantId, Vec<(ColorId, u64)>)>,
    pending_jobs: u64,
    /// Epochs sent but not yet fully acknowledged, oldest first.
    inflight: VecDeque<InFlight>,
    /// Next epoch `tick()` will stamp (first epoch is 1).
    next_epoch: u64,
    /// Per-shard seqs from the most recent `TickAck`.
    last_seqs: Vec<u64>,
    /// Ack round-trip latencies (send of the epoch's frames → its ack).
    ack_latency: LatencyHistogramNs,
    counters: NetCounters,
    /// Reusable body-encode scratch for `tick()`'s frame building.
    scratch_body: Vec<u8>,
    /// Body bytes encoded by `tick()` (its frames bypass `MsgStream::send`,
    /// so the stream's own counter never sees them).
    tick_body_bytes: u64,
}

impl NetSink {
    /// Dials `addr`, greets the server, and returns a ready sink.
    /// `client_id` must be unique among concurrently driving clients: the
    /// server uses it to deduplicate resent batches.
    pub fn connect(addr: &str, client_id: u64, config: SinkConfig) -> ServiceResult<NetSink> {
        let msgs = dial(addr, client_id, &config)?;
        let mut sink = NetSink {
            addr: addr.to_string(),
            config,
            client_id,
            msgs,
            shards: 0,
            pending: Vec::new(),
            pending_jobs: 0,
            inflight: VecDeque::new(),
            next_epoch: 1,
            last_seqs: Vec::new(),
            ack_latency: LatencyHistogramNs::new(),
            counters: NetCounters::default(),
            scratch_body: Vec::new(),
            tick_body_bytes: 0,
        };
        let resp: Response = sink.msgs.recv()?;
        match resp {
            Response::Hello { proto: _, shards } => sink.shards = shards,
            other => return Err(unexpected("hello", &other)),
        }
        sink.sync_byte_counters();
        Ok(sink)
    }

    /// Shard count reported by the server.
    pub fn shards(&self) -> usize {
        self.shards
    }

    /// Wire counters so far.
    pub fn counters(&self) -> NetCounters {
        self.counters
    }

    /// Ack round-trip latency histogram (one sample per acked epoch).
    pub fn ack_latency(&self) -> &LatencyHistogramNs {
        &self.ack_latency
    }

    /// Per-shard durable seqs from the most recent tick ack (`seq = WAL
    /// offset + 1`): everything this client submitted up to that tick is
    /// on disk and applied.
    pub fn last_seqs(&self) -> &[u64] {
        &self.last_seqs
    }

    /// Registers a tenant (synchronous round-trip; do this before driving).
    pub fn add_tenant(&mut self, id: TenantId, spec: TenantSpec) -> ServiceResult<()> {
        match self.round_trip(&Request::AddTenant { id, spec })? {
            Response::Ok => Ok(()),
            Response::Err { message } => Err(ServiceError::Net(message)),
            other => Err(unexpected("add_tenant", &other)),
        }
    }

    /// Buffers arrivals for `tenant` into the current epoch's batch.
    /// Nothing touches the socket until [`NetSink::tick`].
    pub fn submit(&mut self, tenant: TenantId, arrivals: Vec<(ColorId, u64)>) {
        self.pending_jobs += arrivals.iter().map(|(_, n)| *n).sum::<u64>();
        self.pending.push((tenant, arrivals));
    }

    /// Ships the buffered batch and a tick request for the next epoch in
    /// one socket write, then returns without waiting for the ack unless
    /// the pipeline is full.
    pub fn tick(&mut self) -> ServiceResult<()> {
        let epoch = self.next_epoch;
        let entries = std::mem::take(&mut self.pending);
        let jobs = std::mem::take(&mut self.pending_jobs);
        let expects_queued = !entries.is_empty();
        let mut frames = Vec::new();
        let mut scratch = std::mem::take(&mut self.scratch_body);
        if expects_queued {
            self.tick_body_bytes += super::wire::encode_message_into(
                &Request::SubmitBatch { epoch, entries },
                self.config.codec,
                self.config.compress,
                &mut scratch,
                &mut frames,
            )? as u64;
            self.counters.frames_sent += 1;
        }
        self.tick_body_bytes += super::wire::encode_message_into(
            &Request::Tick { epoch, parties: self.config.parties },
            self.config.codec,
            self.config.compress,
            &mut scratch,
            &mut frames,
        )? as u64;
        self.scratch_body = scratch;
        self.counters.frames_sent += 1;
        self.counters.jobs_submitted += jobs;
        let inflight = InFlight {
            epoch,
            expects_queued,
            queued_received: false,
            frames,
            sent_at: Instant::now(),
        };
        if let Err(e) = self.msgs.send_bytes(&inflight.frames) {
            self.inflight.push_back(inflight);
            self.next_epoch += 1;
            self.recover(e)?;
        } else {
            self.inflight.push_back(inflight);
            self.next_epoch += 1;
        }
        self.sync_byte_counters();
        while self.inflight.len() > self.config.max_inflight {
            self.await_one_ack()?;
        }
        Ok(())
    }

    /// Blocks until every in-flight epoch is acknowledged.
    pub fn flush(&mut self) -> ServiceResult<()> {
        while !self.inflight.is_empty() {
            self.await_one_ack()?;
        }
        Ok(())
    }

    /// Fetches a stats report (flushes the pipeline first so the report
    /// reflects every acked epoch).
    pub fn stats(&mut self) -> ServiceResult<ServiceStats> {
        match self.round_trip(&Request::Stats)? {
            Response::Stats { stats } => Ok(*stats),
            Response::Err { message } => Err(ServiceError::Net(message)),
            other => Err(unexpected("stats", &other)),
        }
    }

    /// Fetches one shard's snapshot (flushes first).
    pub fn snapshot_shard(&mut self, shard: usize) -> ServiceResult<ShardSnapshot> {
        match self.round_trip(&Request::Snapshot { shard })? {
            Response::Snapshot { snapshot } => Ok(*snapshot),
            Response::Err { message } => Err(ServiceError::Net(message)),
            other => Err(unexpected("snapshot", &other)),
        }
    }

    /// Finishes the run: flushes, asks the server to wind down the
    /// supervisor, and returns the final per-tenant results.
    pub fn finish(mut self) -> ServiceResult<BTreeMap<TenantId, RunResult>> {
        match self.round_trip(&Request::Finish)? {
            Response::Results { results } => Ok(results.into_iter().collect()),
            Response::Err { message } => Err(ServiceError::Net(message)),
            other => Err(unexpected("finish", &other)),
        }
    }

    /// Severs the TCP connection out from under the sink, as a network
    /// fault would. The next operation takes the reconnect path. Test
    /// hook for the conformance suite.
    #[doc(hidden)]
    pub fn sever_connection(&mut self) {
        let _ = self.msgs.stream().shutdown(std::net::Shutdown::Both);
    }

    /// Sends a synchronous request after draining the pipeline, retrying
    /// through reconnects.
    fn round_trip(&mut self, req: &Request) -> ServiceResult<Response> {
        self.flush()?;
        let mut last_err: Option<ServiceError> = None;
        for _ in 0..self.config.retry.attempts.max(1) {
            let attempt = (|| -> ServiceResult<Response> {
                self.msgs.send(req, self.config.compress)?;
                self.counters.frames_sent += 1;
                self.msgs.recv()
            })();
            self.sync_byte_counters();
            match attempt {
                Ok(resp) => {
                    // A reconnect can resend AddTenant after the original
                    // landed; the duplicate error is then a success.
                    if self.counters.reconnects > 0 {
                        if let (Request::AddTenant { id, .. }, Response::Err { message }) =
                            (req, &resp)
                        {
                            if message.contains(&format!("tenant {id} already registered")) {
                                return Ok(Response::Ok);
                            }
                        }
                    }
                    return Ok(resp);
                }
                Err(e) => {
                    self.recover(e.clone()).map_err(|e| last_err.clone().unwrap_or(e))?;
                    last_err = Some(e);
                }
            }
        }
        Err(last_err.unwrap_or_else(|| ServiceError::Net("request retries exhausted".into())))
    }

    /// Consumes the oldest in-flight epoch's responses (its `Queued`, if
    /// any, then its `TickAck`), reconnecting and replaying on error.
    fn await_one_ack(&mut self) -> ServiceResult<()> {
        loop {
            let Some(front) = self.inflight.front() else { return Ok(()) };
            let needs_queued = front.expects_queued && !front.queued_received;
            match self.msgs.recv::<Response>() {
                Ok(resp) => {
                    self.sync_byte_counters();
                    if needs_queued {
                        match resp {
                            Response::Queued { .. } => {
                                if let Some(front) = self.inflight.front_mut() {
                                    front.queued_received = true;
                                }
                                continue;
                            }
                            Response::Err { message } => {
                                return Err(ServiceError::Net(message));
                            }
                            other => return Err(unexpected("queued", &other)),
                        }
                    }
                    match resp {
                        Response::TickAck { epoch, seqs } => {
                            let front = self
                                .inflight
                                .pop_front()
                                .expect("front checked above");
                            if epoch != front.epoch {
                                return Err(ServiceError::Net(format!(
                                    "ack for epoch {epoch}, expected {}",
                                    front.epoch
                                )));
                            }
                            let nanos = front.sent_at.elapsed().as_nanos();
                            self.ack_latency.record(nanos.min(u64::MAX as u128) as u64);
                            self.counters.epochs_acked += 1;
                            self.last_seqs = seqs;
                            return Ok(());
                        }
                        Response::Err { message } => {
                            return Err(ServiceError::Net(message));
                        }
                        other => return Err(unexpected("tick ack", &other)),
                    }
                }
                Err(e) => {
                    self.sync_byte_counters();
                    self.recover(e)?;
                }
            }
        }
    }

    /// Reconnects after `cause` and replays every in-flight epoch. The
    /// server's dedup makes the replay idempotent.
    fn recover(&mut self, cause: ServiceError) -> ServiceResult<()> {
        match dial(&self.addr, self.client_id, &self.config.clone()) {
            Ok(msgs) => {
                self.msgs = msgs;
                let resp: Response = self.msgs.recv().map_err(|_| cause.clone())?;
                match resp {
                    Response::Hello { .. } => {}
                    other => return Err(unexpected("hello", &other)),
                }
                self.counters.reconnects += 1;
                // Replay unacked epochs in order. Their `Queued`s come
                // back fresh, so reset the pairing state.
                let mut frames = Vec::new();
                for inflight in self.inflight.iter_mut() {
                    inflight.queued_received = false;
                    frames.extend_from_slice(&inflight.frames);
                }
                if !frames.is_empty() {
                    self.msgs.send_bytes(&frames)?;
                }
                self.sync_byte_counters();
                Ok(())
            }
            Err(_) => Err(cause),
        }
    }

    fn sync_byte_counters(&mut self) {
        self.counters.bytes_sent = self.msgs.bytes_sent;
        self.counters.bytes_received = self.msgs.bytes_received;
        self.counters.body_bytes_sent = self.msgs.body_bytes_sent + self.tick_body_bytes;
        self.counters.body_bytes_received = self.msgs.body_bytes_received;
    }
}

/// Dials with the policy's seeded backoff schedule, sends `Hello`, and
/// returns the stream (the `Hello` response is left for the caller).
fn dial(addr: &str, client_id: u64, config: &SinkConfig) -> ServiceResult<MsgStream> {
    let schedule = reconnect_schedule(&config.retry, config.seed);
    let mut delays = schedule.iter();
    loop {
        match TcpStream::connect(addr) {
            Ok(stream) => {
                stream
                    .set_read_timeout(Some(config.retry.op_timeout.max(std::time::Duration::from_millis(1))))
                    .map_err(|e| ServiceError::Net(format!("set_read_timeout: {e}")))?;
                stream
                    .set_write_timeout(Some(config.retry.op_timeout.max(std::time::Duration::from_millis(1))))
                    .map_err(|e| ServiceError::Net(format!("set_write_timeout: {e}")))?;
                let mut msgs = MsgStream::new(stream)?;
                msgs.set_codec(config.codec);
                msgs.send(
                    &Request::Hello { proto: PROTO_VERSION, client: client_id },
                    false,
                )?;
                return Ok(msgs);
            }
            Err(e) => match delays.next() {
                Some(delay) => std::thread::sleep(*delay),
                None => return Err(ServiceError::Net(format!("connect {addr}: {e}"))),
            },
        }
    }
}

fn unexpected(wanted: &str, got: &Response) -> ServiceError {
    ServiceError::Net(format!("expected {wanted} response, got {got:?}"))
}
