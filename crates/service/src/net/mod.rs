//! Network front-end: the service on the wire.
//!
//! Three layers, one invariant:
//!
//! * [`wire`] — a length-prefixed, CRC-framed binary codec (the WAL's own
//!   frame format pointed at a socket) carrying `Request`/`Response`
//!   messages, with optional per-message PackBits compression.
//! * [`server`] — [`NetServer`], a thread-per-connection TCP front-end
//!   that owns a [`crate::Supervisor`] and exposes submit-batch / tick /
//!   stats / snapshot / finish, with a multi-client tick barrier and a
//!   bounded ack-replay window for reconnecting clients.
//! * [`sink`] — [`NetSink`], the client: buffers submits per tick epoch,
//!   pipelines epochs without waiting, and reconnects through the same
//!   seeded [`crate::RetryPolicy`] backoff the shard layer uses.
//!
//! The invariant: a run driven through `NetSink` → `NetServer` produces
//! results, stats, and snapshots bit-identical to the same workload run
//! in-process under [`crate::IngestMode::Batched`] — the network layer
//! adds transport, not semantics. The wire-level ack for an epoch is the
//! storage tier's own durability receipt (`seq = WAL offset + 1` per
//! shard), so a client that has seen `TickAck { epoch }` knows its batch
//! is journaled, group-committed, fsynced, and applied.

pub mod server;
pub mod sink;
pub mod wire;

pub use server::NetServer;
pub use sink::{reconnect_schedule, NetCounters, NetSink, SinkConfig};
pub use wire::{Request, Response, FLAG_PACKBITS, MAX_FRAME_BYTES, PROTO_VERSION};
