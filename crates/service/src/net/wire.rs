//! Wire codec for the network front-end: length-prefixed, CRC-framed
//! messages over TCP.
//!
//! Every message on the socket is one [`crate::storage::frame`] frame —
//! `[len: u32 LE][crc: u32 LE][payload]` — exactly the encoding the WAL
//! uses on disk, so the same torn-vs-corrupt discipline applies on the
//! wire: a short read is *torn* (keep reading), a checksum mismatch is
//! *corrupt* (drop the connection). The frame payload is one flags byte
//! followed by the message body:
//!
//! ```text
//! +--------+------------------------------------------+
//! | flags  | body: Request/Response document          |
//! | u8     | (PackBits-compressed when flag bit 0 set,|
//! |        |  rrs-codec binary when flag bit 1 set,   |
//! |        |  serde_json otherwise)                   |
//! +--------+------------------------------------------+
//! ```
//!
//! Both the codec and the compression are per-message and self-describing:
//! [`FLAG_BINARY`] declares the body format (so a JSON client and a binary
//! client can share a server — it answers each request in the codec the
//! request arrived in), and the encoder only sets [`FLAG_PACKBITS`] when
//! the compressed body is actually smaller, so incompressible messages
//! never pay an expansion penalty and the decoder needs no negotiation.
//!
//! Requests and responses pair one-to-one in order on each connection,
//! which is what lets the client pipeline submit-batches and ticks without
//! waiting: it counts outstanding responses instead of matching ids.

use crate::error::{ServiceError, ServiceResult};
use crate::shard::{ShardSnapshot, TenantId};
use crate::stats::ServiceStats;
use crate::storage::frame::{self, Codec, FrameError};
use crate::tenant::TenantSpec;
use rrs_core::{ColorId, RunResult};
use serde::{Deserialize, Serialize};
use std::io::{Read, Write};
use std::net::TcpStream;

/// Wire protocol version, exchanged in `Hello`. Version 2 added
/// [`FLAG_BINARY`]; servers accept [`MIN_PROTO_VERSION`] and up, so a
/// JSON-only version-1 client still connects.
pub const PROTO_VERSION: u32 = 2;

/// Oldest protocol version servers still accept.
pub const MIN_PROTO_VERSION: u32 = 1;

/// Flags-byte bit: the body is PackBits-compressed.
pub const FLAG_PACKBITS: u8 = 0b0000_0001;

/// Flags-byte bit: the body is an `rrs-codec` binary document (clear ⇒
/// serde_json). Decompression happens first when both bits are set.
pub const FLAG_BINARY: u8 = 0b0000_0010;

/// Upper bound on a single frame (and on a decompressed body): a corrupted
/// length header must not convince a reader to buffer gigabytes.
pub const MAX_FRAME_BYTES: usize = 64 << 20;

/// Client → server messages.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Request {
    /// Connection handshake. `client` identifies the logical client across
    /// reconnects (the server dedups re-sent submit batches by it).
    Hello {
        /// Must equal [`PROTO_VERSION`].
        proto: u32,
        /// Stable logical client id (survives reconnects).
        client: u64,
    },
    /// Registers a tenant before the run starts.
    AddTenant {
        /// Tenant id.
        id: TenantId,
        /// Tenant spec (policy, colors, resources, Δ).
        spec: TenantSpec,
    },
    /// This client's buffered submits for tick epoch `epoch` (the next
    /// uncompleted epoch). One socket batch becomes one supervisor-side
    /// group commit when the epoch ticks.
    SubmitBatch {
        /// Tick epoch the entries belong to (first epoch is 1).
        epoch: u64,
        /// `(tenant, arrivals)` in submission order.
        entries: Vec<(TenantId, Vec<(ColorId, u64)>)>,
    },
    /// Requests tick epoch `epoch`. The server fires the tick once
    /// `parties` distinct `Tick` requests for the epoch have arrived (the
    /// multi-client barrier; single-client traffic uses `parties = 1`).
    Tick {
        /// Epoch being requested (strictly `completed + 1`).
        epoch: u64,
        /// Barrier width: concurrent driving clients.
        parties: u32,
    },
    /// Requests a [`ServiceStats`] report.
    Stats,
    /// Requests one shard's snapshot.
    Snapshot {
        /// Shard index.
        shard: usize,
    },
    /// Finishes the run and returns every tenant's final result. Idempotent:
    /// repeats return the cached results.
    Finish,
}

/// Server → client messages. Exactly one per request, in request order.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Response {
    /// Handshake acknowledgement.
    Hello {
        /// Server protocol version.
        proto: u32,
        /// Shard count (the length of every `TickAck::seqs`).
        shards: usize,
    },
    /// Generic success (tenant registration).
    Ok,
    /// A submit batch was buffered (or deduplicated) for `epoch`.
    Queued {
        /// The batch's tick epoch.
        epoch: u64,
        /// Jobs carried by the batch.
        jobs: u64,
    },
    /// Tick epoch `epoch` is complete: journaled, group-committed (fsync
    /// barrier passed) and applied by every shard.
    TickAck {
        /// The completed epoch.
        epoch: u64,
        /// Per-shard epoch sequences (`seq = WAL offset + 1` of the last
        /// journaled record): the durable frontier this ack vouches for.
        seqs: Vec<u64>,
    },
    /// A stats report.
    Stats {
        /// The report.
        stats: Box<ServiceStats>,
    },
    /// A shard snapshot.
    Snapshot {
        /// The snapshot.
        snapshot: Box<ShardSnapshot>,
    },
    /// Final per-tenant results, ascending tenant order.
    Results {
        /// `(tenant, result)` pairs.
        results: Vec<(TenantId, RunResult)>,
    },
    /// The request failed.
    Err {
        /// Human-readable cause (rendered from [`ServiceError`]).
        message: String,
    },
}

/// Serializes one message in `codec` format and appends the complete frame
/// to `out`. `body` is caller-owned scratch (cleared here, allocation
/// reused across calls — the per-frame `to_vec` this replaces was the
/// encode path's hottest allocation). With `compress`, the body is
/// PackBits-compressed when that actually shrinks it. Returns the
/// *uncompressed* body length — the bytes-on-wire-before-compression figure
/// [`MsgStream`] reports.
pub fn encode_message_into<T: Serialize>(
    value: &T,
    codec: Codec,
    compress: bool,
    body: &mut Vec<u8>,
    out: &mut Vec<u8>,
) -> ServiceResult<usize> {
    body.clear();
    let mut flags = 0u8;
    match codec {
        Codec::Binary => {
            flags |= FLAG_BINARY;
            rrs_codec::encode_into(value, body);
        }
        Codec::Json => {
            serde_json::to_vec_into(value, body)
                .map_err(|e| ServiceError::Net(format!("encode message: {e}")))?;
        }
    }
    let base = out.len();
    out.extend_from_slice(&[0u8; frame::FRAME_HEADER]);
    let packed = if compress { Some(packbits_compress(body)) } else { None };
    match packed {
        Some(packed) if packed.len() < body.len() => {
            out.push(flags | FLAG_PACKBITS);
            out.extend_from_slice(&packed);
        }
        _ => {
            out.push(flags);
            out.extend_from_slice(body);
        }
    }
    let payload_len = out.len() - base - frame::FRAME_HEADER;
    let crc = frame::crc32(&out[base + frame::FRAME_HEADER..]);
    out[base..base + 4].copy_from_slice(&(payload_len as u32).to_le_bytes());
    out[base + 4..base + 8].copy_from_slice(&crc.to_le_bytes());
    Ok(body.len())
}

/// Encodes one message into a ready-to-send frame in `codec` format.
/// Convenience over [`encode_message_into`] for cold paths.
pub fn encode_message_with<T: Serialize>(
    value: &T,
    codec: Codec,
    compress: bool,
) -> ServiceResult<Vec<u8>> {
    let mut out = Vec::new();
    let mut body = Vec::new();
    encode_message_into(value, codec, compress, &mut body, &mut out)?;
    Ok(out)
}

/// Encodes one message as a JSON frame (the version-1 format; binary
/// callers use [`encode_message_with`] / [`encode_message_into`]).
pub fn encode_message<T: Serialize>(value: &T, compress: bool) -> ServiceResult<Vec<u8>> {
    encode_message_with(value, Codec::Json, compress)
}

/// One decoded wire message plus what the frame said about itself.
#[derive(Debug)]
pub struct Decoded<T> {
    /// The message.
    pub value: T,
    /// Total frame bytes consumed from the buffer.
    pub consumed: usize,
    /// Body format the sender used (a server answers in this codec).
    pub codec: Codec,
    /// Uncompressed body length in bytes.
    pub body_len: usize,
}

/// Decodes the message framed at `buf[0]` with its frame metadata. Unknown
/// flag bits, a failed decompression, or a body that does not deserialize
/// all read as [`FrameError::Corrupt`]; a buffer that ends mid-frame is
/// [`FrameError::Torn`] (read more and retry).
pub fn decode_message_full<T: Deserialize>(buf: &[u8]) -> Result<Decoded<T>, FrameError> {
    let (payload, consumed) = frame::decode_frame(buf)?;
    let (&flags, body) = payload.split_first().ok_or(FrameError::Corrupt)?;
    if flags & !(FLAG_PACKBITS | FLAG_BINARY) != 0 {
        return Err(FrameError::Corrupt);
    }
    let codec = if flags & FLAG_BINARY != 0 { Codec::Binary } else { Codec::Json };
    let unpacked;
    let body = if flags & FLAG_PACKBITS != 0 {
        unpacked = packbits_decompress(body)?;
        unpacked.as_slice()
    } else {
        body
    };
    let value = match codec {
        Codec::Binary => rrs_codec::from_slice(body).map_err(|_| FrameError::Corrupt)?,
        Codec::Json => serde_json::from_slice(body).map_err(|_| FrameError::Corrupt)?,
    };
    Ok(Decoded { value, consumed, codec, body_len: body.len() })
}

/// Decodes the message framed at `buf[0]`, returning it and the bytes
/// consumed. See [`decode_message_full`] for the error contract.
pub fn decode_message<T: Deserialize>(buf: &[u8]) -> Result<(T, usize), FrameError> {
    decode_message_full(buf).map(|d| (d.value, d.consumed))
}

/// PackBits run-length compression (the TIFF/Apple scheme): control byte
/// `n ≤ 127` copies `n + 1` literals, `n ≥ 129` repeats the next byte
/// `257 - n` times, `128` is a no-op. Worst-case expansion is 1/128; runs
/// of three or more bytes shrink.
pub fn packbits_compress(input: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(input.len() + input.len() / 128 + 1);
    let mut i = 0;
    while i < input.len() {
        let b = input[i];
        let mut run = 1;
        while i + run < input.len() && input[i + run] == b && run < 128 {
            run += 1;
        }
        if run >= 3 {
            out.push((257 - run) as u8);
            out.push(b);
            i += run;
            continue;
        }
        // Literal stretch: up to 128 bytes, stopping where a ≥3 run starts.
        let start = i;
        let mut j = i;
        while j < input.len() && j - start < 128 {
            let b = input[j];
            let mut r = 1;
            while j + r < input.len() && input[j + r] == b && r < 3 {
                r += 1;
            }
            if r >= 3 {
                break;
            }
            j += 1;
        }
        out.push((j - start - 1) as u8);
        out.extend_from_slice(&input[start..j]);
        i = j;
    }
    out
}

/// Inverse of [`packbits_compress`]. A control byte promising bytes the
/// input does not hold, or an output exceeding [`MAX_FRAME_BYTES`], is
/// [`FrameError::Corrupt`].
pub fn packbits_decompress(input: &[u8]) -> Result<Vec<u8>, FrameError> {
    let mut out = Vec::with_capacity(input.len().saturating_mul(2));
    let mut i = 0;
    while i < input.len() {
        let c = input[i];
        i += 1;
        if c == 128 {
            continue;
        }
        if c < 128 {
            let n = c as usize + 1;
            if i + n > input.len() {
                return Err(FrameError::Corrupt);
            }
            out.extend_from_slice(&input[i..i + n]);
            i += n;
        } else {
            let n = 257 - c as usize;
            let Some(&b) = input.get(i) else {
                return Err(FrameError::Corrupt);
            };
            i += 1;
            out.resize(out.len() + n, b);
        }
        if out.len() > MAX_FRAME_BYTES {
            return Err(FrameError::Corrupt);
        }
    }
    Ok(out)
}

/// A framed-message view over one `TcpStream`: buffers partial reads until
/// a whole frame is available, counts bytes both ways, and turns socket
/// errors into [`ServiceError::Net`].
#[derive(Debug)]
pub struct MsgStream {
    stream: TcpStream,
    buf: Vec<u8>,
    pos: usize,
    /// Codec for outgoing messages.
    codec: Codec,
    /// Codec of the most recently received message.
    last_recv_codec: Codec,
    /// Reusable body-encode scratch (see [`encode_message_into`]).
    scratch_body: Vec<u8>,
    /// Reusable frame-build scratch for [`MsgStream::send`].
    scratch_frame: Vec<u8>,
    /// Bytes written to the socket.
    pub bytes_sent: u64,
    /// Bytes read from the socket.
    pub bytes_received: u64,
    /// Uncompressed body bytes serialized into sent messages (framing and
    /// compression excluded) — the pre-compression bytes-on-wire figure.
    pub body_bytes_sent: u64,
    /// Uncompressed body bytes carried by received messages.
    pub body_bytes_received: u64,
}

impl MsgStream {
    /// Wraps a connected stream. `TCP_NODELAY` is set: messages are whole
    /// frames and the protocol pipelines, so Nagle only adds latency.
    pub fn new(stream: TcpStream) -> ServiceResult<Self> {
        stream
            .set_nodelay(true)
            .map_err(|e| ServiceError::Net(format!("set_nodelay: {e}")))?;
        Ok(MsgStream {
            stream,
            buf: Vec::new(),
            pos: 0,
            codec: Codec::default(),
            last_recv_codec: Codec::default(),
            scratch_body: Vec::new(),
            scratch_frame: Vec::new(),
            bytes_sent: 0,
            bytes_received: 0,
            body_bytes_sent: 0,
            body_bytes_received: 0,
        })
    }

    /// The underlying stream (for timeouts and shutdown).
    pub fn stream(&self) -> &TcpStream {
        &self.stream
    }

    /// Sets the codec for outgoing messages.
    pub fn set_codec(&mut self, codec: Codec) {
        self.codec = codec;
    }

    /// The codec used for outgoing messages.
    pub fn codec(&self) -> Codec {
        self.codec
    }

    /// The codec of the most recently received message. Servers answer in
    /// this format so each client converses in the codec it chose.
    pub fn last_recv_codec(&self) -> Codec {
        self.last_recv_codec
    }

    /// Writes pre-encoded frame bytes (possibly several concatenated
    /// frames: one write per epoch, not per message).
    pub fn send_bytes(&mut self, frames: &[u8]) -> ServiceResult<()> {
        self.stream
            .write_all(frames)
            .map_err(|e| ServiceError::Net(format!("send: {e}")))?;
        self.bytes_sent += frames.len() as u64;
        Ok(())
    }

    /// Encodes and writes one message in the stream's codec, reusing the
    /// stream-owned scratch buffers (no per-message allocation at steady
    /// state).
    pub fn send<T: Serialize>(&mut self, value: &T, compress: bool) -> ServiceResult<()> {
        let mut frame = std::mem::take(&mut self.scratch_frame);
        let mut body = std::mem::take(&mut self.scratch_body);
        frame.clear();
        let encoded = encode_message_into(value, self.codec, compress, &mut body, &mut frame);
        self.scratch_body = body;
        let res = match encoded {
            Ok(body_len) => {
                self.body_bytes_sent += body_len as u64;
                self.send_bytes(&frame)
            }
            Err(e) => Err(e),
        };
        self.scratch_frame = frame;
        res
    }

    /// Reads the next whole message, blocking (subject to the stream's read
    /// timeout). A clean peer close mid-frame or between frames is an
    /// error: this protocol has no unsolicited hangups.
    pub fn recv<T: Deserialize>(&mut self) -> ServiceResult<T> {
        loop {
            match decode_message_full::<T>(&self.buf[self.pos..]) {
                Ok(decoded) => {
                    self.pos += decoded.consumed;
                    self.last_recv_codec = decoded.codec;
                    self.body_bytes_received += decoded.body_len as u64;
                    if self.pos == self.buf.len() {
                        self.buf.clear();
                        self.pos = 0;
                    } else if self.pos > 64 * 1024 {
                        self.buf.drain(..self.pos);
                        self.pos = 0;
                    }
                    return Ok(decoded.value);
                }
                Err(FrameError::Corrupt) => {
                    return Err(ServiceError::Net("corrupt frame on socket".into()));
                }
                Err(FrameError::Torn) => {}
            }
            // Reject absurd frame lengths before buffering toward them.
            let avail = &self.buf[self.pos..];
            if avail.len() >= 4 {
                let len = u32::from_le_bytes([avail[0], avail[1], avail[2], avail[3]]) as usize;
                if len > MAX_FRAME_BYTES {
                    return Err(ServiceError::Net(format!("frame length {len} exceeds cap")));
                }
            }
            let mut chunk = [0u8; 16 * 1024];
            let n = self
                .stream
                .read(&mut chunk)
                .map_err(|e| ServiceError::Net(format!("recv: {e}")))?;
            if n == 0 {
                return Err(ServiceError::Net("connection closed".into()));
            }
            self.bytes_received += n as u64;
            self.buf.extend_from_slice(&chunk[..n]);
        }
    }
}
