//! TCP front-end for the [`Supervisor`]: thread-per-connection request
//! handling over the shared tick barrier.
//!
//! The server owns the supervisor; every connection funnels into one
//! `Mutex<Core>`, so the supervisor keeps its single-threaded semantics
//! and the network run stays bit-identical to an in-process batched run.
//! That lock is not the bottleneck it looks like: submits only buffer
//! entries, and the heavy work under `tick()` is the same group-commit
//! the in-process path does.
//!
//! ## The tick barrier
//!
//! `Tick { epoch, parties }` is a barrier of width `parties`: the request
//! blocks until `parties` distinct ticks for that epoch have arrived, the
//! last arrival fires `Supervisor::tick()`, and every waiter receives the
//! same `TickAck { epoch, seqs }` where `seqs = wal_ends()` — the
//! per-shard `WAL offset + 1` frontier that PR-5's group commit and PR-8's
//! fsync ack barrier have already made durable *and* applied by the time
//! `tick()` returns. The ack a client gets over the socket is therefore
//! exactly the durability receipt the storage tier produces; nothing is
//! invented at the network layer.
//!
//! ## Exactly-once over reconnects
//!
//! Completed epochs keep their acks in a bounded window so a client that
//! lost the connection mid-epoch can resend: a duplicate `Tick` for a
//! completed epoch replays the recorded ack instead of re-ticking, and a
//! duplicate `SubmitBatch` (tracked per client id from `Hello`) is
//! acknowledged without re-applying. Submit-then-crash-then-resend thus
//! lands exactly once in the WAL.

use super::wire::{MsgStream, Request, Response, PROTO_VERSION};
use crate::error::{ServiceError, ServiceResult};
use crate::shard::TenantId;
use crate::supervisor::Supervisor;
use rrs_core::RunResult;
use std::collections::{HashMap, VecDeque};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard};
use std::thread::JoinHandle;
use std::time::Duration;

/// Completed-epoch acks retained for duplicate-tick replay. A reconnecting
/// client is at most `max_inflight` epochs behind, so a thousand is deep
/// margin.
const ACK_WINDOW: usize = 1024;

/// How long a tick waiter will sit in the barrier before giving up. Only
/// reached when a co-driving client dies for good.
const BARRIER_TIMEOUT: Duration = Duration::from_secs(30);

/// Supervisor state shared by every connection.
struct Core {
    /// `Some` until `Finish` consumes it.
    sup: Option<Supervisor>,
    shards: usize,
    /// Last completed tick epoch (0 before the first tick).
    epoch: u64,
    /// `Tick` arrivals for epoch `epoch + 1`.
    arrived: u32,
    /// Barrier width of the epoch being assembled (from its first arrival).
    parties: u32,
    /// Recent completed epochs: `(epoch, tick outcome)`.
    acks: VecDeque<(u64, Result<Vec<u64>, String>)>,
    /// Highest epoch each client has submitted for (dedup on resend).
    submitted: HashMap<u64, u64>,
    /// Set by `Finish`; replayed for idempotent repeats.
    results: Option<Vec<(TenantId, RunResult)>>,
}

impl Core {
    fn recorded_ack(&self, epoch: u64) -> Option<Response> {
        self.acks.iter().find(|(e, _)| *e == epoch).map(|(e, r)| match r {
            Ok(seqs) => Response::TickAck { epoch: *e, seqs: seqs.clone() },
            Err(msg) => Response::Err { message: msg.clone() },
        })
    }

    fn record_ack(&mut self, epoch: u64, outcome: Result<Vec<u64>, String>) {
        self.acks.push_back((epoch, outcome));
        while self.acks.len() > ACK_WINDOW {
            self.acks.pop_front();
        }
    }
}

struct Shared {
    core: Mutex<Core>,
    cv: Condvar,
    done: AtomicBool,
    /// Live connection streams, for shutdown.
    conns: Mutex<Vec<TcpStream>>,
}

impl Shared {
    /// Lock that shrugs off poisoning: a panicked connection thread must
    /// not wedge every other client.
    fn lock(&self) -> MutexGuard<'_, Core> {
        self.core.lock().unwrap_or_else(|p| p.into_inner())
    }
}

/// A running network front-end. Dropping it (or calling
/// [`NetServer::shutdown`]) stops the listener and joins every thread.
pub struct NetServer {
    shared: Arc<Shared>,
    addr: SocketAddr,
    accept: Option<JoinHandle<()>>,
}

impl NetServer {
    /// Binds `addr` (use port 0 for an ephemeral port) and starts serving
    /// `sup`. The supervisor is owned by the server until a client sends
    /// `Finish`.
    pub fn start(sup: Supervisor, addr: &str) -> ServiceResult<NetServer> {
        let listener = TcpListener::bind(addr)
            .map_err(|e| ServiceError::Net(format!("bind {addr}: {e}")))?;
        let local = listener
            .local_addr()
            .map_err(|e| ServiceError::Net(format!("local_addr: {e}")))?;
        let shards = sup.config().shards;
        let shared = Arc::new(Shared {
            core: Mutex::new(Core {
                sup: Some(sup),
                shards,
                epoch: 0,
                arrived: 0,
                parties: 0,
                acks: VecDeque::new(),
                submitted: HashMap::new(),
                results: None,
            }),
            cv: Condvar::new(),
            done: AtomicBool::new(false),
            conns: Mutex::new(Vec::new()),
        });
        let accept_shared = Arc::clone(&shared);
        let accept = std::thread::Builder::new()
            .name("rrs-net-accept".into())
            .spawn(move || accept_loop(listener, accept_shared))
            .map_err(|e| ServiceError::Spawn(format!("accept thread: {e}")))?;
        Ok(NetServer { shared, addr: local, accept: Some(accept) })
    }

    /// The bound address (with the real port when 0 was requested).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Blocks until some client has finished the run, then returns the
    /// final results. Errors if the server shuts down first.
    pub fn wait_finished(&self) -> ServiceResult<Vec<(TenantId, RunResult)>> {
        let mut core = self.shared.lock();
        loop {
            if let Some(results) = &core.results {
                return Ok(results.clone());
            }
            if self.shared.done.load(Ordering::SeqCst) {
                return Err(ServiceError::Net("server shut down before finish".into()));
            }
            let (guard, _) = self
                .shared
                .cv
                .wait_timeout(core, Duration::from_millis(200))
                .unwrap_or_else(|p| p.into_inner());
            core = guard;
        }
    }

    /// Stops accepting, severs every live connection, and joins all
    /// threads. Idempotent.
    pub fn shutdown(&mut self) {
        self.shared.done.store(true, Ordering::SeqCst);
        self.shared.cv.notify_all();
        {
            let conns = self.shared.conns.lock().unwrap_or_else(|p| p.into_inner());
            for stream in conns.iter() {
                let _ = stream.shutdown(std::net::Shutdown::Both);
            }
        }
        // Unblock the accept loop: it only checks `done` between accepts.
        let _ = TcpStream::connect(self.addr);
        if let Some(handle) = self.accept.take() {
            let _ = handle.join();
        }
    }
}

impl Drop for NetServer {
    fn drop(&mut self) {
        self.shutdown();
    }
}

fn accept_loop(listener: TcpListener, shared: Arc<Shared>) {
    let mut conn_handles = Vec::new();
    for stream in listener.incoming() {
        if shared.done.load(Ordering::SeqCst) {
            break;
        }
        let Ok(stream) = stream else { continue };
        if let Ok(peer) = stream.try_clone() {
            shared.conns.lock().unwrap_or_else(|p| p.into_inner()).push(peer);
        }
        let conn_shared = Arc::clone(&shared);
        let spawned = std::thread::Builder::new()
            .name("rrs-net-conn".into())
            .spawn(move || {
                let _ = serve_connection(stream, conn_shared);
            });
        if let Ok(handle) = spawned {
            conn_handles.push(handle);
        }
    }
    for handle in conn_handles {
        let _ = handle.join();
    }
}

/// Runs one connection to completion. Any send/recv error tears the
/// connection down; the client reconnects and replays.
fn serve_connection(stream: TcpStream, shared: Arc<Shared>) -> ServiceResult<()> {
    let mut msgs = MsgStream::new(stream)?;
    let mut client: Option<u64> = None;
    loop {
        if shared.done.load(Ordering::SeqCst) {
            return Ok(());
        }
        let req: Request = msgs.recv()?;
        // Answer in the codec the request arrived in: binary and JSON
        // clients coexist per-frame with no negotiation.
        msgs.set_codec(msgs.last_recv_codec());
        let resp = handle_request(&shared, &mut client, req);
        msgs.send(&resp, false)?;
        if shared.done.load(Ordering::SeqCst) {
            return Ok(());
        }
    }
}

fn err(e: impl std::fmt::Display) -> Response {
    Response::Err { message: e.to_string() }
}

fn handle_request(shared: &Shared, client: &mut Option<u64>, req: Request) -> Response {
    match req {
        Request::Hello { proto, client: id } => {
            if !(super::wire::MIN_PROTO_VERSION..=PROTO_VERSION).contains(&proto) {
                return err(format!(
                    "protocol mismatch: client {proto}, server accepts \
                     {}..={PROTO_VERSION}",
                    super::wire::MIN_PROTO_VERSION
                ));
            }
            *client = Some(id);
            let core = shared.lock();
            Response::Hello { proto: PROTO_VERSION, shards: core.shards }
        }
        Request::AddTenant { id, spec } => {
            let mut core = shared.lock();
            match core.sup.as_mut() {
                Some(sup) => match sup.add_tenant(id, spec) {
                    Ok(()) => Response::Ok,
                    Err(e) => err(e),
                },
                None => err("run already finished"),
            }
        }
        Request::SubmitBatch { epoch, entries } => {
            let Some(client) = *client else {
                return err("submit before hello");
            };
            let mut core = shared.lock();
            if epoch != core.epoch + 1 {
                // Completed epoch: a resend after reconnect. The original
                // copy is already journaled — ack without re-applying.
                if epoch <= core.epoch && core.submitted.get(&client) >= Some(&epoch) {
                    let jobs = entries
                        .iter()
                        .flat_map(|(_, arrivals)| arrivals.iter().map(|(_, n)| n))
                        .sum();
                    return Response::Queued { epoch, jobs };
                }
                return err(format!(
                    "submit for epoch {epoch}, next uncompleted is {}",
                    core.epoch + 1
                ));
            }
            if core.submitted.get(&client) >= Some(&epoch) {
                let jobs = entries
                    .iter()
                    .flat_map(|(_, arrivals)| arrivals.iter().map(|(_, n)| n))
                    .sum();
                return Response::Queued { epoch, jobs };
            }
            let Some(sup) = core.sup.as_mut() else {
                return err("run already finished");
            };
            let mut jobs = 0u64;
            for (tenant, arrivals) in &entries {
                jobs += arrivals.iter().map(|(_, n)| *n).sum::<u64>();
                if let Err(e) = sup.submit(*tenant, arrivals.clone()) {
                    return err(e);
                }
            }
            core.submitted.insert(client, epoch);
            Response::Queued { epoch, jobs }
        }
        Request::Tick { epoch, parties } => tick_barrier(shared, epoch, parties),
        Request::Stats => {
            let mut core = shared.lock();
            match core.sup.as_mut() {
                Some(sup) => match sup.stats() {
                    Ok(stats) => Response::Stats { stats: Box::new(stats) },
                    Err(e) => err(e),
                },
                None => err("run already finished"),
            }
        }
        Request::Snapshot { shard } => {
            let mut core = shared.lock();
            match core.sup.as_mut() {
                Some(sup) => match sup.snapshot_shard(shard) {
                    Ok(snapshot) => Response::Snapshot { snapshot: Box::new(snapshot) },
                    Err(e) => err(e),
                },
                None => err("run already finished"),
            }
        }
        Request::Finish => {
            let mut core = shared.lock();
            if let Some(results) = &core.results {
                return Response::Results { results: results.clone() };
            }
            let Some(sup) = core.sup.take() else {
                return err("run already finished");
            };
            match sup.finish() {
                Ok(map) => {
                    let results: Vec<(TenantId, RunResult)> = map.into_iter().collect();
                    core.results = Some(results.clone());
                    shared.cv.notify_all();
                    Response::Results { results }
                }
                Err(e) => err(e),
            }
        }
    }
}

/// The barrier at the heart of the protocol: block until `parties` ticks
/// for `epoch` have arrived, let the last arrival drive the supervisor,
/// and hand everyone the same durable ack.
fn tick_barrier(shared: &Shared, epoch: u64, parties: u32) -> Response {
    if parties == 0 {
        return err("tick with zero parties");
    }
    let mut core = shared.lock();
    if epoch <= core.epoch {
        // Duplicate from a reconnecting client: replay the recorded ack.
        return match core.recorded_ack(epoch) {
            Some(resp) => resp,
            None => err(format!("epoch {epoch} outside the ack window")),
        };
    }
    if epoch != core.epoch + 1 {
        // In-order request handling makes this unreachable for honest
        // clients: a pipelined Tick N+1 is only *read* after Tick N's
        // response, which required the N barrier to complete.
        return err(format!("tick for epoch {epoch}, expected {}", core.epoch + 1));
    }
    if core.arrived == 0 {
        core.parties = parties;
    } else if core.parties != parties {
        return err(format!(
            "tick barrier width disagreement: {} vs {parties}",
            core.parties
        ));
    }
    core.arrived += 1;
    if core.arrived >= core.parties {
        // Last arrival: fire the tick while holding the lock (submits for
        // the next epoch must not interleave).
        let outcome = match core.sup.as_mut() {
            Some(sup) => match sup.tick() {
                Ok(()) => Ok(sup.wal_ends()),
                Err(e) => Err(e.to_string()),
            },
            None => Err("run already finished".into()),
        };
        core.epoch = epoch;
        core.arrived = 0;
        core.record_ack(epoch, outcome);
        shared.cv.notify_all();
        return core.recorded_ack(epoch).unwrap_or_else(|| err("ack window underflow"));
    }
    // Not last: wait for the epoch to complete.
    loop {
        let (guard, timeout) = shared
            .cv
            .wait_timeout(core, BARRIER_TIMEOUT)
            .unwrap_or_else(|p| p.into_inner());
        core = guard;
        if core.epoch >= epoch {
            return match core.recorded_ack(epoch) {
                Some(resp) => resp,
                None => err(format!("epoch {epoch} fell out of the ack window")),
            };
        }
        if shared.done.load(Ordering::SeqCst) {
            return err("server shutting down");
        }
        if timeout.timed_out() {
            return err(format!("tick barrier timed out waiting for epoch {epoch}"));
        }
    }
}
