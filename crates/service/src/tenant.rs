//! One tenant: a [`StreamingEngine`] plus the bookkeeping that makes it
//! restartable.
//!
//! A tenant buffers submitted arrivals in an inbox until the next tick, and
//! keeps the per-round arrival log of everything already ticked. A
//! [`TenantSnapshot`] is therefore fully serializable — spec, log, inbox and
//! the engine's own [`EngineSnapshot`] — and [`Tenant::restore`] rebuilds a
//! bit-identical tenant by replaying the log through a fresh engine (which
//! also reconstructs the policy's internal state, since every
//! [`crate::PolicySpec`] policy is deterministic). The rebuilt engine state is
//! verified against the stored snapshot, so corruption or nondeterminism is
//! detected at restore time instead of corrupting results silently.

use crate::error::{ServiceError, ServiceResult};
use crate::policy::PolicySpec;
use rrs_core::streaming::{EngineSnapshot, StreamingEngine};
use rrs_core::{ColorId, ColorTable, Cost, CostModel, Round, RunResult, StepOutcome};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Everything needed to create a tenant's engine from scratch.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TenantSpec {
    /// The policy the tenant runs.
    pub policy: PolicySpec,
    /// The tenant's service categories.
    pub colors: ColorTable,
    /// Resources given to the tenant's engine.
    pub n: usize,
    /// Reconfiguration cost Δ.
    pub delta: u64,
}

impl TenantSpec {
    /// Convenience constructor.
    pub fn new(policy: PolicySpec, colors: ColorTable, n: usize, delta: u64) -> Self {
        TenantSpec { policy, colors, n, delta }
    }
}

/// Point-in-time capture of one tenant, sufficient to rebuild it exactly.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TenantSnapshot {
    /// The tenant's instance parameters.
    pub spec: TenantSpec,
    /// Arrivals of every round already ticked, in round order.
    pub log: Vec<Vec<(ColorId, u64)>>,
    /// Buffered arrivals not yet ticked, in ascending color order.
    pub inbox: Vec<(ColorId, u64)>,
    /// Jobs shed at the inbox watermark (service-level drops; they never
    /// entered a round, so they are outside job conservation).
    #[serde(default)]
    pub shed: u64,
    /// The engine state at the snapshot point (used to verify the replay).
    pub engine: EngineSnapshot,
}

impl TenantSnapshot {
    /// Jobs that have entered ticked rounds (arrived from the engine's point
    /// of view). Inbox jobs are submitted but not yet part of any round.
    pub fn arrived(&self) -> u64 {
        self.log.iter().flatten().map(|&(_, k)| k).sum()
    }

    /// Job conservation at the snapshot point:
    /// `arrived = executed + dropped + pending`.
    pub fn conserves_jobs(&self) -> bool {
        self.arrived()
            == self.engine.result.executed
                + self.engine.result.dropped_jobs
                + self.engine.pending.total()
    }
}

/// A live tenant.
pub struct Tenant {
    spec: TenantSpec,
    engine: StreamingEngine,
    log: Vec<Vec<(ColorId, u64)>>,
    inbox: BTreeMap<ColorId, u64>,
    shed: u64,
}

impl Tenant {
    /// Creates a tenant at round 0 with a fresh policy.
    pub fn new(spec: TenantSpec) -> ServiceResult<Self> {
        if spec.delta == 0 {
            return Err(ServiceError::Engine(rrs_core::Error::InvalidParameter(
                "tenant Δ must be positive".into(),
            )));
        }
        let policy = spec.policy.build(&spec.colors, spec.n, spec.delta)?;
        let engine = StreamingEngine::with_speed(
            spec.colors.clone(),
            policy,
            spec.n,
            CostModel::new(spec.delta),
            spec.policy.speed(),
        )?;
        Ok(Tenant { spec, engine, log: Vec::new(), inbox: BTreeMap::new(), shed: 0 })
    }

    /// The tenant's instance parameters.
    pub fn spec(&self) -> &TenantSpec {
        &self.spec
    }

    /// The next round a tick will simulate.
    pub fn current_round(&self) -> Round {
        self.engine.current_round()
    }

    /// Buffers arrivals for the next tick (counts merge per color).
    pub fn submit(&mut self, arrivals: &[(ColorId, u64)]) -> ServiceResult<()> {
        for &(c, k) in arrivals {
            if c.index() >= self.spec.colors.len() {
                return Err(ServiceError::Engine(rrs_core::Error::UnknownColor(c)));
            }
            if k > 0 {
                *self.inbox.entry(c).or_insert(0) += k;
            }
        }
        Ok(())
    }

    /// Buffers arrivals up to an optional inbox watermark: jobs that would
    /// push the buffered total past `watermark` are **shed** — counted as
    /// service-level drops (the paper's unit drop cost applied at the door)
    /// and never entered into any round. Returns the number shed.
    ///
    /// Shedding decisions depend only on the tenant's own state and the
    /// arrival order, so WAL replay with the same watermark reproduces them
    /// exactly.
    pub fn submit_shedding(
        &mut self,
        arrivals: &[(ColorId, u64)],
        watermark: Option<u64>,
    ) -> ServiceResult<u64> {
        let Some(w) = watermark else {
            self.submit(arrivals)?;
            return Ok(0);
        };
        let mut buffered: u64 = self.inbox.values().sum();
        let mut shed = 0u64;
        for &(c, k) in arrivals {
            if c.index() >= self.spec.colors.len() {
                return Err(ServiceError::Engine(rrs_core::Error::UnknownColor(c)));
            }
            if k == 0 {
                continue;
            }
            let take = k.min(w.saturating_sub(buffered));
            if take > 0 {
                *self.inbox.entry(c).or_insert(0) += take;
                buffered += take;
            }
            shed += k - take;
        }
        self.shed += shed;
        Ok(shed)
    }

    /// Jobs shed at the inbox watermark so far.
    pub fn shed(&self) -> u64 {
        self.shed
    }

    /// Simulates one round with the buffered arrivals.
    pub fn tick(&mut self) -> ServiceResult<StepOutcome> {
        let arrivals: Vec<(ColorId, u64)> =
            std::mem::take(&mut self.inbox).into_iter().collect();
        let outcome = self.engine.step(&arrivals)?;
        self.log.push(arrivals);
        Ok(outcome)
    }

    /// Captures the tenant's full state.
    pub fn snapshot(&self) -> TenantSnapshot {
        TenantSnapshot {
            spec: self.spec.clone(),
            log: self.log.clone(),
            inbox: self.inbox.iter().map(|(&c, &k)| (c, k)).collect(),
            shed: self.shed,
            engine: self.engine.snapshot(),
        }
    }

    /// Rebuilds a tenant from a snapshot with bit-identical continuation.
    ///
    /// The arrival log is replayed through a fresh engine and policy, and the
    /// rebuilt engine state is compared against the snapshot's recorded
    /// [`EngineSnapshot`]; a mismatch yields [`ServiceError::Divergence`].
    pub fn restore(snapshot: TenantSnapshot) -> ServiceResult<Self> {
        let mut tenant = Tenant::new(snapshot.spec.clone())?;
        for arrivals in &snapshot.log {
            tenant.engine.step(arrivals)?;
        }
        tenant.log = snapshot.log;
        let rebuilt = tenant.engine.snapshot();
        if rebuilt != snapshot.engine {
            return Err(ServiceError::Divergence(format!(
                "replayed {} rounds of tenant log but engine state differs \
                 (round {} vs {}, cost {:?} vs {:?})",
                tenant.log.len(),
                rebuilt.round,
                snapshot.engine.round,
                rebuilt.result.cost,
                snapshot.engine.result.cost,
            )));
        }
        tenant.inbox = snapshot.inbox.into_iter().collect();
        // Shed jobs never entered the log, so the replay cannot reproduce
        // the counter; carry it over from the snapshot.
        tenant.shed = snapshot.shed;
        Ok(tenant)
    }

    /// Ticked arrivals so far (inbox not included).
    pub fn arrived(&self) -> u64 {
        self.log.iter().flatten().map(|&(_, k)| k).sum()
    }

    /// Live cost/progress counters.
    pub fn progress(&self) -> TenantProgress {
        let r = self.engine.partial_result();
        TenantProgress {
            rounds: r.rounds,
            arrived: self.arrived(),
            executed: r.executed,
            dropped: r.dropped_jobs,
            pending: self.engine.pending_jobs(),
            inbox: self.inbox.values().sum(),
            shed: self.shed,
            cost: r.cost,
            reconfig_events: r.reconfig_events,
        }
    }

    /// Drains the engine to its horizon and returns the final result.
    pub fn finish(mut self) -> ServiceResult<RunResult> {
        // Flush any still-buffered arrivals first so they are not lost.
        if !self.inbox.is_empty() {
            self.tick()?;
        }
        Ok(self.engine.finish()?)
    }
}

/// Live per-tenant counters (see [`Tenant::progress`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct TenantProgress {
    /// Rounds simulated so far.
    pub rounds: Round,
    /// Jobs that entered ticked rounds.
    pub arrived: u64,
    /// Jobs executed.
    pub executed: u64,
    /// Jobs dropped.
    pub dropped: u64,
    /// Jobs pending inside the engine.
    pub pending: u64,
    /// Jobs buffered in the inbox (submitted, not yet ticked).
    pub inbox: u64,
    /// Jobs shed at a watermark (service-level drops, never arrived).
    pub shed: u64,
    /// Accumulated cost.
    pub cost: Cost,
    /// Individual resource recolorings.
    pub reconfig_events: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec() -> TenantSpec {
        TenantSpec::new(
            PolicySpec::DlruEdf,
            ColorTable::from_delay_bounds(&[2, 4, 8]),
            4,
            2,
        )
    }

    #[test]
    fn submit_merges_and_tick_consumes() {
        let mut t = Tenant::new(spec()).unwrap();
        t.submit(&[(ColorId(0), 2), (ColorId(2), 1)]).unwrap();
        t.submit(&[(ColorId(0), 1)]).unwrap();
        assert_eq!(t.progress().inbox, 4);
        t.tick().unwrap();
        assert_eq!(t.progress().inbox, 0);
        assert_eq!(t.arrived(), 4);
        assert_eq!(t.current_round(), 1);
    }

    #[test]
    fn snapshot_restore_is_lossless_and_continues_identically() {
        let mut a = Tenant::new(spec()).unwrap();
        for round in 0..12u64 {
            a.submit(&[(ColorId((round % 3) as u32), 1 + round % 4)]).unwrap();
            a.tick().unwrap();
        }
        a.submit(&[(ColorId(1), 5)]).unwrap(); // leave something in the inbox
        let snap = a.snapshot();
        assert!(snap.conserves_jobs());
        let mut b = Tenant::restore(snap.clone()).unwrap();
        assert_eq!(b.snapshot(), snap, "restore is lossless");
        // Continue both identically.
        for t in [&mut a, &mut b] {
            t.submit(&[(ColorId(0), 3)]).unwrap();
            t.tick().unwrap();
        }
        assert_eq!(a.finish().unwrap(), b.finish().unwrap());
    }

    #[test]
    fn restore_detects_corruption() {
        let mut t = Tenant::new(spec()).unwrap();
        for _ in 0..4 {
            t.submit(&[(ColorId(0), 2)]).unwrap();
            t.tick().unwrap();
        }
        let mut snap = t.snapshot();
        snap.engine.result.executed += 1; // corrupt the recorded state
        assert!(matches!(
            Tenant::restore(snap),
            Err(ServiceError::Divergence(_))
        ));
    }

    #[test]
    fn finish_flushes_inbox() {
        let mut t = Tenant::new(spec()).unwrap();
        t.submit(&[(ColorId(0), 3)]).unwrap();
        let r = t.finish().unwrap();
        assert_eq!(r.executed + r.dropped_jobs, 3, "buffered jobs are not lost");
    }

    #[test]
    fn rejects_unknown_color_and_zero_delta() {
        let mut t = Tenant::new(spec()).unwrap();
        assert!(t.submit(&[(ColorId(9), 1)]).is_err());
        let mut bad = spec();
        bad.delta = 0;
        assert!(Tenant::new(bad).is_err());
    }
}
