//! Service-level errors.

use crate::shard::TenantId;
use std::fmt;

/// Result alias using [`ServiceError`].
pub type ServiceResult<T> = std::result::Result<T, ServiceError>;

/// Errors raised by the service layer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ServiceError {
    /// An engine or policy construction error bubbled up from `rrs-core`.
    Engine(rrs_core::Error),
    /// The target shard's worker is gone (killed or panicked).
    ShardDown(usize),
    /// A command to a shard did not complete within its deadline (worker
    /// stalled, queue full past the deadline, or a reply was lost).
    Timeout(usize),
    /// A shard index outside `0..shards`.
    UnknownShard(usize),
    /// A command referenced a tenant the shard does not own.
    UnknownTenant(TenantId),
    /// A tenant id was registered twice.
    DuplicateTenant(TenantId),
    /// A snapshot places a tenant on a shard the routing function disagrees
    /// with — applying it would silently adopt a foreign tenant.
    MisroutedTenant {
        /// The misplaced tenant.
        tenant: TenantId,
        /// The shard the snapshot claims.
        shard: usize,
        /// The shard the routing function assigns.
        expected: usize,
    },
    /// A snapshot failed structural validation (unsorted tenants, job
    /// conservation violated, shard index mismatch).
    Corrupt(String),
    /// Spawning a worker thread failed.
    Spawn(String),
    /// Replaying a snapshot did not reproduce the recorded engine state —
    /// the snapshot is corrupt or the policy is nondeterministic.
    Divergence(String),
    /// A storage-tier failure: I/O error, unreadable frame, or a record
    /// that failed to encode.
    Storage(String),
    /// A network-layer failure: socket I/O, a frame that failed CRC
    /// validation on the wire, or a protocol violation.
    Net(String),
    /// The configured data directory cannot back a disk store: it exists
    /// but is not a directory, cannot be created, or is not writable. The
    /// CLI maps this to exit code 2 (usage error) instead of panicking.
    InvalidDataDir {
        /// The offending path, as configured.
        path: String,
        /// Why it was rejected.
        reason: String,
    },
}

impl fmt::Display for ServiceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServiceError::Engine(e) => write!(f, "engine error: {e}"),
            ServiceError::ShardDown(i) => write!(f, "shard {i} is down"),
            ServiceError::Timeout(i) => write!(f, "command to shard {i} timed out"),
            ServiceError::UnknownShard(i) => write!(f, "no such shard: {i}"),
            ServiceError::UnknownTenant(t) => write!(f, "unknown tenant {t}"),
            ServiceError::DuplicateTenant(t) => write!(f, "tenant {t} already registered"),
            ServiceError::MisroutedTenant { tenant, shard, expected } => write!(
                f,
                "snapshot places tenant {tenant} on shard {shard}, routing says {expected}"
            ),
            ServiceError::Corrupt(msg) => write!(f, "corrupt snapshot: {msg}"),
            ServiceError::Spawn(msg) => write!(f, "worker spawn failed: {msg}"),
            ServiceError::Divergence(msg) => write!(f, "snapshot divergence: {msg}"),
            ServiceError::Storage(msg) => write!(f, "storage error: {msg}"),
            ServiceError::Net(msg) => write!(f, "net error: {msg}"),
            ServiceError::InvalidDataDir { path, reason } => {
                write!(f, "invalid data dir {path}: {reason}")
            }
        }
    }
}

impl std::error::Error for ServiceError {}

impl From<rrs_core::Error> for ServiceError {
    fn from(e: rrs_core::Error) -> Self {
        ServiceError::Engine(e)
    }
}
