//! Service-level errors.

use crate::shard::TenantId;
use std::fmt;

/// Result alias using [`ServiceError`].
pub type ServiceResult<T> = std::result::Result<T, ServiceError>;

/// Errors raised by the service layer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ServiceError {
    /// An engine or policy construction error bubbled up from `rrs-core`.
    Engine(rrs_core::Error),
    /// The target shard's worker is gone (killed or panicked).
    ShardDown(usize),
    /// A shard index outside `0..shards`.
    UnknownShard(usize),
    /// A command referenced a tenant the shard does not own.
    UnknownTenant(TenantId),
    /// A tenant id was registered twice.
    DuplicateTenant(TenantId),
    /// Replaying a snapshot did not reproduce the recorded engine state —
    /// the snapshot is corrupt or the policy is nondeterministic.
    Divergence(String),
}

impl fmt::Display for ServiceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServiceError::Engine(e) => write!(f, "engine error: {e}"),
            ServiceError::ShardDown(i) => write!(f, "shard {i} is down"),
            ServiceError::UnknownShard(i) => write!(f, "no such shard: {i}"),
            ServiceError::UnknownTenant(t) => write!(f, "unknown tenant {t}"),
            ServiceError::DuplicateTenant(t) => write!(f, "tenant {t} already registered"),
            ServiceError::Divergence(msg) => write!(f, "snapshot divergence: {msg}"),
        }
    }
}

impl std::error::Error for ServiceError {}

impl From<rrs_core::Error> for ServiceError {
    fn from(e: rrs_core::Error) -> Self {
        ServiceError::Engine(e)
    }
}
