//! Service observability: per-shard and per-tenant counters plus a cheap
//! fixed-size latency histogram for step latencies.

use crate::tenant::TenantProgress;
use serde::{Deserialize, Serialize};
use std::fmt;

/// A log₂-bucketed histogram of nanosecond latencies.
///
/// Bucket `i` counts samples in `[2^i, 2^(i+1))` ns (bucket 0 also holds 0).
/// Quantiles are reported as the upper bound of the containing bucket, i.e.
/// within 2× of the true value — plenty for p50/p99 service telemetry, at a
/// fixed 512-byte footprint and O(1) record cost.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LatencyHistogramNs {
    buckets: [u64; 64],
    count: u64,
}

impl Default for LatencyHistogramNs {
    fn default() -> Self {
        Self { buckets: [0; 64], count: 0 }
    }
}

impl LatencyHistogramNs {
    /// Creates an empty histogram.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one sample.
    pub fn record(&mut self, nanos: u64) {
        let idx = (64 - nanos.leading_zeros()).saturating_sub(1) as usize;
        self.buckets[idx.min(63)] += 1;
        self.count += 1;
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// The `q`-quantile (upper bucket bound), 0 for an empty histogram.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let target = ((self.count as f64) * q.clamp(0.0, 1.0)).ceil().max(1.0) as u64;
        let mut seen = 0;
        for (i, &n) in self.buckets.iter().enumerate() {
            seen += n;
            if seen >= target {
                return 1u64 << (i + 1).min(63);
            }
        }
        u64::MAX
    }

    /// Median step latency.
    pub fn p50(&self) -> u64 {
        self.quantile(0.50)
    }

    /// Tail step latency.
    pub fn p99(&self) -> u64 {
        self.quantile(0.99)
    }

    /// Merges another histogram into this one.
    pub fn merge(&mut self, other: &LatencyHistogramNs) {
        for (a, b) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *a += b;
        }
        self.count += other.count;
    }
}

/// Manual serde impls (the derive can't reconstruct a `[u64; 64]`): the wire
/// form is the flat bucket array; the sample count is the bucket sum.
impl Serialize for LatencyHistogramNs {
    fn to_value(&self) -> serde::Value {
        serde::Value::Array(self.buckets.iter().map(|&b| serde::Value::U64(b)).collect())
    }
}

impl Deserialize for LatencyHistogramNs {
    fn from_value(v: &serde::Value) -> Result<Self, serde::Error> {
        let counts: Vec<u64> = Vec::from_value(v)?;
        if counts.len() != 64 {
            return Err(serde::Error::msg(format!(
                "expected 64 histogram buckets, found {}",
                counts.len()
            )));
        }
        let mut h = LatencyHistogramNs::new();
        for (slot, &n) in h.buckets.iter_mut().zip(counts.iter()) {
            *slot = n;
            h.count += n;
        }
        Ok(h)
    }
}

/// Counters for one shard worker.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct ShardStats {
    /// Shard index.
    pub shard: usize,
    /// Tenants owned by the shard.
    pub tenants: usize,
    /// Commands processed (all kinds).
    pub commands: u64,
    /// Submit operations processed. A batched command counts once per
    /// coalesced entry, so the counter is comparable across ingest modes.
    pub submits: u64,
    /// `SubmitBatch` commands processed (0 under per-command ingestion).
    pub batches: u64,
    /// Tick commands processed (each advances every owned tenant one round).
    pub ticks: u64,
    /// Jobs executed across all owned tenants.
    pub executed: u64,
    /// Jobs dropped across all owned tenants.
    pub dropped: u64,
    /// Jobs shed at the inbox watermark across all owned tenants
    /// (service-level drops: they never entered a round).
    pub shed_jobs: u64,
    /// Total reconfiguration cost across all owned tenants.
    pub reconfig_cost: u64,
    /// Commands sitting in the shard's queue when the stats were taken.
    pub queue_depth: usize,
    /// Times a sender found the bounded queue full and had to block.
    pub backpressure_waits: u64,
    /// Commands that failed inside the worker (unknown tenant, engine error).
    pub command_errors: u64,
    /// Faults fired inside this worker (injected panics, stalls, dropped
    /// replies, corrupted snapshots). Worker-lifetime, reset on respawn.
    pub faults_injected: u64,
    /// Times a supervisor rebuilt this shard from checkpoint + WAL (filled
    /// in by the supervisor; a bare [`crate::Service`] reports 0).
    pub recoveries: u64,
    /// Times this shard's circuit breaker tripped open on a restart storm
    /// (filled in by the supervisor; 0 unless a breaker is installed).
    pub breaker_trips: u64,
    /// Per-tenant-step latency histogram (one sample per tenant per tick).
    pub step_latency: LatencyHistogramNs,
}

impl fmt::Display for ShardStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "shard {}: {} tenants, {} cmds ({} ticks), exec {}, drop {}, shed {}, \
             reconfig {}, queue {}, bp {}, recoveries {} ({} trips), \
             step p50 {}ns p99 {}ns",
            self.shard,
            self.tenants,
            self.commands,
            self.ticks,
            self.executed,
            self.dropped,
            self.shed_jobs,
            self.reconfig_cost,
            self.queue_depth,
            self.backpressure_waits,
            self.recoveries,
            self.breaker_trips,
            self.step_latency.p50(),
            self.step_latency.p99(),
        )
    }
}

/// A point-in-time view of the whole service.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ServiceStats {
    /// Per-shard counters, indexed by shard.
    pub shards: Vec<ShardStats>,
    /// Per-tenant progress, in ascending tenant order.
    pub tenants: Vec<(u64, TenantProgress)>,
    /// Storage-tier counters (group commits, fsyncs, cache hit/miss/evict;
    /// all zeros for memory-backed and bare services).
    pub storage: crate::storage::StorageStats,
}

impl ServiceStats {
    /// Jobs executed service-wide.
    pub fn executed(&self) -> u64 {
        self.shards.iter().map(|s| s.executed).sum()
    }

    /// Jobs dropped service-wide.
    pub fn dropped(&self) -> u64 {
        self.shards.iter().map(|s| s.dropped).sum()
    }

    /// Jobs shed service-wide (inbox watermark + queue watermark drops;
    /// per-tenant attribution lives in [`crate::TenantProgress::shed`]).
    pub fn shed(&self) -> u64 {
        self.tenants.iter().map(|(_, p)| p.shed).sum()
    }

    /// Shard recoveries service-wide (supervised runs only).
    pub fn recoveries(&self) -> u64 {
        self.shards.iter().map(|s| s.recoveries).sum()
    }

    /// Service-wide step-latency histogram (merged over shards).
    pub fn step_latency(&self) -> LatencyHistogramNs {
        let mut h = LatencyHistogramNs::new();
        for s in &self.shards {
            h.merge(&s.step_latency);
        }
        h
    }

    /// Job conservation over every tenant:
    /// `arrived = executed + dropped + pending` (inbox jobs are not yet
    /// arrived).
    pub fn conserves_jobs(&self) -> bool {
        self.tenants
            .iter()
            .all(|(_, p)| p.arrived == p.executed + p.dropped + p.pending)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_buckets_by_log2() {
        let mut h = LatencyHistogramNs::new();
        for ns in [0, 1, 2, 3, 1000, 1_000_000] {
            h.record(ns);
        }
        assert_eq!(h.count(), 6);
        assert!(h.p50() <= 1024, "median dominated by tiny samples: {}", h.p50());
        assert!(h.p99() >= 1_000_000, "tail sees the 1ms sample: {}", h.p99());
    }

    #[test]
    fn quantiles_of_empty_are_zero() {
        let h = LatencyHistogramNs::new();
        assert_eq!(h.p50(), 0);
        assert_eq!(h.p99(), 0);
    }

    #[test]
    fn merge_accumulates() {
        let mut a = LatencyHistogramNs::new();
        let mut b = LatencyHistogramNs::new();
        a.record(10);
        b.record(10_000);
        a.merge(&b);
        assert_eq!(a.count(), 2);
        assert!(a.p99() >= 10_000);
    }
}
