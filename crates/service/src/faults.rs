//! Deterministic fault injection at shard boundaries.
//!
//! A [`FaultPlan`] is a seeded, fully explicit list of faults; every fault
//! names its shard, the shard-local tick it arms at, and what happens. The
//! plan is split per shard into [`ShardFaults`] handed to the workers, so
//! injection points are keyed on the worker's own deterministic command
//! counters — never on wall-clock time — and a failing chaos run reproduces
//! from its seed alone. Each fault fires **once**: consumption is recorded
//! in the shared [`ShardFaults`], so a worker respawned by the supervisor
//! does not re-trip the fault that killed its predecessor (and WAL replay
//! bypasses injection entirely).

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

/// What an injected fault does when it fires.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// The worker panics while processing the arming tick (captured by the
    /// worker's `catch_unwind` wrapper; the supervisor rebuilds the shard).
    Panic,
    /// The worker sleeps this long before processing the arming tick,
    /// simulating a stalled shard (detected via command deadlines).
    Stall {
        /// Stall duration in milliseconds.
        millis: u64,
    },
    /// The worker processes the next reply-bearing command at/after the
    /// arming tick but never replies (the sender times out).
    DropReply,
    /// The worker corrupts the next snapshot reply at/after the arming tick
    /// (checkpoint validation must catch and reject it).
    CorruptSnapshot,
    /// The worker applies the arming tick but never publishes its epoch
    /// acknowledgement (the supervisor's offset join times out and the
    /// shard is rebuilt — the batched-ingestion analog of [`DropReply`]).
    ///
    /// [`DropReply`]: FaultKind::DropReply
    DropAck,
    /// Storage fault, armed on the shard's *commit counter* instead of its
    /// tick counter: the group commit writes only the first `keep_bytes`
    /// of its staged frames (a mid-frame crash tail), then the store
    /// **wedges** — every later disk write is silently dropped, modeling a
    /// machine that died at that instant while the in-process service keeps
    /// running. A cold start afterwards must repair the torn tail and
    /// recover the committed prefix.
    TornWrite {
        /// Bytes of the staged buffer that actually reach the disk.
        keep_bytes: u64,
    },
    /// Storage fault (commit-counter armed): the group commit's data never
    /// reaches the platter — the write is acknowledged but lost whole, as
    /// after a crash between `write` and `fsync` — and the store wedges.
    PartialFsync,
    /// Storage fault (commit-counter armed): one byte of the first staged
    /// frame's payload is flipped before the write. The commit "succeeds";
    /// recovery must detect the damage via CRC and stop the replay scan at
    /// the corrupt frame.
    CorruptCrc,
    /// Storage fault (commit-counter armed): the group commit's write
    /// attempts fail with a *transient* I/O error this many times before
    /// succeeding. The store's seeded-jittered retry loop must absorb the
    /// blip in place — no degradation, no durability loss.
    TransientIo {
        /// Write attempts that fail before one succeeds.
        fails: u64,
    },
    /// Storage fault (commit-counter armed): the group commit stalls this
    /// long before its write — a hiccuping disk. Nothing is lost; only
    /// timing changes.
    SlowIo {
        /// Stall duration in milliseconds.
        millis: u64,
    },
    /// Storage fault (commit-counter armed): this group commit and the next
    /// `len - 1` fail every write attempt with transient errors. Retries
    /// exhaust, the store falls back to **degraded memory-mirror mode**,
    /// and the first probe commit after the burst heals it by backfilling
    /// the missed records from the mirror.
    IoErrorBurst {
        /// Consecutive group commits that fail.
        len: u64,
    },
    /// Storage fault (commit-counter armed): an ENOSPC-class *permanent*
    /// failure for this many group commits. The store degrades immediately
    /// (permanent errors are not retried) and heals once the space clears.
    DiskFull {
        /// Group commits that fail before the disk has space again.
        commits: u64,
    },
}

/// One scheduled fault.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Fault {
    /// The shard whose worker misbehaves.
    pub shard: usize,
    /// The shard-local tick count (1-based) the fault arms at.
    pub at_tick: u64,
    /// What happens.
    pub kind: FaultKind,
}

/// A reproducible chaos schedule.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FaultPlan {
    /// The scheduled faults, in no particular order.
    pub faults: Vec<Fault>,
}

/// SplitMix64 — the same tiny deterministic generator the fuzz tests use.
fn splitmix(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Deterministic integer jitter: a value in `[lo, hi]` keyed on
/// `(seed, step)`. Same inputs, same output — chaos runs that depend on
/// jittered backoff stay reproducible from their seeds, while different
/// seeds (one per shard) de-synchronize retry storms.
pub fn jitter_range(lo: u64, hi: u64, seed: u64, step: u64) -> u64 {
    if hi <= lo {
        return lo;
    }
    let mut state = seed ^ step.wrapping_mul(0xA076_1D64_78BD_642F);
    lo + splitmix(&mut state) % (hi - lo + 1)
}

/// Deterministic duration jitter: a duration in `[base/2, base]` keyed on
/// `(seed, step)` — "equal jitter" backoff, which keeps at least half the
/// exponential pause (so pressure still backs off) while spreading retries
/// across shards instead of letting the doubling schedule synchronize them.
pub fn jittered(base: Duration, seed: u64, step: u64) -> Duration {
    let nanos = base.as_nanos().min(u64::MAX as u128) as u64;
    Duration::from_nanos(jitter_range(nanos / 2, nanos, seed, step))
}

impl FaultPlan {
    /// An empty plan (no faults).
    pub fn none() -> Self {
        FaultPlan::default()
    }

    /// Kills every shard's worker exactly once, at seed-chosen distinct
    /// ticks strictly inside `1..=ticks` — the acceptance chaos schedule.
    pub fn kill_each_shard_once(shards: usize, ticks: u64, seed: u64) -> Self {
        let mut state = seed ^ 0xDEAD_BEEF_CAFE_F00D;
        let span = ticks.max(1);
        let faults = (0..shards)
            .map(|shard| Fault {
                shard,
                at_tick: 1 + splitmix(&mut state) % span,
                kind: FaultKind::Panic,
            })
            .collect();
        FaultPlan { faults }
    }

    /// `count` random faults over `shards` shards and `ticks` ticks, drawn
    /// deterministically from `seed` (panics, stalls, dropped replies and
    /// corrupted snapshots, weighted toward panics).
    pub fn random(seed: u64, shards: usize, ticks: u64, count: usize) -> Self {
        let mut state = seed;
        let span = ticks.max(1);
        let faults = (0..count)
            .map(|_| {
                let shard = (splitmix(&mut state) % shards.max(1) as u64) as usize;
                let at_tick = 1 + splitmix(&mut state) % span;
                let kind = match splitmix(&mut state) % 10 {
                    0..=4 => FaultKind::Panic,
                    5 | 6 => FaultKind::Stall { millis: 20 + splitmix(&mut state) % 60 },
                    7 | 8 => FaultKind::DropReply,
                    _ => FaultKind::CorruptSnapshot,
                };
                Fault { shard, at_tick, kind }
            })
            .collect();
        FaultPlan { faults }
    }

    /// `count` random **storage IO** faults over `shards` shards and
    /// `commits` group commits, drawn deterministically from `seed`:
    /// transient blips, slow disks, error bursts, full disks, plus the
    /// occasional wedge-class torn write or CRC flip. The disk backend's
    /// self-healing layer must absorb all of them without losing a job.
    pub fn random_io(seed: u64, shards: usize, commits: u64, count: usize) -> Self {
        let mut state = seed ^ 0xD15C_FA17_0BAD_D15C;
        let span = commits.max(1);
        let faults = (0..count)
            .map(|_| {
                let shard = (splitmix(&mut state) % shards.max(1) as u64) as usize;
                let at_tick = 1 + splitmix(&mut state) % span;
                let kind = match splitmix(&mut state) % 10 {
                    0..=2 => FaultKind::TransientIo { fails: 1 + splitmix(&mut state) % 3 },
                    3 | 4 => FaultKind::SlowIo { millis: 1 + splitmix(&mut state) % 10 },
                    5 | 6 => FaultKind::IoErrorBurst { len: 1 + splitmix(&mut state) % 3 },
                    7 => FaultKind::DiskFull { commits: 1 + splitmix(&mut state) % 3 },
                    8 => FaultKind::TornWrite { keep_bytes: splitmix(&mut state) % 64 },
                    _ => FaultKind::CorruptCrc,
                };
                Fault { shard, at_tick, kind }
            })
            .collect();
        FaultPlan { faults }
    }

    /// Parses a CLI fault-plan spec: comma-separated entries of
    ///
    /// * `panic@TICK[:SHARD]`
    /// * `stall@TICK[:SHARD[:MILLIS]]` (default 50 ms)
    /// * `drop-reply@TICK[:SHARD]`
    /// * `drop-ack@TICK[:SHARD]`
    /// * `corrupt-snapshot@TICK[:SHARD]`
    /// * `torn-write@COMMIT[:SHARD[:KEEP_BYTES]]` (default keeps 12 bytes)
    /// * `partial-fsync@COMMIT[:SHARD]`
    /// * `corrupt-crc@COMMIT[:SHARD]`
    /// * `transient-io@COMMIT[:SHARD[:FAILS]]` (default 2 failed attempts)
    /// * `slow-io@COMMIT[:SHARD[:MILLIS]]` (default 20 ms)
    /// * `io-error-burst@COMMIT[:SHARD[:LEN]]` (default 3 commits)
    /// * `disk-full@COMMIT[:SHARD[:COMMITS]]` (default 2 commits)
    /// * `kill-each-shard[:SEED]` — one panic per shard inside `1..=ticks`
    /// * `random:SEED[:COUNT]` — [`FaultPlan::random`] (default 4 faults)
    /// * `random-io:SEED[:COUNT]` — [`FaultPlan::random_io`] (default 4)
    ///
    /// Storage faults arm on the shard's group-commit counter (disk backend
    /// only; they never fire on the memory backend).
    ///
    /// `shards`/`ticks` bound the generated schedules.
    pub fn parse(spec: &str, shards: usize, ticks: u64) -> Result<Self, String> {
        let mut plan = FaultPlan::none();
        for entry in spec.split(',').map(str::trim).filter(|e| !e.is_empty()) {
            if let Some(rest) = entry.strip_prefix("random-io:") {
                let mut parts = rest.split(':');
                let seed = parse_num(parts.next(), entry)?;
                let count = match parts.next() {
                    Some(c) => parse_num(Some(c), entry)? as usize,
                    None => 4,
                };
                plan.faults
                    .extend(FaultPlan::random_io(seed, shards, ticks, count).faults);
                continue;
            }
            if let Some(rest) = entry.strip_prefix("random:") {
                let mut parts = rest.split(':');
                let seed = parse_num(parts.next(), entry)?;
                let count = match parts.next() {
                    Some(c) => parse_num(Some(c), entry)? as usize,
                    None => 4,
                };
                plan.faults.extend(FaultPlan::random(seed, shards, ticks, count).faults);
                continue;
            }
            if let Some(rest) = entry.strip_prefix("kill-each-shard") {
                let seed = match rest.strip_prefix(':') {
                    Some(s) => parse_num(Some(s), entry)?,
                    None => 1,
                };
                plan.faults
                    .extend(FaultPlan::kill_each_shard_once(shards, ticks, seed).faults);
                continue;
            }
            let (kind_name, rest) = entry
                .split_once('@')
                .ok_or_else(|| format!("fault entry '{entry}': expected KIND@TICK[:SHARD]"))?;
            let mut parts = rest.split(':');
            let at_tick = parse_num(parts.next(), entry)?;
            let shard = match parts.next() {
                Some(s) => parse_num(Some(s), entry)? as usize,
                None => 0,
            };
            if shard >= shards {
                return Err(format!("fault entry '{entry}': shard {shard} out of 0..{shards}"));
            }
            let kind = match kind_name {
                "panic" | "kill" => FaultKind::Panic,
                "stall" => FaultKind::Stall {
                    millis: match parts.next() {
                        Some(ms) => parse_num(Some(ms), entry)?,
                        None => 50,
                    },
                },
                "drop-reply" => FaultKind::DropReply,
                "drop-ack" => FaultKind::DropAck,
                "corrupt-snapshot" => FaultKind::CorruptSnapshot,
                "torn-write" => FaultKind::TornWrite {
                    keep_bytes: match parts.next() {
                        Some(k) => parse_num(Some(k), entry)?,
                        None => 12,
                    },
                },
                "partial-fsync" => FaultKind::PartialFsync,
                "corrupt-crc" => FaultKind::CorruptCrc,
                "transient-io" => FaultKind::TransientIo {
                    fails: match parts.next() {
                        Some(n) => parse_num(Some(n), entry)?,
                        None => 2,
                    },
                },
                "slow-io" => FaultKind::SlowIo {
                    millis: match parts.next() {
                        Some(ms) => parse_num(Some(ms), entry)?,
                        None => 20,
                    },
                },
                "io-error-burst" => FaultKind::IoErrorBurst {
                    len: match parts.next() {
                        Some(n) => parse_num(Some(n), entry)?,
                        None => 3,
                    },
                },
                "disk-full" => FaultKind::DiskFull {
                    commits: match parts.next() {
                        Some(n) => parse_num(Some(n), entry)?,
                        None => 2,
                    },
                },
                other => return Err(format!("unknown fault kind '{other}' in '{entry}'")),
            };
            plan.faults.push(Fault { shard, at_tick, kind });
        }
        Ok(plan)
    }

    /// Splits the plan into one shared [`ShardFaults`] per shard (the form
    /// workers and the supervisor consume).
    pub fn per_shard(&self, shards: usize) -> Vec<Arc<ShardFaults>> {
        (0..shards)
            .map(|s| {
                Arc::new(ShardFaults::new(
                    self.faults.iter().copied().filter(|f| f.shard == s).collect(),
                ))
            })
            .collect()
    }
}

fn parse_num(part: Option<&str>, entry: &str) -> Result<u64, String> {
    part.and_then(|p| p.parse().ok())
        .ok_or_else(|| format!("fault entry '{entry}': expected a number"))
}

/// Shared, consume-once fault state for one shard. The supervisor keeps the
/// `Arc` across worker respawns, so a fault fires exactly once shard-wide.
#[derive(Debug, Default)]
pub struct ShardFaults {
    pending: Mutex<Vec<Fault>>,
    injected: AtomicU64,
}

impl ShardFaults {
    /// Fault state armed with `faults`.
    pub fn new(faults: Vec<Fault>) -> Self {
        ShardFaults { pending: Mutex::new(faults), injected: AtomicU64::new(0) }
    }

    /// A shard with no faults.
    pub fn none() -> Arc<Self> {
        Arc::new(ShardFaults::default())
    }

    /// Faults fired so far on this shard.
    pub fn injected(&self) -> u64 {
        self.injected.load(Ordering::Relaxed)
    }

    /// Faults still pending on this shard.
    pub fn pending(&self) -> usize {
        self.pending.lock().unwrap_or_else(|p| p.into_inner()).len()
    }

    fn take(&self, matches: impl Fn(&Fault) -> bool) -> Option<Fault> {
        let mut pending = self.pending.lock().unwrap_or_else(|p| p.into_inner());
        // Earliest arming tick first, so overdue faults fire in order.
        let hit = pending
            .iter()
            .enumerate()
            .filter(|(_, f)| matches(f))
            .min_by_key(|(_, f)| f.at_tick)
            .map(|(i, _)| i)?;
        let fault = pending.swap_remove(hit);
        self.injected.fetch_add(1, Ordering::Relaxed);
        Some(fault)
    }

    /// A panic or stall armed at or before `tick`, consumed.
    pub fn take_tick_fault(&self, tick: u64) -> Option<FaultKind> {
        self.take(|f| {
            f.at_tick <= tick
                && matches!(f.kind, FaultKind::Panic | FaultKind::Stall { .. })
        })
        .map(|f| f.kind)
    }

    /// Consumes a pending reply-drop armed at or before `tick`.
    pub fn take_reply_drop(&self, tick: u64) -> bool {
        self.take(|f| f.at_tick <= tick && f.kind == FaultKind::DropReply)
            .is_some()
    }

    /// Consumes a pending snapshot-corruption armed at or before `tick`.
    pub fn take_snapshot_corruption(&self, tick: u64) -> bool {
        self.take(|f| f.at_tick <= tick && f.kind == FaultKind::CorruptSnapshot)
            .is_some()
    }

    /// Consumes a pending ack-drop armed at or before `tick`.
    pub fn take_ack_drop(&self, tick: u64) -> bool {
        self.take(|f| f.at_tick <= tick && f.kind == FaultKind::DropAck)
            .is_some()
    }

    /// A storage fault (wedge-class torn write / partial fsync / CRC flip,
    /// or a self-healing-class transient / slow / burst / disk-full IO
    /// fault) armed at or before group-commit number `commit`, consumed.
    /// Called by the disk store on every staged commit; `at_tick` doubles
    /// as the commit index for these kinds.
    pub fn take_storage_fault(&self, commit: u64) -> Option<FaultKind> {
        self.take(|f| {
            f.at_tick <= commit
                && matches!(
                    f.kind,
                    FaultKind::TornWrite { .. }
                        | FaultKind::PartialFsync
                        | FaultKind::CorruptCrc
                        | FaultKind::TransientIo { .. }
                        | FaultKind::SlowIo { .. }
                        | FaultKind::IoErrorBurst { .. }
                        | FaultKind::DiskFull { .. }
                )
        })
        .map(|f| f.kind)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plans_are_deterministic_and_fire_once() {
        let a = FaultPlan::random(7, 4, 100, 8);
        let b = FaultPlan::random(7, 4, 100, 8);
        assert_eq!(a, b, "same seed, same plan");
        assert_eq!(a.faults.len(), 8);

        let kill = FaultPlan::kill_each_shard_once(3, 50, 9);
        assert_eq!(kill.faults.len(), 3);
        for (s, f) in kill.faults.iter().enumerate() {
            assert_eq!(f.shard, s);
            assert!((1..=50).contains(&f.at_tick));
            assert_eq!(f.kind, FaultKind::Panic);
        }

        let per = kill.per_shard(3);
        assert!(per[0].take_tick_fault(u64::MAX).is_some());
        assert!(per[0].take_tick_fault(u64::MAX).is_none(), "fires once");
        assert_eq!(per[0].injected(), 1);
    }

    #[test]
    fn parse_accepts_the_documented_grammar() {
        let plan = FaultPlan::parse(
            "panic@5, stall@7:1:80, drop-reply@3:1, corrupt-snapshot@9",
            2,
            100,
        )
        .unwrap();
        assert_eq!(plan.faults.len(), 4);
        assert_eq!(plan.faults[0], Fault { shard: 0, at_tick: 5, kind: FaultKind::Panic });
        assert_eq!(
            plan.faults[1],
            Fault { shard: 1, at_tick: 7, kind: FaultKind::Stall { millis: 80 } }
        );
        let storage =
            FaultPlan::parse("torn-write@2:1:7, partial-fsync@3, corrupt-crc@4:1", 2, 100)
                .unwrap();
        assert_eq!(
            storage.faults[0],
            Fault { shard: 1, at_tick: 2, kind: FaultKind::TornWrite { keep_bytes: 7 } }
        );
        assert_eq!(
            storage.faults[1],
            Fault { shard: 0, at_tick: 3, kind: FaultKind::PartialFsync }
        );
        assert_eq!(
            storage.faults[2],
            Fault { shard: 1, at_tick: 4, kind: FaultKind::CorruptCrc }
        );
        let per = storage.per_shard(2);
        assert_eq!(per[0].take_storage_fault(5), Some(FaultKind::PartialFsync));
        assert_eq!(per[0].take_storage_fault(5), None, "storage faults fire once");
        assert!(per[1].take_tick_fault(u64::MAX).is_none(), "not a worker fault");
        assert_eq!(FaultPlan::parse("kill-each-shard:3", 4, 10).unwrap().faults.len(), 4);
        assert_eq!(FaultPlan::parse("random:11:6", 4, 10).unwrap().faults.len(), 6);
        assert!(FaultPlan::parse("panic@5:9", 2, 100).is_err(), "shard out of range");
        assert!(FaultPlan::parse("frobnicate@5", 2, 100).is_err());
        assert!(FaultPlan::parse("panic@", 2, 100).is_err());
    }

    #[test]
    fn io_fault_grammar_and_plans() {
        let plan = FaultPlan::parse(
            "transient-io@2:1:3, slow-io@3, io-error-burst@4:1, disk-full@5:0:4",
            2,
            100,
        )
        .unwrap();
        assert_eq!(
            plan.faults[0],
            Fault { shard: 1, at_tick: 2, kind: FaultKind::TransientIo { fails: 3 } }
        );
        assert_eq!(
            plan.faults[1],
            Fault { shard: 0, at_tick: 3, kind: FaultKind::SlowIo { millis: 20 } }
        );
        assert_eq!(
            plan.faults[2],
            Fault { shard: 1, at_tick: 4, kind: FaultKind::IoErrorBurst { len: 3 } }
        );
        assert_eq!(
            plan.faults[3],
            Fault { shard: 0, at_tick: 5, kind: FaultKind::DiskFull { commits: 4 } }
        );
        let per = plan.per_shard(2);
        assert_eq!(per[0].take_storage_fault(3), Some(FaultKind::SlowIo { millis: 20 }));
        assert_eq!(per[0].take_storage_fault(4), None, "disk-full not yet armed");
        assert_eq!(
            per[0].take_storage_fault(5),
            Some(FaultKind::DiskFull { commits: 4 })
        );

        let a = FaultPlan::random_io(3, 2, 40, 12);
        assert_eq!(a, FaultPlan::random_io(3, 2, 40, 12), "same seed, same plan");
        assert_eq!(a.faults.len(), 12);
        for f in &a.faults {
            assert!((1..=40).contains(&f.at_tick));
            assert!(f.shard < 2);
        }
        assert_eq!(FaultPlan::parse("random-io:9:5", 2, 30).unwrap().faults.len(), 5);
    }

    #[test]
    fn jitter_is_bounded_and_deterministic_per_seed() {
        for step in 0..200u64 {
            let v = jitter_range(10, 100, 42, step);
            assert!((10..=100).contains(&v), "jitter_range out of bounds: {v}");
            let d = jittered(Duration::from_micros(800), 42, step);
            assert!(
                d >= Duration::from_micros(400) && d <= Duration::from_micros(800),
                "jittered out of [base/2, base]: {d:?}"
            );
        }
        // Degenerate ranges collapse deterministically.
        assert_eq!(jitter_range(7, 7, 1, 2), 7);
        assert_eq!(jitter_range(9, 3, 1, 2), 9);
        assert_eq!(jittered(Duration::ZERO, 5, 5), Duration::ZERO);
        // Same (seed, step) reproduces; different seeds de-synchronize.
        let a: Vec<u64> = (0..64).map(|s| jitter_range(0, 1_000_000, 11, s)).collect();
        let b: Vec<u64> = (0..64).map(|s| jitter_range(0, 1_000_000, 11, s)).collect();
        let c: Vec<u64> = (0..64).map(|s| jitter_range(0, 1_000_000, 12, s)).collect();
        assert_eq!(a, b, "per-seed determinism");
        assert_ne!(a, c, "distinct seeds give distinct jitter streams");
    }

    #[test]
    fn earliest_pending_fault_fires_first() {
        let f = ShardFaults::new(vec![
            Fault { shard: 0, at_tick: 9, kind: FaultKind::Panic },
            Fault { shard: 0, at_tick: 4, kind: FaultKind::Stall { millis: 1 } },
        ]);
        assert_eq!(f.take_tick_fault(10), Some(FaultKind::Stall { millis: 1 }));
        assert_eq!(f.take_tick_fault(10), Some(FaultKind::Panic));
        assert_eq!(f.pending(), 0);
    }
}
