//! Serializable descriptions of the streaming-capable policies.
//!
//! A service tenant cannot hold a bare `Box<dyn Policy>` in its snapshot —
//! trait objects don't serialize. [`PolicySpec`] names every online policy in
//! `rrs-algorithms` that can drive a [`rrs_core::StreamingEngine`] (the
//! offline hindsight heuristic and the batch-only reduction pipelines are
//! excluded: both need the whole trace up front) and rebuilds a fresh
//! instance on demand. All of these policies are deterministic, so a fresh
//! instance replayed over the same arrivals reproduces the original's state
//! exactly — the property tenant restore leans on.

use rrs_algorithms::prelude::*;
use rrs_core::prelude::*;
use serde::{Deserialize, Serialize};

/// Every policy a service tenant can run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum PolicySpec {
    /// ΔLRU-EDF (paper §3.1.3).
    DlruEdf,
    /// ΔLRU alone (paper §3.1.1).
    Dlru,
    /// EDF alone (paper §3.1.2).
    Edf,
    /// Seq-EDF (paper §3.3) on a uni-speed engine.
    SeqEdf,
    /// DS-Seq-EDF (paper §3.3): Seq-EDF on a double-speed engine.
    DsSeqEdf,
    /// Static round-robin partition baseline.
    StaticPartition,
    /// Configure-once baseline.
    NeverReconfigure,
    /// Fully greedy most-pending baseline.
    GreedyPending,
    /// ARC-style adaptive ΔLRU-EDF.
    AdaptiveDlruEdf,
    /// ΔLRU with LRU-K style (K = 2) timestamps.
    DlruK2,
    /// §1's "use idle cycles whenever available" background strategy.
    EagerBackground,
    /// §1's "wait for a long idle period" background strategy.
    PatientBackground,
}

impl PolicySpec {
    /// All streaming-capable policies, in a stable order.
    pub fn all() -> &'static [PolicySpec] {
        &[
            PolicySpec::DlruEdf,
            PolicySpec::Dlru,
            PolicySpec::Edf,
            PolicySpec::SeqEdf,
            PolicySpec::DsSeqEdf,
            PolicySpec::StaticPartition,
            PolicySpec::NeverReconfigure,
            PolicySpec::GreedyPending,
            PolicySpec::AdaptiveDlruEdf,
            PolicySpec::DlruK2,
            PolicySpec::EagerBackground,
            PolicySpec::PatientBackground,
        ]
    }

    /// Display name (matches `rrs-analysis`'s naming where both exist).
    pub fn name(self) -> &'static str {
        match self {
            PolicySpec::DlruEdf => "ΔLRU-EDF",
            PolicySpec::Dlru => "ΔLRU",
            PolicySpec::Edf => "EDF",
            PolicySpec::SeqEdf => "Seq-EDF",
            PolicySpec::DsSeqEdf => "DS-Seq-EDF",
            PolicySpec::StaticPartition => "Static",
            PolicySpec::NeverReconfigure => "Never",
            PolicySpec::GreedyPending => "Greedy",
            PolicySpec::AdaptiveDlruEdf => "Adaptive-ΔLRU-EDF",
            PolicySpec::DlruK2 => "ΔLRU-2",
            PolicySpec::EagerBackground => "Eager-BG",
            PolicySpec::PatientBackground => "Patient-BG",
        }
    }

    /// Parses the CLI spelling (`dlru-edf`, `greedy`, ...).
    pub fn parse(name: &str) -> Option<PolicySpec> {
        Some(match name {
            "dlru-edf" => PolicySpec::DlruEdf,
            "dlru" => PolicySpec::Dlru,
            "edf" => PolicySpec::Edf,
            "seq-edf" => PolicySpec::SeqEdf,
            "ds-seq-edf" => PolicySpec::DsSeqEdf,
            "static" => PolicySpec::StaticPartition,
            "never" => PolicySpec::NeverReconfigure,
            "greedy" => PolicySpec::GreedyPending,
            "adaptive" => PolicySpec::AdaptiveDlruEdf,
            "dlru-2" => PolicySpec::DlruK2,
            "eager-bg" => PolicySpec::EagerBackground,
            "patient-bg" => PolicySpec::PatientBackground,
            _ => return None,
        })
    }

    /// The engine speed this policy is defined for.
    pub fn speed(self) -> Speed {
        match self {
            PolicySpec::DsSeqEdf => Speed::Double,
            _ => Speed::Uni,
        }
    }

    /// Builds a fresh (state-zero) instance for the given instance parameters.
    pub fn build(self, colors: &ColorTable, n: usize, delta: u64) -> Result<Box<dyn Policy>> {
        Ok(match self {
            PolicySpec::DlruEdf => Box::new(DlruEdf::new(colors, n, delta)?),
            PolicySpec::Dlru => Box::new(Dlru::new(colors, n, delta)?),
            PolicySpec::Edf => Box::new(Edf::new(colors, n, delta)?),
            PolicySpec::SeqEdf | PolicySpec::DsSeqEdf => {
                Box::new(Edf::seq_edf(colors, n, delta)?)
            }
            PolicySpec::StaticPartition => Box::new(StaticPartition::new(colors, n)),
            PolicySpec::NeverReconfigure => Box::new(NeverReconfigure::new()),
            PolicySpec::GreedyPending => Box::new(GreedyPending::new()),
            PolicySpec::AdaptiveDlruEdf => Box::new(AdaptiveDlruEdf::new(colors, n, delta)?),
            PolicySpec::DlruK2 => Box::new(DlruK::new(colors, n, delta, 2)?),
            PolicySpec::EagerBackground => Box::new(EagerBackground::new()),
            PolicySpec::PatientBackground => {
                Box::new(PatientBackground::new(colors.max_delay_bound()))
            }
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_spec_builds() {
        let colors = ColorTable::from_delay_bounds(&[2, 4, 8]);
        for &spec in PolicySpec::all() {
            let p = spec.build(&colors, 4, 2).unwrap_or_else(|e| panic!("{spec:?}: {e}"));
            assert!(!p.name().is_empty());
        }
    }

    #[test]
    fn parse_roundtrip() {
        for name in [
            "dlru-edf", "dlru", "edf", "seq-edf", "ds-seq-edf", "static", "never", "greedy",
            "adaptive", "dlru-2", "eager-bg", "patient-bg",
        ] {
            assert!(PolicySpec::parse(name).is_some(), "{name}");
        }
        assert!(PolicySpec::parse("hindsight").is_none(), "offline policies are not streamable");
    }

    #[test]
    fn only_ds_seq_edf_is_double_speed() {
        for &spec in PolicySpec::all() {
            let want = if spec == PolicySpec::DsSeqEdf { Speed::Double } else { Speed::Uni };
            assert_eq!(spec.speed(), want);
        }
    }
}
